// Allocation-ceiling guards for the contention-adaptive engine
// (DESIGN.md §8): coarse, deterministic allocs/op bounds that fail CI
// on unexpected allocation growth in the steady-state hot paths,
// without needing benchstat or a baseline artifact. The measured
// regimes are single-goroutine on purpose - that is batch degree 1.0,
// exactly where the seed paid one batch allocation (plus payload) per
// operation and where the recycling + fast-path work claims zero.
package secstack_test

import (
	"testing"

	"secstack/funnel"
	"secstack/internal/core"
	"secstack/pool"
	"secstack/queue"
	"secstack/stack"
)

// allocCeiling is the per-op allocation budget the steady-state paths
// must stay under. The true steady-state rate is 0; the headroom
// absorbs amortized slice growth (EBR limbo bags, recycling free
// lists) that has not fully settled during warmup.
const allocCeiling = 0.25

// TestAllocCeilingSoloFastPath: with adaptivity on, a single
// uncontended goroutine runs the solo fast path - one Treiber-style
// CAS per op through the per-session scratch batch - and with node +
// batch recycling on top, pays no steady-state heap allocation.
func TestAllocCeilingSoloFastPath(t *testing.T) {
	s := stack.NewSEC[int64](
		stack.WithAggregators(2),
		stack.WithAdaptive(true),
		stack.WithBatchRecycling(true),
		stack.WithRecycling(),
	)
	h := s.Register()
	defer h.Close()
	for i := int64(0); i < 4096; i++ { // settle EBR epochs and free lists
		h.Push(i)
		h.Pop()
	}
	avg := testing.AllocsPerRun(2000, func() {
		h.Push(7)
		h.Pop()
	})
	if avg > allocCeiling {
		t.Fatalf("solo fast path allocates %.3f allocs/op, ceiling %.2f", avg, allocCeiling)
	}
}

// TestAllocCeilingBatchRecycling: with adaptivity OFF every
// single-threaded operation still pays a full freeze (a singleton
// batch per op - the seed's worst case, one slot-array + payload
// allocation each). Batch recycling must reduce that to zero: frozen
// batches cycle through the per-aggregator free list and the freeze
// path reuses them.
func TestAllocCeilingBatchRecycling(t *testing.T) {
	s := stack.NewSEC[int64](
		stack.WithAggregators(2),
		stack.WithBatchRecycling(true),
		stack.WithRecycling(),
	)
	h := s.Register()
	defer h.Close()
	for i := int64(0); i < 4096; i++ {
		h.Push(i)
		h.Pop()
	}
	avg := testing.AllocsPerRun(2000, func() {
		h.Push(7)
		h.Pop()
	})
	if avg > allocCeiling {
		t.Fatalf("recycling freeze path allocates %.3f allocs/op, ceiling %.2f", avg, allocCeiling)
	}
}

// TestAllocCeilingPoolStealMiss: a Get that misses every shard is one
// solo pop on the home shard plus one steal CAS (TryPop through the
// per-session scratch batch, no announcement) per foreign shard - no
// heap allocation anywhere on the miss path.
func TestAllocCeilingPoolStealMiss(t *testing.T) {
	p := pool.New[int64](
		pool.WithShards(4),
		pool.WithAdaptive(true),
		pool.WithBatchRecycling(true),
	)
	h := p.Register()
	defer h.Close()
	for i := 0; i < 512; i++ { // settle the per-shard scratch batches
		h.Get()
	}
	avg := testing.AllocsPerRun(2000, func() { h.Get() })
	if avg > allocCeiling {
		t.Fatalf("pool Get steal-miss allocates %.3f allocs/op, ceiling %.2f", avg, allocCeiling)
	}
}

// TestAllocCeilingPoolStealHit: recovering an element parked on a
// foreign shard costs the same steal CAS and still nothing on the
// heap (the stolen node itself was allocated by its Put).
func TestAllocCeilingPoolStealHit(t *testing.T) {
	p := pool.New[int64](
		pool.WithShards(4),
		pool.WithAdaptive(true),
		pool.WithBatchRecycling(true),
	)
	consumer := p.Register() // home shard 0
	producer := p.Register() // home shard 1
	defer consumer.Close()
	defer producer.Close()
	const runs = 2000
	for i := 0; i < 512+2*runs; i++ { // warmup drains + one element per run
		producer.Put(int64(i))
	}
	for i := 0; i < 512; i++ {
		consumer.Get()
	}
	avg := testing.AllocsPerRun(runs, func() {
		if _, ok := consumer.Get(); !ok {
			t.Fatal("steal hit ran out of prefilled elements")
		}
	})
	if avg > allocCeiling {
		t.Fatalf("pool Get steal-hit allocates %.3f allocs/op, ceiling %.2f", avg, allocCeiling)
	}
}

// TestAllocCeilingTryPushSteal: a TryPush/TryPop cycle - the steal
// primitives both of the pool's sweeps are built from - is two
// Treiber-style CASes through the session's scratch batch, with the
// node cycling through the handle's reclamation pool: nothing on the
// heap in steady state. (The contended-miss sides are pinned at 0 by
// internal/agg's TestTryPushStealBypassesProtocol and the forced
// overflow guards in the pool package.)
func TestAllocCeilingTryPushSteal(t *testing.T) {
	s := core.New[int64](core.Options{Aggregators: 1, MaxThreads: 4, Recycle: true})
	h := s.Register()
	defer h.Close()
	for i := int64(0); i < 4096; i++ { // settle EBR epochs and the scratch batch
		h.TryPush(i)
		h.TryPop()
	}
	avg := testing.AllocsPerRun(2000, func() {
		if !h.TryPush(7) {
			t.Fatal("uncontended TryPush did not apply")
		}
		if _, ok, applied := h.TryPop(); !applied || !ok {
			t.Fatal("uncontended TryPop did not answer")
		}
	})
	if avg > allocCeiling {
		t.Fatalf("TryPush/TryPop steal cycle allocates %.3f allocs/op, ceiling %.2f", avg, allocCeiling)
	}
}

// TestAllocCeilingFunnelSolo: an adaptive funnel's uncontended FetchAdd
// is one hardware fetch&add through the scratch batch - no allocation
// at all.
func TestAllocCeilingFunnelSolo(t *testing.T) {
	f := funnel.New(funnel.WithAdaptive(true))
	h := f.Register()
	defer h.Close()
	for i := 0; i < 512; i++ {
		h.FetchAdd(1)
	}
	avg := testing.AllocsPerRun(2000, func() { h.FetchAdd(1) })
	if avg > allocCeiling {
		t.Fatalf("funnel solo FetchAdd allocates %.3f allocs/op, ceiling %.2f", avg, allocCeiling)
	}
}

// TestAllocCeilingQueue: an uncontended enqueue/dequeue cycle on the
// adaptive queue with batch recycling is two solo TryLock applies to
// the warmed segmented ring, announced through the handle's scratch
// field (not a heap-escaping local) - nothing on the heap in steady
// state. The ring's segments allocate on first touch during warmup
// and are retained, so the measured regime reuses them.
func TestAllocCeilingQueue(t *testing.T) {
	q := queue.New[int64](
		queue.WithCapacity(256),
		queue.WithAdaptive(true),
		queue.WithBatchRecycling(true),
	)
	h := q.Register()
	defer h.Close()
	for i := int64(0); i < 4096; i++ { // touch every segment, settle free lists
		h.Enqueue(i)
		h.Dequeue()
	}
	avg := testing.AllocsPerRun(2000, func() {
		h.Enqueue(7)
		h.Dequeue()
	})
	if avg > allocCeiling {
		t.Fatalf("queue solo enqueue/dequeue allocates %.3f allocs/op, ceiling %.2f", avg, allocCeiling)
	}
}

// TestAllocCeilingQueueTryMiss: the Try* forms' *miss* shapes - a
// TryDequeue observing empty and a TryEnqueue observing full - are one
// solo TryLock apply each and must also stay off the heap: the miss
// result travels through the session's scratch batch's response
// table, never through a fresh allocation.
func TestAllocCeilingQueueTryMiss(t *testing.T) {
	empty := queue.New[int64](
		queue.WithCapacity(8),
		queue.WithAdaptive(true),
		queue.WithBatchRecycling(true),
	)
	he := empty.Register()
	defer he.Close()
	for i := 0; i < 512; i++ { // settle the scratch batch
		he.TryDequeue()
	}
	avg := testing.AllocsPerRun(2000, func() {
		if _, ok := he.TryDequeue(); ok {
			t.Fatal("TryDequeue on an empty queue succeeded")
		}
	})
	if avg > allocCeiling {
		t.Fatalf("TryDequeue empty-miss allocates %.3f allocs/op, ceiling %.2f", avg, allocCeiling)
	}

	full := queue.New[int64](
		queue.WithCapacity(8),
		queue.WithAdaptive(true),
		queue.WithBatchRecycling(true),
	)
	hf := full.Register()
	defer hf.Close()
	for i := int64(0); i < 8; i++ {
		hf.Enqueue(i)
	}
	for i := 0; i < 512; i++ {
		hf.TryEnqueue(9)
	}
	avg = testing.AllocsPerRun(2000, func() {
		if hf.TryEnqueue(9) {
			t.Fatal("TryEnqueue on a full queue succeeded")
		}
	})
	if avg > allocCeiling {
		t.Fatalf("TryEnqueue full-miss allocates %.3f allocs/op, ceiling %.2f", avg, allocCeiling)
	}
}

// TestAllocCeilingImplicitQueue: handle-free Enqueue/Dequeue over a
// warm per-P session cache - the same zero-alloc solo cycle as the
// explicit guard, plus the slot swap.
func TestAllocCeilingImplicitQueue(t *testing.T) {
	q := queue.New[int64](
		queue.WithCapacity(256),
		queue.WithAdaptive(true),
		queue.WithBatchRecycling(true),
	)
	for i := int64(0); i < 4096; i++ {
		q.Enqueue(i)
		q.Dequeue()
	}
	avg := testing.AllocsPerRun(2000, func() {
		q.Enqueue(7)
		q.Dequeue()
	})
	if avg > allocCeiling {
		t.Fatalf("implicit Enqueue/Dequeue allocates %.3f allocs/op, ceiling %.2f", avg, allocCeiling)
	}
}

// TestAllocCeilingImplicitStack: the handle-free path over the solo
// fast path. Once the per-P session cache is warm, an implicit
// Push/Pop is a slot swap (two uncontended atomics) around the same
// zero-alloc solo path the explicit guard above measures - no pool
// lookups, no interface boxing, nothing on the heap. The rare
// registration a mid-measurement P migration triggers is what the
// ceiling's headroom absorbs.
func TestAllocCeilingImplicitStack(t *testing.T) {
	s := stack.NewSEC[int64](
		stack.WithAggregators(2),
		stack.WithAdaptive(true),
		stack.WithBatchRecycling(true),
		stack.WithRecycling(),
	)
	for i := int64(0); i < 4096; i++ { // warm the per-P cache, settle EBR and free lists
		s.Push(i)
		s.Pop()
	}
	avg := testing.AllocsPerRun(2000, func() {
		s.Push(7)
		s.Pop()
	})
	if avg > allocCeiling {
		t.Fatalf("implicit Push/Pop allocates %.3f allocs/op, ceiling %.2f", avg, allocCeiling)
	}
}

// TestAllocCeilingImplicitPool: handle-free Put/Get over a warm per-P
// session cache - the uncontended cycle is the same home-shard solo
// CAS pair as the explicit guard, plus the slot swap.
func TestAllocCeilingImplicitPool(t *testing.T) {
	p := pool.New[int64](
		pool.WithShards(4),
		pool.WithAdaptive(true),
		pool.WithBatchRecycling(true),
		pool.WithRecycling(),
	)
	for i := int64(0); i < 4096; i++ {
		p.Put(i)
		p.Get()
	}
	avg := testing.AllocsPerRun(2000, func() {
		p.Put(7)
		p.Get()
	})
	if avg > allocCeiling {
		t.Fatalf("implicit Put/Get allocates %.3f allocs/op, ceiling %.2f", avg, allocCeiling)
	}
}

// TestAllocCeilingImplicitFunnel: handle-free Add over a warm per-P
// session cache.
func TestAllocCeilingImplicitFunnel(t *testing.T) {
	f := funnel.New(funnel.WithAdaptive(true))
	for i := 0; i < 512; i++ {
		f.Add(1)
	}
	avg := testing.AllocsPerRun(2000, func() { f.Add(1) })
	if avg > allocCeiling {
		t.Fatalf("implicit funnel Add allocates %.3f allocs/op, ceiling %.2f", avg, allocCeiling)
	}
}
