// BenchmarkImplicitVsHandle: the acceptance ladder for the per-P
// implicit-session layer. Three arms over the same zero-alloc SEC
// configuration (adaptive fast path + node and batch recycling):
//
//	handle   - explicit Register-ed handle per worker (the fast path
//	           the docs used to steer everyone toward)
//	implicit - the handle-free API over the per-P session cache
//	spill    - the handle-free API with affinity off (spill-pool-only
//	           borrows, the pre-affinity implementation's behavior)
//
// at fixed worker counts 1, 4 and GOMAXPROCS rather than
// b.RunParallel (which cannot pin an exact goroutine count, and the
// claim under test is per-rung: implicit within ~10% of handle at
// every contention level). Run with -benchmem: the implicit arm's
// steady state is 0 allocs/op, which TestAllocCeilingImplicitStack
// pins in CI.
package secstack_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"secstack/stack"
)

// implicitBenchDegrees is the contention ladder: solo, small-group,
// machine-wide.
func implicitBenchDegrees() []int {
	degrees := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		degrees = append(degrees, p)
	}
	return degrees
}

// newImplicitBenchStack is the ladder's one configuration: the
// zero-alloc steady state (adaptive solo path, node + batch
// recycling) where announcement and session-lookup overheads are the
// costs left to measure.
func newImplicitBenchStack() *stack.SECStack[int64] {
	return stack.NewSEC[int64](
		stack.WithAggregators(2),
		stack.WithAdaptive(true),
		stack.WithBatchRecycling(true),
		stack.WithRecycling(),
	)
}

// benchFixedWorkers splits b.N across exactly `workers` goroutines,
// each running a Push/Pop cycle via op.
func benchFixedWorkers(b *testing.B, workers int, op func(worker int, i int64)) {
	b.Helper()
	per := b.N / workers
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < int64(per); i++ {
				op(w, i)
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkImplicitVsHandle(b *testing.B) {
	for _, degree := range implicitBenchDegrees() {
		b.Run(fmt.Sprintf("handle/deg%d", degree), func(b *testing.B) {
			s := newImplicitBenchStack()
			handles := make([]stack.Handle[int64], degree)
			for w := range handles {
				handles[w] = s.Register()
			}
			defer func() {
				for _, h := range handles {
					h.Close()
				}
			}()
			b.ReportAllocs()
			benchFixedWorkers(b, degree, func(w int, i int64) {
				h := handles[w]
				h.Push(i)
				h.Pop()
			})
		})
		b.Run(fmt.Sprintf("implicit/deg%d", degree), func(b *testing.B) {
			s := newImplicitBenchStack()
			b.ReportAllocs()
			benchFixedWorkers(b, degree, func(w int, i int64) {
				s.Push(i)
				s.Pop()
			})
		})
		b.Run(fmt.Sprintf("spill/deg%d", degree), func(b *testing.B) {
			s := stack.NewSEC[int64](
				stack.WithAggregators(2),
				stack.WithAdaptive(true),
				stack.WithBatchRecycling(true),
				stack.WithRecycling(),
				stack.WithImplicitSessions(false),
			)
			b.ReportAllocs()
			benchFixedWorkers(b, degree, func(w int, i int64) {
				s.Push(i)
				s.Pop()
			})
		})
	}
}

// TestImplicitHandleRatio is the CI gate on the ladder's headline
// claim: a handle-free op must stay within 1.5x of the explicit
// handle path's ns/op at degree 1 (the target is ~1.1x; the CI bound
// leaves room for shared-runner noise). Min-of-3 on both arms
// suppresses one-off scheduling hiccups. Skipped under -short - the
// race detector's instrumentation (CI's -short tier) would make the
// timing meaningless.
func TestImplicitHandleRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("timing ratio is meaningless under -short/-race tiers")
	}
	minOf3 := func(bench func(b *testing.B)) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(bench)
			if ns := float64(r.NsPerOp()); best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	handle := minOf3(func(b *testing.B) {
		s := newImplicitBenchStack()
		h := s.Register()
		defer h.Close()
		b.ResetTimer()
		for i := int64(0); i < int64(b.N); i++ {
			h.Push(i)
			h.Pop()
		}
	})
	implicit := minOf3(func(b *testing.B) {
		s := newImplicitBenchStack()
		b.ResetTimer()
		for i := int64(0); i < int64(b.N); i++ {
			s.Push(i)
			s.Pop()
		}
	})
	ratio := implicit / handle
	t.Logf("handle %.1f ns/op, implicit %.1f ns/op, ratio %.3f", handle, implicit, ratio)
	if ratio > 1.5 {
		t.Fatalf("implicit path is %.2fx the handle path (handle %.1f ns/op, implicit %.1f ns/op), CI bound 1.5x",
			ratio, handle, implicit)
	}
}
