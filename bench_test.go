// Benchmark families regenerating the paper's evaluation, one family
// per distinct experiment shape (see DESIGN.md §3):
//
//	BenchmarkFig2   - throughput, 100%/50%/10% update mixes, all algorithms
//	BenchmarkFig3   - push-only and pop-only workloads, all algorithms
//	BenchmarkFig4   - SEC aggregator-count sweep (1..5)
//	BenchmarkTable1 - SEC batching/elimination/combining degrees
//
// plus the ablations DESIGN.md calls out:
//
//	BenchmarkAblationFreezerBackoff - freezer pre-freeze spin sweep
//	BenchmarkAblationNoElimination  - combining-only SEC vs full SEC
//	BenchmarkAblationReclaim        - EBR node recycling on/off
//	BenchmarkAblationFastPath       - contention-adaptive solo fast path on/off (reports allocs)
//	BenchmarkAblationBatchReuse     - batch recycling on/off (reports allocs)
//	BenchmarkAblationSpin           - fixed FreezerSpin ladder vs the adaptive spin controller
//	BenchmarkPoolSteal              - pool Get peek-then-steal, hit and miss paths (reports allocs)
//
// Each family runs at two contention levels: "sub" (goroutines ==
// GOMAXPROCS) and "over" (4x GOMAXPROCS, reproducing the paper's
// oversubscribed right-hand figure regions). Thread-ladder sweeps over
// the paper's full machine configurations are driven by cmd/secbench.
package secstack_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"secstack/internal/harness"
	"secstack/internal/xrand"
	"secstack/pool"
	"secstack/stack"
)

// contention levels: SetParallelism multiplies GOMAXPROCS.
var parallelisms = []struct {
	name string
	par  int
}{
	{"sub", 1},
	{"over", 4},
}

// benchMix drives one stack with a workload mix under b.RunParallel.
func benchMix(b *testing.B, f harness.Factory, wl harness.Workload, prefill, par int) {
	b.Helper()
	s := f()
	if prefill > 0 {
		h := s.Register()
		for i := 0; i < prefill; i++ {
			h.Push(int64(1)<<48 | int64(i))
		}
		h.Close()
	}
	var tid atomic.Int64
	b.SetParallelism(par)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		t := tid.Add(1)
		h := s.Register()
		defer h.Close()
		rng := xrand.New(uint64(t) * 7919)
		base := t << 32
		i := int64(0)
		for pb.Next() {
			switch wl.Pick(rng.Intn(100)) {
			case harness.OpPush:
				h.Push(base | i)
			case harness.OpPop:
				h.Pop()
			case harness.OpPeek:
				h.Peek()
			}
			i++
		}
	})
}

// BenchmarkFig2 is the paper's Figure 2 family (throughput under the
// three update mixes, six algorithms). The paper's per-machine thread
// ladders are swept by `secbench -fig 2a|2b|5|9`.
func BenchmarkFig2(b *testing.B) {
	for _, wl := range harness.UpdateWorkloads() {
		for _, alg := range stack.Algorithms() {
			for _, p := range parallelisms {
				b.Run(fmt.Sprintf("%s/%s/%s", wl.Name, alg, p.name), func(b *testing.B) {
					benchMix(b, harness.FactoryFor(alg, stack.WithAggregators(2)), wl, 1000, p.par)
				})
			}
		}
	}
}

// BenchmarkFig3 is the paper's Figure 3 family (push-only / pop-only).
// Pop-only runs against a deep prefill, as the paper's pop benchmark
// drains a prefilled stack.
func BenchmarkFig3(b *testing.B) {
	for _, wl := range []harness.Workload{harness.PushOnly, harness.PopOnly} {
		prefill := 1000
		if wl.Name == harness.PopOnly.Name {
			prefill = 1 << 20
		}
		for _, alg := range stack.Algorithms() {
			for _, p := range parallelisms {
				b.Run(fmt.Sprintf("%s/%s/%s", wl.Name, alg, p.name), func(b *testing.B) {
					benchMix(b, harness.FactoryFor(alg, stack.WithAggregators(2)), wl, prefill, p.par)
				})
			}
		}
	}
}

// BenchmarkFig4 is the paper's Figure 4 family: SEC with 1..5
// aggregators under the three update mixes plus push-only.
func BenchmarkFig4(b *testing.B) {
	workloads := append(harness.UpdateWorkloads(), harness.PushOnly)
	for _, wl := range workloads {
		for aggs := 1; aggs <= 5; aggs++ {
			for _, p := range parallelisms {
				b.Run(fmt.Sprintf("%s/SEC_Agg%d/%s", wl.Name, aggs, p.name), func(b *testing.B) {
					benchMix(b, harness.FactoryFor(stack.SEC, stack.WithAggregators(aggs)), wl, 1000, p.par)
				})
			}
		}
	}
}

// BenchmarkTable1 reproduces the degree measurements of the paper's
// Tables 1-3: it runs the instrumented SEC stack and reports batching
// degree, %elimination and %combining as custom benchmark metrics.
func BenchmarkTable1(b *testing.B) {
	for _, wl := range harness.UpdateWorkloads() {
		b.Run(wl.Name, func(b *testing.B) {
			s := stack.NewSEC[int64](stack.WithAggregators(2), stack.WithMetrics())
			h0 := s.Register()
			for i := 0; i < 1000; i++ {
				h0.Push(int64(i))
			}
			var tid atomic.Int64
			b.SetParallelism(2)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				t := tid.Add(1)
				h := s.Register()
				defer h.Close()
				rng := xrand.New(uint64(t) * 104729)
				i := int64(0)
				for pb.Next() {
					switch wl.Pick(rng.Intn(100)) {
					case harness.OpPush:
						h.Push(i)
					case harness.OpPop:
						h.Pop()
					case harness.OpPeek:
						h.Peek()
					}
					i++
				}
			})
			b.StopTimer()
			snap := s.Metrics().Snapshot()
			b.ReportMetric(snap.BatchingDegree(), "batch-degree")
			b.ReportMetric(snap.EliminationPct(), "%elim")
			b.ReportMetric(snap.CombiningPct(), "%comb")
			b.ReportMetric(snap.OccupancyPct(), "%occ")
		})
	}
}

// BenchmarkAblationFreezerBackoff sweeps the freezer's batch-growing
// spin (§3.1: "a short backoff ... results in enhanced performance").
func BenchmarkAblationFreezerBackoff(b *testing.B) {
	for _, spin := range []int{0, 32, 128, 512, 2048} {
		b.Run(fmt.Sprintf("spin=%d", spin), func(b *testing.B) {
			f := func() stack.Stack[int64] {
				return stack.NewSEC[int64](stack.WithAggregators(2), stack.WithFreezerSpin(spin))
			}
			benchMix(b, f, harness.Update100, 1000, 4)
		})
	}
}

// BenchmarkAblationNoElimination isolates elimination's contribution:
// full SEC vs freezing+combining only, on the elimination-friendliest
// mix (100% updates).
func BenchmarkAblationNoElimination(b *testing.B) {
	for _, noElim := range []bool{false, true} {
		name := "full"
		if noElim {
			name = "no-elim"
		}
		b.Run(name, func(b *testing.B) {
			f := func() stack.Stack[int64] {
				opts := []stack.Option{stack.WithAggregators(2)}
				if noElim {
					opts = append(opts, stack.WithoutElimination())
				}
				return stack.NewSEC[int64](opts...)
			}
			benchMix(b, f, harness.Update100, 1000, 4)
		})
	}
}

// BenchmarkAblationFastPath isolates the contention-adaptive solo fast
// path (DESIGN.md §8): stock SEC vs WithAdaptive, at both contention
// levels, under the mix where the seed's EXPERIMENTS.md recorded the
// ~10x gap to the CAS baselines at batch degree 1.0. Allocations are
// reported so the scratch-batch path's zero-alloc claim is visible in
// -benchmem runs.
func BenchmarkAblationFastPath(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		name := "batched"
		if adaptive {
			name = "adaptive"
		}
		for _, p := range parallelisms {
			b.Run(fmt.Sprintf("%s/%s", name, p.name), func(b *testing.B) {
				b.ReportAllocs()
				f := func() stack.Stack[int64] {
					return stack.NewSEC[int64](stack.WithAggregators(2), stack.WithAdaptive(adaptive))
				}
				benchMix(b, f, harness.Update100, 1000, p.par)
			})
		}
	}
}

// BenchmarkAblationBatchReuse isolates batch recycling (DESIGN.md §8):
// the full batch protocol with freshly allocated batches vs recycled
// ones, node recycling on in both arms so the remaining allocations
// are the freeze path's own. The adaptive fast path stays off so every
// operation pays a freeze at low thread counts - the regime whose
// per-op batch allocation motivated recycling.
func BenchmarkAblationBatchReuse(b *testing.B) {
	for _, reuse := range []bool{false, true} {
		name := "alloc"
		if reuse {
			name = "reuse"
		}
		for _, p := range parallelisms {
			b.Run(fmt.Sprintf("%s/%s", name, p.name), func(b *testing.B) {
				b.ReportAllocs()
				f := func() stack.Stack[int64] {
					opts := []stack.Option{stack.WithAggregators(2), stack.WithRecycling()}
					if reuse {
						opts = append(opts, stack.WithBatchRecycling(true))
					}
					return stack.NewSEC[int64](opts...)
				}
				benchMix(b, f, harness.Update100, 1000, p.par)
			})
		}
	}
}

// BenchmarkAblationSpin is the freezer-backoff ablation (DESIGN.md
// §9): SEC across fixed FreezerSpin settings against the adaptive
// controller bounded by the ladder's top rung. The claim: adaptive
// spin tracks the best fixed setting in each regime (decayed to ~0
// where batches freeze near-empty, grown toward the ceiling where the
// backoff buys batch degree) while the worst fixed setting pays for
// one regime in the other. cmd/secbench -fig spin sweeps the same
// ladder across full thread ladders.
func BenchmarkAblationSpin(b *testing.B) {
	variants := []struct {
		name string
		opts []stack.Option
	}{
		{"fixed0", []stack.Option{stack.WithFreezerSpin(0)}},
		{"fixed128", []stack.Option{stack.WithFreezerSpin(128)}},
		{"fixed2048", []stack.Option{stack.WithFreezerSpin(2048)}},
		{"adaptive", []stack.Option{stack.WithFreezerSpin(2048), stack.WithAdaptiveSpin(true)}},
	}
	for _, v := range variants {
		for _, p := range parallelisms {
			b.Run(fmt.Sprintf("%s/%s", v.name, p.name), func(b *testing.B) {
				opts := append([]stack.Option{stack.WithAggregators(2)}, v.opts...)
				f := func() stack.Stack[int64] { return stack.NewSEC[int64](opts...) }
				benchMix(b, f, harness.Update100, 1000, p.par)
			})
		}
	}
}

// BenchmarkPoolSteal measures the pool's peek-then-steal Get
// (DESIGN.md §9). "miss" is a Get over an empty pool - one solo pop on
// the home shard plus one steal CAS per foreign shard; "hit" recovers
// elements a producer parks on a foreign shard. Allocations are
// reported: both paths claim 0 allocs/op on the Get side (the hit pair
// includes the Put's node allocation).
func BenchmarkPoolSteal(b *testing.B) {
	newPool := func() *pool.Pool[int64] {
		return pool.New[int64](pool.WithShards(4), pool.WithAdaptive(true), pool.WithBatchRecycling(true))
	}
	b.Run("miss", func(b *testing.B) {
		p := newPool()
		h := p.Register()
		defer h.Close()
		for i := 0; i < 512; i++ {
			h.Get()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Get()
		}
	})
	b.Run("hit", func(b *testing.B) {
		p := newPool()
		consumer := p.Register() // home shard 0
		producer := p.Register() // home shard 1
		defer consumer.Close()
		defer producer.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			producer.Put(int64(i))
			consumer.Get()
		}
	})
}

// BenchmarkAblationReclaim measures the cost/benefit of routing nodes
// through epoch-based reclamation instead of the garbage collector.
func BenchmarkAblationReclaim(b *testing.B) {
	for _, recycle := range []bool{false, true} {
		name := "gc"
		if recycle {
			name = "ebr"
		}
		b.Run(name, func(b *testing.B) {
			f := func() stack.Stack[int64] {
				opts := []stack.Option{stack.WithAggregators(2)}
				if recycle {
					opts = append(opts, stack.WithRecycling())
				}
				return stack.NewSEC[int64](opts...)
			}
			benchMix(b, f, harness.Update100, 1000, 4)
		})
	}
}
