// Command godoccheck is the repository's documentation gate: it fails
// (exit 1) when a package in the named directories lacks a package doc
// comment, or when any exported top-level identifier - type, function,
// method on an exported receiver, var or const - lacks a doc comment.
// It is the equivalent of revive's "exported" rule, kept in-tree so CI
// needs no external tooling:
//
//	go run ./cmd/godoccheck stack deque pool funnel
//
// A const or var inside a documented grouped declaration counts as
// documented when it carries its own doc or trailing line comment, or
// when the group's doc covers it (the declaration-level comment); test
// files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: godoccheck <pkgdir> [pkgdir...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += checkDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "godoccheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded) and reports
// every undocumented exported identifier it finds.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "godoccheck: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for name, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Fprintf(os.Stderr, "%s: package %s has no package doc comment\n", dir, name)
			bad++
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				bad += checkDecl(fset, decl)
			}
		}
	}
	return bad
}

// checkDecl reports undocumented exported identifiers introduced by
// one top-level declaration.
func checkDecl(fset *token.FileSet, decl ast.Decl) int {
	bad := 0
	complain := func(pos token.Pos, kind, name string) {
		fmt.Fprintf(os.Stderr, "%s: exported %s %s has no doc comment\n",
			fset.Position(pos), kind, name)
		bad++
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && receiverExported(d) && d.Doc == nil {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			complain(d.Name.Pos(), kind, d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					complain(s.Name.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				// A group doc, a spec doc, or a trailing line comment all
				// count; only a spec with none of the three is naked.
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						complain(n.Pos(), "value", n.Name)
					}
				}
			}
		}
	}
	return bad
}

// receiverExported reports whether a method's receiver type is
// exported (top-level functions trivially qualify): a method on an
// unexported type is not part of the package's documented surface
// unless the type leaks through an exported API, which the type's own
// doc requirement already covers.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch rt := t.(type) {
		case *ast.StarExpr:
			t = rt.X
		case *ast.IndexExpr: // generic receiver: T[P]
			t = rt.X
		case *ast.IndexListExpr: // generic receiver: T[P1, P2]
			t = rt.X
		case *ast.Ident:
			return rt.IsExported()
		default:
			return true // unrecognized shape: err on the side of checking
		}
	}
}
