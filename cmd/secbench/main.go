// Command secbench regenerates every figure and table of the paper's
// evaluation (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	secbench -fig 2a          # Figure 2a: update mixes on the Emerald ladder
//	secbench -fig 3           # Figure 3: push-only / pop-only, Emerald
//	secbench -fig 4           # Figure 4: SEC aggregator sweep, Emerald
//	secbench -fig adaptive    # adaptivity ablation: solo fast path + batch recycling vs stock SEC and TRB
//	secbench -fig spin        # freezer-backoff ablation: fixed FreezerSpin ladder vs the adaptive controller
//	secbench -fig implicit    # handle-free ablation: per-P implicit sessions vs explicit handles vs spill-only
//	secbench -fig elastic     # elastic-pool ablation: static shard count vs the elastic controller, with live_shards per rung
//	secbench -fig queue       # queue head-to-head: the bounded SEC queue vs a buffered Go channel, with queue degree rows per rung
//	secbench -table 1         # Table 1: degree/occupancy tables, Emerald
//	secbench -all             # everything
//	secbench -all -paper      # paper-fidelity settings (5s x 5 runs)
//	secbench -all -quick      # fast smoke settings (100ms x 1 run)
//	secbench -fig 2a -json out/   # also write out/BENCH_fig2a.json
//	secbench -list            # print the algorithm registry and exit
//
// Figures 5-8 and Table 2 are the IceLake repeats; Figures 9-12 and
// Table 3 the Sapphire repeats. Output is text tables with the same
// rows/series the paper plots; -table additionally prints the batch
// occupancy and elimination-rate counters the agg engine records for
// the deque, funnel, pool and queue next to the paper's SEC stack degrees
// (the pool rows carry the put-steal and shard-scaling inheritance
// counters of the bidirectional load-balancing work).
//
// With -json, each figure or table is also written as one
// machine-readable BENCH_<fig>.json document (schema secbench/v9; see
// internal/harness/json.go for the version history).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"secstack/internal/harness"
	"secstack/pool"
	"secstack/stack"
)

type settings struct {
	duration time.Duration
	runs     int
	prefill  int
	verbose  bool
	csvDir   string
	jsonDir  string
}

// emit prints the series as a text table, records it into doc (when
// -json is set), and, when -csv is set, also writes it in long-form CSV
// for external plotting.
func emit(s *harness.Series, st settings, doc *harness.BenchDoc) {
	s.WriteTo(os.Stdout)
	fmt.Println()
	if doc != nil {
		doc.AddSeries(s)
	}
	if st.csvDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(st.csvDir, sanitize(s.Title)+".csv"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	defer f.Close()
	if err := s.WriteCSV(f); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
	}
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, name)
}

// newDoc returns a collector for one figure/table when -json is set,
// else nil.
func newDoc(st settings, fig string) *harness.BenchDoc {
	if st.jsonDir == "" {
		return nil
	}
	return harness.NewBenchDoc(fig)
}

// writeDoc emits doc as BENCH_<fig>.json into the -json directory.
func writeDoc(st settings, doc *harness.BenchDoc) {
	if doc == nil {
		return
	}
	path := filepath.Join(st.jsonDir, "BENCH_"+sanitize(doc.Fig)+".json")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "json: %v\n", err)
		return
	}
	defer f.Close()
	if err := doc.WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "json: %v\n", err)
	}
}

func main() {
	var (
		fig     = flag.String("fig", "", "figure to regenerate: 2a, 2b, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, adaptive, spin, implicit, elastic, queue")
		table   = flag.Int("table", 0, "table to regenerate: 1, 2, 3")
		all     = flag.Bool("all", false, "regenerate every figure and table")
		paper   = flag.Bool("paper", false, "paper-fidelity settings: 5s windows, 5 runs")
		quick   = flag.Bool("quick", false, "smoke settings: 100ms windows, 1 run")
		dur     = flag.Duration("duration", time.Second, "measurement window per run")
		runs    = flag.Int("runs", 3, "runs averaged per point")
		prefill = flag.Int("prefill", 1000, "elements prefilled before measuring (paper: 1000)")
		verbose = flag.Bool("v", false, "print per-point progress")
		csvDir  = flag.String("csv", "", "directory to also write long-form CSVs into")
		jsonDir = flag.String("json", "", "directory to write one machine-readable BENCH_<fig>.json per sweep into")
		latency = flag.Bool("latency", false, "print a per-algorithm latency comparison (companion measurement)")
		list    = flag.Bool("list", false, "list the benchmarked algorithm registry and exit")
	)
	flag.Parse()

	if *list {
		listAlgorithms()
		return
	}

	st := settings{duration: *dur, runs: *runs, prefill: *prefill, verbose: *verbose, csvDir: *csvDir, jsonDir: *jsonDir}
	if *paper {
		st.duration, st.runs = 5*time.Second, 5
	}
	if *quick {
		st.duration, st.runs = 100*time.Millisecond, 1
	}
	if st.jsonDir != "" {
		if err := os.MkdirAll(st.jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(2)
		}
	}

	fmt.Printf("# secbench: GOMAXPROCS=%d, window=%v, runs=%d, prefill=%d\n",
		runtime.GOMAXPROCS(0), st.duration, st.runs, st.prefill)
	fmt.Printf("# thread counts beyond GOMAXPROCS run oversubscribed, as the paper's\n")
	fmt.Printf("# points beyond each machine's hardware threads do\n\n")

	ran := false
	if *all {
		for _, f := range []string{"2a", "2b", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12"} {
			runFig(f, st)
		}
		for _, t := range []int{1, 2, 3} {
			runTable(t, st)
		}
		ran = true
	}
	if *fig != "" {
		runFig(*fig, st)
		ran = true
	}
	if *table != 0 {
		runTable(*table, st)
		ran = true
	}
	if *latency {
		runLatency(st)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// listAlgorithms prints the stack registry, one algorithm per line, in
// registry order. The same registry backs seccheck -list and the secd
// handshake banner, so the three tools always agree on what's
// servable (stack.Algorithms is the single source of truth).
func listAlgorithms() {
	for _, a := range stack.Algorithms() {
		fmt.Printf("%-4s %s\n", a, stack.Describe(a))
	}
}

// runLatency prints per-operation latency percentiles for every
// algorithm at GOMAXPROCS and 4x GOMAXPROCS threads under the
// update-heavy mix.
func runLatency(st settings) {
	fmt.Println("# Latency under 100% updates (sampled every 16th op)")
	for _, threads := range []int{runtime.GOMAXPROCS(0), 4 * runtime.GOMAXPROCS(0)} {
		for _, alg := range stack.Algorithms() {
			l := harness.RunLatency(harness.Config{
				Label:    string(alg),
				Threads:  threads,
				Duration: st.duration,
				Prefill:  st.prefill,
				Workload: harness.Update100,
			}, harness.FactoryFor(alg, stack.WithAggregators(2)), 16)
			fmt.Println(l)
		}
		fmt.Println()
	}
}

func progress(st settings) func(string) {
	if !st.verbose {
		return nil
	}
	return func(m string) { fmt.Fprintln(os.Stderr, "  "+m) }
}

// algColumns builds the six-algorithm column set of Figures 2/3.
func algColumns() ([]string, func(string) harness.Factory) {
	cols := make([]string, 0, 6)
	for _, a := range stack.Algorithms() {
		cols = append(cols, string(a))
	}
	return cols, func(col string) harness.Factory {
		return harness.FactoryFor(stack.Algorithm(col), stack.WithAggregators(2))
	}
}

// aggColumns builds the SEC_Agg1..5 column set of Figure 4.
func aggColumns() ([]string, func(string) harness.Factory) {
	cols := []string{"SEC_Agg1", "SEC_Agg2", "SEC_Agg3", "SEC_Agg4", "SEC_Agg5"}
	return cols, func(col string) harness.Factory {
		aggs := int(col[len(col)-1] - '0')
		return harness.FactoryFor(stack.SEC, stack.WithAggregators(aggs))
	}
}

func runFig(fig string, st settings) {
	name := "fig" + fig
	switch fig {
	case "adaptive", "spin", "implicit", "elastic", "queue":
		// The ablations are not paper figures; their JSON documents are
		// named after the ablation itself (BENCH_implicit.json, ...).
		name = fig
	}
	doc := newDoc(st, name)
	switch fig {
	case "2a":
		figUpdates("Figure 2a", harness.Emerald, st, doc)
	case "2b", "5":
		figUpdates("Figure "+fig, harness.IceLake, st, doc)
	case "9":
		figUpdates("Figure 9", harness.Sapphire, st, doc)
	case "3":
		figOneSided("Figure 3", harness.Emerald, st, doc)
	case "6":
		figOneSided("Figure 6", harness.IceLake, st, doc)
	case "10":
		figOneSided("Figure 10", harness.Sapphire, st, doc)
	case "4":
		figAggSweep("Figure 4", harness.Emerald, append(harness.UpdateWorkloads(), harness.PushOnly), st, doc)
	case "7":
		figAggSweep("Figure 7", harness.IceLake, harness.UpdateWorkloads(), st, doc)
	case "8":
		figAggSweep("Figure 8", harness.IceLake, []harness.Workload{harness.PushOnly, harness.PopOnly}, st, doc)
	case "11":
		figAggSweep("Figure 11", harness.Sapphire, harness.UpdateWorkloads(), st, doc)
	case "12":
		figAggSweep("Figure 12", harness.Sapphire, []harness.Workload{harness.PushOnly, harness.PopOnly}, st, doc)
	case "adaptive":
		figAdaptive("Adaptivity", harness.Emerald, st, doc)
	case "spin":
		figSpin("Spin", harness.Emerald, st, doc)
	case "implicit":
		figImplicit("Implicit", st, doc)
	case "elastic":
		figElastic("Elastic", st, doc)
	case "queue":
		figQueue("Queue", st, doc)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", fig)
		os.Exit(2)
	}
	writeDoc(st, doc)
}

// figUpdates renders one Figure 2/5/9-style panel set: throughput under
// the three update mixes across the machine's thread ladder.
func figUpdates(title string, m harness.Machine, st settings, doc *harness.BenchDoc) {
	cols, factory := algColumns()
	for _, wl := range harness.UpdateWorkloads() {
		s := harness.Sweep(fmt.Sprintf("%s %s, %s", title, m.Name, wl.Name), harness.SweepOptions{
			Columns:  cols,
			Factory:  factory,
			Ladder:   m.Ladder,
			Workload: wl,
			Duration: st.duration,
			Prefill:  st.prefill,
			Runs:     st.runs,
			Progress: progress(st),
		})
		emit(s, st, doc)
	}
}

// figOneSided renders a Figure 3/6/10-style panel pair: push-only and
// pop-only throughput. Pop-only uses a deep prefill so pops mostly hit
// a non-empty stack.
func figOneSided(title string, m harness.Machine, st settings, doc *harness.BenchDoc) {
	cols, factory := algColumns()
	for _, wl := range []harness.Workload{harness.PushOnly, harness.PopOnly} {
		drain := wl.Name == harness.PopOnly.Name
		prefill := st.prefill
		if drain {
			// Pop-only runs in drain mode: a deep prefill is popped dry
			// and throughput is successful pops over elapsed time (a
			// timed run over a small prefill mostly measures empty
			// pops).
			prefill = 1 << 20
		}
		s := harness.Sweep(fmt.Sprintf("%s %s, %s", title, m.Name, wl.Name), harness.SweepOptions{
			Columns:  cols,
			Factory:  factory,
			Ladder:   m.Ladder,
			Workload: wl,
			Duration: st.duration,
			Prefill:  prefill,
			Runs:     st.runs,
			Drain:    drain,
			Progress: progress(st),
		})
		emit(s, st, doc)
	}
}

// figAggSweep renders a Figure 4/7/8/11/12-style panel set: SEC with
// one to five aggregators.
func figAggSweep(title string, m harness.Machine, workloads []harness.Workload, st settings, doc *harness.BenchDoc) {
	cols, factory := aggColumns()
	for _, wl := range workloads {
		drain := wl.Name == harness.PopOnly.Name
		prefill := st.prefill
		if drain {
			prefill = 1 << 20
		}
		s := harness.Sweep(fmt.Sprintf("%s %s, %s", title, m.Name, wl.Name), harness.SweepOptions{
			Columns:  cols,
			Factory:  factory,
			Ladder:   m.Ladder,
			Workload: wl,
			Duration: st.duration,
			Prefill:  prefill,
			Runs:     st.runs,
			Drain:    drain,
			Progress: progress(st),
		})
		emit(s, st, doc)
	}
}

// figAdaptive renders the contention-adaptivity ablation (not a paper
// figure; see DESIGN.md §8): stock SEC against SEC with the solo fast
// path / shard scaling, with batch recycling stacked on top, and the
// Treiber baseline the fast path degenerates to, across the update
// mixes. The low-thread rungs are where adaptivity must close the gap
// to TRB; the high rungs are where it must not cost anything.
func figAdaptive(title string, m harness.Machine, st settings, doc *harness.BenchDoc) {
	cols := []string{"SEC", "SEC_adapt", "SEC_adapt_rec", "TRB"}
	factory := func(col string) harness.Factory {
		switch col {
		case "SEC_adapt":
			return harness.FactoryFor(stack.SEC, stack.WithAggregators(2), stack.WithAdaptive(true))
		case "SEC_adapt_rec":
			return harness.FactoryFor(stack.SEC, stack.WithAggregators(2), stack.WithAdaptive(true),
				stack.WithBatchRecycling(true), stack.WithRecycling())
		default:
			return harness.FactoryFor(stack.Algorithm(col), stack.WithAggregators(2))
		}
	}
	for _, wl := range harness.UpdateWorkloads() {
		s := harness.Sweep(fmt.Sprintf("%s %s, %s", title, m.Name, wl.Name), harness.SweepOptions{
			Columns:  cols,
			Factory:  factory,
			Ladder:   m.Ladder,
			Workload: wl,
			Duration: st.duration,
			Prefill:  st.prefill,
			Runs:     st.runs,
			Progress: progress(st),
		})
		emit(s, st, doc)
	}
}

// figSpin renders the freezer-backoff ablation (not a paper figure;
// see DESIGN.md §9): SEC across a ladder of fixed FreezerSpin settings
// against the adaptive controller (whose ceiling is the ladder's top
// rung), on the update mixes. The claim under test: adaptive spin
// tracks the best fixed setting at both low and high degree - decaying
// to ~0 when batches freeze near-empty, growing toward the ceiling
// when the backoff buys batch degree - while the worst fixed setting
// pays for one regime in the other.
func figSpin(title string, m harness.Machine, st settings, doc *harness.BenchDoc) {
	const ceiling = 2048 // the ladder's top rung and the controller's bound
	cols := []string{"SEC_spin0", "SEC_spin32", "SEC_spin128", "SEC_spin512", "SEC_spin2048", "SEC_adaptspin"}
	factory := func(col string) harness.Factory {
		if col == "SEC_adaptspin" {
			return harness.FactoryFor(stack.SEC, stack.WithAggregators(2),
				stack.WithFreezerSpin(ceiling), stack.WithAdaptiveSpin(true))
		}
		spin := 0
		fmt.Sscanf(col, "SEC_spin%d", &spin)
		return harness.FactoryFor(stack.SEC, stack.WithAggregators(2), stack.WithFreezerSpin(spin))
	}
	for _, wl := range harness.UpdateWorkloads() {
		s := harness.Sweep(fmt.Sprintf("%s %s, %s", title, m.Name, wl.Name), harness.SweepOptions{
			Columns:  cols,
			Factory:  factory,
			Ladder:   m.Ladder,
			Workload: wl,
			Duration: st.duration,
			Prefill:  st.prefill,
			Runs:     st.runs,
			Progress: progress(st),
		})
		emit(s, st, doc)
	}
}

// figImplicit renders the handle-free ablation (not a paper figure;
// see DESIGN.md §12): the same zero-alloc SEC configuration (adaptive
// fast path, node + batch recycling) measured three ways over a short
// contention ladder -
//
//	SEC_handle   - per-worker explicit handles, the baseline every
//	               other figure uses
//	SEC_implicit - the handle-free API over the per-P session cache
//	SEC_spill    - the handle-free API with affinity off (spill-pool
//	               borrows only, the pre-affinity implementation)
//
// Each arm is its own sweep/series so the secbench/v7 per-series
// implicit flag stays honest in the JSON export. The ladder is the
// contention ladder of BenchmarkImplicitVsHandle (solo, small group,
// machine-wide, oversubscribed) rather than a paper machine ladder:
// the claim under test is per-rung overhead of the session lookup,
// not scaling shape.
func figImplicit(title string, st settings, doc *harness.BenchDoc) {
	ladder := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		ladder = append(ladder, p)
	}
	if over := 4 * runtime.GOMAXPROCS(0); over > ladder[len(ladder)-1] {
		ladder = append(ladder, over)
	}
	zeroAlloc := []stack.Option{
		stack.WithAggregators(2),
		stack.WithAdaptive(true),
		stack.WithBatchRecycling(true),
		stack.WithRecycling(),
	}
	arms := []struct {
		col      string
		implicit bool
		opts     []stack.Option
	}{
		{"SEC_handle", false, zeroAlloc},
		{"SEC_implicit", true, zeroAlloc},
		{"SEC_spill", true, append(append([]stack.Option{}, zeroAlloc...), stack.WithImplicitSessions(false))},
	}
	for _, arm := range arms {
		factory := harness.FactoryFor(stack.SEC, arm.opts...)
		s := harness.Sweep(fmt.Sprintf("%s %s, %s", title, arm.col, harness.Update100.Name), harness.SweepOptions{
			Columns:  []string{arm.col},
			Factory:  func(string) harness.Factory { return factory },
			Ladder:   ladder,
			Workload: harness.Update100,
			Duration: st.duration,
			Prefill:  st.prefill,
			Runs:     st.runs,
			Implicit: arm.implicit,
			Progress: progress(st),
		})
		emit(s, st, doc)
	}
}

// figElastic renders the elastic-pool ablation: the static default
// shard count against the same pool with the elastic controller
// enabled, over the implicit ablation's contention ladder (solo, small
// group, machine-wide, oversubscribed) under 100% updates. The elastic
// arm additionally emits one degree row per rung whose live_shards
// gauge (the widest window the rung reached) and grow/shrink/migration
// counters show the controller moving in both directions: shrunk to
// one shard at degree 1, widened under the saturating rungs.
func figElastic(title string, st settings, doc *harness.BenchDoc) {
	ladder := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		ladder = append(ladder, p)
	}
	if over := 4 * runtime.GOMAXPROCS(0); over > ladder[len(ladder)-1] {
		ladder = append(ladder, over)
	}
	// Rungs past the live window's session budget (16 sessions per
	// live shard), so the load-gauge grow signal fires organically
	// even on hosts too small for steal-miss pressure: 24 sessions
	// carry one live shard to two, 40 carry two to three.
	for _, over := range []int{24, 40} {
		if over > ladder[len(ladder)-1] {
			ladder = append(ladder, over)
		}
	}
	arms := []struct {
		col  string
		opts []pool.Option
	}{
		{"pool_static", nil},
		// A short controller period relative to the measurement window,
		// so the trajectory is visible even under -quick runs.
		{"pool_elastic", []pool.Option{pool.WithElasticShards(true), pool.WithElasticPeriod(512)}},
	}
	var rows []harness.DegreeRow
	for _, arm := range arms {
		s := harness.NewSeries(fmt.Sprintf("%s %s, %s", title, arm.col, harness.Update100.Name), []string{arm.col})
		for _, threads := range ladder {
			cfg := harness.Config{
				Label:    arm.col,
				Threads:  threads,
				Duration: st.duration,
				Prefill:  st.prefill,
				Workload: harness.Update100,
				Runs:     st.runs,
			}
			r := harness.RunPoolOpts(cfg, arm.opts...)
			s.Add(arm.col, r)
			if pr := progress(st); pr != nil {
				pr(fmt.Sprintf("%s %s threads=%d: %.2f Mops/s live=%d", title, arm.col, threads, r.Mops, r.Degrees.LiveShards))
			}
			if len(arm.opts) > 0 {
				rows = append(rows, harness.DegreeRowFrom(fmt.Sprintf("t=%d", threads), r.Degrees))
			}
		}
		emit(s, st, doc)
	}
	tbl := "Elastic pool trajectory (elastic arm, per rung)"
	fmt.Println(harness.DegreeTable(tbl, rows))
	if doc != nil {
		doc.AddTable(tbl, "pool", rows)
	}
}

// figQueue renders the queue head-to-head (not a paper figure; see
// DESIGN.md §15): the bounded SEC queue - adaptive fast path and batch
// recycling on, driven through the channel-shaped TryEnqueue /
// TryDequeue forms - against a buffered Go channel of the same
// capacity driven through select/default, over the implicit ablation's
// contention ladder (solo, small group, machine-wide, oversubscribed)
// under the update mixes. The queue arm additionally emits one degree
// row per 100%-update rung, showing how much batching the combiners
// see at each degree; the chan arm has no internals to report.
func figQueue(title string, st settings, doc *harness.BenchDoc) {
	ladder := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		ladder = append(ladder, p)
	}
	if over := 4 * runtime.GOMAXPROCS(0); over > ladder[len(ladder)-1] {
		ladder = append(ladder, over)
	}
	arms := []struct {
		col string
		run func(cfg harness.Config) harness.Result
	}{
		{"sec_queue", harness.RunQueue},
		{"chan", harness.RunChan},
	}
	var rows []harness.DegreeRow
	for _, wl := range harness.UpdateWorkloads() {
		for _, arm := range arms {
			s := harness.NewSeries(fmt.Sprintf("%s %s, %s", title, arm.col, wl.Name), []string{arm.col})
			for _, threads := range ladder {
				cfg := harness.Config{
					Label:    arm.col,
					Threads:  threads,
					Duration: st.duration,
					Prefill:  st.prefill,
					Workload: wl,
					Runs:     st.runs,
				}
				r := arm.run(cfg)
				s.Add(arm.col, r)
				if pr := progress(st); pr != nil {
					pr(fmt.Sprintf("%s %s %s threads=%d: %.2f Mops/s", title, arm.col, wl.Name, threads, r.Mops))
				}
				if arm.col == "sec_queue" && wl.Name == harness.Update100.Name {
					rows = append(rows, harness.DegreeRowFrom(fmt.Sprintf("t=%d", threads), r.Degrees))
				}
			}
			emit(s, st, doc)
		}
	}
	tbl := "Queue degrees (sec_queue arm, 100% updates, per rung)"
	fmt.Println(harness.DegreeTable(tbl, rows))
	if doc != nil {
		doc.AddTable(tbl, "queue", rows)
	}
}

// runTable renders a Table 1/2/3-style degree table set - batching
// degree, %elimination, %combining and %occupancy per update mix,
// averaged across the machine's thread ladder as the paper does - for
// each of the batch-protocol structures: the SEC stack (the paper's
// Tables 1-3), the deque, the funnel and the queue (whose degree
// counters the shared agg engine records identically), and the pool
// (whose rows add the put-steal hit/miss and spin-inheritance
// counters).
func runTable(n int, st settings) {
	var m harness.Machine
	switch n {
	case 1:
		m = harness.Emerald
	case 2:
		m = harness.IceLake
	case 3:
		m = harness.Sapphire
	default:
		fmt.Fprintf(os.Stderr, "unknown table %d\n", n)
		os.Exit(2)
	}
	doc := newDoc(st, fmt.Sprintf("table%d", n))

	structures := []struct {
		name string
		run  func(cfg harness.Config) harness.Result
	}{
		{"stack", func(cfg harness.Config) harness.Result {
			return harness.Run(cfg, harness.FactoryFor(stack.SEC, stack.WithAggregators(2), stack.WithMetrics()))
		}},
		{"deque", harness.RunDeque},
		{"funnel", harness.RunFunnel},
		{"pool", harness.RunPool},
		{"queue", harness.RunQueue},
	}
	for _, sc := range structures {
		rows := make([]harness.DegreeRow, 0, 3)
		for _, wl := range harness.UpdateWorkloads() {
			var agg harness.Result
			for _, threads := range m.Ladder {
				r := sc.run(harness.Config{
					Label:    sc.name,
					Threads:  threads,
					Duration: st.duration,
					Prefill:  st.prefill,
					Workload: wl,
					Runs:     st.runs,
				})
				agg.Degrees.Accumulate(r.Degrees)
				if st.verbose {
					fmt.Fprintf(os.Stderr, "  table %d %s %s threads=%d: degree=%.1f elim=%.0f%% occ=%.0f%%\n",
						n, sc.name, wl.Name, threads, r.Degrees.BatchingDegree(),
						r.Degrees.EliminationPct(), r.Degrees.OccupancyPct())
				}
			}
			rows = append(rows, harness.DegreeRowFrom(wl.Name, agg.Degrees))
		}
		title := fmt.Sprintf("Table %d (%s): %s degrees", n, m.Name, sc.name)
		fmt.Println(harness.DegreeTable(title, rows))
		if doc != nil {
			doc.AddTable(title, sc.name, rows)
		}
	}
	writeDoc(st, doc)
}
