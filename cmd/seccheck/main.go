// Command seccheck stress-checks the concurrent stacks and the bounded
// queue: many rounds of small concurrent histories verified with the
// exhaustive linearizability checkers, plus a large
// element-conservation run per structure.
//
// Usage:
//
//	seccheck                  # check every stack algorithm and the queue briefly
//	seccheck -alg SEC -rounds 500 -threads 6
//	seccheck -alg queue       # the FIFO checks alone
//	seccheck -list            # print the algorithm registry and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"secstack/internal/lincheck"
	"secstack/internal/xrand"
	"secstack/queue"
	"secstack/stack"
)

func main() {
	var (
		algFlag = flag.String("alg", "", "algorithm to check (default: all)")
		rounds  = flag.Int("rounds", 100, "linearizability rounds per algorithm")
		threads = flag.Int("threads", 4, "concurrent threads per round")
		opsPer  = flag.Int("ops", 4, "operations per thread per round (keep small: the check is exponential)")
		consOps = flag.Int("conservation-ops", 200000, "per-thread operations for the conservation pass")
		list    = flag.Bool("list", false, "list the checkable algorithm registry and exit")
	)
	flag.Parse()

	// The registry printed here is the same stack.Algorithms() slice
	// that secbench -list, secd -list and the secd handshake banner
	// report, so every tool agrees on the servable set.
	if *list {
		for _, a := range stack.Algorithms() {
			fmt.Printf("%-4s %s\n", a, stack.Describe(a))
		}
		return
	}

	// "queue" is not a stack algorithm but shares the checker harness:
	// -alg queue runs the FIFO checks alone; no -alg runs them after
	// the stack registry.
	algs := stack.Algorithms()
	checkQ := true
	if *algFlag == "queue" {
		algs = nil
	} else if *algFlag != "" {
		algs = []stack.Algorithm{stack.Algorithm(*algFlag)}
		checkQ = false
		if _, err := stack.New[int64](algs[0]); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
	}

	failed := false
	for _, alg := range algs {
		fmt.Printf("%-4s linearizability: %d rounds x %d threads x %d ops ... ",
			alg, *rounds, *threads, *opsPer)
		if n := checkLinearizability(alg, *rounds, *threads, *opsPer); n > 0 {
			fmt.Printf("FAILED (%d non-linearizable histories)\n", n)
			failed = true
		} else {
			fmt.Println("ok")
		}

		fmt.Printf("%-4s conservation: %d threads x %d ops ... ", alg, *threads, *consOps)
		if err := checkConservation(alg, *threads, *consOps); err != nil {
			fmt.Printf("FAILED (%v)\n", err)
			failed = true
		} else {
			fmt.Println("ok")
		}
	}
	if checkQ {
		fmt.Printf("%-5s linearizability: %d rounds x %d threads x %d ops ... ",
			"queue", *rounds, *threads, *opsPer)
		if n := checkQueueLinearizability(*rounds, *threads, *opsPer); n > 0 {
			fmt.Printf("FAILED (%d non-linearizable histories)\n", n)
			failed = true
		} else {
			fmt.Println("ok")
		}
		fmt.Printf("%-5s conservation: %d threads x %d ops ... ", "queue", *threads, *consOps)
		if err := checkQueueConservation(*threads, *consOps); err != nil {
			fmt.Printf("FAILED (%v)\n", err)
			failed = true
		} else {
			fmt.Println("ok")
		}
	}
	if failed {
		os.Exit(1)
	}
}

// qCheckCapacity keeps the FIFO rounds' queues small enough that both
// full and empty observations appear in the histories.
const qCheckCapacity = 3

// checkQueueLinearizability runs `rounds` small concurrent histories
// on the bounded queue - full protocol, Try* solo CASes and the
// adaptive fast path mixed - and returns the number that fail the
// exhaustive FIFO check.
func checkQueueLinearizability(rounds, threads, opsPer int) int {
	bad := 0
	for r := 0; r < rounds; r++ {
		q := queue.New[int64](queue.WithCapacity(qCheckCapacity),
			queue.WithAdaptive(true), queue.WithBatchRecycling(true))
		rec := lincheck.NewQRecorder(threads)
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				h := q.Register()
				defer h.Close()
				rng := xrand.New(uint64(r)*1_000_003 + uint64(t)*7919)
				base := int64(t+1) << 32
				for i := 0; i < opsPer; i++ {
					switch rng.Intn(4) {
					case 0:
						v := base + int64(i)
						inv := rec.Begin()
						ok := h.Enqueue(v)
						rec.RecordEnqueue(t, v, ok, inv)
					case 1:
						v := base + int64(i) + (1 << 24)
						inv := rec.Begin()
						ok := h.TryEnqueue(v)
						rec.RecordEnqueue(t, v, ok, inv)
					case 2:
						inv := rec.Begin()
						v, ok := h.Dequeue()
						rec.RecordDequeue(t, v, ok, inv)
					default:
						inv := rec.Begin()
						v, ok := h.TryDequeue()
						rec.RecordDequeue(t, v, ok, inv)
					}
				}
			}(t)
		}
		wg.Wait()
		if h := rec.History(); !lincheck.CheckQueue(h, qCheckCapacity) {
			bad++
			fmt.Fprintf(os.Stderr, "\n  round %d not linearizable:\n", r)
			for _, op := range h {
				fmt.Fprintf(os.Stderr, "    %s\n", op)
			}
		}
	}
	return bad
}

// checkQueueConservation enqueues unique values from every thread -
// counting only admitted enqueues, since the bound rejects some - and
// verifies that drain(dequeued) == admitted as multisets.
func checkQueueConservation(threads, opsPer int) error {
	q := queue.New[int64](queue.WithAdaptive(true), queue.WithBatchRecycling(true))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		dequeued = make(map[int64]int)
		admitted = make(map[int64]bool)
	)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := q.Register()
			defer h.Close()
			rng := xrand.New(uint64(t) + 99)
			localDeq := make(map[int64]int)
			localAdm := make(map[int64]bool)
			next := int64(t) << 32
			for i := 0; i < opsPer; i++ {
				if rng.Intn(2) == 0 {
					next++
					if h.TryEnqueue(next) {
						localAdm[next] = true
					}
				} else if v, ok := h.TryDequeue(); ok {
					localDeq[v]++
				}
			}
			mu.Lock()
			for v, c := range localDeq {
				dequeued[v] += c
			}
			for v := range localAdm {
				admitted[v] = true
			}
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	h := q.Register()
	defer h.Close()
	for {
		v, ok := h.Dequeue()
		if !ok {
			break
		}
		dequeued[v]++
	}
	for v, c := range dequeued {
		if c != 1 {
			return fmt.Errorf("value %d dequeued %d times", v, c)
		}
		if !admitted[v] {
			return fmt.Errorf("value %d dequeued but never admitted", v)
		}
		delete(admitted, v)
	}
	if len(admitted) != 0 {
		return fmt.Errorf("%d admitted values lost", len(admitted))
	}
	return nil
}

// checkLinearizability runs `rounds` small concurrent histories and
// returns the number that fail the exhaustive stack check.
func checkLinearizability(alg stack.Algorithm, rounds, threads, opsPer int) int {
	bad := 0
	for r := 0; r < rounds; r++ {
		s, _ := stack.New[int64](alg, stack.WithAggregators(2))
		rec := lincheck.NewRecorder(threads)
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				h := s.Register()
				defer h.Close()
				rng := xrand.New(uint64(r)*1_000_003 + uint64(t)*7919)
				base := int64(t+1) << 32
				for i := 0; i < opsPer; i++ {
					switch rng.Intn(4) {
					case 0, 1:
						v := base + int64(i)
						inv := rec.Begin()
						h.Push(v)
						rec.RecordPush(t, v, inv)
					case 2:
						inv := rec.Begin()
						v, ok := h.Pop()
						rec.RecordPop(t, v, ok, inv)
					default:
						inv := rec.Begin()
						v, ok := h.Peek()
						rec.RecordPeek(t, v, ok, inv)
					}
				}
			}(t)
		}
		wg.Wait()
		if h := rec.History(); !lincheck.CheckStack(h) {
			bad++
			fmt.Fprintf(os.Stderr, "\n  round %d not linearizable:\n", r)
			for _, op := range h {
				fmt.Fprintf(os.Stderr, "    %s\n", op)
			}
		}
	}
	return bad
}

// checkConservation pushes unique values from every thread and verifies
// that drain(popped) == pushed as multisets.
func checkConservation(alg stack.Algorithm, threads, opsPer int) error {
	s, _ := stack.New[int64](alg, stack.WithAggregators(2))
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		popped = make(map[int64]int)
		pushed = make(map[int64]bool)
	)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := s.Register()
			defer h.Close()
			rng := xrand.New(uint64(t) + 99)
			localPop := make(map[int64]int)
			localPush := make(map[int64]bool)
			next := int64(t) << 32
			for i := 0; i < opsPer; i++ {
				if rng.Intn(2) == 0 {
					next++
					h.Push(next)
					localPush[next] = true
				} else if v, ok := h.Pop(); ok {
					localPop[v]++
				}
			}
			mu.Lock()
			for v, c := range localPop {
				popped[v] += c
			}
			for v := range localPush {
				pushed[v] = true
			}
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	h := s.Register()
	defer h.Close()
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		popped[v]++
	}
	for v, c := range popped {
		if c != 1 {
			return fmt.Errorf("value %d popped %d times", v, c)
		}
		if !pushed[v] {
			return fmt.Errorf("value %d popped but never pushed", v)
		}
		delete(pushed, v)
	}
	if len(pushed) != 0 {
		return fmt.Errorf("%d pushed values lost", len(pushed))
	}
	return nil
}
