// Command secd serves the repository's engines - a stack, a pool and a
// funnel - over TCP with the internal/wire framing, turning network
// fan-in into engine batches (DESIGN.md §11). Each accepted connection
// maps onto one engine session via TryRegister, so -maxconns bounds
// live connections and over-capacity handshakes are refused with a
// protocol-level busy reply instead of a crash; disconnects recycle
// their session's handle slots. SIGINT/SIGTERM drains gracefully:
// in-flight operations finish, clients get a shutdown goodbye, and the
// process exits once every session is gone.
//
// Usage:
//
//	secd                                  # serve SEC on :7425
//	secd -addr :9000 -maxconns 1024       # bigger session budget
//	secd -alg TRB -adaptive=false         # serve a baseline, engines stock
//
// Drive it with cmd/secload, or any client speaking internal/wire.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"secstack/internal/secd"
	"secstack/internal/wire"
	"secstack/stack"
)

func main() {
	var (
		addr     = flag.String("addr", ":7425", "TCP listen address")
		alg      = flag.String("alg", string(stack.SEC), "served stack algorithm (see -list)")
		maxconns = flag.Int("maxconns", 256, "live-connection bound (the engines' MaxThreads)")
		aggs     = flag.Int("aggregators", 2, "stack/funnel aggregator count")
		shards   = flag.Int("shards", 4, "pool shard count (the ceiling under -elastic)")
		adaptive = flag.Bool("adaptive", true, "enable engine contention adaptivity and batch recycling")
		elastic  = flag.Bool("elastic", false, "enable the pool's elastic shard controller, fed by the live-session gauge")
		drain    = flag.Duration("drain", 5*time.Second, "graceful-drain budget on SIGTERM")
		readIdle = flag.Duration("read-idle", 2*time.Minute, "evict a session idle past this budget (0 disables)")
		wstall   = flag.Duration("write-stall", 10*time.Second, "evict a session whose reply flush stalls past this budget (0 disables)")
		list     = flag.Bool("list", false, "list the servable algorithm registry and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range stack.Algorithms() {
			fmt.Printf("%-4s %s\n", a, stack.Describe(a))
		}
		return
	}

	cfg := secd.Config{
		Algorithm:   stack.Algorithm(*alg),
		MaxSessions: *maxconns,
		Aggregators: *aggs,
		Shards:      *shards,
		Adaptive:    *adaptive,
		Elastic:     *elastic,
		ReadIdle:    *readIdle,
		WriteStall:  *wstall,
	}
	// On the Config, zero means "default" and negative disables; the
	// flags' documented contract is that 0 disables.
	if *readIdle == 0 {
		cfg.ReadIdle = -1
	}
	if *wstall == 0 {
		cfg.WriteStall = -1
	}
	srv, err := secd.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secd: %v\n", err)
		os.Exit(2)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(*addr) }()

	// Wait for the listener so the banner reports the resolved port
	// (":0" in tests and scripts picks a free one).
	for srv.Addr() == nil {
		select {
		case err := <-serveErr:
			fmt.Fprintf(os.Stderr, "secd: %v\n", err)
			os.Exit(1)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	fmt.Printf("secd: listening on %s\n", srv.Addr())
	fmt.Printf("secd: %s\n", secd.Banner(cfg))

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "secd: %v\n", err)
		os.Exit(1)
	case sig := <-sigs:
		fmt.Printf("secd: %v, draining (budget %v)\n", sig, *drain)
		if err := srv.Shutdown(*drain); err != nil {
			fmt.Fprintf(os.Stderr, "secd: %v\n", err)
			os.Exit(1)
		}
		<-serveErr // Serve returns nil after a graceful drain
	}

	m := srv.Metrics()
	snap := m.Snapshot()
	fmt.Printf("secd: drained; peak sessions %d, rejected %d, ops served %d, evicted %d, panics recovered %d, retries observed %d\n",
		snap.PeakSessions, snap.Rejected, snap.TotalOps, snap.Evictions, snap.PanicsRecovered, snap.RetriesObserved)
	for op := wire.Op(1); op < wire.NumOps; op++ {
		st := m.Op(int(op))
		if st.Count == 0 {
			continue
		}
		fmt.Printf("secd:   %-14s %10d ops  p50 %-10v p99 %v\n", op, st.Count, st.P50, st.P99)
	}
	if live := m.Sessions(); live != 0 {
		fmt.Fprintf(os.Stderr, "secd: %d sessions still live after drain\n", live)
		os.Exit(1)
	}
}
