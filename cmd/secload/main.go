// Command secload drives a live secd server with configurable
// connection fan-in and op mixes, and reports served throughput with
// client-observed p50/p99 latency - the load-generator half of the
// served-throughput experiments (EXPERIMENTS.md "Served throughput").
//
// Usage:
//
//	secload -conns 64 -duration 2s                 # one rung, mixed ops
//	secload -conns 8,64,256 -duration 2s -mix pool # a connection ladder
//	secload -json out/                             # also write BENCH_served.json
//	                                               # (schema secbench/v8, same
//	                                               # point layout as secbench)
//	secload -chaos -retries 8 -expect-idle         # route the load through an
//	                                               # in-process fault-injection
//	                                               # proxy (internal/chaosproxy)
//
// Every connection is an internal/secclient client: it performs the
// wire handshake (so over-capacity rungs surface as busy counts, not
// errors), then issues one operation at a time until the window
// closes, reconnecting and retrying per the -retries budget when the
// transport fails under it. Throughput counts acknowledged replies;
// protocol errors - unexpected statuses, broken frames - and
// operations lost with the retry budget exhausted make secload exit
// nonzero, which is what the CI smokes assert. With -expect-idle,
// secload verifies after the rungs that the server's live-session
// gauge has drained back to just the checking connection, i.e.
// connection churn (chaotic or not) leaked no handle slots.
//
// -chaos interposes a chaosproxy between the load and -addr: per
// relayed chunk it can drop the connection, truncate a frame
// mid-stream, or delay delivery (-chaos-drop/-chaos-trunc/
// -chaos-delay tune the per-chunk probabilities). The retry machinery
// must absorb all of it: the run fails unless every operation is
// eventually acknowledged (lost == 0) with zero protocol errors. The
// idle check always dials the server directly, after the proxy is
// closed, so severed relays cannot mask a leak.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"secstack/internal/chaosproxy"
	"secstack/internal/harness"
	"secstack/internal/metrics"
	"secstack/internal/secclient"
	"secstack/internal/wire"
	"secstack/internal/xrand"
)

// mixEntry weights one opcode in a workload mix.
type mixEntry struct {
	op     wire.Op
	weight int // percent
}

// mixes are the served workloads; weights sum to 100. "mixed" touches
// all three engines the way a real front-end would; the single-engine
// mixes isolate one instantiation for the tables.
var mixes = map[string][]mixEntry{
	"stack": {
		{wire.OpStackPush, 45}, {wire.OpStackPop, 45}, {wire.OpStackPeek, 10},
	},
	"pool": {
		{wire.OpPoolPut, 50}, {wire.OpPoolGet, 50},
	},
	"funnel": {
		{wire.OpFunnelAdd, 60}, {wire.OpFunnelTryAdd, 30}, {wire.OpFunnelLoad, 10},
	},
	"mixed": {
		{wire.OpStackPush, 20}, {wire.OpStackPop, 20},
		{wire.OpPoolPut, 15}, {wire.OpPoolGet, 15},
		{wire.OpFunnelAdd, 15}, {wire.OpFunnelTryAdd, 10}, {wire.OpFunnelLoad, 5},
	},
}

func mixNames() []string {
	names := make([]string, 0, len(mixes))
	for n := range mixes {
		names = append(names, n)
	}
	return names
}

// pick maps a roll in [0,100) onto the mix.
func pick(mix []mixEntry, roll int) wire.Op {
	for _, e := range mix {
		if roll < e.weight {
			return e.op
		}
		roll -= e.weight
	}
	return mix[len(mix)-1].op
}

// acceptable reports whether status is a valid protocol outcome for
// op; anything else is a protocol error.
func acceptable(op wire.Op, status wire.Status) bool {
	switch status {
	case wire.StatusOK:
		return true
	case wire.StatusEmpty:
		return op == wire.OpStackPop || op == wire.OpStackPeek || op == wire.OpPoolGet
	case wire.StatusContended:
		return op == wire.OpFunnelTryAdd
	}
	return false
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7425", "secd server address")
		connsArg = flag.String("conns", "64", "comma-separated connection-count ladder, e.g. 8,64,256")
		duration = flag.Duration("duration", 2*time.Second, "measurement window per rung")
		mixName  = flag.String("mix", "mixed", fmt.Sprintf("op mix: one of %v", mixNames()))
		label    = flag.String("label", "", "series label (default: the mix name)")
		jsonDir  = flag.String("json", "", "directory to write BENCH_served.json into")
		idle     = flag.Bool("expect-idle", false, "after the rungs, verify the server's session gauge drained to this client alone")
		seed     = flag.Uint64("seed", 0x5ecd, "base RNG seed for the op streams")
		retries  = flag.Int("retries", 3, "per-op retry budget after the first attempt")
		reqTO    = flag.Duration("request-timeout", 5*time.Second, "per-attempt request deadline")

		chaos      = flag.Bool("chaos", false, "route the load through an in-process fault-injection proxy")
		chaosDrop  = flag.Float64("chaos-drop", 0.01, "with -chaos: per-chunk connection-drop probability")
		chaosTrunc = flag.Float64("chaos-trunc", 0.005, "with -chaos: per-chunk mid-frame truncation probability")
		chaosDelay = flag.Float64("chaos-delay", 0.05, "with -chaos: per-chunk delivery-delay probability")
	)
	flag.Parse()

	mix, ok := mixes[*mixName]
	if !ok {
		fmt.Fprintf(os.Stderr, "secload: unknown mix %q (known: %v)\n", *mixName, mixNames())
		os.Exit(2)
	}
	if *label == "" {
		*label = *mixName
	}
	ladder, err := parseLadder(*connsArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secload: %v\n", err)
		os.Exit(2)
	}

	// In chaos mode every rung dials the proxy; the idle check at the
	// end still dials the server directly.
	dialAddr := *addr
	var proxy *chaosproxy.Proxy
	if *chaos {
		proxy, err = chaosproxy.Listen("127.0.0.1:0", chaosproxy.Config{
			Target:    *addr,
			DropProb:  *chaosDrop,
			TruncProb: *chaosTrunc,
			DelayProb: *chaosDelay,
			Seed:      *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "secload: chaos proxy: %v\n", err)
			os.Exit(1)
		}
		dialAddr = proxy.Addr()
		fmt.Printf("# chaos proxy on %s -> %s (drop %.3f, trunc %.3f, delay %.3f)\n",
			dialAddr, *addr, *chaosDrop, *chaosTrunc, *chaosDelay)
	}

	rcfg := rungConfig{
		addr:    dialAddr,
		window:  *duration,
		mix:     mix,
		seed:    *seed,
		retries: *retries,
		reqTO:   *reqTO,
	}
	points := make([]harness.ServedPoint, 0, len(ladder))
	for _, conns := range ladder {
		p := runRung(rcfg, conns)
		points = append(points, p)
		fmt.Printf("# %d conns: %.0f ops/s, p50 %v, p99 %v, %d errors, %d busy, %d retried, %d lost\n",
			conns, p.OpsPerSec(), p.P50, p.P99, p.Errors, p.Busy, p.Retried, p.Lost)
	}

	if proxy != nil {
		st := proxy.Stats()
		fmt.Printf("# chaos injected: %d conns relayed, %d drops, %d truncations, %d delays\n",
			st.Conns, st.Drops, st.Truncates, st.Delays)
		// Sever every surviving relay before the idle check so the only
		// session left can be the checker's direct connection.
		proxy.Close()
	}

	fmt.Println()
	title := fmt.Sprintf("Served throughput (%s mix, %v windows) against %s", *mixName, *duration, *addr)
	if *chaos {
		title += " under chaos"
	}
	harness.WriteServedTable(os.Stdout, title, points)

	if *jsonDir != "" {
		if err := writeJSON(*jsonDir, title, *label, *mixName, points); err != nil {
			fmt.Fprintf(os.Stderr, "secload: json: %v\n", err)
			os.Exit(1)
		}
	}

	exit := 0
	var totalOps, totalErrs, totalLost int64
	for _, p := range points {
		totalOps += p.Ops
		totalErrs += p.Errors
		totalLost += p.Lost
	}
	if totalErrs > 0 {
		fmt.Fprintf(os.Stderr, "secload: %d protocol errors\n", totalErrs)
		exit = 1
	}
	if totalLost > 0 {
		fmt.Fprintf(os.Stderr, "secload: %d operations lost with the retry budget exhausted\n", totalLost)
		exit = 1
	}
	if totalOps == 0 {
		fmt.Fprintln(os.Stderr, "secload: no operations completed")
		exit = 1
	}
	if *idle {
		if err := expectIdle(*addr, *reqTO); err != nil {
			fmt.Fprintf(os.Stderr, "secload: %v\n", err)
			exit = 1
		} else {
			fmt.Println("# server session gauge drained to this client alone: no leaked handle slots")
		}
	}
	os.Exit(exit)
}

// parseLadder parses "8,64,256" into a connection ladder.
func parseLadder(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -conns entry %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

// rungConfig is what every rung shares.
type rungConfig struct {
	addr    string
	window  time.Duration
	mix     []mixEntry
	seed    uint64
	retries int
	reqTO   time.Duration
}

// clientConfig derives worker i's secclient config.
func (rc rungConfig) clientConfig(i int) secclient.Config {
	return secclient.Config{
		Addr:           rc.addr,
		RequestTimeout: rc.reqTO,
		Retries:        rc.retries,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     50 * time.Millisecond,
		Seed:           rc.seed + uint64(i)*0x9e37 + 1,
	}
}

// dialWorker connects worker i, retrying transport failures (a chaos
// proxy can sever the handshake itself) within the same budget ops
// get. Busy is not retried: backpressure is the protocol working.
func dialWorker(rc rungConfig, i int) (*secclient.Client, bool, error) {
	var lastErr error
	for attempt := 0; attempt <= rc.retries; attempt++ {
		c, err := secclient.Dial(rc.clientConfig(i))
		if err == nil {
			return c, false, nil
		}
		if errors.Is(err, secclient.ErrBusy) {
			return nil, true, nil
		}
		lastErr = err
		time.Sleep(time.Duration(attempt+1) * 2 * time.Millisecond)
	}
	return nil, false, lastErr
}

// runRung drives one connection-count rung for the window and returns
// its served point.
func runRung(rc rungConfig, conns int) harness.ServedPoint {
	var (
		ops, errs, busy, retried, lost atomic.Int64
		hist                           metrics.LatencyHist
		wg                             sync.WaitGroup
		gate                           = make(chan struct{})
	)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, isBusy, err := dialWorker(rc, i)
			if isBusy {
				// Backpressure is the protocol working as specified, not
				// an error; the rung just runs with fewer live sessions.
				busy.Add(1)
				return
			}
			if err != nil {
				errs.Add(1)
				return
			}
			defer func() {
				st := c.Stats()
				retried.Add(st.Retries)
				lost.Add(st.Lost)
				c.Close()
			}()
			rng := xrand.New(rc.seed + uint64(i)*7919)
			var local metrics.LatencyHist
			<-gate
			deadline := time.Now().Add(rc.window)
			for time.Now().Before(deadline) {
				op := pick(rc.mix, rng.Intn(100))
				start := time.Now()
				rep, err := c.Do(op, int64(rng.Intn(1000)))
				if errors.Is(err, secclient.ErrLost) {
					// Abandoned unacknowledged; tallied via c.Stats().Lost.
					continue
				}
				if err != nil {
					errs.Add(1)
					return
				}
				local.Record(time.Since(start))
				if !acceptable(op, rep.Status) {
					errs.Add(1)
					return
				}
				ops.Add(1)
			}
			hist.Merge(&local)
		}(i)
	}
	close(gate)
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < rc.window {
		elapsed = rc.window
	}
	p := harness.ServedPointFrom(conns, ops.Load(), errs.Load(), busy.Load(), elapsed, &hist)
	p.Retried = retried.Load()
	p.Lost = lost.Load()
	return p
}

// expectIdle dials one checking connection - always directly to the
// server, never through a chaos proxy - and polls the session gauge
// until it reads 1 (the checker itself), failing if the load
// connections' handle slots did not all recycle.
func expectIdle(addr string, reqTO time.Duration) error {
	c, err := secclient.Dial(secclient.Config{Addr: addr, RequestTimeout: reqTO, Retries: 2})
	if err != nil {
		return fmt.Errorf("idle check dial: %v", err)
	}
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	last := int64(-1)
	for time.Now().Before(deadline) {
		rep, err := c.Do(wire.OpStats, 0)
		if err != nil || rep.Status != wire.StatusOK {
			return fmt.Errorf("idle check stats: %v %v", rep.Status, err)
		}
		if last = rep.Value; last == 1 {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("idle check: %d sessions still live (leaked handle slots?)", last)
}

// writeJSON emits the ladder as BENCH_served.json with the same point
// schema secbench writes (secbench/v8: served points carry retried
// and lost alongside the latency quantiles).
func writeJSON(dir, title, label, workload string, pts []harness.ServedPoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	doc := harness.NewBenchDoc("served")
	doc.AddServedSeries(title, label, workload, pts)
	f, err := os.Create(filepath.Join(dir, "BENCH_served.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	return doc.WriteJSON(f)
}
