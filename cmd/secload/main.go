// Command secload drives a live secd server with configurable
// connection fan-in and op mixes, and reports served throughput with
// client-observed p50/p99 latency - the load-generator half of the
// served-throughput experiments (EXPERIMENTS.md "Served throughput").
//
// Usage:
//
//	secload -conns 64 -duration 2s                 # one rung, mixed ops
//	secload -conns 8,64,256 -duration 2s -mix pool # a connection ladder
//	secload -json out/                             # also write BENCH_served.json
//	                                               # (schema secbench/v7, same
//	                                               # point layout as secbench)
//
// Every connection performs the wire handshake (so over-capacity rungs
// surface as busy counts, not errors), then issues one operation at a
// time until the window closes. Throughput counts completed replies;
// protocol errors - unexpected statuses, broken frames - make secload
// exit nonzero, which is what the CI loopback smoke asserts. With
// -expect-idle, secload verifies after the rungs that the server's
// live-session gauge has drained back to just the checking connection,
// i.e. connection churn leaked no handle slots.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"secstack/internal/harness"
	"secstack/internal/metrics"
	"secstack/internal/wire"
	"secstack/internal/xrand"
)

// mixEntry weights one opcode in a workload mix.
type mixEntry struct {
	op     wire.Op
	weight int // percent
}

// mixes are the served workloads; weights sum to 100. "mixed" touches
// all three engines the way a real front-end would; the single-engine
// mixes isolate one instantiation for the tables.
var mixes = map[string][]mixEntry{
	"stack": {
		{wire.OpStackPush, 45}, {wire.OpStackPop, 45}, {wire.OpStackPeek, 10},
	},
	"pool": {
		{wire.OpPoolPut, 50}, {wire.OpPoolGet, 50},
	},
	"funnel": {
		{wire.OpFunnelAdd, 60}, {wire.OpFunnelTryAdd, 30}, {wire.OpFunnelLoad, 10},
	},
	"mixed": {
		{wire.OpStackPush, 20}, {wire.OpStackPop, 20},
		{wire.OpPoolPut, 15}, {wire.OpPoolGet, 15},
		{wire.OpFunnelAdd, 15}, {wire.OpFunnelTryAdd, 10}, {wire.OpFunnelLoad, 5},
	},
}

func mixNames() []string {
	names := make([]string, 0, len(mixes))
	for n := range mixes {
		names = append(names, n)
	}
	return names
}

// pick maps a roll in [0,100) onto the mix.
func pick(mix []mixEntry, roll int) wire.Op {
	for _, e := range mix {
		if roll < e.weight {
			return e.op
		}
		roll -= e.weight
	}
	return mix[len(mix)-1].op
}

// acceptable reports whether status is a valid protocol outcome for
// op; anything else is a protocol error.
func acceptable(op wire.Op, status wire.Status) bool {
	switch status {
	case wire.StatusOK:
		return true
	case wire.StatusEmpty:
		return op == wire.OpStackPop || op == wire.OpStackPeek || op == wire.OpPoolGet
	case wire.StatusContended:
		return op == wire.OpFunnelTryAdd
	}
	return false
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7425", "secd server address")
		connsArg = flag.String("conns", "64", "comma-separated connection-count ladder, e.g. 8,64,256")
		duration = flag.Duration("duration", 2*time.Second, "measurement window per rung")
		mixName  = flag.String("mix", "mixed", fmt.Sprintf("op mix: one of %v", mixNames()))
		label    = flag.String("label", "", "series label (default: the mix name)")
		jsonDir  = flag.String("json", "", "directory to write BENCH_served.json into")
		idle     = flag.Bool("expect-idle", false, "after the rungs, verify the server's session gauge drained to this client alone")
		seed     = flag.Uint64("seed", 0x5ecd, "base RNG seed for the op streams")
	)
	flag.Parse()

	mix, ok := mixes[*mixName]
	if !ok {
		fmt.Fprintf(os.Stderr, "secload: unknown mix %q (known: %v)\n", *mixName, mixNames())
		os.Exit(2)
	}
	if *label == "" {
		*label = *mixName
	}
	ladder, err := parseLadder(*connsArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secload: %v\n", err)
		os.Exit(2)
	}

	points := make([]harness.ServedPoint, 0, len(ladder))
	for _, conns := range ladder {
		p := runRung(*addr, conns, *duration, mix, *seed)
		points = append(points, p)
		fmt.Printf("# %d conns: %.0f ops/s, p50 %v, p99 %v, %d errors, %d busy\n",
			conns, p.OpsPerSec(), p.P50, p.P99, p.Errors, p.Busy)
	}

	fmt.Println()
	title := fmt.Sprintf("Served throughput (%s mix, %v windows) against %s", *mixName, *duration, *addr)
	harness.WriteServedTable(os.Stdout, title, points)

	if *jsonDir != "" {
		if err := writeJSON(*jsonDir, title, *label, *mixName, points); err != nil {
			fmt.Fprintf(os.Stderr, "secload: json: %v\n", err)
			os.Exit(1)
		}
	}

	exit := 0
	var totalOps, totalErrs int64
	for _, p := range points {
		totalOps += p.Ops
		totalErrs += p.Errors
	}
	if totalErrs > 0 {
		fmt.Fprintf(os.Stderr, "secload: %d protocol errors\n", totalErrs)
		exit = 1
	}
	if totalOps == 0 {
		fmt.Fprintln(os.Stderr, "secload: no operations completed")
		exit = 1
	}
	if *idle {
		if err := expectIdle(*addr); err != nil {
			fmt.Fprintf(os.Stderr, "secload: %v\n", err)
			exit = 1
		} else {
			fmt.Println("# server session gauge drained to this client alone: no leaked handle slots")
		}
	}
	os.Exit(exit)
}

// parseLadder parses "8,64,256" into a connection ladder.
func parseLadder(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -conns entry %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

// conn is one load connection after a successful handshake.
type conn struct {
	c  net.Conn
	br *bufio.Reader
}

// dial connects and performs the wire handshake. busy=true means the
// server refused the session with backpressure.
func dial(addr string) (cn *conn, busy bool, err error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, false, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if _, err := c.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpHello, Arg: wire.HelloArg()})); err != nil {
		c.Close()
		return nil, false, err
	}
	br := bufio.NewReader(c)
	rep, err := wire.ReadReply(br)
	if err != nil {
		c.Close()
		return nil, false, err
	}
	if rep.Status == wire.StatusBusy {
		c.Close()
		return nil, true, nil
	}
	if rep.Status != wire.StatusOK {
		c.Close()
		return nil, false, fmt.Errorf("handshake status %v", rep.Status)
	}
	return &conn{c: c, br: br}, false, nil
}

// runRung drives one connection-count rung for the window and returns
// its served point.
func runRung(addr string, conns int, window time.Duration, mix []mixEntry, seed uint64) harness.ServedPoint {
	var (
		ops, errs, busy atomic.Int64
		hist            metrics.LatencyHist
		wg              sync.WaitGroup
		gate            = make(chan struct{})
	)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cn, isBusy, err := dial(addr)
			if isBusy {
				// Backpressure is the protocol working as specified, not
				// an error; the rung just runs with fewer live sessions.
				busy.Add(1)
				return
			}
			if err != nil {
				errs.Add(1)
				return
			}
			defer cn.c.Close()
			rng := xrand.New(seed + uint64(i)*7919)
			var local metrics.LatencyHist
			var buf []byte
			<-gate
			deadline := time.Now().Add(window)
			for time.Now().Before(deadline) {
				op := pick(mix, rng.Intn(100))
				buf = wire.AppendRequest(buf[:0], wire.Request{Op: op, Arg: int64(rng.Intn(1000))})
				start := time.Now()
				if _, err := cn.c.Write(buf); err != nil {
					errs.Add(1)
					return
				}
				rep, err := wire.ReadReply(cn.br)
				if err != nil {
					errs.Add(1)
					return
				}
				local.Record(time.Since(start))
				if !acceptable(op, rep.Status) {
					errs.Add(1)
					return
				}
				ops.Add(1)
			}
			hist.Merge(&local)
		}(i)
	}
	close(gate)
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < window {
		elapsed = window
	}
	return harness.ServedPointFrom(conns, ops.Load(), errs.Load(), busy.Load(), elapsed, &hist)
}

// expectIdle dials one checking connection and polls the server's
// session gauge until it reads 1 (the checker itself), failing if the
// load connections' handle slots did not all recycle.
func expectIdle(addr string) error {
	cn, isBusy, err := dial(addr)
	if err != nil || isBusy {
		return fmt.Errorf("idle check dial: busy=%v err=%v", isBusy, err)
	}
	defer cn.c.Close()
	var buf []byte
	deadline := time.Now().Add(5 * time.Second)
	last := int64(-1)
	for time.Now().Before(deadline) {
		buf = wire.AppendRequest(buf[:0], wire.Request{Op: wire.OpStats})
		if _, err := cn.c.Write(buf); err != nil {
			return fmt.Errorf("idle check: %v", err)
		}
		rep, err := wire.ReadReply(cn.br)
		if err != nil || rep.Status != wire.StatusOK {
			return fmt.Errorf("idle check stats: %v %v", rep.Status, err)
		}
		if last = rep.Value; last == 1 {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("idle check: %d sessions still live (leaked handle slots?)", last)
}

// writeJSON emits the ladder as BENCH_served.json with the same point
// schema secbench writes (secbench/v7).
func writeJSON(dir, title, label, workload string, pts []harness.ServedPoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	doc := harness.NewBenchDoc("served")
	doc.AddServedSeries(title, label, workload, pts)
	f, err := os.Create(filepath.Join(dir, "BENCH_served.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	return doc.WriteJSON(f)
}
