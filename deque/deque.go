// Package deque applies SEC's sharded elimination and combining to a
// double-ended queue - the extension the paper repeatedly names as the
// natural next target for its techniques ("the elimination and
// combining techniques ... can be applied in other contexts, such as
// designing efficient concurrent deques").
//
// Each end of the deque runs the SEC batch protocol independently, as
// an aggregator of the shared internal/agg engine: operations on one
// end announce themselves with fetch&increment on the end's active
// batch, the first announcer freezes the batch after a batch-growing
// backoff, opposite operations with equal sequence numbers eliminate
// (a PushLeft and a PopLeft cancel exactly like a push/pop pair on a
// stack, and symmetrically on the right), and a single combiner per
// batch applies the survivors to the shared deque. The appliers run
// under a central mutex rather than a CAS-able top pointer - a deque
// has no single word that one CAS can move, so combining (batching
// many operations per lock acquisition) is exactly what makes the lock
// cheap.
//
// The engine's lifecycle (announce, freeze, combine, reclaim) and its
// optional adaptivity - the solo fast path (WithAdaptive, a TryLock
// apply when an end's recent batch degree is ~1), batch recycling
// (WithBatchRecycling) and the adaptive freezer backoff
// (WithAdaptiveSpin) - are documented in internal/agg and DESIGN.md
// §8-§10; the deque honours the same shared options as the other
// structures (see README.md for the matrix).
package deque

import (
	"errors"
	"fmt"
	"sync"

	"secstack/internal/agg"
	"secstack/internal/config"
	"secstack/internal/isession"
	"secstack/internal/metrics"
)

// ErrExhausted is returned by TryRegister when MaxThreads handles are
// live at the same time - the backpressure signal for callers that
// prefer refusing a session over crashing.
var ErrExhausted = errors.New("deque: more than MaxThreads handles live")

// Side selects a deque end.
type Side int

// The two ends; each is one aggregator of the engine.
const (
	Left Side = iota
	Right
)

// popResult is one pop's response, published by the combiner.
type popResult[T any] struct {
	v  T
	ok bool
}

// dqBatch and dqEngine name this package's engine instantiation: the
// announced record is the pushed value itself, and the per-batch
// payload is the pop combiner's result table.
type (
	dqBatch[T any]  = agg.Batch[T, []popResult[T]]
	dqEngine[T any] = agg.Engine[T, []popResult[T]]
)

// Deque is a blocking linearizable double-ended queue. Register hands
// out per-goroutine handles (the fast path for worker loops); the
// direct PushLeft/PushRight/PopLeft/PopRight methods transparently
// reuse the calling P's cached handle, so handle-free callers need no
// session management at all.
type Deque[T any] struct {
	mu    sync.Mutex
	items ring[T]

	eng   *dqEngine[T]
	cache *isession.Sessions[*Handle[T]]
}

// Option configures New; it is the shared option type of the whole
// repository, so the stack package's WithMaxThreads and WithFreezerSpin
// work here unchanged.
type Option = config.Option

// WithMaxThreads bounds concurrently live handles (default 256). Close
// recycles handle slots, so this is a concurrency bound, not a lifetime
// bound.
func WithMaxThreads(n int) Option { return config.WithMaxThreads(n) }

// WithFreezerSpin sets the freezer's batch-growing pre-freeze backoff
// in spin iterations (default 128; 0 disables). The backoff belongs to
// the shared internal/agg engine, not to a deque-private freezer: the
// first announcer of either operation type on an end wins the engine's
// freezer race, spins so more operations can announce into the batch,
// and only then snapshots the counters and installs the end's next
// batch. Larger values grow batches - and with them the per-end
// elimination and combining degrees - at the price of latency on that
// end. Under WithAdaptiveSpin this value is the ceiling the per-end
// controller grows toward, not the delay every freeze pays.
func WithFreezerSpin(s int) Option { return config.WithFreezerSpin(s) }

// WithAdaptiveSpin toggles the adaptive freezer backoff: each end
// tunes its own pre-freeze spin on its batch-degree EWMA, growing
// toward WithFreezerSpin while its batches freeze well-filled and
// decaying toward zero while they freeze near-empty, so a
// lightly-used end stops delaying its (mostly singleton) freezes.
func WithAdaptiveSpin(on bool) Option { return config.WithAdaptiveSpin(on) }

// WithMetrics enables the per-end batch occupancy and elimination-rate
// counters, retrievable via Metrics.
func WithMetrics() Option { return config.WithMetrics() }

// WithAdaptive toggles the solo fast path: when an end's recent batch
// degree is ~1, an operation first tries the central lock with one
// TryLock instead of paying the batch protocol, falling back to the
// full protocol when the lock is contended. (Shard scaling does not
// apply to the deque - its two aggregators are its ends.)
func WithAdaptive(on bool) Option { return config.WithAdaptive(on) }

// WithBatchRecycling toggles batch recycling: frozen batches (slot
// arrays and result tables) retire to per-end free lists for reuse, so
// the steady-state freeze path allocates nothing.
func WithBatchRecycling(on bool) Option { return config.WithBatchRecycling(on) }

// WithImplicitSessions toggles the per-P affinity tier behind the
// handle-free PushLeft/PushRight/PopLeft/PopRight methods (default
// on); see the stack package's option of the same name.
func WithImplicitSessions(on bool) Option { return config.WithImplicitSessions(on) }

// WithAnnounceEvery sets the cached implicit sessions' amortized
// hazard-announcement cadence (default 8; 1 restores the eager per-op
// clear); see the stack package's option of the same name.
func WithAnnounceEvery(k int) Option { return config.WithAnnounceEvery(k) }

// New returns an empty deque.
func New[T any](opts ...Option) *Deque[T] {
	c := config.Resolve(opts)
	d := &Deque[T]{}
	var m *metrics.SEC
	if c.CollectMetrics {
		m = metrics.NewSEC(2)
	}
	d.eng = agg.New(agg.Spec[T, []popResult[T]]{
		// One aggregator per end. Ends are chosen per operation, not per
		// session, so the engine is unpartitioned: any handle may
		// announce on either aggregator, and batches are sized for every
		// live handle.
		Aggregators:  2,
		MaxThreads:   c.MaxThreads,
		FreezerSpin:  c.FreezerSpin,
		AdaptiveSpin: c.AdaptiveSpin,
		Partitioned:  false,
		Recycle:      c.BatchRecycle,
		Adaptive:     c.Adaptive,
		Eliminate:    agg.PairElim,
		MakeData:     func(n int) []popResult[T] { return make([]popResult[T], n) },
		ResetData:    resetResults[T],
		ApplyPush:    d.applyPush,
		ApplyPop:     d.applyPop,
		TrySoloPush:  d.trySoloPush,
		TrySoloPop:   d.trySoloPop,
		Metrics:      m,
	})
	// Cached implicit handles publish their hazard slot once per
	// AnnounceEvery ops (amortized announcement); explicit handles keep
	// the engine's eager per-op clear.
	d.cache = isession.New(c.ImplicitAffinity, func() (*Handle[T], error) {
		h, err := d.TryRegister()
		if err != nil {
			return nil, err
		}
		d.eng.SetDoneCadence(h.id, c.AnnounceEvery)
		return h, nil
	}, func(h *Handle[T]) { h.Close() })
	return d
}

// resetResults zeroes a recycled batch's result table so a reused
// batch cannot retain references to a previous incarnation's popped
// values.
func resetResults[T any](p *[]popResult[T]) {
	clear(*p)
}

// Metrics returns the per-end degree collector, or nil if WithMetrics
// was not given. Shard 0 tallies the left end, shard 1 the right.
func (d *Deque[T]) Metrics() *metrics.SEC { return d.eng.Metrics() }

// Handle is a per-goroutine session. Handles must not be shared between
// goroutines, and should be Closed when their goroutine is done so the
// handle slot recycles.
type Handle[T any] struct {
	d  *Deque[T]
	id int
}

// Register returns a new handle. Slots released by Close are recycled,
// so registration panics only when MaxThreads handles are live at the
// same time.
func (d *Deque[T]) Register() *Handle[T] {
	h, err := d.TryRegister()
	if err != nil {
		panic(fmt.Sprintf("deque: more than MaxThreads=%d handles live", d.eng.MaxThreads()))
	}
	return h
}

// TryRegister is Register with ErrExhausted in place of the exhaustion
// panic - the same contract the stack, pool and funnel packages offer.
func (d *Deque[T]) TryRegister() (*Handle[T], error) {
	id, err := d.eng.Register()
	if err != nil {
		return nil, ErrExhausted
	}
	return &Handle[T]{d: d, id: id}, nil
}

// PushLeft adds v at the left end through a cached per-P handle.
func (d *Deque[T]) PushLeft(v T) {
	e := d.cache.Acquire()
	e.H.PushLeft(v)
	d.cache.Release(e)
}

// PushRight adds v at the right end through a cached per-P handle.
func (d *Deque[T]) PushRight(v T) {
	e := d.cache.Acquire()
	e.H.PushRight(v)
	d.cache.Release(e)
}

// PopLeft removes and returns the leftmost element through a cached
// per-P handle.
func (d *Deque[T]) PopLeft() (T, bool) {
	e := d.cache.Acquire()
	v, ok := e.H.PopLeft()
	d.cache.Release(e)
	return v, ok
}

// PopRight removes and returns the rightmost element through a cached
// per-P handle.
func (d *Deque[T]) PopRight() (T, bool) {
	e := d.cache.Acquire()
	v, ok := e.H.PopRight()
	d.cache.Release(e)
	return v, ok
}

// Close releases the handle's slot for reuse by a future Register.
// Close is idempotent; any other use of a closed handle is a bug.
func (h *Handle[T]) Close() {
	if h.id < 0 {
		return
	}
	h.d.eng.Release(h.id)
	h.id = -1
}

// PushLeft adds v at the left end.
func (h *Handle[T]) PushLeft(v T) { h.push(Left, v) }

// PushRight adds v at the right end.
func (h *Handle[T]) PushRight(v T) { h.push(Right, v) }

// PopLeft removes and returns the leftmost element; ok is false if the
// deque did not hold enough elements for this operation's batch slice.
func (h *Handle[T]) PopLeft() (T, bool) { return h.pop(Left) }

// PopRight removes and returns the rightmost element.
func (h *Handle[T]) PopRight() (T, bool) { return h.pop(Right) }

func (h *Handle[T]) push(side Side, v T) {
	h.d.eng.Push(h.id, int(side), &v)
	// Eliminated pushes return right away: the paired pop reads the
	// value from the batch's announcement slots. Survivors return once
	// the end's combiner applied them under the lock.
	h.d.eng.Done(h.id)
}

// trySoloPush is the solo fast path's push applier: apply the scratch
// batch's single value under the central lock if it is free right now,
// report contention otherwise.
func (d *Deque[T]) trySoloPush(end int, b *dqBatch[T]) bool {
	if !d.mu.TryLock() {
		return false
	}
	p := b.Slot(0)
	if Side(end) == Left {
		d.items.pushFront(*p)
	} else {
		d.items.pushBack(*p)
	}
	d.mu.Unlock()
	return true
}

// applyPush is the push-side combiner body: apply the surviving pushes
// of one end's frozen batch to the sequential deque under the lock.
func (d *Deque[T]) applyPush(end int, b *dqBatch[T], seq, pushAtF int64) {
	d.mu.Lock()
	for i := seq; i < pushAtF; i++ {
		p := b.WaitSlot(i)
		if Side(end) == Left {
			d.items.pushFront(*p)
		} else {
			d.items.pushBack(*p)
		}
	}
	d.mu.Unlock()
}

func (h *Handle[T]) pop(side Side) (v T, ok bool) {
	t := h.d.eng.Pop(h.id, int(side))
	if t.Elim != nil { // eliminated against the push with the same number
		v = *t.Elim
		h.d.eng.Done(h.id)
		return v, true
	}
	r := t.B.Data[t.Off]
	h.d.eng.Done(h.id) // finished with the batch's result table
	return r.v, r.ok
}

// trySoloPop is the solo fast path's pop applier: serve one pop under
// the central lock if it is free right now, publishing the result
// through the scratch batch's table as applyPop would.
func (d *Deque[T]) trySoloPop(end int, b *dqBatch[T]) bool {
	if !d.mu.TryLock() {
		return false
	}
	if Side(end) == Left {
		b.Data[0].v, b.Data[0].ok = d.items.popFront()
	} else {
		b.Data[0].v, b.Data[0].ok = d.items.popBack()
	}
	d.mu.Unlock()
	return true
}

// applyPop is the pop-side combiner body: serve the surviving pops of
// one end's frozen batch from the sequential deque under the lock,
// publishing their responses through the batch's result table.
func (d *Deque[T]) applyPop(end int, b *dqBatch[T], e, popAtF int64) {
	k := popAtF - e
	d.mu.Lock()
	for i := int64(0); i < k; i++ {
		if Side(end) == Left {
			b.Data[i].v, b.Data[i].ok = d.items.popFront()
		} else {
			b.Data[i].v, b.Data[i].ok = d.items.popBack()
		}
	}
	d.mu.Unlock()
}

// Len counts elements; a racy diagnostic for quiescent states.
func (d *Deque[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.items.len()
}

// ring is a growable circular buffer backing the sequential deque.
type ring[T any] struct {
	buf  []T
	head int // index of the leftmost element
	n    int
}

func (r *ring[T]) len() int { return r.n }

func (r *ring[T]) grow() {
	if r.n < len(r.buf) {
		return
	}
	next := make([]T, max(4, 2*len(r.buf)))
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = next, 0
}

func (r *ring[T]) pushFront(v T) {
	r.grow()
	r.head = (r.head - 1 + len(r.buf)) % len(r.buf)
	r.buf[r.head] = v
	r.n++
}

func (r *ring[T]) pushBack(v T) {
	r.grow()
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *ring[T]) popFront() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	var zero T
	v = r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v, true
}

func (r *ring[T]) popBack() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	var zero T
	i := (r.head + r.n - 1) % len(r.buf)
	v = r.buf[i]
	r.buf[i] = zero
	r.n--
	return v, true
}
