// Package deque applies SEC's sharded elimination and combining to a
// double-ended queue - the extension the paper repeatedly names as the
// natural next target for its techniques ("the elimination and
// combining techniques ... can be applied in other contexts, such as
// designing efficient concurrent deques").
//
// Each end of the deque runs the SEC batch protocol independently:
// operations on one end announce themselves with fetch&increment on the
// end's active batch, the first announcer freezes the batch after a
// batch-growing backoff, opposite operations with equal sequence
// numbers eliminate (a PushLeft and a PopLeft cancel exactly like a
// push/pop pair on a stack, and symmetrically on the right), and a
// single combiner per batch applies the survivors to the shared deque.
// Survivors are applied under a central mutex rather than a CAS-able
// top pointer - a deque has no single word that one CAS can move, so
// combining (batching many operations per lock acquisition) is exactly
// what makes the lock cheap.
package deque

import (
	"fmt"
	"sync"
	"sync/atomic"

	"secstack/internal/backoff"
	"secstack/internal/config"
	"secstack/internal/tid"
)

// Side selects a deque end.
type Side int

// The two ends.
const (
	Left Side = iota
	Right
)

// popResult is one pop's response, published by the combiner.
type popResult[T any] struct {
	v  T
	ok bool
}

// ebatch is one end's batch: the SEC batch structure with values in
// place of stack nodes and a result table in place of the substack.
type ebatch[T any] struct {
	pushCount atomic.Int64
	popCount  atomic.Int64
	pushAtF   atomic.Int64
	popAtF    atomic.Int64
	decided   atomic.Bool
	applied   atomic.Bool

	// elim[i] is the value announced by push sequence number i.
	elim []atomic.Pointer[T]
	// results[i] is the response of surviving pop offset i.
	results []popResult[T]
}

// end is one deque end's aggregator.
type end[T any] struct {
	batch atomic.Pointer[ebatch[T]]
	_     [56]byte
}

// Deque is a blocking linearizable double-ended queue. Use Register to
// obtain per-goroutine handles.
type Deque[T any] struct {
	mu    sync.Mutex
	items ring[T]

	ends        [2]end[T]
	perEnd      int
	freezerSpin int
	tids        *tid.Allocator
	maxThreads  int
}

// Option configures New; it is the shared option type of the whole
// repository, so the stack package's WithMaxThreads and WithFreezerSpin
// work here unchanged.
type Option = config.Option

// WithMaxThreads bounds concurrently live handles (default 256). Close
// recycles handle slots, so this is a concurrency bound, not a lifetime
// bound.
func WithMaxThreads(n int) Option { return config.WithMaxThreads(n) }

// WithFreezerSpin sets the batch-growing backoff in spin iterations
// (default 128; 0 disables).
func WithFreezerSpin(s int) Option { return config.WithFreezerSpin(s) }

// New returns an empty deque.
func New[T any](opts ...Option) *Deque[T] {
	c := config.Resolve(opts)
	d := &Deque[T]{
		perEnd:      c.MaxThreads,
		freezerSpin: c.FreezerSpin,
		tids:        tid.New(c.MaxThreads),
		maxThreads:  c.MaxThreads,
	}
	for i := range d.ends {
		d.ends[i].batch.Store(d.newBatch())
	}
	return d
}

func (d *Deque[T]) newBatch() *ebatch[T] {
	p := d.tids.InUse()
	if p < 4 {
		p = 4
	}
	if p > d.perEnd {
		p = d.perEnd
	}
	return &ebatch[T]{
		elim:    make([]atomic.Pointer[T], p),
		results: make([]popResult[T], p),
	}
}

// Handle is a per-goroutine session. Handles must not be shared between
// goroutines, and should be Closed when their goroutine is done so the
// handle slot recycles.
type Handle[T any] struct {
	d  *Deque[T]
	id int
}

// Register returns a new handle. Slots released by Close are recycled,
// so registration panics only when MaxThreads handles are live at the
// same time.
func (d *Deque[T]) Register() *Handle[T] {
	id, err := d.tids.Acquire()
	if err != nil {
		panic(fmt.Sprintf("deque: more than MaxThreads=%d handles live", d.maxThreads))
	}
	return &Handle[T]{d: d, id: id}
}

// Close releases the handle's slot for reuse by a future Register.
// Close is idempotent; any other use of a closed handle is a bug.
func (h *Handle[T]) Close() {
	if h.id < 0 {
		return
	}
	h.d.tids.Release(h.id)
	h.id = -1
}

// PushLeft adds v at the left end.
func (h *Handle[T]) PushLeft(v T) { h.push(Left, v) }

// PushRight adds v at the right end.
func (h *Handle[T]) PushRight(v T) { h.push(Right, v) }

// PopLeft removes and returns the leftmost element; ok is false if the
// deque did not hold enough elements for this operation's batch slice.
func (h *Handle[T]) PopLeft() (T, bool) { return h.pop(Left) }

// PopRight removes and returns the rightmost element.
func (h *Handle[T]) PopRight() (T, bool) { return h.pop(Right) }

// freeze snapshots both counters (clamped to the announcement arrays)
// and installs a fresh batch on the end.
func (h *Handle[T]) freeze(e *end[T], b *ebatch[T]) {
	if h.d.freezerSpin > 0 {
		backoff.Spin(h.d.freezerSpin)
	}
	limit := int64(len(b.elim))
	b.popAtF.Store(min(b.popCount.Load(), limit))
	b.pushAtF.Store(min(b.pushCount.Load(), limit))
	e.batch.Store(h.d.newBatch())
}

func (h *Handle[T]) push(side Side, v T) {
	d := h.d
	e := &d.ends[side]
	val := &v
	for {
		b := e.batch.Load()
		seq := b.pushCount.Add(1) - 1
		if int(seq) < len(b.elim) {
			b.elim[seq].Store(val)
		}

		if seq == 0 && !b.decided.Swap(true) {
			h.freeze(e, b)
		} else {
			var w backoff.Waiter
			for e.batch.Load() == b {
				w.Wait()
			}
		}

		pushAtF, popAtF := b.pushAtF.Load(), b.popAtF.Load()
		if seq >= pushAtF {
			continue
		}
		el := min(pushAtF, popAtF)
		if seq >= el { // survivor
			if seq == el { // combiner: apply surviving pushes under the lock
				d.mu.Lock()
				var w backoff.Waiter
				for i := seq; i < pushAtF; i++ {
					var p *T
					for {
						if p = b.elim[i].Load(); p != nil {
							break
						}
						w.Wait()
					}
					if side == Left {
						d.items.pushFront(*p)
					} else {
						d.items.pushBack(*p)
					}
				}
				d.mu.Unlock()
				b.applied.Store(true)
			} else {
				var w backoff.Waiter
				for !b.applied.Load() {
					w.Wait()
				}
			}
		}
		return
	}
}

func (h *Handle[T]) pop(side Side) (v T, ok bool) {
	d := h.d
	e := &d.ends[side]
	for {
		b := e.batch.Load()
		seq := b.popCount.Add(1) - 1

		if seq == 0 && !b.decided.Swap(true) {
			h.freeze(e, b)
		} else {
			var w backoff.Waiter
			for e.batch.Load() == b {
				w.Wait()
			}
		}

		pushAtF, popAtF := b.pushAtF.Load(), b.popAtF.Load()
		if seq >= popAtF {
			continue
		}
		el := min(pushAtF, popAtF)
		if seq < el { // eliminated against push with the same number
			var w backoff.Waiter
			var p *T
			for {
				if p = b.elim[seq].Load(); p != nil {
					break
				}
				w.Wait()
			}
			return *p, true
		}

		if seq == el { // combiner: apply surviving pops under the lock
			k := popAtF - el
			d.mu.Lock()
			for i := int64(0); i < k; i++ {
				if side == Left {
					b.results[i].v, b.results[i].ok = d.items.popFront()
				} else {
					b.results[i].v, b.results[i].ok = d.items.popBack()
				}
			}
			d.mu.Unlock()
			b.applied.Store(true)
		} else {
			var w backoff.Waiter
			for !b.applied.Load() {
				w.Wait()
			}
		}
		r := b.results[seq-el]
		return r.v, r.ok
	}
}

// Len counts elements; a racy diagnostic for quiescent states.
func (d *Deque[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.items.len()
}

// ring is a growable circular buffer backing the sequential deque.
type ring[T any] struct {
	buf  []T
	head int // index of the leftmost element
	n    int
}

func (r *ring[T]) len() int { return r.n }

func (r *ring[T]) grow() {
	if r.n < len(r.buf) {
		return
	}
	next := make([]T, max(4, 2*len(r.buf)))
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = next, 0
}

func (r *ring[T]) pushFront(v T) {
	r.grow()
	r.head = (r.head - 1 + len(r.buf)) % len(r.buf)
	r.buf[r.head] = v
	r.n++
}

func (r *ring[T]) pushBack(v T) {
	r.grow()
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *ring[T]) popFront() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	var zero T
	v = r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v, true
}

func (r *ring[T]) popBack() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	var zero T
	i := (r.head + r.n - 1) % len(r.buf)
	v = r.buf[i]
	r.buf[i] = zero
	r.n--
	return v, true
}
