package deque

import (
	"sync"
	"testing"
	"testing/quick"

	"secstack/internal/xrand"
)

func TestRingBasics(t *testing.T) {
	var r ring[int]
	if _, ok := r.popFront(); ok {
		t.Fatal("popFront on empty ring")
	}
	if _, ok := r.popBack(); ok {
		t.Fatal("popBack on empty ring")
	}
	r.pushBack(1)
	r.pushBack(2)
	r.pushFront(0)
	if r.len() != 3 {
		t.Fatalf("len = %d", r.len())
	}
	if v, _ := r.popFront(); v != 0 {
		t.Fatalf("popFront = %d, want 0", v)
	}
	if v, _ := r.popBack(); v != 2 {
		t.Fatalf("popBack = %d, want 2", v)
	}
	if v, _ := r.popFront(); v != 1 {
		t.Fatalf("popFront = %d, want 1", v)
	}
}

func TestRingQuickVsSlice(t *testing.T) {
	check := func(ops []int8) bool {
		var r ring[int8]
		var model []int8
		for _, op := range ops {
			switch {
			case op >= 64: // pushFront
				r.pushFront(op)
				model = append([]int8{op}, model...)
			case op >= 0: // pushBack
				r.pushBack(op)
				model = append(model, op)
			case op%2 == 0: // popFront
				v, ok := r.popFront()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			default: // popBack
				v, ok := r.popBack()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[len(model)-1] {
					return false
				}
				model = model[:len(model)-1]
			}
			if r.len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialDequeSemantics(t *testing.T) {
	d := New[int]()
	h := d.Register()
	h.PushLeft(2)
	h.PushLeft(1)
	h.PushRight(3)
	// Deque: 1 2 3
	if v, ok := h.PopLeft(); !ok || v != 1 {
		t.Fatalf("PopLeft = (%d, %v), want (1, true)", v, ok)
	}
	if v, ok := h.PopRight(); !ok || v != 3 {
		t.Fatalf("PopRight = (%d, %v), want (3, true)", v, ok)
	}
	if v, ok := h.PopLeft(); !ok || v != 2 {
		t.Fatalf("PopLeft = (%d, %v), want (2, true)", v, ok)
	}
	if _, ok := h.PopLeft(); ok {
		t.Fatal("PopLeft on empty deque succeeded")
	}
	if _, ok := h.PopRight(); ok {
		t.Fatal("PopRight on empty deque succeeded")
	}
}

func TestStackLikeLeftEnd(t *testing.T) {
	d := New[int]()
	h := d.Register()
	for i := 0; i < 100; i++ {
		h.PushLeft(i)
	}
	for want := 99; want >= 0; want-- {
		v, ok := h.PopLeft()
		if !ok || v != want {
			t.Fatalf("PopLeft = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
}

func TestQueueLikeUse(t *testing.T) {
	d := New[int]()
	h := d.Register()
	for i := 0; i < 100; i++ {
		h.PushRight(i)
	}
	for want := 0; want < 100; want++ {
		v, ok := h.PopLeft()
		if !ok || v != want {
			t.Fatalf("PopLeft = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
}

func TestRegisterPanicsPastMaxThreads(t *testing.T) {
	d := New[int](WithMaxThreads(1))
	d.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Register()
}

// TestConcurrentConservation: unique values in, unique values out (via
// either end), none lost or duplicated.
func TestConcurrentConservation(t *testing.T) {
	d := New[int64]()
	const g, per = 8, 2000
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := make(map[int64]int)
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := d.Register()
			rng := xrand.New(uint64(w) + 31)
			local := make(map[int64]int)
			next := int64(w) << 32
			for i := 0; i < per; i++ {
				switch rng.Intn(4) {
				case 0:
					next++
					h.PushLeft(next)
				case 1:
					next++
					h.PushRight(next)
				case 2:
					if v, ok := h.PopLeft(); ok {
						local[v]++
					}
				default:
					if v, ok := h.PopRight(); ok {
						local[v]++
					}
				}
			}
			mu.Lock()
			for k, c := range local {
				counts[k] += c
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	h := d.Register()
	for {
		v, ok := h.PopLeft()
		if !ok {
			break
		}
		counts[v]++
	}
	for v, c := range counts {
		if c != 1 {
			t.Fatalf("value %d seen %d times", v, c)
		}
	}
}

// TestOppositeEndsParallel: pushes on the left and pops on the right
// flow through as a FIFO under concurrency.
func TestOppositeEndsParallel(t *testing.T) {
	d := New[int64]()
	const n = 5000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		h := d.Register()
		for i := int64(0); i < n; i++ {
			h.PushLeft(i)
		}
	}()
	var got []int64
	go func() {
		defer wg.Done()
		h := d.Register()
		for len(got) < n {
			if v, ok := h.PopRight(); ok {
				got = append(got, v)
			}
		}
	}()
	wg.Wait()
	// PushLeft then PopRight = FIFO per producer: values must arrive in
	// increasing order.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("FIFO order broken: %d then %d", got[i-1], got[i])
		}
	}
}
