package deque_test

import (
	"fmt"

	"secstack/deque"
)

// A deque serves as a stack at either end and as a queue across ends.
func ExampleNew() {
	d := deque.New[int]()
	h := d.Register()
	h.PushLeft(2)
	h.PushLeft(1)
	h.PushRight(3)
	// deque is now: 1 2 3
	l, _ := h.PopLeft()
	r, _ := h.PopRight()
	m, _ := h.PopLeft()
	fmt.Println(l, m, r)
	// Output:
	// 1 2 3
}
