package deque_test

import (
	"sync"
	"testing"

	"secstack/deque"
	"secstack/internal/lincheck"
	"secstack/internal/xrand"
)

// TestDequeLinearizability checks many small concurrent histories of
// the SEC-style deque with the exhaustive deque checker.
func TestDequeLinearizability(t *testing.T) {
	const (
		threads = 4
		opsPer  = 4
		rounds  = 40
	)
	for r := 0; r < rounds; r++ {
		d := deque.New[int64]()
		rec := lincheck.NewDeqRecorder(threads)
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := d.Register()
				rng := xrand.New(uint64(r)*65537 + uint64(w)*7919)
				base := int64(w+1) << 32
				for i := 0; i < opsPer; i++ {
					switch rng.Intn(8) {
					case 0, 1:
						v := base + int64(i)
						inv := rec.Begin()
						h.PushLeft(v)
						rec.Record(w, lincheck.PushLeft, v, true, inv)
					case 2, 3:
						v := base + int64(i)
						inv := rec.Begin()
						h.PushRight(v)
						rec.Record(w, lincheck.PushRight, v, true, inv)
					case 4, 5:
						inv := rec.Begin()
						v, ok := h.PopLeft()
						rec.Record(w, lincheck.PopLeft, v, ok, inv)
					default:
						inv := rec.Begin()
						v, ok := h.PopRight()
						rec.Record(w, lincheck.PopRight, v, ok, inv)
					}
				}
			}(w)
		}
		wg.Wait()
		if h := rec.History(); !lincheck.CheckDeque(h) {
			for _, op := range h {
				t.Logf("%s", op)
			}
			t.Fatalf("round %d: deque history not linearizable", r)
		}
	}
}
