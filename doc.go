// Package secstack is a from-scratch Go reproduction of "Sharded
// Elimination and Combining for Highly-Efficient Concurrent Stacks"
// (Singh, Metaxakis, Fatourou; PPoPP '26). See README.md for the
// architecture diagram, the functional-options matrix, and the
// figure-reproduction workflow.
//
// The public API lives in secstack/stack: the SEC stack itself plus the
// five baseline concurrent stacks the paper evaluates against (Treiber,
// elimination-backoff, flat combining, CC-Synch, interval timestamped),
// all constructed through one registry (stack.New) and one shared
// functional-option vocabulary, with closable per-goroutine handles
// whose slots recycle under goroutine churn. The sibling packages
// secstack/deque, secstack/pool and secstack/funnel apply the same
// machinery - and the same option and handle-lifecycle contracts - to a
// double-ended queue, an object pool and a sharded fetch&add counter.
//
// One implementation of the paper's aggregator/batch lifecycle -
// announcement, the freezer race and its batch-growing backoff,
// elimination, combiner election, session recycling, degree metrics -
// lives in internal/agg; the stack (internal/core, which the pool
// builds on), the deque and the funnel instantiate that engine with
// their own eliminator (pairwise for stack and deque, identity for the
// funnel) and appliers (a splice-substack CAS, a per-end mutex apply,
// a hardware fetch&add plus prefix sums). See DESIGN.md §1 for the
// instantiation table.
//
// Beyond the paper, the engine is contention-adaptive (DESIGN.md
// §8-§10): a solo fast path and dynamic shard scaling with controller
// inheritance adapt the batching machinery to the observed load, batch
// recycling and epoch-batched hazard reclamation make the steady-state
// hot paths allocation-free, and single-CAS steal primitives (TryPush,
// TryPop) give the pool bidirectional cross-shard load balancing - Get
// steals from quiet shards, Put overflows away from saturated ones.
//
// The benchmark families in bench_test.go and the cmd/secbench tool
// regenerate every figure and table of the paper's evaluation; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results.
package secstack
