// Package secstack is a from-scratch Go reproduction of "Sharded
// Elimination and Combining for Highly-Efficient Concurrent Stacks"
// (Singh, Metaxakis, Fatourou; PPoPP '26).
//
// The public API lives in secstack/stack: the SEC stack itself plus the
// five baseline concurrent stacks the paper evaluates against (Treiber,
// elimination-backoff, flat combining, CC-Synch, interval timestamped),
// all constructed through one registry (stack.New) and one shared
// functional-option vocabulary, with closable per-goroutine handles
// whose slots recycle under goroutine churn. The sibling packages
// secstack/deque, secstack/pool and secstack/funnel apply the same
// machinery - and the same option and handle-lifecycle contracts - to a
// double-ended queue, an object pool and a sharded fetch&add counter.
//
// One implementation of the paper's aggregator/batch lifecycle -
// announcement, the freezer race and its batch-growing backoff,
// elimination, combiner election, session recycling, degree metrics -
// lives in internal/agg; the stack (internal/core, which the pool
// builds on), the deque and the funnel instantiate that engine with
// their own eliminator (pairwise for stack and deque, identity for the
// funnel) and appliers (a splice-substack CAS, a per-end mutex apply,
// a hardware fetch&add plus prefix sums). See DESIGN.md §1 for the
// instantiation table.
//
// The benchmark families in bench_test.go and the cmd/secbench tool
// regenerate every figure and table of the paper's evaluation; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results.
package secstack
