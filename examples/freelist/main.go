// Freelist: a shared free-list of reusable buffers built on a SEC
// stack - the garbage-collection/allocator use case the paper's
// introduction cites ("shared freelists in garbage collection").
//
// Build and run:
//
//	go run ./examples/freelist
//
// Worker goroutines acquire buffers from the free-list (allocating only
// when it is empty), use them, and release them back. A stack is the
// right structure for a free-list because LIFO reuse returns the most
// recently used - and therefore cache-warmest - buffer. Under bursty
// acquire/release traffic, SEC's elimination pairs a release directly
// with a concurrent acquire without touching the shared list at all.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"secstack/stack"
)

const bufSize = 4096

// freeList hands out *[]byte buffers, reusing returned ones.
type freeList struct {
	s         *stack.SECStack[*[]byte]
	allocated atomic.Int64
}

func newFreeList() *freeList {
	return &freeList{s: stack.NewSEC[*[]byte](stack.WithMetrics())}
}

// session is one goroutine's view of the free-list.
type session struct {
	fl *freeList
	h  stack.Handle[*[]byte]
}

func (fl *freeList) register() *session {
	return &session{fl: fl, h: fl.s.Register()}
}

// close releases the session's handle slot for reuse by later workers.
func (s *session) close() { s.h.Close() }

// acquire returns a buffer, reusing a released one when available.
func (s *session) acquire() *[]byte {
	if b, ok := s.h.Pop(); ok {
		return b
	}
	s.fl.allocated.Add(1)
	b := make([]byte, bufSize)
	return &b
}

// release returns a buffer to the free-list.
func (s *session) release(b *[]byte) {
	s.h.Push(b)
}

func main() {
	fl := newFreeList()

	const (
		workers = 16
		rounds  = 50_000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := fl.register()
			defer sess.close()
			for i := 0; i < rounds; i++ {
				buf := sess.acquire()
				(*buf)[0] = byte(w) // "use" the buffer
				sess.release(buf)
			}
		}(w)
	}
	wg.Wait()

	total := int64(workers) * rounds
	fmt.Printf("buffer acquisitions:  %d\n", total)
	fmt.Printf("fresh allocations:    %d (%.4f%% of acquisitions)\n",
		fl.allocated.Load(), 100*float64(fl.allocated.Load())/float64(total))

	snap := fl.s.Metrics().Snapshot()
	fmt.Printf("SEC batching degree:  %.1f ops/batch\n", snap.BatchingDegree())
	fmt.Printf("eliminated in-batch:  %.0f%% (release/acquire pairs that never touched the list)\n",
		snap.EliminationPct())
}
