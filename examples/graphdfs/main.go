// Graph DFS: concurrent graph exploration with a SEC stack as the
// shared work container - the "concurrent graph algorithms" use the
// paper's introduction cites (Galois-style worklists).
//
// Build and run:
//
//	go run ./examples/graphdfs
//
// A team of workers explores a synthetic graph depth-first-ish: each
// worker pops a frontier vertex, marks it visited, and pushes its
// unvisited neighbours. The LIFO discipline keeps exploration deep
// (good locality); SEC keeps the worklist from becoming the
// scalability bottleneck, since a worker pushing neighbours often
// eliminates against another worker popping work.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"secstack/stack"
)

// graph is a synthetic scale-free-ish graph in compressed adjacency
// form.
type graph struct {
	offsets []int32
	edges   []int32
}

func (g *graph) vertices() int { return len(g.offsets) - 1 }

func (g *graph) neighbours(v int32) []int32 {
	return g.edges[g.offsets[v]:g.offsets[v+1]]
}

// buildGraph deterministically generates n vertices whose degree decays
// with vertex id, plus a spanning chain so everything is reachable.
func buildGraph(n int) *graph {
	g := &graph{offsets: make([]int32, 1, n+1)}
	x := uint64(0x9e3779b97f4a7c15)
	for v := 0; v < n; v++ {
		deg := 1 + 8/(1+v%16)
		for d := 0; d < deg; d++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			g.edges = append(g.edges, int32(x%uint64(n)))
		}
		if v+1 < n {
			g.edges = append(g.edges, int32(v+1)) // spanning chain
		}
		g.offsets = append(g.offsets, int32(len(g.edges)))
	}
	return g
}

func explore(g *graph, workers int) (visitedCount int64, elapsed time.Duration, degrees string) {
	worklist := stack.NewSEC[int32](stack.WithMetrics())
	visited := make([]atomic.Bool, g.vertices())

	seed := worklist.Register()
	seed.Push(0)
	seed.Close()
	visited[0].Store(true)

	var (
		count   atomic.Int64
		pending atomic.Int64 // vertices pushed but not yet processed
		wg      sync.WaitGroup
	)
	pending.Store(1)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := worklist.Register()
			defer h.Close()
			for pending.Load() > 0 {
				v, ok := h.Pop()
				if !ok {
					runtime.Gosched() // frontier momentarily empty
					continue
				}
				count.Add(1)
				for _, u := range g.neighbours(v) {
					if !visited[u].Load() && visited[u].CompareAndSwap(false, true) {
						pending.Add(1)
						h.Push(u)
					}
				}
				pending.Add(-1)
			}
		}()
	}
	wg.Wait()
	snap := worklist.Metrics().Snapshot()
	return count.Load(), time.Since(start),
		fmt.Sprintf("batching degree %.1f, %.0f%% eliminated", snap.BatchingDegree(), snap.EliminationPct())
}

func main() {
	const vertices = 1_000_000
	g := buildGraph(vertices)
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.vertices(), len(g.edges))

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		visitedCount, elapsed, degrees := explore(g, workers)
		if visitedCount != vertices {
			panic(fmt.Sprintf("visited %d of %d vertices - worklist lost work", visitedCount, vertices))
		}
		fmt.Printf("workers=%2d: visited %d vertices in %8v  (%s)\n",
			workers, visitedCount, elapsed.Round(time.Millisecond), degrees)
	}
}
