// Job stealing: a miniature work-stealing scheduler on the SEC-style
// deque - the extension target the paper names for its techniques.
//
// Build and run:
//
//	go run ./examples/jobsteal
//
// Producers push jobs on the left end; workers prefer popping fresh
// (LIFO, cache-warm) jobs from the left and fall back to "stealing" old
// jobs from the right end, the classic deque scheduling discipline.
// Both ends run SEC's batch protocol independently, so left-end
// push/pop pairs eliminate in place while right-end steals proceed in
// parallel.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"secstack/deque"
)

func main() {
	const jobs = 200_000
	workers := runtime.GOMAXPROCS(0)

	d := deque.New[int64]()
	var (
		fresh  atomic.Int64 // jobs taken hot off the left end
		stolen atomic.Int64 // jobs stolen from the right end
		sum    atomic.Int64 // checksum over completed jobs
		taken  atomic.Int64
		wg     sync.WaitGroup
	)

	// Two producers feed the left end with jobs 1..jobs.
	const producers = 2
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := d.Register()
			defer h.Close()
			for j := p + 1; j <= jobs; j += producers {
				h.PushLeft(int64(j))
			}
		}(p)
	}

	// Workers drain until all jobs are accounted for.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := d.Register()
			defer h.Close()
			for taken.Load() < jobs {
				if v, ok := h.PopLeft(); ok { // hot path: newest job
					fresh.Add(1)
					sum.Add(v)
					taken.Add(1)
					continue
				}
				if v, ok := h.PopRight(); ok { // steal the oldest job
					stolen.Add(1)
					sum.Add(v)
					taken.Add(1)
					continue
				}
				runtime.Gosched() // deque momentarily empty
			}
		}(w)
	}
	wg.Wait()

	fmt.Printf("jobs completed: %d (fresh %d, stolen %d)\n",
		fresh.Load()+stolen.Load(), fresh.Load(), stolen.Load())
	fmt.Printf("checksum: %d (expect %d)\n", sum.Load(), int64(jobs)*(jobs+1)/2)
}
