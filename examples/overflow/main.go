// Overflow: the pool's bidirectional cross-shard load balancing.
//
// Build and run:
//
//	go run ./examples/overflow
//
// A pool shards its elements across SEC stacks, and each handle has a
// home shard - great for locality, bad when load is skewed. Two steal
// primitives rebalance it, one per direction:
//
//   - Get steal (peek-then-steal): a Get whose home shard is empty
//     probes the foreign shards with one Treiber-style CAS each - no
//     announcement, no batch protocol - and recovers elements wherever
//     they were parked.
//   - Put overflow (steal for Put): a Put first probes its home shard
//     with the same single-CAS primitive; after the home CAS loses
//     pool.WithPutOverflow consecutive rounds (the shard is
//     saturated), Puts sweep the foreign shards and spill to whichever
//     has spare capacity, falling back to the home shard's full batch
//     protocol only when every shard is contended.
//
// The first phase below is deterministic: a producer deliberately
// skews the pool by parking everything on its own home shard, and a
// consumer with a different home drains it all cross-shard. The second
// phase runs real contention - producers sharing one home shard racing
// a thief - so the overflow valve can engage; whether a particular CAS
// loses depends on the scheduler, so the example asserts what is
// always true (exact conservation: every element put is recovered
// exactly once) and leaves the put-steal hit/miss telemetry, available
// through pool.WithMetrics and Pool.Snapshot, to cmd/secbench -table
// and the deterministic tests in the pool package.
package main

import (
	"fmt"
	"sync"

	"secstack/pool"
)

func main() {
	p := pool.New[int](
		pool.WithShards(4),
		pool.WithPutOverflow(1), // overflow on the first lost home CAS
		pool.WithMetrics(),
	)

	// Phase 1: a deliberately skewed pool, rebalanced by Get steal.
	// Handles draw sequential ids, so the first two handles get homes 0
	// and 1: everything the producer puts lands on shard 1, and every
	// Get the consumer performs must steal cross-shard (its home shard
	// 0 stays empty).
	consumer := p.Register() // home shard 0
	producer := p.Register() // home shard 1
	const parked = 8
	for i := 0; i < parked; i++ {
		producer.Put(i)
	}
	drained := 0
	for {
		if _, ok := consumer.Get(); !ok {
			break
		}
		drained++
	}
	fmt.Printf("consumer stole %d of %d elements parked on a foreign shard; pool empty: %v\n",
		drained, parked, p.Size() == 0)

	// Phase 2: genuine contention on one home shard, the regime the
	// Put-overflow valve exists for. Producers sharing a home race each
	// other (and a thief popping underneath them); any Put whose home
	// CAS loses spills to a quiet foreign shard instead of piling onto
	// the hot one. Conservation is exact either way.
	const goroutines, per = 4, 2000
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[int]int)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := p.Register()
			defer h.Close()
			if g%2 == 0 { // producer
				for i := 0; i < per; i++ {
					h.Put(g<<20 | i)
				}
			} else { // thief: drains whatever shard holds elements
				local := make(map[int]int)
				for i := 0; i < per; i++ {
					if v, ok := h.Get(); ok {
						local[v]++
					}
				}
				mu.Lock()
				for v, c := range local {
					seen[v] += c
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	for {
		v, ok := consumer.Get()
		if !ok {
			break
		}
		seen[v]++
	}
	exact := len(seen) == (goroutines/2)*per
	for _, c := range seen {
		if c != 1 {
			exact = false
		}
	}
	fmt.Printf("contended overflow phase: every element recovered exactly once: %v\n", exact)

	consumer.Close()
	producer.Close()
}
