package main

// The example's output is asserted, so the rebalancing demonstration
// runs as an Example test in the ordinary test tier (and in CI's docs
// gate): a regression in either steal direction - elements stranded on
// a skewed shard, or elements lost or duplicated under contended
// overflow - breaks the expected output.

// Example runs the overflow demonstration and pins its deterministic
// claims: a consumer whose home shard is empty recovers every element
// parked on a foreign shard, and the contended overflow phase
// conserves elements exactly.
func Example() {
	main()
	// Output:
	// consumer stole 8 of 8 elements parked on a foreign shard; pool empty: true
	// contended overflow phase: every element recovered exactly once: true
}
