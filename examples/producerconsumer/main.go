// Producer/consumer: a bursty symmetric workload that showcases SEC's
// elimination - the regime where the paper's design wins biggest.
//
// Build and run:
//
//	go run ./examples/producerconsumer
//
// Producers push work items while consumers pop them, in matched
// numbers. In this regime most push/pop pairs are semantically adjacent
// and SEC cancels them inside batches: the shared stack is barely
// touched. The program runs the identical workload over every algorithm
// in the library and prints the throughput comparison plus SEC's
// elimination statistics - a miniature of the paper's Figure 2
// (100%-updates panel).
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"secstack/stack"
)

const runWindow = 500 * time.Millisecond

// measure runs half the goroutines as producers and half as consumers
// for the window and returns million operations per second.
func measure(s stack.Stack[int64], goroutines int) float64 {
	var (
		stop  atomic.Bool
		total atomic.Int64
		wg    sync.WaitGroup
	)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := s.Register()
			defer h.Close()
			// First half produce, second half consume. (Alternating
			// roles by parity would segregate producers and consumers
			// onto different SEC aggregators - tid%K - and make
			// elimination impossible; mixing roles within each
			// aggregator is the regime the paper's 100%-update
			// workloads measure.)
			produce := i < goroutines/2
			ops := int64(0)
			for !stop.Load() {
				for k := 0; k < 64; k++ {
					if produce {
						h.Push(int64(i)<<32 | ops)
					} else {
						h.Pop()
					}
					ops++
				}
			}
			total.Add(ops)
		}(i)
	}
	time.Sleep(runWindow)
	stop.Store(true)
	wg.Wait()
	return float64(total.Load()) / runWindow.Seconds() / 1e6
}

func main() {
	goroutines := 2 * runtime.GOMAXPROCS(0) // oversubscribed, like the
	// right-hand region of the paper's throughput plots
	fmt.Printf("symmetric producers/consumers, %d goroutines, %v window\n\n", goroutines, runWindow)

	sec := stack.NewSEC[int64](stack.WithMetrics())
	secMops := measure(sec, goroutines)

	fmt.Printf("%-28s %10s\n", "algorithm", "Mops/s")
	fmt.Printf("%-28s %10.2f\n", "SEC (2 aggregators)", secMops)
	for _, alg := range stack.Algorithms()[1:] {
		s, _ := stack.New[int64](alg, stack.WithAggregators(2))
		fmt.Printf("%-28s %10.2f\n", alg, measure(s, goroutines))
	}

	snap := sec.Metrics().Snapshot()
	fmt.Printf("\nSEC internals: %.1f ops/batch, %.0f%% eliminated, %.0f%% combined\n",
		snap.BatchingDegree(), snap.EliminationPct(), snap.CombiningPct())
	fmt.Println("(eliminated operations never touched the shared stack's top pointer)")
}
