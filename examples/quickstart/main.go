// Quickstart: the smallest complete secstack program.
//
// Build and run:
//
//	go run ./examples/quickstart
//
// It constructs a SEC stack through the registry, performs a few
// operations with the handle-free API (each call reuses a session
// cached for the calling goroutine's P behind the scenes - no
// Register needed, and consecutive calls from the same P keep the
// same session, so they ride the engine's solo fast path), and prints
// the LIFO drain order. Register an explicit handle instead when a
// goroutine needs pinned session identity across calls; see
// examples/freelist.
package main

import (
	"fmt"
	"sync"

	"secstack/stack"
)

func main() {
	// A SEC stack with the paper's default configuration: two
	// aggregators, elimination on.
	s, err := stack.New[string](stack.SEC)
	if err != nil {
		panic(err)
	}

	// Goroutines can share the stack directly; handle acquisition,
	// caching and release happen behind Push/Pop/Peek.
	var wg sync.WaitGroup
	for _, word := range []string{"sharded", "elimination", "and", "combining"} {
		wg.Add(1)
		go func(word string) {
			defer wg.Done()
			s.Push(word)
		}(word)
	}
	wg.Wait()

	if top, ok := s.Peek(); ok {
		fmt.Printf("top of stack: %q\n", top)
	}
	for {
		w, ok := s.Pop()
		if !ok {
			break
		}
		fmt.Println(w)
	}

	// Every other algorithm of the paper's evaluation is one call away,
	// and one option vocabulary configures them all.
	for _, alg := range stack.Algorithms() {
		t, err := stack.New[int](alg, stack.WithMaxThreads(64))
		if err != nil {
			panic(err)
		}
		t.Push(1)
		v, _ := t.Pop()
		fmt.Printf("%-3s ok (pushed and popped %d)\n", alg, v)
	}
}
