// Quickstart: the smallest complete secstack program.
//
// Build and run:
//
//	go run ./examples/quickstart
//
// It constructs a SEC stack, registers one handle per goroutine (the
// registration model every stack in this library uses), performs a few
// operations, and prints the LIFO drain order.
package main

import (
	"fmt"
	"sync"

	"secstack/stack"
)

func main() {
	// A SEC stack with the paper's default configuration: two
	// aggregators, elimination on.
	s := stack.NewSEC[string](stack.SECOptions{})

	// Each goroutine registers its own handle; handles carry the
	// per-thread state (aggregator assignment) and must not be shared.
	var wg sync.WaitGroup
	for _, word := range []string{"sharded", "elimination", "and", "combining"} {
		wg.Add(1)
		go func(word string) {
			defer wg.Done()
			h := s.Register()
			h.Push(word)
		}(word)
	}
	wg.Wait()

	// Drain from the main goroutine with its own handle.
	h := s.Register()
	if top, ok := h.Peek(); ok {
		fmt.Printf("top of stack: %q\n", top)
	}
	for {
		w, ok := h.Pop()
		if !ok {
			break
		}
		fmt.Println(w)
	}

	// Every other algorithm of the paper's evaluation is one call away:
	for _, alg := range stack.Algorithms() {
		t, _ := stack.NewByName[int](alg, 2)
		th := t.Register()
		th.Push(1)
		v, _ := th.Pop()
		fmt.Printf("%-3s ok (pushed and popped %d)\n", alg, v)
	}
}
