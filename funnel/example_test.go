package funnel_test

import (
	"fmt"

	"secstack/funnel"
)

// FetchAdd has the hardware fetch&add contract: it returns the counter
// value from immediately before the operation's place in the order.
func ExampleFunnel_sequence() {
	f := funnel.New()
	h := f.Register()
	fmt.Println(h.FetchAdd(10))
	fmt.Println(h.FetchAdd(5))
	fmt.Println(f.Load())
	// Output:
	// 0
	// 10
	// 15
}
