// Package funnel implements a software fetch&add in the style of
// aggregating funnels (Roh, Wei, Ruppert, Fatourou, Jayanti, Shun;
// PPoPP '24) - the work the paper credits for SEC's nested-sharding
// idea. It demonstrates that SEC's aggregator/batch/freeze machinery is
// of independent interest: the exact same protocol, minus elimination
// and with a prefix-sum in place of a substack, yields a scalable
// shared counter.
//
// Threads are partitioned across aggregators; each aggregator batches
// the fetch&add amounts announced by its threads. The first announcer
// of a batch freezes it (after a batch-growing backoff) and acts as the
// delegate: it applies the batch's total to the central counter with a
// single hardware fetch&add and publishes per-operation prefix sums, so
// every announcer receives the value it would have seen had the
// operations run in sequence-number order.
package funnel

import (
	"fmt"
	"sync/atomic"

	"secstack/internal/backoff"
	"secstack/internal/config"
	"secstack/internal/tid"
)

// fBatch is one batch of announced add amounts.
type fBatch struct {
	count         atomic.Int64
	countAtFreeze atomic.Int64
	frozen        atomic.Bool // plays isFreezerDecided's role; seq 0 wins by F&I
	applied       atomic.Bool

	// slots[i] holds the amount announced by sequence number i, encoded
	// as amount<<1|1 so that zero amounts are distinguishable from
	// unwritten slots.
	slots []atomic.Int64

	// results[i] is the central counter value operation i returns;
	// written by the delegate before applied is set.
	results []int64
}

// aggregator holds the active batch pointer, padded against false
// sharing.
type aggregator struct {
	batch atomic.Pointer[fBatch]
	_     [56]byte
}

// Funnel is a sharded fetch&add counter. Use Register for per-goroutine
// handles.
type Funnel struct {
	counter    atomic.Int64
	aggs       []aggregator
	maxPerAgg  int
	spin       int
	tids       *tid.Allocator
	maxThreads int
}

// Option configures New; it is the shared option type of the whole
// repository, so the stack package's WithAggregators, WithMaxThreads
// and WithFreezerSpin work here unchanged.
type Option = config.Option

// WithAggregators sets the shard count (default 2, as in SEC).
func WithAggregators(k int) Option { return config.WithAggregators(k) }

// WithMaxThreads bounds concurrently live handles (default 256). Close
// recycles handle slots, so this is a concurrency bound, not a lifetime
// bound.
func WithMaxThreads(n int) Option { return config.WithMaxThreads(n) }

// WithDelegateSpin sets the delegate's batch-growing backoff in spin
// iterations (default 128; 0 disables). It is the funnel's name for the
// freezer spin shared with the stack and deque.
func WithDelegateSpin(s int) Option { return config.WithFreezerSpin(s) }

// WithInitial sets the counter's starting value.
func WithInitial(v int64) Option { return config.WithInitial(v) }

// New returns a funnel counter.
func New(opts ...Option) *Funnel {
	c := config.Resolve(opts)
	f := &Funnel{
		aggs:       make([]aggregator, c.Aggregators),
		maxPerAgg:  (c.MaxThreads + c.Aggregators - 1) / c.Aggregators,
		spin:       c.FreezerSpin,
		tids:       tid.New(c.MaxThreads),
		maxThreads: c.MaxThreads,
	}
	f.counter.Store(c.Initial)
	for i := range f.aggs {
		f.aggs[i].batch.Store(f.newBatch())
	}
	return f
}

func (f *Funnel) newBatch() *fBatch {
	n := f.tids.InUse()
	p := (n + len(f.aggs) - 1) / len(f.aggs)
	if p < 4 {
		p = 4
	}
	if p > f.maxPerAgg {
		p = f.maxPerAgg
	}
	return &fBatch{
		slots:   make([]atomic.Int64, p),
		results: make([]int64, p),
	}
}

// Handle is a per-goroutine session. Handles must not be shared between
// goroutines, and should be Closed when their goroutine is done so the
// handle slot recycles.
type Handle struct {
	f   *Funnel
	agg *aggregator
	id  int
}

// Register returns a new handle. Thread ids released by Close are
// recycled, so registration panics only when MaxThreads handles are
// live at the same time.
func (f *Funnel) Register() *Handle {
	id, err := f.tids.Acquire()
	if err != nil {
		panic(fmt.Sprintf("funnel: more than MaxThreads=%d handles live", f.maxThreads))
	}
	return &Handle{f: f, agg: &f.aggs[id%len(f.aggs)], id: id}
}

// Close releases the handle's thread id for reuse by a future Register.
// Close is idempotent; any other use of a closed handle is a bug.
func (h *Handle) Close() {
	if h.id < 0 {
		return
	}
	h.f.tids.Release(h.id)
	h.id = -1
}

// Load returns the counter's current value. Batched amounts become
// visible atomically when their delegate applies the batch.
func (f *Funnel) Load() int64 { return f.counter.Load() }

// FetchAdd atomically adds amount to the counter and returns the value
// the counter held immediately before this operation's place in the
// batch order - the same contract as a hardware fetch&add.
func (h *Handle) FetchAdd(amount int64) int64 {
	f := h.f
	for {
		b := h.agg.batch.Load()
		seq := b.count.Add(1) - 1
		if int(seq) < len(b.slots) {
			b.slots[seq].Store(amount<<1 | 1)
		}

		if seq == 0 && !b.frozen.Swap(true) {
			h.freeze(b)
		} else {
			var w backoff.Waiter
			for h.agg.batch.Load() == b {
				w.Wait()
			}
		}

		frozen := b.countAtFreeze.Load()
		if seq >= frozen {
			continue // announced after the freeze: retry in a later batch
		}

		if seq == 0 { // delegate: aggregate, apply, publish prefix sums
			var w backoff.Waiter
			total := int64(0)
			for i := int64(0); i < frozen; i++ {
				var enc int64
				for {
					if enc = b.slots[i].Load(); enc != 0 {
						break
					}
					w.Wait()
				}
				b.results[i] = total // prefix before operation i
				total += enc >> 1
			}
			base := f.counter.Add(total) - total
			for i := int64(0); i < frozen; i++ {
				b.results[i] += base
			}
			b.applied.Store(true)
		} else {
			var w backoff.Waiter
			for !b.applied.Load() {
				w.Wait()
			}
		}
		return b.results[seq]
	}
}

// freeze snapshots the announcement count (clamped to the slot array,
// as in SEC) and installs a fresh batch.
func (h *Handle) freeze(b *fBatch) {
	if h.f.spin > 0 {
		backoff.Spin(h.f.spin)
	}
	n := min(b.count.Load(), int64(len(b.slots)))
	b.countAtFreeze.Store(n)
	h.agg.batch.Store(h.f.newBatch())
}
