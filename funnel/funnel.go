// Package funnel implements a software fetch&add in the style of
// aggregating funnels (Roh, Wei, Ruppert, Fatourou, Jayanti, Shun;
// PPoPP '24) - the work the paper credits for SEC's nested-sharding
// idea. It demonstrates that SEC's aggregator/batch/freeze machinery is
// of independent interest: the exact same protocol, minus elimination
// and with a prefix-sum in place of a substack, yields a scalable
// shared counter. Concretely, the package instantiates the shared
// internal/agg engine with the identity eliminator (fetch&add has no
// opposite operation type to cancel against) and a single-sided
// applier: the batch's delegate - its combiner - applies the batch
// total to the central counter with one hardware fetch&add and
// publishes per-operation prefix sums.
//
// Threads are partitioned across aggregators; each aggregator batches
// the fetch&add amounts announced by its threads. The first announcer
// of a batch freezes it (after a batch-growing backoff) and acts as the
// delegate, so every announcer receives the value it would have seen
// had the operations run in sequence-number order.
package funnel

import (
	"errors"
	"fmt"
	"sync/atomic"

	"secstack/internal/agg"
	"secstack/internal/config"
	"secstack/internal/isession"
	"secstack/internal/metrics"
)

// fnBatch and fnEngine name this package's engine instantiation: the
// announced record is the add amount, and the per-batch payload is the
// delegate's prefix-sum table.
type (
	fnBatch  = agg.Batch[int64, []int64]
	fnEngine = agg.Engine[int64, []int64]
)

// Funnel is a sharded fetch&add counter. Register hands out
// per-goroutine handles (the fast path for worker loops); the direct
// Add method transparently reuses the calling P's cached handle, so
// handle-free callers need no session management at all.
type Funnel struct {
	counter atomic.Int64
	eng     *fnEngine

	cache *isession.Sessions[*Handle]
}

// Option configures New; it is the shared option type of the whole
// repository, so the stack package's WithAggregators, WithMaxThreads
// and WithFreezerSpin work here unchanged.
type Option = config.Option

// WithAggregators sets the shard count (default 2, as in SEC).
func WithAggregators(k int) Option { return config.WithAggregators(k) }

// WithMaxThreads bounds concurrently live handles (default 256). Close
// recycles handle slots, so this is a concurrency bound, not a lifetime
// bound.
func WithMaxThreads(n int) Option { return config.WithMaxThreads(n) }

// WithDelegateSpin sets the delegate's batch-growing backoff in spin
// iterations (default 128; 0 disables). It is the funnel's name for
// the freezer spin of the shared internal/agg engine - the funnel
// keeps no private freezer: the first FetchAdd to announce on an
// aggregator's batch wins the engine's freezer race, becomes the
// batch's delegate, and spins this long before snapshotting the
// counter so later announcers land in the batch it will apply with
// one hardware fetch&add. Larger values aggregate more amounts per
// fetch&add at the price of latency. Under WithAdaptiveSpin this
// value is the ceiling the per-aggregator controller grows toward,
// not the delay every delegation pays.
func WithDelegateSpin(s int) Option { return config.WithFreezerSpin(s) }

// WithAdaptiveSpin toggles the adaptive delegate backoff: each
// aggregator tunes its pre-freeze spin on its batch-degree EWMA,
// growing toward WithDelegateSpin while batches freeze well-filled
// and decaying toward zero while they freeze near-empty, so an
// uncontended funnel's delegations stop waiting for announcers that
// are not coming.
func WithAdaptiveSpin(on bool) Option { return config.WithAdaptiveSpin(on) }

// WithInitial sets the counter's starting value.
func WithInitial(v int64) Option { return config.WithInitial(v) }

// WithMetrics enables the per-aggregator batch occupancy counters,
// retrievable via Metrics. A funnel's elimination rate is zero by
// construction (the identity eliminator).
func WithMetrics() Option { return config.WithMetrics() }

// WithAdaptive toggles contention adaptivity: when an aggregator's
// recent batch degree is ~1, a FetchAdd applies directly with one CAS
// attempt on the central counter (skipping announcement, freeze and
// delegation entirely), falls back to the full protocol when the CAS
// is contended, and the effective aggregator count scales between 1
// and WithAggregators on the observed degree.
func WithAdaptive(on bool) Option { return config.WithAdaptive(on) }

// WithBatchRecycling toggles batch recycling: frozen batches (slot
// arrays and prefix-sum tables) retire to per-aggregator free lists
// for reuse, so the steady-state delegation path allocates nothing.
func WithBatchRecycling(on bool) Option { return config.WithBatchRecycling(on) }

// WithImplicitSessions toggles the per-P affinity tier behind the
// handle-free Add method (default on); see the stack package's option
// of the same name.
func WithImplicitSessions(on bool) Option { return config.WithImplicitSessions(on) }

// WithAnnounceEvery sets the cached implicit sessions' amortized
// hazard-announcement cadence (default 8; 1 restores the eager per-op
// clear); see the stack package's option of the same name.
func WithAnnounceEvery(k int) Option { return config.WithAnnounceEvery(k) }

// New returns a funnel counter.
func New(opts ...Option) *Funnel {
	c := config.Resolve(opts)
	f := &Funnel{}
	f.counter.Store(c.Initial)
	var m *metrics.SEC
	if c.CollectMetrics {
		m = metrics.NewSEC(c.Aggregators)
	}
	f.eng = agg.New(agg.Spec[int64, []int64]{
		Aggregators:  c.Aggregators,
		MaxThreads:   c.MaxThreads,
		FreezerSpin:  c.FreezerSpin,
		AdaptiveSpin: c.AdaptiveSpin,
		Partitioned:  true,
		SingleSided:  true, // announcements use the push side only
		Recycle:      c.BatchRecycle,
		Adaptive:     c.Adaptive,
		Eliminate:    agg.NoElim,
		MakeData:     func(n int) []int64 { return make([]int64, n) },
		// No ResetData: prefix sums carry no references, and the
		// delegate overwrites every entry a reader can reach before the
		// applied handshake.
		ApplyPush:   f.applyBatch,
		TrySoloPush: f.trySoloAdd,
		// ApplyPop is never reached: the funnel announces on the push
		// side only.
		Metrics: m,
	})
	// Cached implicit handles publish their hazard slot once per
	// AnnounceEvery ops (amortized announcement); explicit handles keep
	// the eager per-op clear.
	f.cache = isession.New(c.ImplicitAffinity, func() (*Handle, error) {
		h, err := f.TryRegister()
		if err != nil {
			return nil, err
		}
		f.eng.SetDoneCadence(h.id, c.AnnounceEvery)
		return h, nil
	}, func(h *Handle) { h.Close() })
	return f
}

// Add atomically adds amount to the counter through a cached per-P
// handle and returns the value the counter held immediately before
// this operation's place in the batch order - handle-free FetchAdd.
func (f *Funnel) Add(amount int64) int64 {
	e := f.cache.Acquire()
	v := e.H.FetchAdd(amount)
	f.cache.Release(e)
	return v
}

// trySoloAdd is the solo fast path: one CAS attempt on the central
// counter. A raw fetch&add would be marginally cheaper but can never
// fail, and an attempt that cannot fail cannot observe contention -
// the engine's degree EWMA would pin the funnel in solo mode forever
// and the batching (the very thing an aggregating funnel exists for)
// could never engage. The CAS loses exactly when another operation
// moved the counter first, which is the contention signal that sends
// the operation - and soon the aggregator - back to the full protocol.
func (f *Funnel) trySoloAdd(_ int, b *fnBatch) bool {
	amt := *b.Slot(0)
	old := f.counter.Load()
	if !f.counter.CompareAndSwap(old, old+amt) {
		return false
	}
	b.Data[0] = old
	return true
}

// Metrics returns the per-aggregator degree collector, or nil if
// WithMetrics was not given.
func (f *Funnel) Metrics() *metrics.SEC { return f.eng.Metrics() }

// Handle is a per-goroutine session. Handles must not be shared between
// goroutines, and should be Closed when their goroutine is done so the
// handle slot recycles.
type Handle struct {
	f  *Funnel
	id int

	// amt is the handle's announcement record. One scratch word per
	// handle suffices: every slot of a frozen batch is read by its
	// delegate before the applied flag is raised, and the announcing
	// operation returns only after that flag (or after a post-freeze
	// retry, whose abandoned slot is never read) - so by the time this
	// handle's next FetchAdd overwrites amt, no reader can still need
	// the previous value. (With batch recycling the argument tightens
	// further: recycled slots are cleared before reuse.)
	amt int64
}

// ErrExhausted is returned by TryRegister when MaxThreads handles are
// live at the same time.
var ErrExhausted = errors.New("funnel: more than MaxThreads handles live")

// Register returns a new handle. Thread ids released by Close are
// recycled, so registration panics only when MaxThreads handles are
// live at the same time; TryRegister is the non-panicking variant.
func (f *Funnel) Register() *Handle {
	h, err := f.TryRegister()
	if err != nil {
		panic(fmt.Sprintf("funnel: more than MaxThreads=%d handles live", f.eng.MaxThreads()))
	}
	return h
}

// TryRegister is Register with ErrExhausted in place of the exhaustion
// panic, for callers (like the secd server mapping connections onto
// handles) that prefer backpressure over crashing - the same contract
// the stack, deque and pool packages offer.
func (f *Funnel) TryRegister() (*Handle, error) {
	id, err := f.eng.Register()
	if err != nil {
		return nil, ErrExhausted
	}
	return &Handle{f: f, id: id}, nil
}

// Close releases the handle's thread id for reuse by a future Register.
// Close is idempotent; any other use of a closed handle is a bug.
func (h *Handle) Close() {
	if h.id < 0 {
		return
	}
	h.f.eng.Release(h.id)
	h.id = -1
}

// Load returns the counter's current value. Batched amounts become
// visible atomically when their delegate applies the batch.
func (f *Funnel) Load() int64 { return f.counter.Load() }

// FetchAdd atomically adds amount to the counter and returns the value
// the counter held immediately before this operation's place in the
// batch order - the same contract as a hardware fetch&add.
func (h *Handle) FetchAdd(amount int64) int64 {
	h.amt = amount
	eng := h.f.eng
	t := eng.Push(h.id, eng.AggOf(h.id), &h.amt)
	v := t.B.Data[t.Seq]
	eng.Done(h.id) // finished with the batch's prefix-sum table
	return v
}

// TryFetchAdd attempts FetchAdd with a single CAS on the central
// counter through the session's scratch batch, bypassing announcement
// and delegation regardless of the aggregator's mode - the funnel's
// twin of the engine's TryPush/TryPop steal primitives, for callers
// that would rather retry or walk away than wait out a batch.
// applied=false means the CAS lost to a concurrent operation: the
// counter is unchanged and nothing was announced. applied=true returns
// the value the counter held immediately before the add, exactly as
// FetchAdd does.
func (h *Handle) TryFetchAdd(amount int64) (old int64, applied bool) {
	h.amt = amount
	eng := h.f.eng
	t, applied := eng.TryPush(h.id, eng.AggOf(h.id), &h.amt)
	if !applied {
		return 0, false
	}
	return t.B.Data[t.Seq], true
}

// applyBatch is the delegate's combiner body: walk the frozen batch's
// announced amounts in sequence order accumulating prefix sums, apply
// the total to the central counter with a single hardware fetch&add,
// and rebase the prefixes on the value the counter held before the
// batch.
func (f *Funnel) applyBatch(_ int, b *fnBatch, seq, frozen int64) {
	total := int64(0)
	for i := seq; i < frozen; i++ {
		b.Data[i] = total // prefix before operation i
		total += *b.WaitSlot(i)
	}
	base := f.counter.Add(total) - total
	for i := seq; i < frozen; i++ {
		b.Data[i] += base
	}
}
