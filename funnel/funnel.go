// Package funnel implements a software fetch&add in the style of
// aggregating funnels (Roh, Wei, Ruppert, Fatourou, Jayanti, Shun;
// PPoPP '24) - the work the paper credits for SEC's nested-sharding
// idea. It demonstrates that SEC's aggregator/batch/freeze machinery is
// of independent interest: the exact same protocol, minus elimination
// and with a prefix-sum in place of a substack, yields a scalable
// shared counter.
//
// Threads are partitioned across aggregators; each aggregator batches
// the fetch&add amounts announced by its threads. The first announcer
// of a batch freezes it (after a batch-growing backoff) and acts as the
// delegate: it applies the batch's total to the central counter with a
// single hardware fetch&add and publishes per-operation prefix sums, so
// every announcer receives the value it would have seen had the
// operations run in sequence-number order.
package funnel

import (
	"fmt"
	"sync/atomic"

	"secstack/internal/backoff"
)

// fBatch is one batch of announced add amounts.
type fBatch struct {
	count         atomic.Int64
	countAtFreeze atomic.Int64
	frozen        atomic.Bool // plays isFreezerDecided's role; seq 0 wins by F&I
	applied       atomic.Bool

	// slots[i] holds the amount announced by sequence number i, encoded
	// as amount<<1|1 so that zero amounts are distinguishable from
	// unwritten slots.
	slots []atomic.Int64

	// results[i] is the central counter value operation i returns;
	// written by the delegate before applied is set.
	results []int64
}

// aggregator holds the active batch pointer, padded against false
// sharing.
type aggregator struct {
	batch atomic.Pointer[fBatch]
	_     [56]byte
}

// Funnel is a sharded fetch&add counter. Use Register for per-goroutine
// handles.
type Funnel struct {
	counter    atomic.Int64
	aggs       []aggregator
	maxPerAgg  int
	spin       int
	registered atomic.Int32
	maxThreads int
}

// Options configures a Funnel.
type Options struct {
	// Aggregators is the shard count (default 2, as in SEC).
	Aggregators int
	// MaxThreads bounds Register calls (default 256).
	MaxThreads int
	// DelegateSpin is the freezer's batch-growing backoff (default 128).
	DelegateSpin int
	// Initial is the counter's starting value.
	Initial int64
}

// New returns a funnel counter.
func New(o Options) *Funnel {
	if o.Aggregators <= 0 {
		o.Aggregators = 2
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 256
	}
	if o.DelegateSpin < 0 {
		o.DelegateSpin = 0
	}
	f := &Funnel{
		aggs:       make([]aggregator, o.Aggregators),
		maxPerAgg:  (o.MaxThreads + o.Aggregators - 1) / o.Aggregators,
		spin:       o.DelegateSpin,
		maxThreads: o.MaxThreads,
	}
	f.counter.Store(o.Initial)
	for i := range f.aggs {
		f.aggs[i].batch.Store(f.newBatch())
	}
	return f
}

func (f *Funnel) newBatch() *fBatch {
	n := int(f.registered.Load())
	p := (n + len(f.aggs) - 1) / len(f.aggs)
	if p < 4 {
		p = 4
	}
	if p > f.maxPerAgg {
		p = f.maxPerAgg
	}
	return &fBatch{
		slots:   make([]atomic.Int64, p),
		results: make([]int64, p),
	}
}

// Handle is a per-goroutine session. Handles must not be shared between
// goroutines.
type Handle struct {
	f   *Funnel
	agg *aggregator
}

// Register returns a new handle; it panics past MaxThreads handles.
func (f *Funnel) Register() *Handle {
	tid := int(f.registered.Add(1)) - 1
	if tid >= f.maxThreads {
		panic(fmt.Sprintf("funnel: more than MaxThreads=%d handles registered", f.maxThreads))
	}
	return &Handle{f: f, agg: &f.aggs[tid%len(f.aggs)]}
}

// Load returns the counter's current value. Batched amounts become
// visible atomically when their delegate applies the batch.
func (f *Funnel) Load() int64 { return f.counter.Load() }

// FetchAdd atomically adds amount to the counter and returns the value
// the counter held immediately before this operation's place in the
// batch order - the same contract as a hardware fetch&add.
func (h *Handle) FetchAdd(amount int64) int64 {
	f := h.f
	for {
		b := h.agg.batch.Load()
		seq := b.count.Add(1) - 1
		if int(seq) < len(b.slots) {
			b.slots[seq].Store(amount<<1 | 1)
		}

		if seq == 0 && !b.frozen.Swap(true) {
			h.freeze(b)
		} else {
			var w backoff.Waiter
			for h.agg.batch.Load() == b {
				w.Wait()
			}
		}

		frozen := b.countAtFreeze.Load()
		if seq >= frozen {
			continue // announced after the freeze: retry in a later batch
		}

		if seq == 0 { // delegate: aggregate, apply, publish prefix sums
			var w backoff.Waiter
			total := int64(0)
			for i := int64(0); i < frozen; i++ {
				var enc int64
				for {
					if enc = b.slots[i].Load(); enc != 0 {
						break
					}
					w.Wait()
				}
				b.results[i] = total // prefix before operation i
				total += enc >> 1
			}
			base := f.counter.Add(total) - total
			for i := int64(0); i < frozen; i++ {
				b.results[i] += base
			}
			b.applied.Store(true)
		} else {
			var w backoff.Waiter
			for !b.applied.Load() {
				w.Wait()
			}
		}
		return b.results[seq]
	}
}

// freeze snapshots the announcement count (clamped to the slot array,
// as in SEC) and installs a fresh batch.
func (h *Handle) freeze(b *fBatch) {
	if h.f.spin > 0 {
		backoff.Spin(h.f.spin)
	}
	n := min(b.count.Load(), int64(len(b.slots)))
	b.countAtFreeze.Store(n)
	h.agg.batch.Store(h.f.newBatch())
}
