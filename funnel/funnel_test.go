package funnel

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSingleThreadSequence(t *testing.T) {
	f := New()
	h := f.Register()
	for i := int64(0); i < 100; i++ {
		if got := h.FetchAdd(1); got != i {
			t.Fatalf("FetchAdd #%d returned %d", i, got)
		}
	}
	if f.Load() != 100 {
		t.Fatalf("Load = %d, want 100", f.Load())
	}
}

func TestInitialValue(t *testing.T) {
	f := New(WithInitial(40))
	h := f.Register()
	if got := h.FetchAdd(2); got != 40 {
		t.Fatalf("FetchAdd = %d, want 40", got)
	}
	if f.Load() != 42 {
		t.Fatalf("Load = %d, want 42", f.Load())
	}
}

func TestZeroAmount(t *testing.T) {
	// Amount 0 must be distinguishable from an unwritten slot.
	f := New()
	h := f.Register()
	h.FetchAdd(5)
	if got := h.FetchAdd(0); got != 5 {
		t.Fatalf("FetchAdd(0) = %d, want 5", got)
	}
	if f.Load() != 5 {
		t.Fatalf("Load = %d, want 5", f.Load())
	}
}

func TestNegativeAmounts(t *testing.T) {
	f := New()
	h := f.Register()
	h.FetchAdd(10)
	if got := h.FetchAdd(-3); got != 10 {
		t.Fatalf("FetchAdd(-3) = %d, want 10", got)
	}
	if f.Load() != 7 {
		t.Fatalf("Load = %d, want 7", f.Load())
	}
}

func TestRegisterPanicsPastMaxThreads(t *testing.T) {
	f := New(WithMaxThreads(1))
	f.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Register()
}

// TestConcurrentSumAndUniqueness is the fetch&increment contract the
// paper's introduction leans on (LCRQ-style sequence numbers): with
// delta 1 from every thread, returned values must be exactly
// 0..total-1, each once.
func TestConcurrentSumAndUniqueness(t *testing.T) {
	const g, per = 16, 5000
	for _, aggs := range []int{1, 2, 4} {
		f := New(WithAggregators(aggs))
		seen := make([]int32, g*per)
		var wg sync.WaitGroup
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := f.Register()
				for i := 0; i < per; i++ {
					v := h.FetchAdd(1)
					seen[v]++
				}
			}()
		}
		wg.Wait()
		if f.Load() != g*per {
			t.Fatalf("aggs=%d: Load = %d, want %d", aggs, f.Load(), g*per)
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("aggs=%d: value %d returned %d times", aggs, v, c)
			}
		}
	}
}

// TestConcurrentMixedAmounts checks sum conservation with arbitrary
// per-thread amounts.
func TestConcurrentMixedAmounts(t *testing.T) {
	const g, per = 8, 3000
	f := New()
	var wg sync.WaitGroup
	var want int64
	var mu sync.Mutex
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := f.Register()
			local := int64(0)
			for i := 0; i < per; i++ {
				amt := int64((w*per+i)%7 - 3) // mixed signs incl. zero
				h.FetchAdd(amt)
				local += amt
			}
			mu.Lock()
			want += local
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if got := f.Load(); got != want {
		t.Fatalf("Load = %d, want %d", got, want)
	}
}

// TestPerThreadMonotonicity: with positive deltas, one thread's
// returned values must be strictly increasing (its own adds are ordered
// by its program order).
func TestPerThreadMonotonicity(t *testing.T) {
	const g, per = 8, 2000
	f := New()
	var wg sync.WaitGroup
	errs := make(chan string, g)
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := f.Register()
			prev := int64(-1)
			for i := 0; i < per; i++ {
				v := h.FetchAdd(1)
				if v <= prev {
					errs <- "non-monotonic return"
					return
				}
				prev = v
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestQuickSequentialMatchesPlainCounter(t *testing.T) {
	check := func(amounts []int8) bool {
		f := New()
		h := f.Register()
		plain := int64(0)
		for _, a := range amounts {
			if h.FetchAdd(int64(a)) != plain {
				return false
			}
			plain += int64(a)
		}
		return f.Load() == plain
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFetchAddContended(b *testing.B) {
	f := New()
	b.RunParallel(func(pb *testing.PB) {
		h := f.Register()
		for pb.Next() {
			h.FetchAdd(1)
		}
	})
}
