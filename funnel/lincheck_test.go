package funnel_test

// Linearizability checking for the funnel: concurrent FetchAdd histories
// must admit a real-time-respecting total order in which every
// operation returns the sum of the initial value and all earlier
// amounts. This was the only public package without a lincheck suite;
// the stack and deque suites live next to their packages.

import (
	"sync"
	"testing"

	"secstack/funnel"
	"secstack/internal/lincheck"
	"secstack/internal/xrand"
)

// runHistory drives `threads` goroutines, each performing `opsPer`
// FetchAdds with mixed-sign amounts (including zero), and returns the
// recorded history.
func runHistory(f *funnel.Funnel, threads, opsPer int, seed uint64) []lincheck.CtrOp {
	rec := lincheck.NewCtrRecorder(threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := f.Register()
			defer h.Close()
			rng := xrand.New(seed + uint64(t)*7919)
			for i := 0; i < opsPer; i++ {
				amt := int64(rng.Intn(7)) - 3 // mixed signs incl. zero
				inv := rec.Begin()
				ret := h.FetchAdd(amt)
				rec.Record(t, amt, ret, inv)
			}
		}(t)
	}
	wg.Wait()
	return rec.History()
}

// TestFunnelLinearizability checks many small concurrent histories of
// the funnel with the exhaustive counter checker. History sizes stay
// small enough (<= 16 ops) for the search to be fast.
func TestFunnelLinearizability(t *testing.T) {
	const (
		threads = 4
		opsPer  = 4
		rounds  = 40
	)
	for r := 0; r < rounds; r++ {
		f := funnel.New()
		h := runHistory(f, threads, opsPer, uint64(r)*104729+1)
		if !lincheck.CheckCounter(h, 0) {
			for _, op := range h {
				t.Logf("%s", op)
			}
			t.Fatalf("round %d: funnel history not linearizable", r)
		}
	}
}

// TestFunnelLinearizabilityVariants stresses the funnel-specific knobs:
// shard counts, the delegate's batch-growing backoff at both extremes,
// and a non-zero initial value.
func TestFunnelLinearizabilityVariants(t *testing.T) {
	variants := map[string]struct {
		opts    []funnel.Option
		initial int64
	}{
		"Agg1":    {[]funnel.Option{funnel.WithAggregators(1)}, 0},
		"Agg5":    {[]funnel.Option{funnel.WithAggregators(5)}, 0},
		"NoSpin":  {[]funnel.Option{funnel.WithDelegateSpin(0)}, 0},
		"BigSpin": {[]funnel.Option{funnel.WithDelegateSpin(2048)}, 0},
		"Initial": {[]funnel.Option{funnel.WithInitial(-17)}, -17},
		// Contention adaptivity (DESIGN.md §8): solo hardware fetch&adds
		// race batch-delegated ones; batch recycling reuses frozen
		// prefix-sum batches under the checker.
		"Adaptive":        {[]funnel.Option{funnel.WithAdaptive(true)}, 0},
		"AdaptiveRecycle": {[]funnel.Option{funnel.WithAdaptive(true), funnel.WithBatchRecycling(true)}, 0},
		"BatchRecycle":    {[]funnel.Option{funnel.WithBatchRecycling(true)}, 0},
		// Adaptive delegate backoff (DESIGN.md §9): the spin controller
		// retunes delegation timing mid-history, alone and stacked on the
		// solo fetch&add + batch recycling.
		"AdaptiveSpin":     {[]funnel.Option{funnel.WithAdaptiveSpin(true), funnel.WithDelegateSpin(2048)}, 0},
		"AdaptiveSpinFull": {[]funnel.Option{funnel.WithAdaptiveSpin(true), funnel.WithAdaptive(true), funnel.WithBatchRecycling(true)}, 0},
	}
	for name, v := range variants {
		name, v := name, v
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for r := 0; r < 20; r++ {
				f := funnel.New(v.opts...)
				h := runHistory(f, 4, 4, uint64(r)*31337+5)
				if !lincheck.CheckCounter(h, v.initial) {
					for _, op := range h {
						t.Logf("%s", op)
					}
					t.Fatalf("round %d: funnel history not linearizable", r)
				}
			}
		})
	}
}

// TestFunnelLinearizabilityRecycledHandleSlots churns handle slots
// between operations, as the stack suite does: every operation may run
// on a thread id (and aggregator) another goroutine's closed handle
// just vacated.
func TestFunnelLinearizabilityRecycledHandleSlots(t *testing.T) {
	const (
		threads = 4
		opsPer  = 4
		rounds  = 25
	)
	for r := 0; r < rounds; r++ {
		f := funnel.New(funnel.WithMaxThreads(threads))
		rec := lincheck.NewCtrRecorder(threads)
		var wg sync.WaitGroup
		for tt := 0; tt < threads; tt++ {
			wg.Add(1)
			go func(tt int) {
				defer wg.Done()
				h := f.Register()
				rng := xrand.New(uint64(r)*65537 + uint64(tt)*7919)
				for i := 0; i < opsPer; i++ {
					amt := int64(rng.Intn(5)) - 2
					inv := rec.Begin()
					ret := h.FetchAdd(amt)
					rec.Record(tt, amt, ret, inv)
					// Churn the slot: the next operation runs on whatever
					// id the free list hands back.
					h.Close()
					h = f.Register()
				}
				h.Close()
			}(tt)
		}
		wg.Wait()
		if h := rec.History(); !lincheck.CheckCounter(h, 0) {
			for _, op := range h {
				t.Logf("%s", op)
			}
			t.Fatalf("round %d: recycled-slot funnel history not linearizable", r)
		}
	}
}

// runHistorySteal drives mixed histories in which every FetchAdd first
// attempts TryFetchAdd - the funnel's single-CAS steal primitive,
// bypassing announcement and delegation - and escalates to the full
// batched FetchAdd only when the CAS reports contention. Applied
// steals and delegated operations must linearize together.
func runHistorySteal(f *funnel.Funnel, threads, opsPer int, seed uint64) []lincheck.CtrOp {
	rec := lincheck.NewCtrRecorder(threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := f.Register()
			defer h.Close()
			rng := xrand.New(seed + uint64(t)*7919)
			for i := 0; i < opsPer; i++ {
				amt := int64(rng.Intn(7)) - 3
				inv := rec.Begin()
				ret, applied := h.TryFetchAdd(amt)
				if !applied {
					ret = h.FetchAdd(amt) // contended steal: full protocol
				}
				rec.Record(t, amt, ret, inv)
			}
		}(t)
	}
	wg.Wait()
	return rec.History()
}

// TestFunnelLinearizabilityPutSteal checks TryFetchAdd against the
// exhaustive counter checker across the knobs it interacts with:
// stock delegation, adaptivity (steal CASes race solo ones and mode
// flips), and batch recycling (scratch batches alongside recycled
// prefix-sum batches).
func TestFunnelLinearizabilityPutSteal(t *testing.T) {
	variants := map[string][]funnel.Option{
		"PutSteal":         nil,
		"PutStealAdaptive": {funnel.WithAdaptive(true), funnel.WithBatchRecycling(true)},
		"PutStealFull": {funnel.WithAdaptive(true), funnel.WithBatchRecycling(true),
			funnel.WithAdaptiveSpin(true)},
	}
	for name, opt := range variants {
		name, opt := name, opt
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for r := 0; r < 20; r++ {
				f := funnel.New(opt...)
				h := runHistorySteal(f, 4, 4, uint64(r)*48611+3)
				if !lincheck.CheckCounter(h, 0) {
					for _, op := range h {
						t.Logf("%s", op)
					}
					t.Fatalf("round %d: put-steal history not linearizable", r)
				}
			}
		})
	}
}
