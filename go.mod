module secstack

go 1.24
