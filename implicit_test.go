// Implicit-session tests: the handle-free APIs of all four structures
// under churn, GC pressure and capacity exhaustion. The per-P cache
// behind those APIs (internal/isession) keeps up to GOMAXPROCS
// sessions registered for a structure's lifetime and lets its spill
// tier drop entries on every GC, so these tests race implicit
// operations against forced collections - exactly the regime where a
// dropped entry whose cleanup never ran would leak MaxThreads
// capacity. Run with -race; the slot handoff between a releasing and
// an acquiring goroutine on the same P is a publication the race
// detector should see as ordered.
package secstack_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"secstack/deque"
	"secstack/funnel"
	"secstack/pool"
	"secstack/queue"
	"secstack/stack"
)

// implicitMaxThreads leaves room for the per-P tier (up to GOMAXPROCS
// sessions parked for the structure's lifetime), transient spill
// entries, and the explicit headroom the leak check claims afterward.
func implicitMaxThreads() int { return 2*runtime.GOMAXPROCS(0) + 8 }

// assertExplicitHeadroom asserts that after implicit churn the
// structure can still hand out `want` explicit sessions: the implicit
// layer may keep its per-P capacity parked, and spill entries may
// linger until their cleanups run, but no session may be lost
// outright. Forced collections flush lagging cleanups; only a
// headroom shortfall that survives them is a leak.
func assertExplicitHeadroom(t *testing.T, want int, try func() (close func(), err error)) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	for len(closers) < want {
		c, err := try()
		if err == nil {
			closers = append(closers, c)
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d explicit sessions available after implicit churn: %v",
				len(closers), want, err)
		}
		runtime.GC() // flush cleanups of dropped spill entries
		time.Sleep(time.Millisecond)
	}
}

// implicitChurnWorkers is sized to oversubscribe GOMAXPROCS so implicit
// ops migrate between Ps mid-flight and contend for cached slots.
func implicitChurnWorkers() int { return 4 * runtime.GOMAXPROCS(0) }

// TestImplicitChurnStack drives the SEC stack through the handle-free
// API only, racing forced GCs against the cache's cleanups, then
// checks element conservation and that explicit capacity survived.
func TestImplicitChurnStack(t *testing.T) {
	s := stack.NewSEC[int64](
		stack.WithMaxThreads(implicitMaxThreads()),
		stack.WithAdaptive(true),
		stack.WithBatchRecycling(true),
		stack.WithRecycling(),
	)
	var pushed, popped int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < implicitChurnWorkers(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w+1) << 32
			myPushed, myPopped := int64(0), int64(0)
			for i := int64(1); i <= 300; i++ {
				s.Push(base + i)
				myPushed++
				if i%2 == 0 {
					if _, ok := s.Pop(); ok {
						myPopped++
					}
				}
				if i%64 == 0 {
					runtime.GC() // drop spill entries, queue their cleanups
				}
			}
			mu.Lock()
			pushed += myPushed
			popped += myPopped
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	for {
		if _, ok := s.Pop(); !ok {
			break
		}
		popped++
	}
	if pushed != popped {
		t.Fatalf("implicit stack churn: pushed %d != popped %d", pushed, popped)
	}
	assertExplicitHeadroom(t, 8, func() (func(), error) {
		h, err := s.TryRegister()
		if err != nil {
			return nil, err
		}
		return h.Close, nil
	})
}

// TestImplicitChurnDeque is the deque's version of the churn test,
// through the handle-free PushLeft/PushRight/PopLeft/PopRight only.
func TestImplicitChurnDeque(t *testing.T) {
	d := deque.New[int64](deque.WithMaxThreads(implicitMaxThreads()))
	var pushed, popped int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < implicitChurnWorkers(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w+1) << 32
			myPushed, myPopped := int64(0), int64(0)
			for i := int64(1); i <= 200; i++ {
				if (w+int(i))%2 == 0 {
					d.PushLeft(base + i)
				} else {
					d.PushRight(base + i)
				}
				myPushed++
				if i%3 == 0 {
					if _, ok := d.PopLeft(); ok {
						myPopped++
					}
				}
				if i%64 == 0 {
					runtime.GC()
				}
			}
			mu.Lock()
			pushed += myPushed
			popped += myPopped
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	for {
		if _, ok := d.PopRight(); !ok {
			break
		}
		popped++
	}
	if pushed != popped {
		t.Fatalf("implicit deque churn: pushed %d != popped %d", pushed, popped)
	}
	assertExplicitHeadroom(t, 8, func() (func(), error) {
		h, err := d.TryRegister()
		if err != nil {
			return nil, err
		}
		return h.Close, nil
	})
}

// TestImplicitChurnPool is the pool's version of the churn test,
// through the handle-free Get/Put only.
func TestImplicitChurnPool(t *testing.T) {
	p := pool.New[int64](pool.WithMaxThreads(implicitMaxThreads()), pool.WithShards(3))
	var put, got int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < implicitChurnWorkers(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w+1) << 32
			myPut, myGot := int64(0), int64(0)
			for i := int64(1); i <= 200; i++ {
				p.Put(base + i)
				myPut++
				if i%2 == 0 {
					if _, ok := p.Get(); ok {
						myGot++
					}
				}
				if i%64 == 0 {
					runtime.GC()
				}
			}
			mu.Lock()
			put += myPut
			got += myGot
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	for {
		if _, ok := p.Get(); !ok {
			break
		}
		got++
	}
	if put != got {
		t.Fatalf("implicit pool churn: put %d != got %d", put, got)
	}
	if p.Size() != 0 {
		t.Fatalf("implicit pool churn: Size=%d after full drain", p.Size())
	}
	assertExplicitHeadroom(t, 8, func() (func(), error) {
		h, err := p.TryRegister()
		if err != nil {
			return nil, err
		}
		return h.Close, nil
	})
}

// TestImplicitChurnFunnel is the funnel's version of the churn test,
// through the handle-free Add only.
func TestImplicitChurnFunnel(t *testing.T) {
	f := funnel.New(funnel.WithMaxThreads(implicitMaxThreads()), funnel.WithAdaptive(true))
	var want int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < implicitChurnWorkers(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			my := int64(0)
			for i := int64(1); i <= 300; i++ {
				f.Add(i)
				my += i
				if i%64 == 0 {
					runtime.GC()
				}
			}
			mu.Lock()
			want += my
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if f.Load() != want {
		t.Fatalf("implicit funnel churn: counter %d != sum of adds %d", f.Load(), want)
	}
	assertExplicitHeadroom(t, 8, func() (func(), error) {
		h, err := f.TryRegister()
		if err != nil {
			return nil, err
		}
		return h.Close, nil
	})
}

// TestImplicitChurnQueue drives the bounded queue through the
// handle-free API only, racing forced GCs against the cache's
// cleanups. The queue's capacity bound adds a shape the other
// structures' churns lack: enqueues may be *rejected*, so conservation
// counts admitted enqueues (Enqueue's boolean), not attempts.
func TestImplicitChurnQueue(t *testing.T) {
	q := queue.New[int64](
		queue.WithMaxThreads(implicitMaxThreads()),
		queue.WithCapacity(64), // small: keeps full rejections in play
		queue.WithAdaptive(true),
	)
	var enq, deq int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < implicitChurnWorkers(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w+1) << 32
			myEnq, myDeq := int64(0), int64(0)
			for i := int64(1); i <= 200; i++ {
				if q.TryEnqueue(base + i) {
					myEnq++
				}
				if i%2 == 0 {
					if _, ok := q.TryDequeue(); ok {
						myDeq++
					}
				}
				if i%64 == 0 {
					runtime.GC()
				}
			}
			mu.Lock()
			enq += myEnq
			deq += myDeq
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	for {
		if _, ok := q.Dequeue(); !ok {
			break
		}
		deq++
	}
	if enq != deq {
		t.Fatalf("implicit queue churn: admitted %d != dequeued %d", enq, deq)
	}
	if q.Len() != 0 {
		t.Fatalf("implicit queue churn: Len=%d after full drain", q.Len())
	}
	assertExplicitHeadroom(t, 8, func() (func(), error) {
		h, err := q.TryRegister()
		if err != nil {
			return nil, err
		}
		return h.Close, nil
	})
}

// TestImplicitExhaustionPrompt is the regression test for the
// pre-affinity borrow loop, which forced up to 64 garbage collections
// before surfacing exhaustion (turning a misconfigured MaxThreads
// into a multi-second stall). With every session held explicitly, an
// implicit op must fail fast: at most one forced collection, then the
// exhaustion panic.
func TestImplicitExhaustionPrompt(t *testing.T) {
	s := stack.NewSEC[int64](stack.WithMaxThreads(2))
	h1, h2 := s.Register(), s.Register()
	defer h1.Close()
	defer h2.Close()

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("implicit Push with all sessions held did not panic")
			}
		}()
		s.Push(1)
	}()
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if forced := after.NumGC - before.NumGC; forced > 3 {
		t.Fatalf("exhausted implicit op forced %d collections, want <= 3 (one forced + slack)", forced)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("exhausted implicit op took %v to surface, want prompt", elapsed)
	}
}
