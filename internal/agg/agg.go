// Package agg is the generic sharded-batching engine underneath every
// SEC-style structure in the repository: the aggregator/batch lifecycle
// of Singh, Metaxakis and Fatourou (PPoPP '26), factored out of the
// concrete stack so that the deque and the aggregating-funnel counter
// (Roh et al., PPoPP '24 - the work the paper credits for SEC's
// nested-sharding idea) instantiate the same protocol instead of
// re-implementing it.
//
// The engine owns everything that is structure-agnostic:
//
//   - aggregators (padded active-batch pointers) and the thread-id
//     free list that assigns sessions to them;
//   - announcement by fetch&increment into per-batch push/pop counters,
//     with the push side's value slots;
//   - the freezer race (first announcer of either side wins a test&set),
//     the batch-growing freezer backoff, the clamped counter snapshot,
//     and the fresh-batch install that releases spinning announcers;
//   - elimination bookkeeping, combiner election (the first survivor of
//     a side), and the applied-flag handshake waiters block on;
//   - batch sizing that tracks live sessions, and the per-batch
//     occupancy / elimination-rate counters behind the paper's tables.
//
// A structure parameterises the engine with an Eliminator - how
// opposite-type sequence numbers cancel (pairwise for stack and deque,
// identity for the funnel, which has no opposite type) - and with
// appliers: the push-side and pop-side combiner bodies that apply a
// frozen batch's survivors to the shared structure (a splice-substack
// CAS for the stack, a per-end mutex apply for the deque, one hardware
// fetch&add plus prefix sums for the funnel).
package agg

import (
	"errors"
	"sync/atomic"

	"secstack/internal/backoff"
	"secstack/internal/metrics"
	"secstack/internal/tid"
)

// Eliminator decides e, the number of eliminated pairs of a frozen
// batch, from the two counter snapshots: operations with sequence
// number < e are eliminated against the opposite side; the combiner of
// each surviving side is the operation with sequence number exactly e.
type Eliminator func(pushAtFreeze, popAtFreeze int64) int64

// PairElim cancels equal sequence numbers of opposite type - SEC's
// elimination rule, shared by the stack and (per end) the deque.
func PairElim(pushAtFreeze, popAtFreeze int64) int64 {
	return min(pushAtFreeze, popAtFreeze)
}

// NoElim eliminates nothing: the identity eliminator of the funnel
// (which has no opposite operation type) and of the paper's
// combining-only ablation.
func NoElim(pushAtFreeze, popAtFreeze int64) int64 { return 0 }

// Batch is the unit of freezing, elimination and combining (Figure 1
// of the paper). S is the announced record type (a stack node, a deque
// value, a funnel amount); P is the structure's per-batch payload (the
// detached substack, a pop-result table, a prefix-sum table). The
// counter fields are exported for the structures' appliers and
// whitebox tests; the freeze and applied flags belong to the engine.
type Batch[S, P any] struct {
	PushCount atomic.Int64
	PopCount  atomic.Int64

	// Snapshots taken by the freezer; published to the other threads by
	// the aggregator's batch-pointer swap (release) that every
	// non-freezer waits on (acquire).
	PushAtFreeze atomic.Int64
	PopAtFreeze  atomic.Int64

	frozen      atomic.Bool // the freezer race's test&set bit
	pushApplied atomic.Bool // push combiner finished
	popApplied  atomic.Bool // pop combiner finished; payload valid

	// slots[i] is the record announced by the push-side operation with
	// sequence number i.
	slots []atomic.Pointer[S]

	// Data is the structure-specific payload the pop combiner (or the
	// funnel's delegate) publishes results through.
	Data P
}

// Cap is the batch's per-side capacity (the announcement-slot count).
func (b *Batch[S, P]) Cap() int { return len(b.slots) }

// Slot returns the record announced with sequence number i, or nil if
// the announcer is still between its fetch&increment and its store.
func (b *Batch[S, P]) Slot(i int64) *S { return b.slots[i].Load() }

// StoreSlot announces a record directly; used by the engine's push path
// and by whitebox tests that assemble batches by hand.
func (b *Batch[S, P]) StoreSlot(i int64, v *S) { b.slots[i].Store(v) }

// WaitSlot returns the record announced with sequence number i,
// waiting out the announcer's window between its fetch&increment and
// its slot store.
func (b *Batch[S, P]) WaitSlot(i int64) *S {
	var w backoff.Waiter
	for {
		if p := b.slots[i].Load(); p != nil {
			return p
		}
		w.Wait()
	}
}

// aggregator holds the pointer to its currently active batch, padded so
// that distinct aggregators do not share a cache line.
type aggregator[S, P any] struct {
	batch atomic.Pointer[Batch[S, P]]
	_     [56]byte
}

// Spec parameterises an Engine. Aggregators and MaxThreads are clamped
// to at least 1; MinBatch defaults to 4.
type Spec[S, P any] struct {
	// Aggregators is K, the number of shards. The deque instantiates
	// one aggregator per end.
	Aggregators int

	// MaxThreads bounds concurrently live sessions; it also caps batch
	// slot arrays.
	MaxThreads int

	// FreezerSpin is the freezer's batch-growing pre-freeze backoff in
	// spin iterations (§3.1 of the paper); 0 disables it.
	FreezerSpin int

	// MinBatch floors the slot-array size of freshly allocated batches
	// (default 4).
	MinBatch int

	// Partitioned selects how sessions map to aggregators. True (stack,
	// funnel): session tid mod K fixes the aggregator, and batches are
	// sized for ceil(live/K) threads. False (deque): any session may
	// announce on any aggregator - ends are chosen per operation - so
	// batches are sized for every live session and capped at MaxThreads.
	Partitioned bool

	// SingleSided marks engines whose structures announce on the push
	// side only (the funnel); it halves the occupancy denominator the
	// metrics record per frozen batch.
	SingleSided bool

	// Eliminate is the eliminator; nil defaults to PairElim.
	Eliminate Eliminator

	// MakeData builds the per-batch payload for a batch with n slots;
	// nil leaves Data as P's zero value.
	MakeData func(n int) P

	// ApplyPush is the push-side combiner body: apply the surviving
	// pushes (sequence numbers seq..pushAtFreeze-1, seq the combiner's
	// own) of batch b on aggregator agg to the shared structure. It runs
	// on exactly one thread per frozen batch; the engine publishes its
	// completion to the batch's waiting survivors.
	ApplyPush func(agg int, b *Batch[S, P], seq, pushAtFreeze int64)

	// ApplyPop is the pop-side combiner body: serve the surviving pops
	// (offsets 0..popAtFreeze-e-1) of batch b on aggregator agg,
	// publishing their results through b.Data. Like ApplyPush it runs on
	// exactly one thread per frozen batch.
	ApplyPop func(agg int, b *Batch[S, P], e, popAtFreeze int64)

	// Metrics, when non-nil, receives one occupancy/elimination record
	// per frozen batch.
	Metrics *metrics.SEC
}

// Engine runs the aggregator/batch lifecycle for one shared structure.
type Engine[S, P any] struct {
	aggs        []aggregator[S, P]
	perAgg      int // slot-array cap per aggregator
	minBatch    int
	freezerSpin int
	partitioned bool
	singleSided bool
	eliminate   Eliminator
	makeData    func(n int) P
	applyPush   func(agg int, b *Batch[S, P], seq, pushAtFreeze int64)
	applyPop    func(agg int, b *Batch[S, P], e, popAtFreeze int64)
	m           *metrics.SEC
	tids        *tid.Allocator
	maxThreads  int
}

// New returns an engine with one freshly installed batch per
// aggregator.
func New[S, P any](spec Spec[S, P]) *Engine[S, P] {
	if spec.Aggregators < 1 {
		spec.Aggregators = 1
	}
	if spec.MaxThreads < 1 {
		spec.MaxThreads = 1
	}
	if spec.MinBatch < 1 {
		spec.MinBatch = 4
	}
	if spec.Eliminate == nil {
		spec.Eliminate = PairElim
	}
	perAgg := spec.MaxThreads
	if spec.Partitioned {
		perAgg = (spec.MaxThreads + spec.Aggregators - 1) / spec.Aggregators
	}
	e := &Engine[S, P]{
		aggs:        make([]aggregator[S, P], spec.Aggregators),
		perAgg:      perAgg,
		minBatch:    spec.MinBatch,
		freezerSpin: spec.FreezerSpin,
		partitioned: spec.Partitioned,
		singleSided: spec.SingleSided,
		eliminate:   spec.Eliminate,
		makeData:    spec.MakeData,
		applyPush:   spec.ApplyPush,
		applyPop:    spec.ApplyPop,
		m:           spec.Metrics,
		tids:        tid.New(spec.MaxThreads),
		maxThreads:  spec.MaxThreads,
	}
	for i := range e.aggs {
		e.aggs[i].batch.Store(e.NewBatch())
	}
	return e
}

// NewBatch allocates a batch sized for the sessions currently live, not
// for the MaxThreads worst case: batches are allocated on every freeze,
// so a worst-case array would dominate the allocation rate at low
// thread counts. Announcers past the array (registered after the batch
// was created) are pushed to the next, larger batch by the snapshot
// clamp in Freeze.
func (e *Engine[S, P]) NewBatch() *Batch[S, P] {
	p := e.tids.InUse()
	if e.partitioned {
		p = (p + len(e.aggs) - 1) / len(e.aggs)
	}
	if p < e.minBatch {
		p = e.minBatch
	}
	if p > e.perAgg {
		p = e.perAgg
	}
	b := &Batch[S, P]{slots: make([]atomic.Pointer[S], p)}
	if e.makeData != nil {
		b.Data = e.makeData(p)
	}
	return b
}

// ErrExhausted is returned by Register when MaxThreads sessions are
// live at the same time.
var ErrExhausted = errors.New("agg: all MaxThreads session slots live")

// Register acquires a session: a thread id drawn from the lock-free
// free list. Ids released by Release are reused, so MaxThreads bounds
// concurrently live sessions rather than lifetime registrations.
func (e *Engine[S, P]) Register() (id int, err error) {
	id, err = e.tids.Acquire()
	if err != nil {
		return 0, ErrExhausted
	}
	return id, nil
}

// Release returns a session's id to the free list for reuse.
func (e *Engine[S, P]) Release(id int) { e.tids.Release(id) }

// AggOf maps a session id to its fixed aggregator (partitioned engines
// assign round-robin, giving the even distribution the paper
// prescribes; unpartitioned engines have no fixed assignment and ops
// name their aggregator directly).
func (e *Engine[S, P]) AggOf(id int) int { return id % len(e.aggs) }

// Aggregators reports K.
func (e *Engine[S, P]) Aggregators() int { return len(e.aggs) }

// InUse reports how many sessions are currently live.
func (e *Engine[S, P]) InUse() int { return e.tids.InUse() }

// MaxThreads reports the live-session bound.
func (e *Engine[S, P]) MaxThreads() int { return e.maxThreads }

// Metrics returns the engine's degree collector, or nil when metrics
// are disabled.
func (e *Engine[S, P]) Metrics() *metrics.SEC { return e.m }

// ActiveBatch returns aggregator agg's currently installed batch
// (diagnostics and whitebox tests; the batch may freeze at any time).
func (e *Engine[S, P]) ActiveBatch(agg int) *Batch[S, P] {
	return e.aggs[agg].batch.Load()
}

// Freeze is the paper's FreezeBatch: after the batch-growing backoff,
// snapshot both counters clamped to the slot capacity, then install a
// fresh batch on aggregator agg, which releases every spinning
// announcer. Exactly one thread per batch - the freezer-race winner -
// calls it.
func (e *Engine[S, P]) Freeze(agg int, b *Batch[S, P]) {
	if e.freezerSpin > 0 {
		backoff.Spin(e.freezerSpin) // grow the batch (§3.1)
	}
	limit := int64(len(b.slots))
	pops := min(b.PopCount.Load(), limit)
	pushes := min(b.PushCount.Load(), limit)
	b.PopAtFreeze.Store(pops)
	b.PushAtFreeze.Store(pushes)
	e.aggs[agg].batch.Store(e.NewBatch())
	if e.m != nil {
		capacity := 2 * len(b.slots)
		if e.singleSided {
			capacity = len(b.slots)
		}
		e.m.RecordBatchOcc(agg, int(pushes+pops), int(2*e.eliminate(pushes, pops)), capacity)
	}
}

// freezeOrWait runs the freezer race for an announcer that drew
// sequence number seq: the first announcer of either side freezes the
// batch, everyone else waits for the aggregator's batch-pointer swap.
func (e *Engine[S, P]) freezeOrWait(agg int, b *Batch[S, P], seq int64) {
	if seq == 0 && b.frozen.CompareAndSwap(false, true) {
		e.Freeze(agg, b)
		return
	}
	var w backoff.Waiter
	for e.aggs[agg].batch.Load() == b {
		w.Wait()
	}
}

// PushTicket reports how a push-side announcement was served.
type PushTicket[S, P any] struct {
	B   *Batch[S, P]
	Seq int64 // the announcement's sequence number within its side

	// Eliminated is true when the operation cancelled against the
	// opposite side; its record was (or will be) consumed through the
	// elimination array by its pop partner, and no combiner applies it.
	Eliminated bool
}

// Push announces val on the push side of aggregator agg's active batch
// and drives the operation through the batch lifecycle (Algorithm 1 of
// the paper): freeze race, post-freeze retry, elimination, combiner
// election or applied-wait. On return the operation is linearized -
// eliminated in-batch, or applied to the shared structure by its
// batch's push combiner.
func (e *Engine[S, P]) Push(agg int, val *S) PushTicket[S, P] {
	for {
		b := e.aggs[agg].batch.Load()
		seq := b.PushCount.Add(1) - 1
		if int(seq) < len(b.slots) {
			b.slots[seq].Store(val) // announce the record immediately (line 7)
		}

		e.freezeOrWait(agg, b, seq)

		pushAtF := b.PushAtFreeze.Load()
		popAtF := b.PopAtFreeze.Load()
		if seq >= pushAtF {
			continue // announced after the freeze: retry in a later batch
		}

		el := e.eliminate(pushAtF, popAtF)
		if seq < el {
			// Eliminated: the paired pop reads the record from the slot
			// array; the push returns right away.
			return PushTicket[S, P]{B: b, Seq: seq, Eliminated: true}
		}
		if seq == el { // first survivor: combiner
			e.applyPush(agg, b, seq, pushAtF)
			b.pushApplied.Store(true)
		} else {
			var w backoff.Waiter
			for !b.pushApplied.Load() {
				w.Wait()
			}
		}
		return PushTicket[S, P]{B: b, Seq: seq}
	}
}

// PopTicket reports how a pop-side announcement was served.
type PopTicket[S, P any] struct {
	B   *Batch[S, P]
	Off int64 // offset among the batch's surviving pops (seq - e)
	K   int64 // surviving pops in the batch (popAtFreeze - e)

	// Elim, when non-nil, is the record of the push this pop eliminated
	// against; Off and K are meaningless then.
	Elim *S
}

// Pop announces on the pop side of aggregator agg's active batch and
// drives the operation through the batch lifecycle (Algorithm 2 of the
// paper). An eliminated pop returns its partner's record; a surviving
// pop returns after its batch's pop combiner ran, with its offset into
// the combiner-published results.
func (e *Engine[S, P]) Pop(agg int) PopTicket[S, P] {
	for {
		b := e.aggs[agg].batch.Load()
		seq := b.PopCount.Add(1) - 1

		e.freezeOrWait(agg, b, seq)

		pushAtF := b.PushAtFreeze.Load()
		popAtF := b.PopAtFreeze.Load()
		if seq >= popAtF {
			continue // announced after the freeze: retry in a later batch
		}

		el := e.eliminate(pushAtF, popAtF)
		if seq < el {
			// Eliminated: take the record of the push with our sequence
			// number straight from the slot array.
			return PopTicket[S, P]{B: b, Elim: b.WaitSlot(seq)}
		}

		k := popAtF - el
		if seq == el { // first survivor: combiner
			e.applyPop(agg, b, el, popAtF)
			b.popApplied.Store(true)
		} else {
			var w backoff.Waiter
			for !b.popApplied.Load() {
				w.Wait()
			}
		}
		return PopTicket[S, P]{B: b, Off: seq - el, K: k}
	}
}
