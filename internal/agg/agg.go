// Package agg is the generic sharded-batching engine underneath every
// SEC-style structure in the repository: the aggregator/batch lifecycle
// of Singh, Metaxakis and Fatourou (PPoPP '26), factored out of the
// concrete stack so that the deque and the aggregating-funnel counter
// (Roh et al., PPoPP '24 - the work the paper credits for SEC's
// nested-sharding idea) instantiate the same protocol instead of
// re-implementing it.
//
// The engine owns everything that is structure-agnostic:
//
//   - aggregators (padded active-batch pointers) and the thread-id
//     free list that assigns sessions to them;
//   - announcement by fetch&increment into per-batch push/pop counters,
//     with the push side's value slots;
//   - the freezer race (first announcer of either side wins a test&set),
//     the batch-growing freezer backoff, the clamped counter snapshot,
//     and the fresh-batch install that releases spinning announcers;
//   - elimination bookkeeping, combiner election (the first survivor of
//     a side), and the applied-flag handshake waiters block on;
//   - batch sizing that tracks live sessions, and the per-batch
//     occupancy / elimination-rate counters behind the paper's tables.
//
// A structure parameterises the engine with an Eliminator - how
// opposite-type sequence numbers cancel (pairwise for stack and deque,
// identity for the funnel, which has no opposite type) - and with
// appliers: the push-side and pop-side combiner bodies that apply a
// frozen batch's survivors to the shared structure (a splice-substack
// CAS for the stack, a per-end mutex apply for the deque, one hardware
// fetch&add plus prefix sums for the funnel).
//
// # Lifecycle of one operation
//
// Every full-protocol operation moves through four stages:
//
//  1. Announce: Push/Pop load the session's aggregator's active batch
//     (publishing it through the session's hazard slot when recycling
//     is on) and fetch&increment its side's counter; the returned
//     sequence number is the operation's slot in the batch.
//  2. Freeze: the first announcer of either side wins the freezer race,
//     waits out the batch-growing backoff (fixed or adaptive), snapshots
//     both counters, and installs the next batch - which releases every
//     spinning announcer. Operations that announced past the snapshot
//     retry in the new batch.
//  3. Combine: sequence numbers below the eliminator's e cancel against
//     the opposite side in place; the first survivor of each side
//     becomes that side's combiner, applies all its survivors to the
//     shared structure through the Spec applier, and raises the applied
//     flag its sibling survivors wait on.
//  4. Reclaim: once the caller has consumed its ticket it calls Done,
//     dropping its hazard; retired batches sit in the aggregator's limbo
//     list until an epoch-batched hazard scan proves them quiescent and
//     recycles them (Spec.Recycle) or the GC takes them.
//
// # Contention adaptivity
//
// The full batch lifecycle is worth paying only when there is something
// to batch; the paper's own evaluation shows SEC trailing CAS-per-op
// baselines until contention fills batches (see DESIGN.md §8). Three
// optional mechanisms adapt the machinery to the observed load:
//
//   - Batch recycling (Spec.Recycle): frozen batches retire to a
//     per-aggregator free list and are reused - slot arrays, payloads
//     and all - once no session can still hold them, so the
//     steady-state freeze path allocates nothing. Safety comes from
//     per-session hazard slots: an announcer publishes the batch it is
//     about to use and re-validates the aggregator pointer, so once a
//     batch is uninstalled, the set of sessions that can still touch it
//     is exactly the set whose hazard slot names it.
//   - Solo fast path (Spec.Adaptive + TrySoloPush/TrySoloPop): when an
//     aggregator's recent batch-degree EWMA is ~1, an operation first
//     attempts one direct apply through a per-session single-slot
//     scratch batch - no freezer race, no announcement store, no
//     fresh-batch install; for the stack this degenerates to one
//     Treiber-style CAS - and falls back to the full protocol when the
//     attempt detects contention.
//   - Dynamic shard scaling (Spec.Adaptive, partitioned engines): the
//     effective aggregator count grows and shrinks between 1 and
//     Spec.Aggregators on the same degree signal, remapping AggOf
//     through an atomic epoch so sparse load consolidates into batches
//     and dense load spreads across shards.
//   - Adaptive freezer backoff (Spec.AdaptiveSpin): the freezer's
//     batch-growing pre-freeze spin becomes a per-aggregator controller
//     driven by the same degree EWMA - it grows toward the configured
//     FreezerSpin while batches freeze well-filled (waiting longer is
//     buying batch degree) and decays toward zero while they freeze
//     near-empty (waiting was pure latency), so solo-ish load stops
//     paying the backoff the paper sizes for high contention.
//   - Epoch-batched hazard reclamation (with Spec.Recycle): the full
//     hazard-slot scan that reclaims limbo batches runs at most once
//     per reclaimPeriod freezes (or when the limbo list crosses its
//     high-water mark) instead of on every freeze with a dry free
//     list, and each scan reads the hazard slots once for the whole
//     limbo list rather than once per limbo batch. Scan/skip counters
//     prove the amortization.
//   - Steal primitives (TryPop and TryPush): one direct solo apply
//     through the per-session scratch batch, bypassing mode and
//     announcement entirely - the pool's peek-then-steal probe of
//     foreign shards on the Get side, and its Put-overflow valve on
//     the push side.
//   - Per-aggregator state inheritance on dynamic shard scaling: when
//     the effective shard count grows, the newly-live aggregator's
//     spin controller and batch-degree EWMA are seeded from the mean
//     of the surviving aggregators instead of whatever stale state the
//     shard retired with, so sessions remapped onto it do not pay a
//     spin (or mode) tuned for a load that no longer exists.
package agg

import (
	"errors"
	"sync"
	"sync/atomic"

	"secstack/internal/backoff"
	"secstack/internal/metrics"
	"secstack/internal/pad"
	"secstack/internal/tid"
)

// Eliminator decides e, the number of eliminated pairs of a frozen
// batch, from the two counter snapshots: operations with sequence
// number < e are eliminated against the opposite side; the combiner of
// each surviving side is the operation with sequence number exactly e.
type Eliminator func(pushAtFreeze, popAtFreeze int64) int64

// PairElim cancels equal sequence numbers of opposite type - SEC's
// elimination rule, shared by the stack and (per end) the deque.
func PairElim(pushAtFreeze, popAtFreeze int64) int64 {
	return min(pushAtFreeze, popAtFreeze)
}

// NoElim eliminates nothing: the identity eliminator of the funnel
// (which has no opposite operation type) and of the paper's
// combining-only ablation.
func NoElim(pushAtFreeze, popAtFreeze int64) int64 { return 0 }

// Batch is the unit of freezing, elimination and combining (Figure 1
// of the paper). S is the announced record type (a stack node, a deque
// value, a funnel amount); P is the structure's per-batch payload (the
// detached substack, a pop-result table, a prefix-sum table). The
// counter fields are exported for the structures' appliers and
// whitebox tests; the freeze and applied flags belong to the engine.
//
// The three words every announcer hammers - the push counter, the pop
// counter, and the freezer-race bit - live on separate cache lines:
// push announcers fetch&increment PushCount, pop announcers PopCount,
// and the two seq-0 announcers race on frozen, so co-locating them
// (as the pre-pad layout did) bounced one line between all three
// groups.
type Batch[S, P any] struct {
	PushCount atomic.Int64
	_         [pad.CacheLine - 8]byte

	PopCount atomic.Int64
	_        [pad.CacheLine - 8]byte

	frozen atomic.Bool // the freezer race's test&set bit
	_      [pad.CacheLine - 1]byte

	// Snapshots taken by the freezer; published to the other threads by
	// the aggregator's batch-pointer swap (release) that every
	// non-freezer waits on (acquire). Read-mostly after the freeze, so
	// they share a line with the applied flags.
	PushAtFreeze atomic.Int64
	PopAtFreeze  atomic.Int64

	pushApplied atomic.Bool // push combiner finished
	popApplied  atomic.Bool // pop combiner finished; payload valid

	// slots[i] is the record announced by the push-side operation with
	// sequence number i.
	slots []atomic.Pointer[S]

	// Data is the structure-specific payload the pop combiner (or the
	// funnel's delegate) publishes results through.
	Data P
}

// Cap is the batch's per-side capacity (the announcement-slot count).
func (b *Batch[S, P]) Cap() int { return len(b.slots) }

// Slot returns the record announced with sequence number i, or nil if
// the announcer is still between its fetch&increment and its store.
func (b *Batch[S, P]) Slot(i int64) *S { return b.slots[i].Load() }

// StoreSlot announces a record directly; used by the engine's push path
// and by whitebox tests that assemble batches by hand.
func (b *Batch[S, P]) StoreSlot(i int64, v *S) { b.slots[i].Store(v) }

// WaitSlot returns the record announced with sequence number i,
// waiting out the announcer's window between its fetch&increment and
// its slot store.
func (b *Batch[S, P]) WaitSlot(i int64) *S {
	var w backoff.Waiter
	for {
		if p := b.slots[i].Load(); p != nil {
			return p
		}
		w.Wait()
	}
}

// aggregator holds the pointer to its currently active batch, padded so
// that distinct aggregators do not share a cache line. The limbo and
// free lists behind batch recycling also live here: they are touched
// only inside Freeze, and freezes of one aggregator are serialized (a
// batch's freezer can only start after the previous install made the
// batch visible), so plain slices suffice - the install's release store
// is the happens-before edge between successive freezers.
type aggregator[S, P any] struct {
	batch atomic.Pointer[Batch[S, P]]
	_     [pad.CacheLine - 8]byte

	limbo []*Batch[S, P] // retired, possibly still held through a hazard
	free  []*Batch[S, P] // quiescent, ready for reuse

	// hzbuf is the reclaim scan's scratch: the non-nil hazard pointers
	// collected in its single pass over the hazard slots. Cleared after
	// each scan so it never pins a batch; freezer-owned like the lists.
	hzbuf []*Batch[S, P]

	// sinceScan counts freezes since the last full hazard scan; the
	// reclaim epoch (reclaimPeriod) is measured against it.
	sinceScan int

	// Round the struct to a cache-line multiple so the next
	// aggregator's hot batch pointer does not share a line with this
	// one's list headers (which every Freeze rewrites); sharing a line
	// with our *own* batch pointer would be harmless - Freeze writes
	// that too - but the neighbour's is announcer-hot.
	_ [2*pad.CacheLine - 3*24 - 8]byte
}

// aggCtl is one aggregator's adaptivity state: the batch-degree EWMA
// (fixed point, degreeUnit = 1.0), the solo/batched mode bit, and the
// fast-path hit/miss counters feeding internal/metrics. Padded so the
// solo regime's per-op updates stay on a line owned by one aggregator.
type aggCtl struct {
	// First line: the control words every operation reads (and, in
	// steady state, only reads - observe skips identity stores). Kept
	// apart from the counters below so the per-op counter RMWs do not
	// bounce the line the mode gate lives on.
	mode atomic.Int64 // modeBatched or modeSolo
	ewma atomic.Int64 // batch-degree EWMA in degreeUnit fixed point

	// spin is the current effective pre-freeze backoff in spin
	// iterations (adaptive spin only; fixed engines read freezerSpin
	// directly). Written only by freezers - but the update runs after
	// the next-batch install, so a descheduled freezer can overlap the
	// next one's update and lose a step; like the EWMA, the controller
	// tolerates that (the value stays clamped in [0, ceiling]) rather
	// than pay a CAS loop. Atomic so concurrent readers and writers
	// stay defined.
	spin atomic.Int64

	_ [pad.CacheLine - 3*8]byte

	// Second line: per-event counters.
	freezes  atomic.Int64 // frozen batches; drives resize checks
	fastHits atomic.Int64 // solo attempts that applied directly
	fastMiss atomic.Int64 // solo attempts that hit contention

	// reclaimScans and reclaimSkips count, per aggregator, the freezes
	// whose reclaim ran a full hazard scan versus those that deferred
	// one the pre-epoch engine would have run (free list dry, limbo
	// non-empty). skips/(scans+skips) is the amortization win.
	reclaimScans atomic.Int64
	reclaimSkips atomic.Int64

	// inherits counts how many times this aggregator went live through
	// a shard-scaling grow and had its controller state seeded from the
	// surviving aggregators' mean.
	inherits atomic.Int64

	_ [pad.CacheLine - 6*8]byte
}

const (
	modeBatched = 0
	modeSolo    = 1

	// degreeUnit is the fixed-point scale of the batch-degree EWMA.
	degreeUnit = 16

	// soloEnterMax and soloExitMin bound the hysteresis band: an
	// aggregator whose EWMA decays to <= 1.25 ops/batch enters solo
	// mode, one whose EWMA climbs to >= 2.0 returns to the full
	// protocol; in between the mode holds.
	soloEnterMax = 5 * degreeUnit / 4
	soloExitMin  = 2 * degreeUnit

	// soloObsHit and soloObsMiss are the degree observations a solo
	// attempt feeds the EWMA: a direct apply is a degree-1 batch, a
	// contention failure is evidence of concurrent operations and is
	// weighted heavily so a burst of misses exits solo mode within a
	// few operations.
	soloObsHit  = degreeUnit
	soloObsMiss = 4 * degreeUnit

	// resizePeriod is how many freezes an aggregator performs between
	// shard-scaling checks; growDegree/shrinkDegree are the mean-EWMA
	// thresholds that grow or shrink the effective aggregator count.
	resizePeriod = 64
	growDegree   = 6 * degreeUnit
	shrinkDegree = 2 * degreeUnit

	// maxFree bounds each aggregator's recycled-batch free list; excess
	// quiescent batches drop to the garbage collector.
	maxFree = 8

	// reclaimPeriod is K of the reclaim epoch: with recycling on, the
	// full hazard scan runs at most once per reclaimPeriod freezes of an
	// aggregator. It equals maxFree on purpose - one scan must refill
	// the free list with enough quiescent batches to feed the freezes
	// until the next scan, or the deferred freezes would allocate.
	reclaimPeriod = maxFree

	// limboHighWater forces a scan early when retired batches pile up
	// (many sessions parked on hazards), bounding the limbo list
	// independently of the epoch.
	limboHighWater = 2 * maxFree

	// spinGrowDeg and spinDecayDeg are the EWMA thresholds of the
	// adaptive freezer backoff: batches freezing with degree >= 2.5
	// show the backoff buying batch degree, so the spin grows toward
	// the configured ceiling; degree <= 1.5 shows it buying nothing, so
	// the spin decays toward zero. In between the spin holds.
	spinGrowDeg  = 5 * degreeUnit / 2
	spinDecayDeg = 3 * degreeUnit / 2
)

// HazardSlot is one session's published batch reference (recycling
// only), padded so sessions do not share hazard lines. It is exported
// (with unexported fields) so structure handles can cache their slot
// pointer via Engine.Hazard and run the op-end Done bookkeeping
// inline: the indexed engine-side Engine.Done sits just over the
// inlining budget, and the op-end clear is on every operation's path.
//
// every and count drive amortized announcement (SetDoneCadence): Done
// clears the hazard only on every every-th call, so a session that
// performs bursts of operations pays one hazard clear (and one
// republish in announce) per cadence window instead of per op. The
// fields are plain, not atomic: they are read and written only by the
// session holding this id, and the tid free list's CAS handoff is the
// happens-before edge when the id moves to a new owner. A stale
// hazard left up between ops pins at most one retired batch per
// session, the same bound the scan already tolerates for a session
// parked mid-operation.
type HazardSlot[S, P any] struct {
	p     atomic.Pointer[Batch[S, P]]
	every int32
	count int32
	_     [pad.CacheLine - 16]byte
}

// Done ends one operation for the session owning this slot: count the
// cadence window and clear the published hazard when it closes. Split
// into Tick and Clear because the combined body lands just over the
// generic-shape inlining budget: separately each half inlines, so
// every structure op ends in straight-line code.
func (hz *HazardSlot[S, P]) Done() {
	if hz.Tick() {
		hz.Clear()
	}
}

// Tick advances the cadence window and reports whether the hazard is
// due for a clear. With no cadence set (every <= 1) the comparison
// fails immediately and every call is due - the eager default.
func (hz *HazardSlot[S, P]) Tick() bool {
	if n := hz.count + 1; n < hz.every {
		hz.count = n
		return false
	}
	hz.count = 0
	return true
}

// Clear drops the published hazard.
func (hz *HazardSlot[S, P]) Clear() {
	hz.p.Store(nil)
}

// Spec parameterises an Engine. Aggregators and MaxThreads are clamped
// to at least 1; MinBatch defaults to 4.
type Spec[S, P any] struct {
	// Aggregators is K, the number of shards. The deque instantiates
	// one aggregator per end. Under Adaptive this is the ceiling of the
	// effective shard count.
	Aggregators int

	// MaxThreads bounds concurrently live sessions; it also caps batch
	// slot arrays.
	MaxThreads int

	// FreezerSpin is the freezer's batch-growing pre-freeze backoff in
	// spin iterations (§3.1 of the paper); 0 disables it. Under
	// AdaptiveSpin it is the ceiling of the per-aggregator controller.
	FreezerSpin int

	// AdaptiveSpin replaces the fixed FreezerSpin with a per-aggregator
	// controller driven by the batch-degree EWMA: the effective spin
	// grows toward FreezerSpin while batches freeze well-filled and
	// decays toward zero while they freeze near-empty. With
	// FreezerSpin 0 there is nothing to adapt and the spin stays 0.
	AdaptiveSpin bool

	// MinBatch floors the slot-array size of freshly allocated batches
	// (default 4).
	MinBatch int

	// Partitioned selects how sessions map to aggregators. True (stack,
	// funnel): session tid mod the effective aggregator count fixes the
	// aggregator, and batches are sized for ceil(live/K) threads. False
	// (deque): any session may announce on any aggregator - ends are
	// chosen per operation - so batches are sized for every live
	// session and capped at MaxThreads. Dynamic shard scaling applies
	// only to partitioned engines; an unpartitioned engine's
	// aggregators are semantic (the deque's ends).
	Partitioned bool

	// SingleSided marks engines whose structures announce on the push
	// side only (the funnel); it halves the occupancy denominator the
	// metrics record per frozen batch.
	SingleSided bool

	// Recycle enables batch recycling: frozen batches return to a
	// per-aggregator free list once hazard-quiescent and are reused
	// instead of reallocated.
	Recycle bool

	// Adaptive enables the solo fast path (when TrySoloPush/TrySoloPop
	// are provided) and, for partitioned engines with Aggregators > 1,
	// dynamic shard scaling.
	Adaptive bool

	// Eliminate is the eliminator; nil defaults to PairElim.
	Eliminate Eliminator

	// MakeData builds the per-batch payload for a batch with n slots;
	// nil leaves Data as P's zero value.
	MakeData func(n int) P

	// ResetData re-initializes a recycled batch's payload before reuse
	// (clear published pointers, drop references the GC should have).
	// nil skips payload reset - correct only when every payload entry a
	// reader can reach is overwritten by the applier first.
	ResetData func(p *P)

	// ApplyPush is the push-side combiner body: apply the surviving
	// pushes (sequence numbers seq..pushAtFreeze-1, seq the combiner's
	// own) of batch b on aggregator agg to the shared structure. It runs
	// on exactly one thread per frozen batch; the engine publishes its
	// completion to the batch's waiting survivors.
	ApplyPush func(agg int, b *Batch[S, P], seq, pushAtFreeze int64)

	// ApplyPop is the pop-side combiner body: serve the surviving pops
	// (offsets 0..popAtFreeze-e-1) of batch b on aggregator agg,
	// publishing their results through b.Data. Like ApplyPush it runs on
	// exactly one thread per frozen batch.
	ApplyPop func(agg int, b *Batch[S, P], e, popAtFreeze int64)

	// TrySoloPush attempts to apply the single push announced in slot 0
	// of the one-slot scratch batch b directly to the shared structure,
	// without the batch protocol. It must either apply the operation
	// and return true, or leave the structure unchanged and return
	// false (contention detected). One CAS attempt for the stack, a
	// TryLock for the deque, an unconditional hardware fetch&add for
	// the funnel.
	TrySoloPush func(agg int, b *Batch[S, P]) bool

	// TrySoloPop is TrySoloPush's pop-side twin: serve one pop directly,
	// publishing the result through b.Data as the pop applier would.
	TrySoloPop func(agg int, b *Batch[S, P]) bool

	// Metrics, when non-nil, receives one occupancy/elimination record
	// per frozen batch plus the solo fast path's hit/miss counters.
	Metrics *metrics.SEC
}

// Engine runs the aggregator/batch lifecycle for one shared structure.
type Engine[S, P any] struct {
	aggs         []aggregator[S, P]
	ctl          []aggCtl
	minBatch     int
	freezerSpin  int
	adaptiveSpin bool
	partitioned  bool
	singleSided  bool
	recycle      bool
	adaptive     bool
	eliminate    Eliminator
	makeData     func(n int) P
	resetData    func(p *P)
	applyPush    func(agg int, b *Batch[S, P], seq, pushAtFreeze int64)
	applyPop     func(agg int, b *Batch[S, P], e, popAtFreeze int64)
	trySoloPush  func(agg int, b *Batch[S, P]) bool
	trySoloPop   func(agg int, b *Batch[S, P]) bool
	m            *metrics.SEC
	tids         *tid.Allocator
	maxThreads   int

	// soloPushOn/soloPopOn precompute "adaptive && applier present" so
	// the per-op solo gate in Push/Pop is one flag test plus the mode
	// load instead of three loads and branches.
	soloPushOn bool
	soloPopOn  bool

	// effK is the effective aggregator count in [1, len(aggs)];
	// scaleEpoch increments on every resize so observers (and tests)
	// can detect remappings. Non-adaptive engines pin effK = len(aggs).
	// resizeMu serializes resizes (rare: at most one check per
	// resizePeriod freezes per aggregator), so a grow's controller
	// seeding cannot race another grow into clobbering a shard that
	// just went live; freezers never block on it (TryLock).
	effK       atomic.Int32
	scaleEpoch atomic.Uint64
	resizeMu   sync.Mutex

	// hazards[id] is session id's published batch reference; solo[id]
	// its scratch batch. Both indexed by session id, each entry owned
	// by the session holding that id (the tid free list's CAS handoff
	// is the happens-before edge across owners).
	hazards []HazardSlot[S, P]
	solo    []*Batch[S, P]
}

// New returns an engine with one freshly installed batch per
// aggregator.
func New[S, P any](spec Spec[S, P]) *Engine[S, P] {
	if spec.Aggregators < 1 {
		spec.Aggregators = 1
	}
	if spec.MaxThreads < 1 {
		spec.MaxThreads = 1
	}
	if spec.MinBatch < 1 {
		spec.MinBatch = 4
	}
	if spec.Eliminate == nil {
		spec.Eliminate = PairElim
	}
	e := &Engine[S, P]{
		aggs:         make([]aggregator[S, P], spec.Aggregators),
		ctl:          make([]aggCtl, spec.Aggregators),
		minBatch:     spec.MinBatch,
		freezerSpin:  spec.FreezerSpin,
		adaptiveSpin: spec.AdaptiveSpin && spec.FreezerSpin > 0,
		partitioned:  spec.Partitioned,
		singleSided:  spec.SingleSided,
		recycle:      spec.Recycle,
		adaptive:     spec.Adaptive,
		eliminate:    spec.Eliminate,
		makeData:     spec.MakeData,
		resetData:    spec.ResetData,
		applyPush:    spec.ApplyPush,
		applyPop:     spec.ApplyPop,
		trySoloPush:  spec.TrySoloPush,
		trySoloPop:   spec.TrySoloPop,
		m:            spec.Metrics,
		tids:         tid.New(spec.MaxThreads),
		maxThreads:   spec.MaxThreads,
	}
	e.soloPushOn = e.adaptive && e.trySoloPush != nil
	e.soloPopOn = e.adaptive && e.trySoloPop != nil
	e.effK.Store(int32(spec.Aggregators))
	if e.recycle {
		e.hazards = make([]HazardSlot[S, P], spec.MaxThreads)
	}
	if e.adaptive || e.trySoloPush != nil || e.trySoloPop != nil {
		// Scratch batches back both the solo fast path and the TryPop
		// steal primitive; the latter works with Adaptive off.
		e.solo = make([]*Batch[S, P], spec.MaxThreads)
	}
	if e.adaptive || e.adaptiveSpin {
		for i := range e.ctl {
			// Start optimistic: assume no contention until a freeze or a
			// solo miss proves otherwise. Engines without solo appliers
			// stay in batched mode regardless.
			e.ctl[i].ewma.Store(degreeUnit)
			if e.adaptive && e.trySoloPush != nil {
				e.ctl[i].mode.Store(modeSolo)
			}
		}
	}
	if e.adaptiveSpin {
		for i := range e.ctl {
			// Start at the configured (paper-sized) spin: a contended
			// start behaves exactly like the fixed setting, and solo-ish
			// load decays it within a few near-empty freezes.
			e.ctl[i].spin.Store(int64(spec.FreezerSpin))
		}
	}
	for i := range e.aggs {
		e.aggs[i].batch.Store(e.NewBatch())
	}
	return e
}

// sizeBatch is the live-session batch sizing rule: size for the
// sessions currently live (per effective aggregator when partitioned),
// floored at MinBatch and capped at each aggregator's worst-case share
// of MaxThreads.
func (e *Engine[S, P]) sizeBatch() int {
	p := e.tids.InUse()
	cap := e.maxThreads
	if e.partitioned {
		k := int(e.effK.Load())
		p = (p + k - 1) / k
		cap = (e.maxThreads + k - 1) / k
	}
	if p < e.minBatch {
		p = e.minBatch
	}
	if p > cap {
		p = cap
	}
	return p
}

// NewBatch allocates a batch sized for the sessions currently live, not
// for the MaxThreads worst case: without recycling, batches are
// allocated on every freeze, so a worst-case array would dominate the
// allocation rate at low thread counts. Announcers past the array
// (registered after the batch was created) are pushed to the next,
// larger batch by the snapshot clamp in Freeze.
func (e *Engine[S, P]) NewBatch() *Batch[S, P] {
	p := e.sizeBatch()
	b := &Batch[S, P]{slots: make([]atomic.Pointer[S], p)}
	if e.makeData != nil {
		b.Data = e.makeData(p)
	}
	return b
}

// resetBatch re-initializes a recycled batch for a fresh announcement
// cycle: every slot cleared (a stale record here would satisfy the next
// cycle's WaitSlot with the wrong value), counters, snapshots and flags
// zeroed, payload reset through the structure's hook. Runs only inside
// Freeze, before the install that publishes the batch.
func (e *Engine[S, P]) resetBatch(b *Batch[S, P]) {
	for i := range b.slots {
		b.slots[i].Store(nil)
	}
	b.PushCount.Store(0)
	b.PopCount.Store(0)
	b.PushAtFreeze.Store(0)
	b.PopAtFreeze.Store(0)
	b.pushApplied.Store(false)
	b.popApplied.Store(false)
	b.frozen.Store(false)
	if e.resetData != nil {
		e.resetData(&b.Data)
	}
}

// reclaim is the full hazard scan: one pass over the HighWater hazard
// slots collecting the published batches, then one pass over a's limbo
// list filtering against that set - hazard-quiescent batches move to
// the free list (overflow drops to the GC). Hazard-major order makes
// the scan cost HighWater atomic loads per *scan*, not per limbo
// entry; the epoch in nextBatch makes scans rare. Called only inside
// Freeze.
//
// Soundness: every session publishes its batch before using it and
// re-validates the aggregator pointer afterwards, so once a batch is
// uninstalled (which happens before it can reach limbo), a session
// whose re-validation succeeded is visible to this scan's hazard-slot
// pass, and one whose re-validation will fail never touches the batch
// again.
func (e *Engine[S, P]) reclaim(a *aggregator[S, P]) {
	hz := a.hzbuf[:0]
	n := e.tids.HighWater()
	for i := 0; i < n; i++ {
		if p := e.hazards[i].p.Load(); p != nil {
			hz = append(hz, p)
		}
	}
	keep := a.limbo[:0]
	for _, b := range a.limbo {
		held := false
		for _, h := range hz {
			if h == b {
				held = true
				break
			}
		}
		switch {
		case held:
			keep = append(keep, b)
		case len(a.free) < maxFree:
			a.free = append(a.free, b)
		}
	}
	for i := len(keep); i < len(a.limbo); i++ {
		a.limbo[i] = nil
	}
	a.limbo = keep
	for i := range hz {
		hz[i] = nil // the scratch must not pin batches until the next scan
	}
	a.hzbuf = hz[:0]
}

// nextBatch produces the batch Freeze installs: a recycled one when
// recycling is on and a quiescent batch of sufficient capacity exists,
// a fresh allocation otherwise. Called only inside Freeze.
//
// The reclaim epoch lives here: a full hazard scan runs at most once
// per reclaimPeriod freezes - or early, when the limbo list crosses
// its high-water mark - instead of on every freeze that finds the free
// list dry. reclaimPeriod equals maxFree, so one scan stocks the free
// list for the whole epoch and the deferred freezes between scans
// still reuse batches rather than allocate.
func (e *Engine[S, P]) nextBatch(agg int) *Batch[S, P] {
	if !e.recycle {
		return e.NewBatch()
	}
	a := &e.aggs[agg]
	a.sinceScan++
	if len(a.limbo) > 0 {
		switch {
		case a.sinceScan >= reclaimPeriod || len(a.limbo) >= limboHighWater:
			a.sinceScan = 0
			e.ctl[agg].reclaimScans.Add(1)
			e.m.RecordReclaim(agg, true)
			e.reclaim(a)
		case len(a.free) == 0:
			// The pre-epoch engine scanned here; count the deferral.
			e.ctl[agg].reclaimSkips.Add(1)
			e.m.RecordReclaim(agg, false)
		}
	}
	want := e.sizeBatch()
	for n := len(a.free); n > 0; n = len(a.free) {
		b := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		if len(b.slots) >= want {
			e.resetBatch(b)
			return b
		}
		// Undersized for the current session count (threads grew since
		// it was allocated): drop it and let the GC have it.
	}
	return e.NewBatch()
}

// ErrExhausted is returned by Register when MaxThreads sessions are
// live at the same time.
var ErrExhausted = errors.New("agg: all MaxThreads session slots live")

// Register acquires a session: a thread id drawn from the lock-free
// free list. Ids released by Release are reused, so MaxThreads bounds
// concurrently live sessions rather than lifetime registrations.
func (e *Engine[S, P]) Register() (id int, err error) {
	id, err = e.tids.Acquire()
	if err != nil {
		return 0, ErrExhausted
	}
	return id, nil
}

// Release returns a session's id to the free list for reuse. Any
// hazard the session still published is cleared so an idle slot can
// never pin a retired batch, and the amortized-announcement cadence
// resets so a recycled id never inherits the previous owner's.
func (e *Engine[S, P]) Release(id int) {
	if e.recycle {
		hz := &e.hazards[id]
		hz.every, hz.count = 0, 0
		hz.p.Store(nil)
	}
	e.tids.Release(id)
}

// Done marks the end of one operation: the session is finished reading
// the ticket its Push or Pop returned (including the batch payload),
// so its hazard no longer pins the batch. Structures call it once per
// operation, after consuming the ticket; it is a no-op without batch
// recycling.
//
// Under a Done cadence (SetDoneCadence) the clear is amortized: the
// hazard stays published for every-1 of every calls, so the next
// announce on the same batch skips its publish-and-revalidate. Kept
// under the inlining budget on purpose - every structure op ends here.
func (e *Engine[S, P]) Done(id int) {
	if e.recycle {
		e.hazards[id].Done()
	}
}

// Hazard returns session id's hazard slot, or nil when batch recycling
// is off. Structure handles cache the pointer at registration so their
// op-end Done (and its cadence bookkeeping) inlines instead of paying
// an engine call per operation; the slice is sized at MaxThreads in
// New and never reallocates, so the pointer stays valid for the
// engine's lifetime.
func (e *Engine[S, P]) Hazard(id int) *HazardSlot[S, P] {
	if !e.recycle {
		return nil
	}
	return &e.hazards[id]
}

// SetDoneCadence makes session id clear its hazard on every k-th Done
// instead of every one - amortized announcement for callers (the
// implicit-session layer) whose handles perform long runs of
// operations on one aggregator. Between clears the session's hazard
// keeps the current batch published, so consecutive announces skip
// their publish-and-revalidate; the cost is that an idle session may
// pin one retired batch until its cadence window closes, which the
// reclaim scan already tolerates (same bound as a session parked
// mid-operation). k < 1 is treated as 1, the eager default. No-op
// without batch recycling (there is no hazard to amortize).
func (e *Engine[S, P]) SetDoneCadence(id, k int) {
	if !e.recycle {
		return
	}
	if k < 1 {
		k = 1
	}
	hz := &e.hazards[id]
	hz.every = int32(k)
	hz.count = 0
}

// AggOf maps a session id to its fixed aggregator (partitioned engines
// assign round-robin over the effective aggregator count, giving the
// even distribution the paper prescribes; unpartitioned engines have no
// fixed assignment and ops name their aggregator directly). Under
// dynamic shard scaling the mapping changes with the scale epoch, so
// handles consult it per operation rather than caching the result.
func (e *Engine[S, P]) AggOf(id int) int { return id % int(e.effK.Load()) }

// Aggregators reports K, the configured shard ceiling.
func (e *Engine[S, P]) Aggregators() int { return len(e.aggs) }

// EffectiveAggregators reports the current effective shard count in
// [1, Aggregators]; fixed at Aggregators when Adaptive is off.
func (e *Engine[S, P]) EffectiveAggregators() int { return int(e.effK.Load()) }

// ScaleEpoch reports how many times the effective shard count has been
// remapped.
func (e *Engine[S, P]) ScaleEpoch() uint64 { return e.scaleEpoch.Load() }

// FastPath reports aggregator agg's solo fast-path hit and miss
// counts.
func (e *Engine[S, P]) FastPath(agg int) (hits, misses int64) {
	return e.ctl[agg].fastHits.Load(), e.ctl[agg].fastMiss.Load()
}

// EffectiveSpin reports the pre-freeze backoff aggregator agg
// currently pays (equal to Spec.FreezerSpin unless AdaptiveSpin
// retuned it).
func (e *Engine[S, P]) EffectiveSpin(agg int) int { return e.spinFor(agg) }

// ReclaimStats reports how many of aggregator agg's freezes ran a full
// hazard scan and how many deferred one under the reclaim epoch.
func (e *Engine[S, P]) ReclaimStats(agg int) (scans, skips int64) {
	return e.ctl[agg].reclaimScans.Load(), e.ctl[agg].reclaimSkips.Load()
}

// LimboLen reports how many retired batches aggregator agg currently
// holds in limbo (diagnostics and boundedness tests; racy against a
// concurrent freezer).
func (e *Engine[S, P]) LimboLen(agg int) int { return len(e.aggs[agg].limbo) }

// InUse reports how many sessions are currently live.
func (e *Engine[S, P]) InUse() int { return e.tids.InUse() }

// MaxThreads reports the live-session bound.
func (e *Engine[S, P]) MaxThreads() int { return e.maxThreads }

// Metrics returns the engine's degree collector, or nil when metrics
// are disabled.
func (e *Engine[S, P]) Metrics() *metrics.SEC { return e.m }

// ActiveBatch returns aggregator agg's currently installed batch
// (diagnostics and whitebox tests; the batch may freeze at any time).
func (e *Engine[S, P]) ActiveBatch(agg int) *Batch[S, P] {
	return e.aggs[agg].batch.Load()
}

// observe folds one degree observation (in degreeUnit fixed point)
// into aggregator ctl's EWMA (alpha = 1/4) and applies the solo-mode
// hysteresis. The load/store pair is deliberately not a CAS loop: the
// EWMA is a heuristic and a lost update under a race costs nothing.
func (e *Engine[S, P]) observe(c *aggCtl, obs int64) {
	o := c.ewma.Load()
	v := o - o/4 + obs/4
	if v != o {
		// At the EWMA's fixed points (every op a solo hit, or a steady
		// batched degree) the fold is the identity; skipping the store
		// then keeps the control line in shared state across the Ps
		// hammering this aggregator instead of invalidating it per op.
		c.ewma.Store(v)
	}
	if !e.adaptive {
		return // spin-only engines track the EWMA but never switch modes
	}
	switch {
	case v <= soloEnterMax:
		if e.trySoloPush != nil && c.mode.Load() != modeSolo {
			c.mode.Store(modeSolo)
		}
	case v >= soloExitMin:
		if c.mode.Load() != modeBatched {
			c.mode.Store(modeBatched)
		}
	}
}

// updateSpin folds the post-freeze EWMA into aggregator agg's spin
// controller: multiplicative growth toward the configured ceiling
// while batches freeze well-filled, halving toward zero while they
// freeze near-empty. Only freezers call it, but it runs after the
// install that releases the next freezer, so the load/store pair is
// deliberately not a CAS loop for the same reason observe's is not: a
// rare overlapped update loses one step of a bounded heuristic and
// nothing else.
func (e *Engine[S, P]) updateSpin(c *aggCtl) {
	d := c.ewma.Load()
	cur := c.spin.Load()
	switch {
	case d >= spinGrowDeg:
		// +1 restarts growth from a fully decayed (zero) spin.
		next := min(cur*2+1, int64(e.freezerSpin))
		if next != cur {
			c.spin.Store(next)
		}
	case d <= spinDecayDeg:
		if cur > 0 {
			c.spin.Store(cur / 2)
		}
	}
}

// spinFor is the pre-freeze backoff aggregator agg currently pays: the
// controller's value under adaptive spin, the fixed configuration
// otherwise.
func (e *Engine[S, P]) spinFor(agg int) int {
	if e.adaptiveSpin {
		return int(e.ctl[agg].spin.Load())
	}
	return e.freezerSpin
}

// maybeResize adjusts the effective aggregator count on the mean
// degree EWMA of the currently active shards: saturated batches grow
// toward Spec.Aggregators, near-empty ones consolidate toward 1 so the
// remaining shards see enough load to batch. A grow seeds the
// newly-live aggregator's controller state from the survivors before
// publishing the new count, so remapped sessions never observe the
// stale tuning the shard retired with. Resizes are serialized by
// resizeMu - TryLock, so a freezer whose check collides with a
// resize in flight simply skips it (its degree signal is stale by
// definition then) rather than wait.
func (e *Engine[S, P]) maybeResize() {
	if !e.resizeMu.TryLock() {
		return
	}
	defer e.resizeMu.Unlock()
	k := int(e.effK.Load())
	if k < 1 || k > len(e.aggs) {
		return
	}
	var sum int64
	for i := 0; i < k; i++ {
		sum += e.ctl[i].ewma.Load()
	}
	mean := sum / int64(k)
	switch {
	case mean >= growDegree && k < len(e.aggs):
		e.inheritCtl(k)
		e.ctl[k].inherits.Add(1)
		e.m.RecordSpinInherit(k)
		e.effK.Store(int32(k + 1))
		e.scaleEpoch.Add(1)
	case mean <= shrinkDegree && k > 1:
		e.effK.Store(int32(k - 1))
		e.scaleEpoch.Add(1)
	}
}

// inheritCtl seeds aggregator idx's adaptivity state - batch-degree
// EWMA, solo/batched mode, and (under adaptive spin) the effective
// pre-freeze backoff - from the mean of the k currently live
// aggregators. Without it, a shard going live again after a shrink
// would resume with whatever EWMA and spin it retired with (or, on its
// first activation, the configured ceiling): sessions remapped onto it
// by the scale epoch would pay a backoff tuned for a load that no
// longer exists until enough of their own freezes retuned it. Called
// only under resizeMu, before the effK store that makes the shard
// reachable, so seeding can never touch a live shard's state.
func (e *Engine[S, P]) inheritCtl(k int) {
	var ewmaSum, spinSum int64
	for i := 0; i < k; i++ {
		ewmaSum += e.ctl[i].ewma.Load()
		spinSum += e.ctl[i].spin.Load()
	}
	c := &e.ctl[k]
	mean := ewmaSum / int64(k)
	c.ewma.Store(mean)
	if e.adaptiveSpin {
		c.spin.Store(spinSum / int64(k))
	}
	// Apply the solo-mode hysteresis to the inherited degree so the mode
	// bit is consistent with the seeded EWMA; inside the band the shard
	// keeps its previous mode, exactly as a live shard would.
	switch {
	case mean <= soloEnterMax:
		if e.trySoloPush != nil {
			c.mode.Store(modeSolo)
		}
	case mean >= soloExitMin:
		c.mode.Store(modeBatched)
	}
}

// Inherits reports how many times aggregator agg went live through a
// shard-scaling grow with controller state seeded from the surviving
// aggregators (diagnostics and tests).
func (e *Engine[S, P]) Inherits(agg int) int64 { return e.ctl[agg].inherits.Load() }

// observeFreeze records a frozen batch's degree into the adaptivity
// signal, retunes the spin controller, and periodically runs the
// shard-scaling check.
func (e *Engine[S, P]) observeFreeze(agg, ops int) {
	c := &e.ctl[agg]
	e.observe(c, int64(ops)*degreeUnit)
	if e.adaptiveSpin {
		e.updateSpin(c)
	}
	if e.adaptive && c.freezes.Add(1)%resizePeriod == 0 && e.partitioned && len(e.aggs) > 1 {
		e.maybeResize()
	}
}

// Freeze is the paper's FreezeBatch: after the batch-growing backoff,
// snapshot both counters clamped to the slot capacity, then install the
// next batch on aggregator agg, which releases every spinning
// announcer. Exactly one thread per batch - the freezer-race winner -
// calls it. With recycling on, the frozen batch retires to the
// aggregator's limbo list (before the install, so the next freezer
// inherits the list with a happens-before edge) and the installed
// batch is recycled when a quiescent one is available.
func (e *Engine[S, P]) Freeze(agg int, b *Batch[S, P]) {
	spin := e.spinFor(agg)
	if spin > 0 {
		backoff.Spin(spin) // grow the batch (§3.1)
	}
	limit := int64(len(b.slots))
	pops := min(b.PopCount.Load(), limit)
	pushes := min(b.PushCount.Load(), limit)
	b.PopAtFreeze.Store(pops)
	b.PushAtFreeze.Store(pushes)
	next := e.nextBatch(agg)
	if e.recycle {
		e.aggs[agg].limbo = append(e.aggs[agg].limbo, b)
	}
	e.aggs[agg].batch.Store(next)
	if e.m != nil {
		capacity := 2 * len(b.slots)
		if e.singleSided {
			capacity = len(b.slots)
		}
		e.m.RecordBatchOcc(agg, int(pushes+pops), int(2*e.eliminate(pushes, pops)), capacity)
		e.m.RecordSpin(agg, spin)
	}
	if e.adaptive || e.adaptiveSpin {
		e.observeFreeze(agg, int(pushes+pops))
	}
}

// freezeOrWait runs the freezer race for an announcer that drew
// sequence number seq: the first announcer of either side freezes the
// batch, everyone else waits for the aggregator's batch-pointer swap.
func (e *Engine[S, P]) freezeOrWait(agg int, b *Batch[S, P], seq int64) {
	if seq == 0 && b.frozen.CompareAndSwap(false, true) {
		e.Freeze(agg, b)
		return
	}
	var w backoff.Waiter
	for e.aggs[agg].batch.Load() == b {
		w.Wait()
	}
}

// announceSlow publishes batch b through hazard slot hz and
// re-validates aggregator agg's batch pointer, following it until the
// publish sticks. The re-validation closes the window between the
// caller's load and the publish: a batch that was uninstalled in that
// window is simply retried, so the hazard scan in reclaim sees every
// session that can still touch a retired batch.
//
// Push and Pop inline the fast path around this call themselves: load
// the active batch and skip the publish entirely when the session's
// hazard already names it (amortized announcement - a Done cadence
// left the hazard up, or a pop retried within one batch). The skip is
// sound because only the owner writes the slot: hazard == b means the
// slot has continuously named b since a validated publish, so every
// reclaim scan in between has seen it and b cannot have been recycled
// out from under us - and b is installed right now (the caller just
// loaded it).
func (e *Engine[S, P]) announceSlow(hz *HazardSlot[S, P], agg int, b *Batch[S, P]) *Batch[S, P] {
	for {
		hz.p.Store(b)
		nb := e.aggs[agg].batch.Load()
		if nb == b {
			return b
		}
		b = nb
	}
}

// soloBatch returns session id's one-slot scratch batch, allocating it
// on first use. Scratch batches never enter the recycling pool; the
// session is their only writer and their payload is fully overwritten
// by the solo applier before the ticket is read. The allocation lives
// in newSoloBatch so this lookup inlines into the per-op paths.
func (e *Engine[S, P]) soloBatch(id int) *Batch[S, P] {
	if b := e.solo[id]; b != nil {
		return b
	}
	return e.newSoloBatch(id)
}

// newSoloBatch is soloBatch's first-use slow path.
func (e *Engine[S, P]) newSoloBatch(id int) *Batch[S, P] {
	b := &Batch[S, P]{slots: make([]atomic.Pointer[S], 1)}
	if e.makeData != nil {
		b.Data = e.makeData(1)
	}
	e.solo[id] = b
	return b
}

// soloMode reports whether aggregator agg currently runs the solo fast
// path.
func (e *Engine[S, P]) soloMode(agg int) bool {
	return e.ctl[agg].mode.Load() == modeSolo
}

// SoloMode is the exported readout of aggregator agg's adaptive mode
// bit, for cross-layer controllers (the pool's elastic shard scaler
// reads it to detect shards with no recent contention). Always false
// when the solo fast path is disabled.
func (e *Engine[S, P]) SoloMode(agg int) bool { return e.soloMode(agg) }

// DegreeEWMA reports aggregator agg's batch-degree EWMA in operations
// per batch - the same contention estimate the engine's own mode
// hysteresis and shard scaling read, converted out of its internal
// fixed point.
func (e *Engine[S, P]) DegreeEWMA(agg int) float64 {
	return float64(e.ctl[agg].ewma.Load()) / degreeUnit
}

func (e *Engine[S, P]) soloHit(agg int) {
	c := &e.ctl[agg]
	c.fastHits.Add(1)
	e.observe(c, soloObsHit)
	e.m.RecordFastPath(agg, true)
}

func (e *Engine[S, P]) soloMiss(agg int) {
	c := &e.ctl[agg]
	c.fastMiss.Add(1)
	e.observe(c, soloObsMiss)
	e.m.RecordFastPath(agg, false)
}

// PushTicket reports how a push-side announcement was served.
type PushTicket[S, P any] struct {
	B   *Batch[S, P]
	Seq int64 // the announcement's sequence number within its side

	// Eliminated is true when the operation cancelled against the
	// opposite side; its record was (or will be) consumed through the
	// elimination array by its pop partner, and no combiner applies it.
	Eliminated bool
}

// Push announces val on the push side of aggregator agg's active batch
// on behalf of session id and drives the operation through the batch
// lifecycle (Algorithm 1 of the paper): freeze race, post-freeze
// retry, elimination, combiner election or applied-wait. When the
// aggregator is in solo mode, one direct apply is attempted first. On
// return the operation is linearized - applied solo, eliminated
// in-batch, or applied to the shared structure by its batch's push
// combiner. The caller must invoke Done(id) once it has finished
// reading the ticket.
func (e *Engine[S, P]) Push(id, agg int, val *S) PushTicket[S, P] {
	if e.soloPushOn && e.ctl[agg].mode.Load() == modeSolo {
		sb := e.solo[id]
		if sb == nil {
			sb = e.newSoloBatch(id)
		}
		sb.slots[0].Store(val)
		if e.trySoloPush(agg, sb) {
			e.soloHit(agg)
			return PushTicket[S, P]{B: sb, Seq: 0}
		}
		e.soloMiss(agg)
	}
	for {
		// Inlined announce: skip the publish-and-revalidate when the
		// session's hazard already names the active batch (see
		// announceSlow for the soundness argument).
		b := e.aggs[agg].batch.Load()
		if e.recycle {
			if hz := &e.hazards[id]; hz.p.Load() != b {
				b = e.announceSlow(hz, agg, b)
			}
		}
		seq := b.PushCount.Add(1) - 1
		if int(seq) < len(b.slots) {
			b.slots[seq].Store(val) // announce the record immediately (line 7)
		}

		e.freezeOrWait(agg, b, seq)

		pushAtF := b.PushAtFreeze.Load()
		popAtF := b.PopAtFreeze.Load()
		if seq >= pushAtF {
			continue // announced after the freeze: retry in a later batch
		}

		el := e.eliminate(pushAtF, popAtF)
		if seq < el {
			// Eliminated: the paired pop reads the record from the slot
			// array; the push returns right away.
			return PushTicket[S, P]{B: b, Seq: seq, Eliminated: true}
		}
		if seq == el { // first survivor: combiner
			e.applyPush(agg, b, seq, pushAtF)
			b.pushApplied.Store(true)
		} else {
			var w backoff.Waiter
			for !b.pushApplied.Load() {
				w.Wait()
			}
		}
		return PushTicket[S, P]{B: b, Seq: seq}
	}
}

// PopTicket reports how a pop-side announcement was served.
type PopTicket[S, P any] struct {
	B   *Batch[S, P]
	Off int64 // offset among the batch's surviving pops (seq - e)
	K   int64 // surviving pops in the batch (popAtFreeze - e)

	// Elim, when non-nil, is the record of the push this pop eliminated
	// against; Off and K are meaningless then.
	Elim *S
}

// Pop announces on the pop side of aggregator agg's active batch on
// behalf of session id and drives the operation through the batch
// lifecycle (Algorithm 2 of the paper), attempting one solo direct
// apply first when the aggregator is in solo mode. An eliminated pop
// returns its partner's record; a surviving pop returns after its
// batch's pop combiner ran, with its offset into the
// combiner-published results. The caller must invoke Done(id) once it
// has finished reading the ticket.
func (e *Engine[S, P]) Pop(id, agg int) PopTicket[S, P] {
	if e.soloPopOn && e.ctl[agg].mode.Load() == modeSolo {
		sb := e.solo[id]
		if sb == nil {
			sb = e.newSoloBatch(id)
		}
		if e.trySoloPop(agg, sb) {
			e.soloHit(agg)
			return PopTicket[S, P]{B: sb, Off: 0, K: 1}
		}
		e.soloMiss(agg)
	}
	for {
		// Inlined announce: see Push.
		b := e.aggs[agg].batch.Load()
		if e.recycle {
			if hz := &e.hazards[id]; hz.p.Load() != b {
				b = e.announceSlow(hz, agg, b)
			}
		}
		seq := b.PopCount.Add(1) - 1

		e.freezeOrWait(agg, b, seq)

		pushAtF := b.PushAtFreeze.Load()
		popAtF := b.PopAtFreeze.Load()
		if seq >= popAtF {
			continue // announced after the freeze: retry in a later batch
		}

		el := e.eliminate(pushAtF, popAtF)
		if seq < el {
			// Eliminated: take the record of the push with our sequence
			// number straight from the slot array.
			return PopTicket[S, P]{B: b, Elim: b.WaitSlot(seq)}
		}

		k := popAtF - el
		if seq == el { // first survivor: combiner
			e.applyPop(agg, b, el, popAtF)
			b.popApplied.Store(true)
		} else {
			var w backoff.Waiter
			for !b.popApplied.Load() {
				w.Wait()
			}
		}
		return PopTicket[S, P]{B: b, Off: seq - el, K: k}
	}
}

// TryPop attempts exactly one solo direct apply on aggregator agg on
// behalf of session id, bypassing the aggregator's mode and the batch
// protocol entirely - the pool's peek-then-steal primitive. On success
// the returned ticket reads like a surviving pop's (one op, offset 0);
// ok=false means the structure's solo applier detected contention and
// left the structure unchanged, with nothing announced, so the caller
// is free to walk away or escalate to the full Pop.
//
// Deliberately recorded nowhere: a foreign thief's single probe is not
// evidence about the home sessions' batch degree, so it feeds neither
// the EWMA nor the fast-path counters, and having announced on no
// batch it needs no hazard and no Done.
func (e *Engine[S, P]) TryPop(id, agg int) (PopTicket[S, P], bool) {
	if e.trySoloPop == nil {
		return PopTicket[S, P]{}, false
	}
	sb := e.soloBatch(id)
	if !e.trySoloPop(agg, sb) {
		return PopTicket[S, P]{}, false
	}
	return PopTicket[S, P]{B: sb, Off: 0, K: 1}, true
}

// TryPush is TryPop's push-side twin: exactly one solo direct apply of
// val on aggregator agg on behalf of session id, bypassing the
// aggregator's mode and the batch protocol entirely - the pool's
// Put-overflow primitive, which lets a Put spill onto a quiet foreign
// shard when its home shard's solo CAS keeps losing. On success the
// returned ticket reads like a solo push's; ok=false means the
// structure's solo applier detected contention and left the structure
// unchanged, with nothing announced, so the caller is free to try the
// next shard or escalate to the full Push.
//
// Like TryPop it is deliberately recorded nowhere: a foreign
// overflow's single attempt is not evidence about the victim sessions'
// batch degree, so it feeds neither the EWMA nor the fast-path
// counters, and having announced on no shared batch it needs no hazard
// and no Done.
func (e *Engine[S, P]) TryPush(id, agg int, val *S) (PushTicket[S, P], bool) {
	if e.trySoloPush == nil {
		return PushTicket[S, P]{}, false
	}
	sb := e.soloBatch(id)
	sb.slots[0].Store(val)
	if !e.trySoloPush(agg, sb) {
		return PushTicket[S, P]{}, false
	}
	return PushTicket[S, P]{B: sb, Seq: 0}, true
}
