package agg

import (
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"

	"secstack/internal/metrics"
	"secstack/internal/pad"
)

func TestEliminators(t *testing.T) {
	cases := []struct{ push, pop, want int64 }{
		{0, 0, 0}, {5, 0, 0}, {0, 5, 0}, {3, 5, 3}, {5, 3, 3}, {4, 4, 4},
	}
	for _, c := range cases {
		if got := PairElim(c.push, c.pop); got != c.want {
			t.Fatalf("PairElim(%d, %d) = %d, want %d", c.push, c.pop, got, c.want)
		}
		if got := NoElim(c.push, c.pop); got != 0 {
			t.Fatalf("NoElim(%d, %d) = %d, want 0", c.push, c.pop, got)
		}
	}
}

// noopSpec is an engine whose appliers do nothing; enough for lifecycle
// and sizing mechanics.
func noopSpec(aggs, maxThreads int, partitioned bool) Spec[int64, struct{}] {
	return Spec[int64, struct{}]{
		Aggregators: aggs,
		MaxThreads:  maxThreads,
		Partitioned: partitioned,
		ApplyPush:   func(int, *Batch[int64, struct{}], int64, int64) {},
		ApplyPop:    func(int, *Batch[int64, struct{}], int64, int64) {},
	}
}

func TestBatchSizingPartitioned(t *testing.T) {
	e := New(noopSpec(2, 64, true))
	if got := e.NewBatch().Cap(); got != 4 {
		t.Fatalf("empty engine batch size = %d, want minimum 4", got)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.Register(); err != nil {
			t.Fatal(err)
		}
	}
	// 10 sessions over 2 aggregators -> 5 per aggregator.
	if got := e.NewBatch().Cap(); got != 5 {
		t.Fatalf("batch size with 10 sessions = %d, want 5", got)
	}
}

func TestBatchSizingUnpartitioned(t *testing.T) {
	// Unpartitioned (deque-style): every live session may land on one
	// aggregator, so batches are sized for all of them.
	e := New(noopSpec(2, 64, false))
	for i := 0; i < 10; i++ {
		if _, err := e.Register(); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.NewBatch().Cap(); got != 10 {
		t.Fatalf("unpartitioned batch size with 10 sessions = %d, want 10", got)
	}
}

func TestBatchSizingCappedAtMaxThreads(t *testing.T) {
	e := New(noopSpec(2, 8, true))
	for i := 0; i < 8; i++ {
		if _, err := e.Register(); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.NewBatch().Cap(); got != 4 {
		t.Fatalf("batch size = %d, want per-aggregator cap 4", got)
	}
}

func TestFreezeClampsAndInstalls(t *testing.T) {
	e := New(noopSpec(1, 64, true))
	old := e.ActiveBatch(0)
	b := e.NewBatch() // 4 slots (no sessions, minimum)
	b.PushCount.Store(10)
	b.PopCount.Store(2)
	e.Freeze(0, b)
	if got := b.PushAtFreeze.Load(); got != 4 {
		t.Fatalf("PushAtFreeze = %d, want clamped 4", got)
	}
	if got := b.PopAtFreeze.Load(); got != 2 {
		t.Fatalf("PopAtFreeze = %d, want 2", got)
	}
	if e.ActiveBatch(0) == old {
		t.Fatal("Freeze did not install a fresh batch")
	}
}

func TestSessionRecycling(t *testing.T) {
	e := New(noopSpec(2, 2, true))
	a, err := e.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register(); err == nil {
		t.Fatal("Register succeeded past MaxThreads live sessions")
	}
	e.Release(a)
	if e.InUse() != 1 {
		t.Fatalf("InUse = %d after release, want 1", e.InUse())
	}
	if _, err := e.Register(); err != nil {
		t.Fatalf("Register after Release: %v", err)
	}
}

func TestMetricsOccupancyTwoSided(t *testing.T) {
	m := metrics.NewSEC(1)
	spec := noopSpec(1, 64, true)
	spec.Metrics = m
	e := New(spec)
	b := e.NewBatch() // 4 slots -> two-sided op capacity 8
	b.PushCount.Store(3)
	b.PopCount.Store(1)
	e.Freeze(0, b)
	snap := m.Snapshot()
	if snap.Batches != 1 || snap.Ops != 4 {
		t.Fatalf("snapshot = %+v, want 1 batch / 4 ops", snap)
	}
	if snap.Eliminated != 2 {
		t.Fatalf("eliminated = %d, want 2 (one pair)", snap.Eliminated)
	}
	if snap.Capacity != 8 {
		t.Fatalf("capacity = %d, want 8", snap.Capacity)
	}
	if got := snap.OccupancyPct(); got != 50 {
		t.Fatalf("occupancy = %.1f%%, want 50%%", got)
	}
}

func TestMetricsOccupancySingleSided(t *testing.T) {
	m := metrics.NewSEC(1)
	spec := noopSpec(1, 64, true)
	spec.Metrics = m
	spec.SingleSided = true
	spec.Eliminate = NoElim
	e := New(spec)
	b := e.NewBatch() // 4 slots -> single-sided op capacity 4
	b.PushCount.Store(3)
	e.Freeze(0, b)
	snap := m.Snapshot()
	if snap.Eliminated != 0 {
		t.Fatalf("identity eliminator recorded %d eliminated ops", snap.Eliminated)
	}
	if snap.Capacity != 4 {
		t.Fatalf("capacity = %d, want 4", snap.Capacity)
	}
	if got := snap.OccupancyPct(); got != 75 {
		t.Fatalf("occupancy = %.1f%%, want 75%%", got)
	}
}

// applyLog is a payload that counts applier invocations per batch.
type applyLog struct {
	pushCalls atomic.Int64
	popCalls  atomic.Int64
}

// TestCombinerUniqueness drives a push/pop mix hard and asserts the
// engine elected exactly one combiner per side per frozen batch - the
// at-most-once applier contract every structure's applier relies on.
func TestCombinerUniqueness(t *testing.T) {
	var batches sync.Map // *Batch -> struct{}
	e := New(Spec[int64, *applyLog]{
		Aggregators: 2,
		MaxThreads:  64,
		FreezerSpin: 64,
		Partitioned: true,
		MakeData:    func(int) *applyLog { return &applyLog{} },
		ApplyPush: func(_ int, b *Batch[int64, *applyLog], _, _ int64) {
			batches.Store(b, struct{}{})
			b.Data.pushCalls.Add(1)
		},
		ApplyPop: func(_ int, b *Batch[int64, *applyLog], _, _ int64) {
			batches.Store(b, struct{}{})
			b.Data.popCalls.Add(1)
		},
	})
	const g, per = 8, 3000
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		id, err := e.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w, id int) {
			defer wg.Done()
			val := int64(1)
			agg := e.AggOf(id)
			for i := 0; i < per; i++ {
				if (w+i)%2 == 0 {
					e.Push(id, agg, &val)
				} else {
					e.Pop(id, agg)
				}
			}
		}(w, id)
	}
	wg.Wait()
	batches.Range(func(k, _ any) bool {
		b := k.(*Batch[int64, *applyLog])
		if n := b.Data.pushCalls.Load(); n > 1 {
			t.Fatalf("push applier ran %d times on one batch", n)
		}
		if n := b.Data.popCalls.Load(); n > 1 {
			t.Fatalf("pop applier ran %d times on one batch", n)
		}
		return true
	})
}

// TestEliminationHandshake checks the elimination fast path end to end:
// a pop that eliminates receives exactly the record its push partner
// announced, and eliminated operations never reach an applier.
func TestEliminationHandshake(t *testing.T) {
	var applied atomic.Int64
	e := New(Spec[int64, struct{}]{
		Aggregators: 1,
		MaxThreads:  8,
		// Grow batches well past backoff's spins-per-yield threshold so
		// the freezer's spin reaches a Gosched: that guarantees the
		// opposite side gets scheduled into the batch even on a single
		// CPU, where shorter spins serialize the workers into singleton
		// batches.
		FreezerSpin: 1 << 16,
		Partitioned: true,
		ApplyPush: func(_ int, b *Batch[int64, struct{}], seq, pushAtF int64) {
			applied.Add(pushAtF - seq)
		},
		ApplyPop: func(_ int, b *Batch[int64, struct{}], el, popAtF int64) {
			applied.Add(popAtF - el)
		},
	})
	const g = 4
	per := 2000
	if testing.Short() {
		per = 200 // the large freezer spin is slow under -race -short
	}
	var wg sync.WaitGroup
	var eliminated atomic.Int64
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := make([]int64, per)
			for i := 0; i < per; i++ {
				if w%2 == 0 {
					vals[i] = int64(w)<<32 | int64(i)
					pt := e.Push(0, 0, &vals[i])
					if pt.Eliminated {
						eliminated.Add(1)
					}
				} else {
					pt := e.Pop(0, 0)
					if pt.Elim != nil {
						eliminated.Add(1)
						if *pt.Elim>>32%2 != 0 {
							t.Error("eliminated pop received a record no push announced")
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if eliminated.Load() == 0 {
		t.Fatal("balanced mix with large batches eliminated nothing")
	}
	if eliminated.Load()%2 != 0 {
		t.Fatalf("eliminated count %d is odd (elimination is pairwise)", eliminated.Load())
	}
	if total := applied.Load() + eliminated.Load(); total > int64(g*per) {
		t.Fatalf("applied %d + eliminated %d exceeds %d operations",
			applied.Load(), eliminated.Load(), g*per)
	}
}

// TestAggregatorPadding pins the layout property the aggregator's pads
// exist for: the struct is a whole number of cache lines, so in the
// engine's aggs slice no aggregator's hot batch pointer shares a line
// with a neighbour's fields (the recycling list headers in particular,
// which every Freeze rewrites).
func TestAggregatorPadding(t *testing.T) {
	size := unsafe.Sizeof(aggregator[int64, struct{}]{})
	if size%pad.CacheLine != 0 {
		t.Fatalf("sizeof(aggregator) = %d, not a multiple of the %d-byte cache line", size, pad.CacheLine)
	}
	if off := unsafe.Offsetof(aggregator[int64, struct{}]{}.limbo); off < pad.CacheLine {
		t.Fatalf("limbo at offset %d shares the batch pointer's cache line", off)
	}
}

// TestRecycledBatchAliasing is the freeze-recycle-refill aliasing
// check: a batch that cycles through the per-aggregator free list must
// come back with every announcement slot cleared, counters and flags
// zeroed, and its payload reset through the ResetData hook - a stale
// slot would satisfy the next incarnation's WaitSlot with the wrong
// record, and a stale payload would leak a previous incarnation's
// results.
func TestRecycledBatchAliasing(t *testing.T) {
	e := New(Spec[int64, []int64]{
		Aggregators: 1,
		MaxThreads:  4,
		Partitioned: true,
		Recycle:     true,
		Eliminate:   NoElim,
		MakeData:    func(n int) []int64 { return make([]int64, n) },
		ResetData: func(p *[]int64) {
			for i := range *p {
				(*p)[i] = -1 // reset marker the test looks for
			}
		},
		ApplyPush: func(_ int, b *Batch[int64, []int64], seq, pushAtF int64) {
			for i := seq; i < pushAtF; i++ {
				b.Data[i] = *b.WaitSlot(i) + 100
			}
		},
		ApplyPop: func(int, *Batch[int64, []int64], int64, int64) {},
	})
	id, err := e.Register()
	if err != nil {
		t.Fatal(err)
	}

	// Each singleton push freezes the active batch and retires it to
	// limbo; the reclaim epoch defers the hazard scan until
	// reclaimPeriod freezes have passed, after which quiescent batches
	// cycle back through the free list. Run until the installed batch
	// is one we have seen before - that is a recycled batch, reset by
	// the freezer and not yet touched by any announcer.
	seen := map[*Batch[int64, []int64]]bool{e.ActiveBatch(0): true}
	var active *Batch[int64, []int64]
	for i := 1; ; i++ {
		if i > 4*reclaimPeriod {
			t.Fatalf("no batch recycled within %d freezes (free list bypassed)", 4*reclaimPeriod)
		}
		v := int64(i)
		e.Push(id, 0, &v)
		e.Done(id)
		active = e.ActiveBatch(0)
		if seen[active] {
			break
		}
		seen[active] = true
	}
	if scans, _ := e.ReclaimStats(0); scans == 0 {
		t.Fatal("batch recycled without any hazard scan recorded")
	}
	if got := active.PushCount.Load(); got != 0 {
		t.Fatalf("recycled batch PushCount = %d, want 0", got)
	}
	if got := active.PushAtFreeze.Load(); got != 0 {
		t.Fatalf("recycled batch PushAtFreeze = %d, want 0", got)
	}
	if active.frozen.Load() || active.pushApplied.Load() || active.popApplied.Load() {
		t.Fatal("recycled batch came back with freeze/applied flags set")
	}
	for i := 0; i < active.Cap(); i++ {
		if p := active.Slot(int64(i)); p != nil {
			t.Fatalf("recycled batch slot %d still holds record %d", i, *p)
		}
	}
	for i, d := range active.Data {
		if d != -1 {
			t.Fatalf("recycled batch payload[%d] = %d, want reset marker -1", i, d)
		}
	}

	// Refill: the recycled batch must serve a fresh value, not an
	// aliased one from its first life.
	v3 := int64(33)
	pt := e.Push(id, 0, &v3)
	if got := pt.B.Data[pt.Seq]; got != 133 {
		t.Fatalf("refilled recycled batch served %d, want 133", got)
	}
	e.Done(id)
}

// TestAdaptiveSpinDecaysAndRegrows drives the freezer-backoff
// controller through both regimes by hand-freezing batches: sustained
// near-empty freezes must decay the effective spin from the configured
// value to zero (solo-ish load stops paying the backoff), and
// sustained well-filled freezes must grow it back, never past the
// configured ceiling.
func TestAdaptiveSpinDecaysAndRegrows(t *testing.T) {
	const ceiling = 256
	m := metrics.NewSEC(1)
	spec := noopSpec(1, 64, true)
	spec.FreezerSpin = ceiling
	spec.AdaptiveSpin = true
	spec.Metrics = m
	e := New(spec)
	if got := e.EffectiveSpin(0); got != ceiling {
		t.Fatalf("initial effective spin = %d, want configured %d", got, ceiling)
	}
	// Singleton batches: degree 1.0, below the decay threshold.
	for i := 0; i < 16; i++ {
		b := e.NewBatch()
		b.PushCount.Store(1)
		e.Freeze(0, b)
	}
	if got := e.EffectiveSpin(0); got != 0 {
		t.Fatalf("effective spin after near-empty freezes = %d, want 0", got)
	}
	// Full batches: 4 slots per side -> degree 8, above the growth
	// threshold.
	for i := 0; i < 32; i++ {
		b := e.NewBatch()
		b.PushCount.Store(int64(b.Cap()))
		b.PopCount.Store(int64(b.Cap()))
		e.Freeze(0, b)
		if got := e.EffectiveSpin(0); got > ceiling {
			t.Fatalf("effective spin %d exceeds configured ceiling %d", got, ceiling)
		}
	}
	if got := e.EffectiveSpin(0); got != ceiling {
		t.Fatalf("effective spin after well-filled freezes = %d, want ceiling %d", got, ceiling)
	}
	// The metrics collector saw the spin every batch actually paid, so
	// the average sits strictly between the extremes.
	if avg := m.Snapshot().SpinAvg(); avg <= 0 || avg >= ceiling {
		t.Fatalf("SpinAvg = %.1f, want within (0, %d)", avg, ceiling)
	}
}

// TestFixedSpinUnaffectedByController: without AdaptiveSpin the
// effective spin is the configuration, no matter what the EWMA does.
func TestFixedSpinUnaffectedByController(t *testing.T) {
	spec := noopSpec(1, 64, true)
	spec.FreezerSpin = 64
	e := New(spec)
	for i := 0; i < 8; i++ {
		b := e.NewBatch()
		b.PushCount.Store(1)
		e.Freeze(0, b)
	}
	if got := e.EffectiveSpin(0); got != 64 {
		t.Fatalf("fixed effective spin = %d, want 64", got)
	}
}

// TestReclaimEpochAmortization pins the reclaim epoch's contract under
// a steady recycling workload: the full hazard scan runs at most once
// per reclaimPeriod freezes (plus the bootstrap scan), deferred
// freezes are counted as skips, the limbo list stays bounded by its
// high-water mark, and the steady-state freeze path still recycles
// rather than allocate (the aliasing test covers reset-ness).
func TestReclaimEpochAmortization(t *testing.T) {
	spec := noopSpec(1, 8, true)
	spec.Recycle = true
	e := New(spec)
	id, err := e.Register()
	if err != nil {
		t.Fatal(err)
	}
	const ops = 200 // one freeze each: singleton batches
	v := int64(1)
	for i := 0; i < ops; i++ {
		e.Push(id, 0, &v)
		e.Done(id)
		if l := e.LimboLen(0); l > limboHighWater {
			t.Fatalf("limbo length %d exceeds high-water %d after op %d", l, limboHighWater, i)
		}
	}
	scans, skips := e.ReclaimStats(0)
	if scans == 0 {
		t.Fatal("steady recycling ran no hazard scans at all")
	}
	if max := int64(ops/reclaimPeriod + 1); scans > max {
		t.Fatalf("%d scans over %d freezes, want <= 1 per %d freezes (%d)",
			scans, ops, reclaimPeriod, max)
	}
	if skips == 0 {
		t.Fatal("no deferred scans recorded (epoch never engaged)")
	}
}

// TestReclaimEpochLimboBoundedUnderHazards: sessions parked on hazards
// (ticket consumed but Done withheld) pin their batches in limbo; the
// high-water trigger must still bound the list, scanning early instead
// of letting deferrals stack retired batches without limit.
func TestReclaimEpochLimboBoundedUnderHazards(t *testing.T) {
	spec := noopSpec(1, 16, true)
	spec.Recycle = true
	e := New(spec)
	ids := make([]int, 8)
	for i := range ids {
		id, err := e.Register()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	driver := ids[0]
	v := int64(1)
	// Park 7 sessions mid-operation: each announces (publishing its
	// hazard) and completes, but never calls Done, so its last batch
	// stays pinned in limbo across every scan.
	for _, id := range ids[1:] {
		e.Push(id, 0, &v)
	}
	for i := 0; i < 100; i++ {
		e.Push(driver, 0, &v)
		e.Done(driver)
		if l := e.LimboLen(0); l > limboHighWater {
			t.Fatalf("limbo length %d exceeds high-water %d with hazards parked", l, limboHighWater)
		}
	}
	// Release the parked sessions; the next scans drain their batches.
	for _, id := range ids[1:] {
		e.Done(id)
	}
	for i := 0; i < 2*reclaimPeriod; i++ {
		e.Push(driver, 0, &v)
		e.Done(driver)
	}
	if l := e.LimboLen(0); l > limboHighWater {
		t.Fatalf("limbo length %d after releasing hazards, want <= %d", l, limboHighWater)
	}
}

// TestTryPopStealBypassesProtocol: the steal primitive is one solo
// apply through the session's scratch batch - no announcement, no
// freeze, no fast-path accounting - and a contended attempt reports
// failure with the structure untouched. It must work with Adaptive
// off, since pool shards steal regardless of mode.
func TestTryPopStealBypassesProtocol(t *testing.T) {
	var state atomic.Int64
	state.Store(5)
	var contended atomic.Bool
	e := New(Spec[int64, []int64]{
		Aggregators: 2,
		MaxThreads:  4,
		Partitioned: true,
		Eliminate:   NoElim,
		MakeData:    func(n int) []int64 { return make([]int64, n) },
		ApplyPush:   func(int, *Batch[int64, []int64], int64, int64) {},
		ApplyPop:    func(int, *Batch[int64, []int64], int64, int64) {},
		TrySoloPop: func(_ int, b *Batch[int64, []int64]) bool {
			if contended.Load() {
				return false
			}
			b.Data[0] = state.Add(-1)
			return true
		},
	})
	id, err := e.Register()
	if err != nil {
		t.Fatal(err)
	}
	before := e.ActiveBatch(1)
	tk, ok := e.TryPop(id, 1)
	if !ok {
		t.Fatal("uncontended TryPop failed")
	}
	if tk.Off != 0 || tk.K != 1 || tk.B.Data[0] != 4 {
		t.Fatalf("TryPop ticket = {Off:%d K:%d Data:%d}, want {0 1 4}", tk.Off, tk.K, tk.B.Data[0])
	}
	if e.ActiveBatch(1) != before {
		t.Fatal("TryPop froze the victim aggregator's batch")
	}
	if hits, misses := e.FastPath(1); hits != 0 || misses != 0 {
		t.Fatalf("TryPop fed the fast-path counters (%d/%d), want none", hits, misses)
	}
	contended.Store(true)
	if _, ok := e.TryPop(id, 1); ok {
		t.Fatal("contended TryPop reported success")
	}
}

// TestSoloFastPathEngages: an adaptive engine under a single
// uncontended session starts in solo mode and serves every operation
// through the direct-apply path - no freezes, no batch installs, one
// scratch batch reused throughout.
func TestSoloFastPathEngages(t *testing.T) {
	var ctr atomic.Int64
	e := New(Spec[int64, []int64]{
		Aggregators: 2,
		MaxThreads:  4,
		Partitioned: true,
		Adaptive:    true,
		Eliminate:   NoElim,
		MakeData:    func(n int) []int64 { return make([]int64, n) },
		ApplyPush: func(_ int, b *Batch[int64, []int64], seq, pushAtF int64) {
			for i := seq; i < pushAtF; i++ {
				b.Data[i] = ctr.Add(*b.WaitSlot(i))
			}
		},
		ApplyPop: func(int, *Batch[int64, []int64], int64, int64) {},
		TrySoloPush: func(_ int, b *Batch[int64, []int64]) bool {
			b.Data[0] = ctr.Add(*b.Slot(0))
			return true
		},
	})
	id, err := e.Register()
	if err != nil {
		t.Fatal(err)
	}
	agg := e.AggOf(id)
	before := e.ActiveBatch(agg)
	const n = 50
	for i := 1; i <= n; i++ {
		v := int64(1)
		pt := e.Push(id, agg, &v)
		if got := pt.B.Data[pt.Seq]; got != int64(i) {
			t.Fatalf("op %d saw counter %d", i, got)
		}
		e.Done(id)
	}
	hits, misses := e.FastPath(agg)
	if hits != n || misses != 0 {
		t.Fatalf("fast path hits/misses = %d/%d, want %d/0", hits, misses, n)
	}
	if e.ActiveBatch(agg) != before {
		t.Fatal("solo ops froze a batch (active batch changed)")
	}
}

// TestSoloFallbackOnContention: a solo attempt that reports contention
// must fall back to the full protocol (the operation still completes,
// through a frozen batch), be counted as a miss, and - under a
// persistent contention signal - flip the aggregator out of solo mode.
func TestSoloFallbackOnContention(t *testing.T) {
	var applied atomic.Int64
	e := New(Spec[int64, struct{}]{
		Aggregators: 1,
		MaxThreads:  4,
		Partitioned: true,
		Adaptive:    true,
		Eliminate:   NoElim,
		ApplyPush: func(_ int, b *Batch[int64, struct{}], seq, pushAtF int64) {
			applied.Add(pushAtF - seq)
		},
		ApplyPop:    func(int, *Batch[int64, struct{}], int64, int64) {},
		TrySoloPush: func(int, *Batch[int64, struct{}]) bool { return false }, // always contended
	})
	id, err := e.Register()
	if err != nil {
		t.Fatal(err)
	}
	if !e.soloMode(0) {
		t.Fatal("adaptive engine did not start in solo mode")
	}
	const n = 20
	v := int64(1)
	for i := 0; i < n; i++ {
		e.Push(id, 0, &v)
		e.Done(id)
	}
	if got := applied.Load(); got != n {
		t.Fatalf("slow path applied %d ops, want all %d", got, n)
	}
	_, misses := e.FastPath(0)
	if misses == 0 {
		t.Fatal("contended solo attempts recorded no misses")
	}
	// Every op both missed (obs: heavy) and froze a singleton batch
	// (obs: degree 1); the miss weighting must win often enough that
	// the engine spent part of the run in batched mode.
	if misses == n {
		t.Fatalf("aggregator never left solo mode across %d contended ops", n)
	}
}

// TestShardScaling exercises the effective-aggregator resize rule
// directly: a sustained high mean degree grows the shard count toward
// the configured ceiling, a low one shrinks it toward 1, and every
// remap bumps the scale epoch and keeps AggOf within range.
func TestShardScaling(t *testing.T) {
	e := New(noopSpecAdaptive(4, 64))
	if got := e.EffectiveAggregators(); got != 4 {
		t.Fatalf("initial effective aggregators = %d, want configured 4", got)
	}
	// Sustained near-empty batches: consolidate to one shard.
	for i := 0; i < 16; i++ {
		for a := 0; a < 4; a++ {
			e.ctl[a].ewma.Store(degreeUnit) // degree 1.0
		}
		e.maybeResize()
	}
	if got := e.EffectiveAggregators(); got != 1 {
		t.Fatalf("effective aggregators after low-degree runs = %d, want 1", got)
	}
	epochAfterShrink := e.ScaleEpoch()
	if epochAfterShrink != 3 {
		t.Fatalf("scale epoch = %d after 4->1, want 3", epochAfterShrink)
	}
	for id := 0; id < 64; id += 7 {
		if a := e.AggOf(id); a != 0 {
			t.Fatalf("AggOf(%d) = %d with one effective shard", id, a)
		}
	}
	// Sustained saturated batches: grow back to the ceiling, not past.
	for i := 0; i < 16; i++ {
		for a := 0; a < 4; a++ {
			e.ctl[a].ewma.Store(16 * degreeUnit)
		}
		e.maybeResize()
	}
	if got := e.EffectiveAggregators(); got != 4 {
		t.Fatalf("effective aggregators after high-degree runs = %d, want ceiling 4", got)
	}
	if got := e.ScaleEpoch(); got != epochAfterShrink+3 {
		t.Fatalf("scale epoch = %d after regrow, want %d", got, epochAfterShrink+3)
	}
	for id := 0; id < 64; id += 7 {
		if a := e.AggOf(id); a < 0 || a >= 4 {
			t.Fatalf("AggOf(%d) = %d out of range", id, a)
		}
	}
}

// noopSpecAdaptive is noopSpec with adaptivity on (and a solo push so
// solo mode is reachable).
func noopSpecAdaptive(aggs, maxThreads int) Spec[int64, struct{}] {
	s := noopSpec(aggs, maxThreads, true)
	s.Adaptive = true
	s.TrySoloPush = func(int, *Batch[int64, struct{}]) bool { return true }
	return s
}

// TestAdaptiveRecyclingStress drives the full adaptive stack - solo
// attempts that genuinely succeed and fail under contention, fallback
// into the batch protocol, batch recycling with hazard reclamation,
// dynamic shard scaling - against a conservation invariant: with the
// identity eliminator every push adds 1 and every pop subtracts 1 from
// a shared counter, so after balanced workloads the counter is 0. Run
// with -race.
func TestAdaptiveRecyclingStress(t *testing.T) {
	var state atomic.Int64
	spec := Spec[int64, struct{}]{
		Aggregators: 3,
		MaxThreads:  16,
		FreezerSpin: 64,
		Partitioned: true,
		Adaptive:    true,
		Recycle:     true,
		Eliminate:   NoElim,
		ApplyPush: func(_ int, b *Batch[int64, struct{}], seq, pushAtF int64) {
			state.Add(pushAtF - seq)
		},
		ApplyPop: func(_ int, b *Batch[int64, struct{}], el, popAtF int64) {
			state.Add(-(popAtF - el))
		},
	}
	// Solo appliers with real contention: one CAS attempt each, exactly
	// the structure the stack builds from its top pointer.
	spec.TrySoloPush = func(_ int, b *Batch[int64, struct{}]) bool {
		old := state.Load()
		return state.CompareAndSwap(old, old+1)
	}
	spec.TrySoloPop = func(_ int, b *Batch[int64, struct{}]) bool {
		old := state.Load()
		return state.CompareAndSwap(old, old-1)
	}
	e := New(spec)
	const g, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		id, err := e.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer e.Release(id)
			val := int64(1)
			for i := 0; i < per; i++ {
				agg := e.AggOf(id)
				if i%2 == 0 {
					e.Push(id, agg, &val)
				} else {
					e.Pop(id, agg)
				}
				e.Done(id)
			}
		}(id)
	}
	wg.Wait()
	if got := state.Load(); got != 0 {
		t.Fatalf("conservation violated: counter = %d after balanced ops", got)
	}
	if k := e.EffectiveAggregators(); k < 1 || k > 3 {
		t.Fatalf("effective aggregators = %d out of [1,3]", k)
	}
}

// TestAdaptiveFullProtocolUnderContention: with adaptivity on, a
// structure whose solo attempts keep reporting contention must drop
// back to the full batch protocol and recover its batching behavior -
// batch degree above 1 and (with the pairwise eliminator) in-batch
// elimination - rather than thrash on the fast path. The big freezer
// spin reaches the backoff's yield threshold, which is what lets the
// opposite side get scheduled into the batch even on one CPU (see
// TestEliminationHandshake).
func TestAdaptiveFullProtocolUnderContention(t *testing.T) {
	m := metrics.NewSEC(1)
	e := New(Spec[int64, struct{}]{
		Aggregators: 1,
		MaxThreads:  8,
		FreezerSpin: 1 << 16,
		Partitioned: true,
		Adaptive:    true,
		ApplyPush:   func(int, *Batch[int64, struct{}], int64, int64) {},
		ApplyPop:    func(int, *Batch[int64, struct{}], int64, int64) {},
		TrySoloPush: func(int, *Batch[int64, struct{}]) bool { return false },
		TrySoloPop:  func(int, *Batch[int64, struct{}]) bool { return false },
		Metrics:     m,
	})
	const g = 4
	per := 2000
	if testing.Short() {
		per = 200
	}
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		id, err := e.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w, id int) {
			defer wg.Done()
			val := int64(1)
			for i := 0; i < per; i++ {
				if w%2 == 0 {
					e.Push(id, 0, &val)
				} else {
					e.Pop(id, 0)
				}
				e.Done(id)
			}
		}(w, id)
	}
	wg.Wait()
	snap := m.Snapshot()
	if snap.FastMisses == 0 {
		t.Fatal("contended solo attempts recorded no misses")
	}
	if snap.Batches == 0 {
		t.Fatal("full protocol never engaged under contention")
	}
	if d := snap.BatchingDegree(); d <= 1 {
		t.Fatalf("batch degree %.2f under contention, want > 1 (batches=%d ops=%d)",
			d, snap.Batches, snap.Ops)
	}
	if snap.Eliminated == 0 {
		t.Fatal("no in-batch elimination once the full protocol engaged")
	}
}

// TestPushTicketSeq: the ticket's sequence number indexes the batch the
// operation was actually served in - the contract the funnel's result
// table depends on.
func TestPushTicketSeq(t *testing.T) {
	e := New(Spec[int64, []int64]{
		Aggregators: 1,
		MaxThreads:  4,
		Partitioned: true,
		Eliminate:   NoElim,
		MakeData:    func(n int) []int64 { return make([]int64, n) },
		ApplyPush: func(_ int, b *Batch[int64, []int64], seq, pushAtF int64) {
			for i := seq; i < pushAtF; i++ {
				b.Data[i] = *b.WaitSlot(i) + 100
			}
		},
		ApplyPop: func(int, *Batch[int64, []int64], int64, int64) {},
	})
	for v := int64(0); v < 50; v++ {
		val := v
		pt := e.Push(0, 0, &val)
		if pt.Eliminated {
			t.Fatal("NoElim engine eliminated a push")
		}
		if got := pt.B.Data[pt.Seq]; got != v+100 {
			t.Fatalf("Data[%d] = %d, want %d", pt.Seq, got, v+100)
		}
	}
}

// TestTryPushStealBypassesProtocol: the push-side steal primitive is
// one solo apply through the session's scratch batch - no
// announcement, no freeze, no fast-path accounting - and a contended
// attempt reports failure with the structure untouched. Like TryPop it
// must work with Adaptive off, since pool shards overflow regardless
// of mode.
func TestTryPushStealBypassesProtocol(t *testing.T) {
	var sum atomic.Int64
	var contended atomic.Bool
	e := New(Spec[int64, []int64]{
		Aggregators: 2,
		MaxThreads:  4,
		Partitioned: true,
		Eliminate:   NoElim,
		MakeData:    func(n int) []int64 { return make([]int64, n) },
		ApplyPush:   func(int, *Batch[int64, []int64], int64, int64) {},
		ApplyPop:    func(int, *Batch[int64, []int64], int64, int64) {},
		TrySoloPush: func(_ int, b *Batch[int64, []int64]) bool {
			if contended.Load() {
				return false
			}
			b.Data[0] = sum.Add(*b.Slot(0))
			return true
		},
	})
	id, err := e.Register()
	if err != nil {
		t.Fatal(err)
	}
	before := e.ActiveBatch(1)
	v := int64(7)
	tk, ok := e.TryPush(id, 1, &v)
	if !ok {
		t.Fatal("uncontended TryPush failed")
	}
	if tk.Seq != 0 || tk.B.Data[0] != 7 {
		t.Fatalf("TryPush ticket = {Seq:%d Data:%d}, want {0 7}", tk.Seq, tk.B.Data[0])
	}
	if e.ActiveBatch(1) != before {
		t.Fatal("TryPush froze the victim aggregator's batch")
	}
	if hits, misses := e.FastPath(1); hits != 0 || misses != 0 {
		t.Fatalf("TryPush fed the fast-path counters (%d/%d), want none", hits, misses)
	}
	contended.Store(true)
	if _, ok := e.TryPush(id, 1, &v); ok {
		t.Fatal("contended TryPush reported success")
	}
	if got := sum.Load(); got != 7 {
		t.Fatalf("contended TryPush changed the structure: sum = %d, want 7", got)
	}
	// The miss path allocates nothing once the scratch batch exists: a
	// sweep over many contended shards must be CAS-cost only.
	if avg := testing.AllocsPerRun(200, func() { e.TryPush(id, 0, &v) }); avg > 0 {
		t.Fatalf("contended TryPush allocates %.2f allocs/op, want 0", avg)
	}
}

// TestTryPushWithoutSoloApplier: an engine whose structure provides no
// TrySoloPush (no solo semantics at all) reports every TryPush as not
// applied rather than panicking.
func TestTryPushWithoutSoloApplier(t *testing.T) {
	e := New(noopSpec(1, 4, true))
	id, err := e.Register()
	if err != nil {
		t.Fatal(err)
	}
	v := int64(1)
	if _, ok := e.TryPush(id, 0, &v); ok {
		t.Fatal("TryPush applied on an engine without a solo push applier")
	}
}

// TestSpinInheritanceOnResize pins the controller-seeding rule of
// dynamic shard scaling: when the effective shard count grows, the
// newly-live aggregator's spin controller and degree EWMA must be
// seeded from the mean of the surviving aggregators - not resume from
// the stale values the shard retired with (or the configured ceiling) -
// and the mode bit must be consistent with the inherited degree.
func TestSpinInheritanceOnResize(t *testing.T) {
	const ceiling = 1024
	m := metrics.NewSEC(4)
	spec := noopSpecAdaptive(4, 64)
	spec.FreezerSpin = ceiling
	spec.AdaptiveSpin = true
	spec.Metrics = m
	e := New(spec)

	// Consolidate to one shard: sustained near-empty batches.
	for i := 0; i < 16; i++ {
		for a := 0; a < 4; a++ {
			e.ctl[a].ewma.Store(degreeUnit)
		}
		e.maybeResize()
	}
	if got := e.EffectiveAggregators(); got != 1 {
		t.Fatalf("effective aggregators after low-degree runs = %d, want 1", got)
	}

	// Poison the dormant shard with the stale state the pre-inheritance
	// engine would have resumed with, and give the survivor a settled
	// mid-range tuning.
	e.ctl[1].spin.Store(ceiling)
	e.ctl[1].ewma.Store(degreeUnit)
	e.ctl[1].mode.Store(modeSolo)
	const survivorSpin, survivorDeg = 96, 8 * degreeUnit
	e.ctl[0].spin.Store(survivorSpin)
	e.ctl[0].ewma.Store(survivorDeg)
	e.ctl[0].mode.Store(modeBatched)

	e.maybeResize() // mean degree 8.0 >= growDegree: grow 1 -> 2
	if got := e.EffectiveAggregators(); got != 2 {
		t.Fatalf("effective aggregators after high-degree run = %d, want 2", got)
	}
	if got := e.EffectiveSpin(1); got != survivorSpin {
		t.Fatalf("newly-live shard's spin = %d, want inherited mean %d (stale was %d)",
			got, survivorSpin, ceiling)
	}
	if got := e.ctl[1].ewma.Load(); got != survivorDeg {
		t.Fatalf("newly-live shard's EWMA = %d, want inherited mean %d", got, survivorDeg)
	}
	if e.soloMode(1) {
		t.Fatal("newly-live shard kept stale solo mode despite inherited degree >= exit threshold")
	}
	if got := e.Inherits(1); got != 1 {
		t.Fatalf("Inherits(1) = %d, want 1", got)
	}
	if got := m.Snapshot().SpinInherits; got != 1 {
		t.Fatalf("metrics SpinInherits = %d, want 1", got)
	}

	// Grow 2 -> 3: the seed is the mean over both survivors.
	e.ctl[0].spin.Store(64)
	e.ctl[0].ewma.Store(8 * degreeUnit)
	e.ctl[1].spin.Store(128)
	e.ctl[1].ewma.Store(10 * degreeUnit)
	e.ctl[2].spin.Store(ceiling) // stale
	e.maybeResize()
	if got := e.EffectiveAggregators(); got != 3 {
		t.Fatalf("effective aggregators = %d, want 3", got)
	}
	if got := e.EffectiveSpin(2); got != 96 {
		t.Fatalf("second grow seeded spin %d, want mean(64, 128) = 96", got)
	}
	if got := e.ctl[2].ewma.Load(); got != 9*degreeUnit {
		t.Fatalf("second grow seeded EWMA %d, want mean %d", got, 9*degreeUnit)
	}
	if got := m.Snapshot().SpinInherits; got != 2 {
		t.Fatalf("metrics SpinInherits = %d after two grows, want 2", got)
	}
}

// TestSpinInheritanceSeedsSoloMode: a grow under a low inherited degree
// (possible when the resize races a load drop) seeds solo mode, so the
// new shard's first operations take the fast path its degree warrants.
func TestSpinInheritanceSeedsSoloMode(t *testing.T) {
	e := New(noopSpecAdaptive(2, 64))
	if got := e.EffectiveAggregators(); got != 2 {
		t.Fatalf("initial effective aggregators = %d, want 2", got)
	}
	// Shrink to 1, then poison the dormant shard's mode.
	for i := 0; i < 8; i++ {
		for a := 0; a < 2; a++ {
			e.ctl[a].ewma.Store(degreeUnit)
		}
		e.maybeResize()
	}
	if got := e.EffectiveAggregators(); got != 1 {
		t.Fatalf("effective aggregators = %d, want 1", got)
	}
	e.ctl[1].mode.Store(modeBatched)
	// inheritCtl is what maybeResize runs on a grow; drive it directly
	// with a low survivor degree (a grow immediately followed by a load
	// drop) to pin the solo seeding branch.
	e.ctl[0].ewma.Store(degreeUnit)
	e.inheritCtl(1)
	if !e.soloMode(1) {
		t.Fatal("inherited degree ~1 did not seed solo mode")
	}
}
