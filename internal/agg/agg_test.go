package agg

import (
	"sync"
	"sync/atomic"
	"testing"

	"secstack/internal/metrics"
)

func TestEliminators(t *testing.T) {
	cases := []struct{ push, pop, want int64 }{
		{0, 0, 0}, {5, 0, 0}, {0, 5, 0}, {3, 5, 3}, {5, 3, 3}, {4, 4, 4},
	}
	for _, c := range cases {
		if got := PairElim(c.push, c.pop); got != c.want {
			t.Fatalf("PairElim(%d, %d) = %d, want %d", c.push, c.pop, got, c.want)
		}
		if got := NoElim(c.push, c.pop); got != 0 {
			t.Fatalf("NoElim(%d, %d) = %d, want 0", c.push, c.pop, got)
		}
	}
}

// noopSpec is an engine whose appliers do nothing; enough for lifecycle
// and sizing mechanics.
func noopSpec(aggs, maxThreads int, partitioned bool) Spec[int64, struct{}] {
	return Spec[int64, struct{}]{
		Aggregators: aggs,
		MaxThreads:  maxThreads,
		Partitioned: partitioned,
		ApplyPush:   func(int, *Batch[int64, struct{}], int64, int64) {},
		ApplyPop:    func(int, *Batch[int64, struct{}], int64, int64) {},
	}
}

func TestBatchSizingPartitioned(t *testing.T) {
	e := New(noopSpec(2, 64, true))
	if got := e.NewBatch().Cap(); got != 4 {
		t.Fatalf("empty engine batch size = %d, want minimum 4", got)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.Register(); err != nil {
			t.Fatal(err)
		}
	}
	// 10 sessions over 2 aggregators -> 5 per aggregator.
	if got := e.NewBatch().Cap(); got != 5 {
		t.Fatalf("batch size with 10 sessions = %d, want 5", got)
	}
}

func TestBatchSizingUnpartitioned(t *testing.T) {
	// Unpartitioned (deque-style): every live session may land on one
	// aggregator, so batches are sized for all of them.
	e := New(noopSpec(2, 64, false))
	for i := 0; i < 10; i++ {
		if _, err := e.Register(); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.NewBatch().Cap(); got != 10 {
		t.Fatalf("unpartitioned batch size with 10 sessions = %d, want 10", got)
	}
}

func TestBatchSizingCappedAtMaxThreads(t *testing.T) {
	e := New(noopSpec(2, 8, true))
	for i := 0; i < 8; i++ {
		if _, err := e.Register(); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.NewBatch().Cap(); got != 4 {
		t.Fatalf("batch size = %d, want per-aggregator cap 4", got)
	}
}

func TestFreezeClampsAndInstalls(t *testing.T) {
	e := New(noopSpec(1, 64, true))
	old := e.ActiveBatch(0)
	b := e.NewBatch() // 4 slots (no sessions, minimum)
	b.PushCount.Store(10)
	b.PopCount.Store(2)
	e.Freeze(0, b)
	if got := b.PushAtFreeze.Load(); got != 4 {
		t.Fatalf("PushAtFreeze = %d, want clamped 4", got)
	}
	if got := b.PopAtFreeze.Load(); got != 2 {
		t.Fatalf("PopAtFreeze = %d, want 2", got)
	}
	if e.ActiveBatch(0) == old {
		t.Fatal("Freeze did not install a fresh batch")
	}
}

func TestSessionRecycling(t *testing.T) {
	e := New(noopSpec(2, 2, true))
	a, err := e.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register(); err == nil {
		t.Fatal("Register succeeded past MaxThreads live sessions")
	}
	e.Release(a)
	if e.InUse() != 1 {
		t.Fatalf("InUse = %d after release, want 1", e.InUse())
	}
	if _, err := e.Register(); err != nil {
		t.Fatalf("Register after Release: %v", err)
	}
}

func TestMetricsOccupancyTwoSided(t *testing.T) {
	m := metrics.NewSEC(1)
	spec := noopSpec(1, 64, true)
	spec.Metrics = m
	e := New(spec)
	b := e.NewBatch() // 4 slots -> two-sided op capacity 8
	b.PushCount.Store(3)
	b.PopCount.Store(1)
	e.Freeze(0, b)
	snap := m.Snapshot()
	if snap.Batches != 1 || snap.Ops != 4 {
		t.Fatalf("snapshot = %+v, want 1 batch / 4 ops", snap)
	}
	if snap.Eliminated != 2 {
		t.Fatalf("eliminated = %d, want 2 (one pair)", snap.Eliminated)
	}
	if snap.Capacity != 8 {
		t.Fatalf("capacity = %d, want 8", snap.Capacity)
	}
	if got := snap.OccupancyPct(); got != 50 {
		t.Fatalf("occupancy = %.1f%%, want 50%%", got)
	}
}

func TestMetricsOccupancySingleSided(t *testing.T) {
	m := metrics.NewSEC(1)
	spec := noopSpec(1, 64, true)
	spec.Metrics = m
	spec.SingleSided = true
	spec.Eliminate = NoElim
	e := New(spec)
	b := e.NewBatch() // 4 slots -> single-sided op capacity 4
	b.PushCount.Store(3)
	e.Freeze(0, b)
	snap := m.Snapshot()
	if snap.Eliminated != 0 {
		t.Fatalf("identity eliminator recorded %d eliminated ops", snap.Eliminated)
	}
	if snap.Capacity != 4 {
		t.Fatalf("capacity = %d, want 4", snap.Capacity)
	}
	if got := snap.OccupancyPct(); got != 75 {
		t.Fatalf("occupancy = %.1f%%, want 75%%", got)
	}
}

// applyLog is a payload that counts applier invocations per batch.
type applyLog struct {
	pushCalls atomic.Int64
	popCalls  atomic.Int64
}

// TestCombinerUniqueness drives a push/pop mix hard and asserts the
// engine elected exactly one combiner per side per frozen batch - the
// at-most-once applier contract every structure's applier relies on.
func TestCombinerUniqueness(t *testing.T) {
	var batches sync.Map // *Batch -> struct{}
	e := New(Spec[int64, *applyLog]{
		Aggregators: 2,
		MaxThreads:  64,
		FreezerSpin: 64,
		Partitioned: true,
		MakeData:    func(int) *applyLog { return &applyLog{} },
		ApplyPush: func(_ int, b *Batch[int64, *applyLog], _, _ int64) {
			batches.Store(b, struct{}{})
			b.Data.pushCalls.Add(1)
		},
		ApplyPop: func(_ int, b *Batch[int64, *applyLog], _, _ int64) {
			batches.Store(b, struct{}{})
			b.Data.popCalls.Add(1)
		},
	})
	const g, per = 8, 3000
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		id, err := e.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w, id int) {
			defer wg.Done()
			val := int64(1)
			agg := e.AggOf(id)
			for i := 0; i < per; i++ {
				if (w+i)%2 == 0 {
					e.Push(agg, &val)
				} else {
					e.Pop(agg)
				}
			}
		}(w, id)
	}
	wg.Wait()
	batches.Range(func(k, _ any) bool {
		b := k.(*Batch[int64, *applyLog])
		if n := b.Data.pushCalls.Load(); n > 1 {
			t.Fatalf("push applier ran %d times on one batch", n)
		}
		if n := b.Data.popCalls.Load(); n > 1 {
			t.Fatalf("pop applier ran %d times on one batch", n)
		}
		return true
	})
}

// TestEliminationHandshake checks the elimination fast path end to end:
// a pop that eliminates receives exactly the record its push partner
// announced, and eliminated operations never reach an applier.
func TestEliminationHandshake(t *testing.T) {
	var applied atomic.Int64
	e := New(Spec[int64, struct{}]{
		Aggregators: 1,
		MaxThreads:  8,
		// Grow batches well past backoff's spins-per-yield threshold so
		// the freezer's spin reaches a Gosched: that guarantees the
		// opposite side gets scheduled into the batch even on a single
		// CPU, where shorter spins serialize the workers into singleton
		// batches.
		FreezerSpin: 1 << 16,
		Partitioned: true,
		ApplyPush: func(_ int, b *Batch[int64, struct{}], seq, pushAtF int64) {
			applied.Add(pushAtF - seq)
		},
		ApplyPop: func(_ int, b *Batch[int64, struct{}], el, popAtF int64) {
			applied.Add(popAtF - el)
		},
	})
	const g = 4
	per := 2000
	if testing.Short() {
		per = 200 // the large freezer spin is slow under -race -short
	}
	var wg sync.WaitGroup
	var eliminated atomic.Int64
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := make([]int64, per)
			for i := 0; i < per; i++ {
				if w%2 == 0 {
					vals[i] = int64(w)<<32 | int64(i)
					pt := e.Push(0, &vals[i])
					if pt.Eliminated {
						eliminated.Add(1)
					}
				} else {
					pt := e.Pop(0)
					if pt.Elim != nil {
						eliminated.Add(1)
						if *pt.Elim>>32%2 != 0 {
							t.Error("eliminated pop received a record no push announced")
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if eliminated.Load() == 0 {
		t.Fatal("balanced mix with large batches eliminated nothing")
	}
	if eliminated.Load()%2 != 0 {
		t.Fatalf("eliminated count %d is odd (elimination is pairwise)", eliminated.Load())
	}
	if total := applied.Load() + eliminated.Load(); total > int64(g*per) {
		t.Fatalf("applied %d + eliminated %d exceeds %d operations",
			applied.Load(), eliminated.Load(), g*per)
	}
}

// TestPushTicketSeq: the ticket's sequence number indexes the batch the
// operation was actually served in - the contract the funnel's result
// table depends on.
func TestPushTicketSeq(t *testing.T) {
	e := New(Spec[int64, []int64]{
		Aggregators: 1,
		MaxThreads:  4,
		Partitioned: true,
		Eliminate:   NoElim,
		MakeData:    func(n int) []int64 { return make([]int64, n) },
		ApplyPush: func(_ int, b *Batch[int64, []int64], seq, pushAtF int64) {
			for i := seq; i < pushAtF; i++ {
				b.Data[i] = *b.WaitSlot(i) + 100
			}
		},
		ApplyPop: func(int, *Batch[int64, []int64], int64, int64) {},
	})
	for v := int64(0); v < 50; v++ {
		val := v
		pt := e.Push(0, &val)
		if pt.Eliminated {
			t.Fatal("NoElim engine eliminated a push")
		}
		if got := pt.B.Data[pt.Seq]; got != v+100 {
			t.Fatalf("Data[%d] = %d, want %d", pt.Seq, got, v+100)
		}
	}
}
