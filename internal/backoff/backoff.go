// Package backoff provides contention-management primitives shared by the
// concurrent stack implementations: randomized exponential backoff for
// CAS-retry loops and bounded spin-then-yield waiters for the blocking
// phases of SEC.
//
// The paper's algorithms spin on shared flags assuming OS threads pinned
// to cores. Under the Go runtime, a spinning goroutine can starve the
// goroutine it is waiting for when goroutines outnumber GOMAXPROCS, so
// every waiter here yields to the scheduler after a bounded number of
// spins. This is the repro-critical delta called out in DESIGN.md §4.
package backoff

import (
	"runtime"

	"secstack/internal/xrand"
)

// spinsPerYield is how many busy iterations a waiter performs between
// runtime.Gosched calls. Small enough to keep oversubscribed runs live,
// large enough that at-or-below GOMAXPROCS the wait stays in user space
// (a scheduler round trip costs microseconds - three orders of
// magnitude more than the batch-coordination waits SEC performs).
const spinsPerYield = 4096

// Exp implements randomized truncated exponential backoff, in the style
// of Herlihy & Shavit §7.4. It is not safe for concurrent use; each
// goroutine owns its own Exp.
type Exp struct {
	rng      *xrand.State
	min, max int
	cur      int
}

// NewExp returns an exponential backoff ranging from min to max spin
// iterations. min must be at least 1 and max at least min.
func NewExp(min, max int, seed uint64) *Exp {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	return &Exp{rng: xrand.New(seed), min: min, max: max, cur: min}
}

// Backoff spins for a random duration up to the current limit, then
// doubles the limit (truncated at max).
func (e *Exp) Backoff() {
	n := e.rng.Intn(e.cur) + 1
	for i := 0; i < n; i++ {
		if i%spinsPerYield == spinsPerYield-1 {
			runtime.Gosched()
		}
		spinHint()
	}
	if e.cur < e.max {
		e.cur *= 2
		if e.cur > e.max {
			e.cur = e.max
		}
	}
}

// Reset restores the backoff limit to its minimum. Call after a
// successful operation.
func (e *Exp) Reset() {
	e.cur = e.min
}

// Limit reports the current backoff limit, for tests and adaptive
// policies.
func (e *Exp) Limit() int { return e.cur }

// Waiter is a bounded-spin-then-yield helper for waiting on a condition
// maintained by another goroutine. The zero value is ready to use.
//
//	var w backoff.Waiter
//	for !flag.Load() {
//		w.Wait()
//	}
type Waiter struct {
	spins int
}

// Wait performs one unit of waiting: a CPU spin hint, escalating to a
// scheduler yield every spinsPerYield calls.
func (w *Waiter) Wait() {
	w.spins++
	if w.spins%spinsPerYield == 0 {
		runtime.Gosched()
	} else {
		spinHint()
	}
}

// Spins reports how many Wait calls have been made, for instrumentation.
func (w *Waiter) Spins() int { return w.spins }

// Spin busy-loops for n iterations, yielding periodically. It is the
// freezer's pre-freeze delay in SEC (grows the batch) and the interval
// delay in the timestamped stack.
func Spin(n int) {
	for i := 0; i < n; i++ {
		if i%spinsPerYield == spinsPerYield-1 {
			runtime.Gosched()
		}
		spinHint()
	}
}

// spinHint is a best-effort CPU relax. Go has no portable PAUSE
// instruction; a noinline call keeps spin loops from being optimized
// away while staying cheap and side-effect free.
//
//go:noinline
func spinHint() {
}
