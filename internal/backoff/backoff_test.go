package backoff

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewExpClampsArguments(t *testing.T) {
	e := NewExp(0, 0, 1)
	if e.min != 1 || e.max != 1 {
		t.Fatalf("min/max = %d/%d, want 1/1", e.min, e.max)
	}
	e = NewExp(10, 5, 1)
	if e.max != 10 {
		t.Fatalf("max = %d, want clamped to min 10", e.max)
	}
}

func TestExpDoubling(t *testing.T) {
	e := NewExp(2, 16, 1)
	want := []int{2, 4, 8, 16, 16, 16}
	for i, w := range want {
		if e.Limit() != w {
			t.Fatalf("step %d: limit = %d, want %d", i, e.Limit(), w)
		}
		e.Backoff()
	}
}

func TestExpReset(t *testing.T) {
	e := NewExp(2, 64, 1)
	for i := 0; i < 10; i++ {
		e.Backoff()
	}
	if e.Limit() != 64 {
		t.Fatalf("limit = %d, want saturated 64", e.Limit())
	}
	e.Reset()
	if e.Limit() != 2 {
		t.Fatalf("after Reset limit = %d, want 2", e.Limit())
	}
}

func TestWaiterCountsSpins(t *testing.T) {
	var w Waiter
	for i := 0; i < 500; i++ {
		w.Wait()
	}
	if w.Spins() != 500 {
		t.Fatalf("Spins = %d, want 500", w.Spins())
	}
}

// TestWaiterMakesProgressOversubscribed is the repro-critical property:
// a waiter must not starve its producer even when every P is occupied by
// a spinning goroutine.
func TestWaiterMakesProgressOversubscribed(t *testing.T) {
	nprocs := 4
	waiters := nprocs * 8 // heavily oversubscribed
	var flag atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var w Waiter
			for !flag.Load() {
				w.Wait()
			}
		}()
	}
	// The producer runs last; without yields in Wait it could be starved
	// on a small GOMAXPROCS. Give it a moment to be scheduled.
	time.Sleep(10 * time.Millisecond)
	flag.Store(true)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters failed to observe flag within 10s (starvation)")
	}
}

func TestSpinTerminates(t *testing.T) {
	start := time.Now()
	Spin(10000)
	if time.Since(start) > 5*time.Second {
		t.Fatal("Spin(10000) took implausibly long")
	}
}

func TestSpinZero(t *testing.T) {
	Spin(0) // must not hang or panic
}

func BenchmarkWaiterWait(b *testing.B) {
	var w Waiter
	for i := 0; i < b.N; i++ {
		w.Wait()
	}
}

func BenchmarkExpBackoffMin(b *testing.B) {
	e := NewExp(1, 1, 1)
	for i := 0; i < b.N; i++ {
		e.Backoff()
	}
}
