// Package ccstack implements a stack protected by the CC-Synch combining
// protocol of Fatourou and Kallimanis (PPoPP '12), the CC baseline of
// the paper's evaluation.
//
// CC-Synch organizes pending requests in an implicit queue built with a
// single SWAP per operation: each thread exchanges its spare node into
// the shared tail, announces its request on the node it received, and
// spins locally. The thread whose node reaches the head of the queue
// becomes the combiner and serves up to H requests along the chain
// before handing the combiner role to the next waiting thread - giving
// combining without a lock and with purely local spinning.
package ccstack

import (
	"sync/atomic"

	"secstack/internal/backoff"
	"secstack/internal/seqstack"
)

// Request codes.
const (
	opPush int32 = iota + 1
	opPop
	opPeek
)

// ccNode is one cell of the request queue. Fields req/value are written
// by the announcing thread before it publishes the node via next
// (release); the combiner reads next (acquire) before req/value, and
// writes result fields before clearing wait (release).
type ccNode[T any] struct {
	req      int32
	value    T
	result   T
	resultOK bool
	complete bool
	wait     atomic.Bool
	next     atomic.Pointer[ccNode[T]]
	_        [16]byte
}

// Stack is a CC-Synch-combined stack. Use Register to obtain
// per-goroutine handles.
type Stack[T any] struct {
	tail atomic.Pointer[ccNode[T]]
	stk  *seqstack.Stack[T]
	h    int // max requests served per combiner session
}

// Option configures a Stack.
type Option func(*config)

type config struct{ h int }

// WithServeLimit sets H, the maximum number of requests one combiner
// serves before passing the role on. Default 64 (the original paper
// uses a small multiple of the thread count).
func WithServeLimit(h int) Option {
	return func(c *config) {
		if h > 0 {
			c.h = h
		}
	}
}

// New returns an empty CC-Synch stack.
func New[T any](opts ...Option) *Stack[T] {
	c := config{h: 64}
	for _, o := range opts {
		o(&c)
	}
	s := &Stack[T]{stk: seqstack.New[T](1024), h: c.h}
	s.tail.Store(&ccNode[T]{}) // initial dummy; its owner-to-be is the first announcer
	return s
}

// Handle is a per-goroutine session owning one spare queue node.
// Handles must not be shared between goroutines.
type Handle[T any] struct {
	s    *Stack[T]
	node *ccNode[T]
}

// Register returns a new handle on the stack.
func (s *Stack[T]) Register() *Handle[T] {
	return &Handle[T]{s: s, node: &ccNode[T]{}}
}

// Close releases the handle. A CC-Synch handle owns one spare queue
// node, which the garbage collector reclaims with the handle; nothing
// is registered centrally, so Close is a no-op that exists to satisfy
// the uniform handle-lifecycle contract. Idempotent.
func (h *Handle[T]) Close() {}

// submit runs one operation through the CC-Synch protocol.
func (h *Handle[T]) submit(op int32, v T) (T, bool) {
	s := h.s

	next := h.node
	next.next.Store(nil)
	next.wait.Store(true)
	next.complete = false

	cur := s.tail.Swap(next)
	cur.req = op
	cur.value = v
	h.node = cur // adopt the node we announce on as our next spare
	cur.next.Store(next)

	var w backoff.Waiter
	for cur.wait.Load() {
		w.Wait()
	}
	if cur.complete { // a combiner served us
		return cur.result, cur.resultOK
	}

	// We are the combiner: serve the chain starting at our own node.
	tmp := cur
	served := 0
	for {
		nxt := tmp.next.Load()
		if nxt == nil || served >= s.h {
			break
		}
		served++
		s.apply(tmp)
		tmp.complete = true
		tmp.wait.Store(false)
		tmp = nxt
	}
	// Pass the combiner role to the first unserved node.
	tmp.wait.Store(false)
	return cur.result, cur.resultOK
}

// apply executes the request announced on n against the sequential
// stack.
func (s *Stack[T]) apply(n *ccNode[T]) {
	switch n.req {
	case opPush:
		s.stk.Push(n.value)
		n.resultOK = true
	case opPop:
		n.result, n.resultOK = s.stk.Pop()
	case opPeek:
		n.result, n.resultOK = s.stk.Peek()
	}
}

// Push adds v to the top of the stack.
func (h *Handle[T]) Push(v T) {
	h.submit(opPush, v)
}

// Pop removes and returns the top element; ok is false if the stack was
// empty when the combiner served the request.
func (h *Handle[T]) Pop() (v T, ok bool) {
	var zero T
	return h.submit(opPop, zero)
}

// Peek returns the top element without removing it.
func (h *Handle[T]) Peek() (v T, ok bool) {
	var zero T
	return h.submit(opPeek, zero)
}

// Len reports the number of elements; a racy diagnostic for tests and
// quiescent states.
func (s *Stack[T]) Len() int { return s.stk.Len() }
