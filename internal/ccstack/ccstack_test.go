package ccstack_test

import (
	"sync"
	"testing"

	"secstack/internal/ccstack"
	"secstack/internal/stacktest"
)

type adapter struct{ s *ccstack.Stack[int64] }

func (a adapter) Register() stacktest.Handle { return a.s.Register() }

func factory() stacktest.Stack { return adapter{ccstack.New[int64]()} }

func TestConformance(t *testing.T) {
	stacktest.RunAll(t, factory)
}

func TestTinyServeLimit(t *testing.T) {
	// H=1 forces a combiner handoff after every request, maximizing
	// baton-passing traffic.
	s := ccstack.New[int64](ccstack.WithServeLimit(1))
	var wg sync.WaitGroup
	const g, per = 6, 1500
	seen := make([]int32, g*per)
	var mu sync.Mutex
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			local := make([]int64, 0, per)
			for i := 0; i < per; i++ {
				h.Push(int64(w*per + i))
				if v, ok := h.Pop(); ok {
					local = append(local, v)
				}
			}
			mu.Lock()
			for _, v := range local {
				seen[v]++
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	h := s.Register()
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		seen[v]++
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("value %d seen %d times", v, c)
		}
	}
}

func TestHandleNodeReuse(t *testing.T) {
	// Many sequential ops through one handle exercise the spare-node
	// adoption cycle.
	s := ccstack.New[int64]()
	h := s.Register()
	for i := 0; i < 10000; i++ {
		h.Push(int64(i))
		if v, ok := h.Pop(); !ok || v != int64(i) {
			t.Fatalf("iteration %d: Pop = (%d, %v)", i, v, ok)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}
