// Package chaosproxy is a TCP fault-injection proxy for the secd wire
// protocol: it sits between a client and the server and, per relayed
// chunk, can drop the connection, delay delivery, or truncate a chunk
// mid-frame before killing the stream. secload -chaos routes its load
// through one to prove the client retry machinery loses no
// acknowledged operations and leaks no sessions.
//
// Drop and truncate always sever BOTH directions: TCP has no way to
// "lose" bytes from a live stream, and forwarding a partial frame on
// a surviving connection would silently desynchronise everything after
// it. A truncated chunk is therefore delivered short and then the
// stream dies, which is exactly what a mid-frame network failure looks
// like to both ends.
package chaosproxy

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"secstack/internal/xrand"
)

// Config parameterises the chaos. Probabilities are per relayed
// chunk, in [0,1]; they are checked in drop, truncate, delay order.
type Config struct {
	Target    string        // address of the real server
	DropProb  float64       // chance a chunk kills the connection outright
	TruncProb float64       // chance a chunk is cut short, then the connection dies
	DelayProb float64       // chance a chunk is held before delivery
	Delay     time.Duration // how long a delayed chunk is held (default 2ms)
	Seed      uint64        // RNG seed (default 0xc4a05)
}

// Stats counts the faults the proxy injected.
type Stats struct {
	Conns     int64 // client connections accepted
	Drops     int64 // connections killed by DropProb
	Truncates int64 // connections killed mid-frame by TruncProb
	Delays    int64 // chunks held by DelayProb
}

// Proxy is a running chaos proxy. Start it with Serve; stop it with
// Close.
type Proxy struct {
	cfg Config
	lis net.Listener

	conns     atomic.Int64
	drops     atomic.Int64
	truncates atomic.Int64
	delays    atomic.Int64

	mu     sync.Mutex
	live   map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	seq atomic.Uint64 // per-connection RNG stream derivation
}

// Listen starts a proxy on addr (use "127.0.0.1:0" for an ephemeral
// port) relaying to cfg.Target.
func Listen(addr string, cfg Config) (*Proxy, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("chaosproxy: empty target")
	}
	if cfg.Delay <= 0 {
		cfg.Delay = 2 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xc4a05
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, lis: lis, live: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address for clients to dial.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// Stats returns the fault counters so far.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:     p.conns.Load(),
		Drops:     p.drops.Load(),
		Truncates: p.truncates.Load(),
		Delays:    p.delays.Load(),
	}
}

// Close stops accepting, severs every live relay, and waits for the
// pumps to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.live {
		c.Close()
	}
	p.mu.Unlock()
	err := p.lis.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		cli, err := p.lis.Accept()
		if err != nil {
			return
		}
		srv, err := net.DialTimeout("tcp", p.cfg.Target, 5*time.Second)
		if err != nil {
			cli.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			cli.Close()
			srv.Close()
			return
		}
		p.live[cli] = struct{}{}
		p.live[srv] = struct{}{}
		p.wg.Add(2)
		p.mu.Unlock()
		p.conns.Add(1)
		n := p.seq.Add(1)
		// Independent chaos streams per direction, deterministic in the
		// seed and connection order.
		go p.pump(cli, srv, n*2)   // client -> server
		go p.pump(srv, cli, n*2+1) // server -> client
	}
}

// pump relays src to dst chunk by chunk, rolling the chaos dice on
// each. Any fault or error severs both conns so the two pumps always
// die together.
func (p *Proxy) pump(src, dst net.Conn, stream uint64) {
	defer p.wg.Done()
	defer p.forget(src, dst)
	rng := xrand.New(p.cfg.Seed + stream*0x9e3779b97f4a7c15)
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			switch {
			case roll(rng, p.cfg.DropProb):
				p.drops.Add(1)
				return
			case n > 1 && roll(rng, p.cfg.TruncProb):
				// Deliver a strict prefix, then die mid-frame.
				p.truncates.Add(1)
				dst.Write(chunk[:1+rng.Intn(n-1)])
				return
			case roll(rng, p.cfg.DelayProb):
				p.delays.Add(1)
				time.Sleep(p.cfg.Delay)
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// forget closes both ends of a relay and drops them from the live set.
func (p *Proxy) forget(a, b net.Conn) {
	a.Close()
	b.Close()
	p.mu.Lock()
	delete(p.live, a)
	delete(p.live, b)
	p.mu.Unlock()
}

// roll returns true with probability prob.
func roll(rng *xrand.State, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	return rng.Float64() < prob
}
