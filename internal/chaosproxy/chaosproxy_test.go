package chaosproxy

import (
	"errors"
	"net"
	"testing"
	"time"

	"secstack/internal/secclient"
	"secstack/internal/secd"
	"secstack/internal/wire"
)

func startServer(t *testing.T, cfg secd.Config) (*secd.Server, string) {
	t.Helper()
	s, err := secd.New(cfg)
	if err != nil {
		t.Fatalf("secd.New: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(lis) }()
	t.Cleanup(func() {
		if err := s.Shutdown(2 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return s, lis.Addr().String()
}

// TestTransparentWhenQuiet: with all probabilities zero the proxy is
// an invisible relay - handshake, ops, and statuses pass through.
func TestTransparentWhenQuiet(t *testing.T) {
	_, addr := startServer(t, secd.Config{MaxSessions: 2})
	p, err := Listen("127.0.0.1:0", Config{Target: addr})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Close()
	c, err := secclient.Dial(secclient.Config{Addr: p.Addr()})
	if err != nil {
		t.Fatalf("dial through proxy: %v", err)
	}
	defer c.Close()
	if rep, err := c.Do(wire.OpFunnelAdd, 11); err != nil || rep.Status != wire.StatusOK {
		t.Fatalf("op through proxy: %+v %v", rep, err)
	}
	if rep, err := c.Do(wire.OpFunnelLoad, 0); err != nil || rep.Value != 11 {
		t.Fatalf("load through proxy: %+v %v", rep, err)
	}
	st := p.Stats()
	if st.Conns != 1 || st.Drops != 0 || st.Truncates != 0 {
		t.Fatalf("proxy stats = %+v, want one quiet conn", st)
	}
}

// TestDropSeversBothSides: a certain drop kills the relay on the
// first chunk; the client sees a dead connection, the server sees a
// disconnect and recycles the session.
func TestDropSeversBothSides(t *testing.T) {
	s, addr := startServer(t, secd.Config{MaxSessions: 2})
	p, err := Listen("127.0.0.1:0", Config{Target: addr, DropProb: 1})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Close()
	if _, err := secclient.Dial(secclient.Config{Addr: p.Addr(), RequestTimeout: time.Second}); err == nil {
		t.Fatal("handshake survived a 100% drop proxy")
	}
	if p.Stats().Drops == 0 {
		t.Fatal("no drops counted")
	}
	waitSessionsZero(t, s)
}

// TestTruncateDiesMidFrame: a certain truncation forwards a strict
// prefix and then severs; the server must treat the cut frame as a
// disconnect, never as a parsed request.
func TestTruncateDiesMidFrame(t *testing.T) {
	s, addr := startServer(t, secd.Config{MaxSessions: 2})
	p, err := Listen("127.0.0.1:0", Config{Target: addr, TruncProb: 1})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Close()
	if _, err := secclient.Dial(secclient.Config{Addr: p.Addr(), RequestTimeout: time.Second}); err == nil {
		t.Fatal("handshake survived a 100% truncating proxy")
	}
	if p.Stats().Truncates == 0 {
		t.Fatal("no truncations counted")
	}
	waitSessionsZero(t, s)
}

// TestDelayStillDelivers: delays slow chunks but lose nothing.
func TestDelayStillDelivers(t *testing.T) {
	_, addr := startServer(t, secd.Config{MaxSessions: 2})
	p, err := Listen("127.0.0.1:0", Config{Target: addr, DelayProb: 1, Delay: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Close()
	c, err := secclient.Dial(secclient.Config{Addr: p.Addr()})
	if err != nil {
		t.Fatalf("dial through delaying proxy: %v", err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if rep, err := c.Do(wire.OpStackPush, int64(i)); err != nil || rep.Status != wire.StatusOK {
			t.Fatalf("push %d: %+v %v", i, rep, err)
		}
	}
	if p.Stats().Delays == 0 {
		t.Fatal("no delays counted")
	}
}

// TestChaosLosesNoAckedOps is the package-level version of the CI
// chaos smoke: funnel increments acknowledged through a lossy proxy
// must all be present server-side, and no session may leak. Ops the
// client reports lost (budget exhausted) are excluded - the invariant
// is about acknowledged work only.
func TestChaosLosesNoAckedOps(t *testing.T) {
	s, addr := startServer(t, secd.Config{MaxSessions: 8})
	p, err := Listen("127.0.0.1:0", Config{
		Target:    addr,
		DropProb:  0.02,
		TruncProb: 0.01,
		DelayProb: 0.05,
		Delay:     time.Millisecond,
		Seed:      7,
	})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Close()
	cfg := secclient.Config{
		Addr:           p.Addr(),
		RequestTimeout: time.Second,
		Retries:        8,
		BackoffBase:    time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
		Seed:           11,
	}
	c, err := secclient.Dial(cfg)
	if err != nil {
		t.Fatalf("dial through chaos: %v", err)
	}
	defer c.Close()
	var acked int64
	for i := 0; i < 400; i++ {
		rep, err := c.Do(wire.OpFunnelAdd, 1)
		if errors.Is(err, secclient.ErrLost) {
			continue // never acknowledged; makes no promise
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if rep.Status != wire.StatusOK {
			t.Fatalf("op %d status %v", i, rep.Status)
		}
		acked++
	}
	st := c.Stats()
	if st.Retries == 0 {
		t.Skipf("chaos injected nothing (stats %+v); nothing to assert", st)
	}
	// Every acknowledged increment must be in the funnel. Retries of
	// unacked sends may legally double-apply (at-most-once hole), so
	// the server may hold MORE than acked, never less.
	if got := s.Funnel().Load(); got < acked {
		t.Fatalf("funnel = %d < %d acked increments: acknowledged ops were lost (proxy %+v, client %+v)",
			got, acked, p.Stats(), st)
	}
	c.Close()
	waitSessionsZero(t, s)
}

// waitSessionsZero polls the session gauge to zero - chaos-severed
// conns take a server-side read/write error to notice.
func waitSessionsZero(t *testing.T, s *secd.Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Metrics().Sessions() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("session gauge stuck at %d, want 0", s.Metrics().Sessions())
}
