// Package config is the single configuration type behind every public
// constructor in the repository. The public packages (stack, deque,
// pool, funnel) each re-export the functional options relevant to them
// as aliases of Option, so one option value - say WithMaxThreads(64) -
// is meaningful to any constructor and the four packages can never
// drift apart on defaults again (the seed had four divergent Options
// structs with subtly different zero-value semantics).
//
// Zero-value handling: Default() bakes in the paper's evaluation
// defaults; options overwrite fields directly. An option that would set
// a nonsensical value clamps instead of failing, matching the seed's
// constructors.
package config

// Config carries every knob any algorithm in the repository accepts.
// Constructors read the fields they understand and ignore the rest,
// which is what lets one option set configure all six stack algorithms
// through the registry.
type Config struct {
	// Aggregators is K, the number of SEC shards (also the funnel's
	// aggregator count). The paper's evaluation defaults to 2.
	Aggregators int

	// MaxThreads bounds *concurrently live* handles. With Close-based
	// slot recycling this is a concurrency bound, not a lifetime bound:
	// any number of handles may be registered over time as long as at
	// most MaxThreads are open at once.
	MaxThreads int

	// FreezerSpin is the freezer's batch-growing pre-freeze backoff in
	// spin iterations (§3.1 of the paper; also the funnel delegate's
	// spin). Default 128; 0 disables it and keeps batches small. Under
	// AdaptiveSpin this is the ceiling of the per-aggregator
	// controller rather than the value every freeze pays.
	FreezerSpin int

	// FreezerSpinSet records that WithFreezerSpin was given explicitly,
	// for packages whose own default differs from the shared 128 (the
	// pool's shards default to 0 - its sharding already spreads
	// contention - and must not silently inherit the stack's spin).
	FreezerSpinSet bool

	// AdaptiveSpin replaces the fixed FreezerSpin with a per-aggregator
	// controller driven by the batch-degree EWMA: the effective spin
	// grows toward FreezerSpin while batches freeze well-filled and
	// decays toward zero while they freeze near-empty.
	AdaptiveSpin bool

	// NoElimination disables in-batch elimination (the SEC ablation).
	NoElimination bool

	// Recycle routes SEC stack nodes through epoch-based reclamation
	// instead of fresh allocation.
	Recycle bool

	// Adaptive enables contention adaptivity in the batch-protocol
	// structures (SEC stack, deque, funnel): the solo fast path when an
	// aggregator's recent batch degree is ~1, and dynamic shard scaling
	// between 1 and Aggregators for partitioned engines.
	Adaptive bool

	// BatchRecycle retires frozen batches to per-aggregator free lists
	// for reuse, so the steady-state freeze path allocates nothing.
	BatchRecycle bool

	// CollectMetrics enables the batching/elimination/combining degree
	// counters behind the paper's Tables 1-3.
	CollectMetrics bool

	// Shards is the pool's SEC-stack count.
	Shards int

	// PutOverflow is the pool's Put-overflow threshold: after this many
	// consecutive home-shard solo-CAS losses, a Put sweeps the foreign
	// shards with the TryPush steal primitive (one splice CAS, no batch
	// protocol) before falling back to the home shard's full protocol -
	// the push-side twin of Get's peek-then-steal. 0 disables overflow
	// and pins every Put to its home shard. Default 2.
	PutOverflow int

	// ElasticShards enables the pool's elastic shard controller: the
	// live shard window [0, liveK) moves within the constructed Shards
	// maximum, grown under sustained bidirectional steal-miss pressure
	// (or a high external load signal) and shrunk - through a
	// drain/fence protocol - while every live shard sits in solo mode
	// with idle steal counters. Implies Adaptive for the pool's shards
	// (the shrink signal reads their solo-mode bits). Default off.
	ElasticShards bool

	// ElasticPeriod is the elastic controller's op cadence: each pool
	// handle counts its own Put/Get calls and runs one controller pass
	// per ElasticPeriod ops (amortized, try-locked - no background
	// goroutine). Smaller periods converge faster but evaluate signals
	// over noisier windows. Values < 1 clamp to 1. Default 2048.
	ElasticPeriod int

	// Capacity bounds the queue's element count. A full queue rejects
	// TryEnqueue/Enqueue with false rather than blocking, matching the
	// non-blocking half of a buffered channel's contract. Default 1024.
	Capacity int

	// Initial is the funnel counter's starting value.
	Initial int64

	// BackoffMin/BackoffMax bound Treiber's randomized exponential
	// backoff window in spin iterations.
	BackoffMin, BackoffMax int

	// ElimArraySize and ElimPatience configure the EB stack's
	// elimination array and per-visit patience.
	ElimArraySize, ElimPatience int

	// CombinerRounds is the FC combiner's publication-list scan count
	// per lock acquisition.
	CombinerRounds int

	// ServeLimit is CC-Synch's H: requests served per combiner session.
	ServeLimit int

	// TimestampDelay is the TS-interval stack's interval-widening spin
	// between a push's two clock reads.
	TimestampDelay int

	// ImplicitAffinity enables the per-P tier of the implicit-session
	// layer behind the handle-free APIs: an implicit op on P k reuses
	// P k's cached handle (procpin identity, as sync.Pool does
	// internally), so it keeps hitting the same aggregator's solo
	// scratch batch. Off, every implicit op borrows through the spill
	// pool alone - the pre-affinity behavior. Default on.
	ImplicitAffinity bool

	// AnnounceEvery is the Done cadence the implicit-session layer
	// sets on its cached handles: the session's hazard slot is
	// published once per AnnounceEvery implicit ops instead of per op
	// (amortized announcement). 1 restores the eager per-op clear;
	// values < 1 are treated as 1. The cost of a larger cadence is
	// that an idle cached session may pin one retired batch per
	// structure until its window closes - the same bound the hazard
	// scan tolerates for a session parked mid-operation. Default 8
	// (one hazard clear per reclaim-epoch's worth of ops).
	AnnounceEvery int
}

// Option mutates a Config. The public packages alias this type, so
// options compose across packages.
type Option func(*Config)

// Default returns the paper-evaluation defaults shared by every
// constructor.
func Default() Config {
	return Config{
		Aggregators:    2,
		MaxThreads:     256,
		FreezerSpin:    128,
		Shards:         4,
		PutOverflow:    2,
		Capacity:       1024,
		ElasticPeriod:  2048,
		BackoffMin:     4,
		BackoffMax:     1024,
		ElimArraySize:  16,
		ElimPatience:   64,
		CombinerRounds: 2,
		ServeLimit:     64,
		TimestampDelay: 32,

		ImplicitAffinity: true,
		AnnounceEvery:    8,
	}
}

// Resolve applies opts over the defaults.
func Resolve(opts []Option) Config {
	c := Default()
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// WithAggregators sets K, the shard count of SEC stacks and funnels
// (clamped to at least 1).
func WithAggregators(k int) Option {
	return func(c *Config) { c.Aggregators = max(k, 1) }
}

// WithMaxThreads bounds concurrently live handles (clamped to at
// least 1).
func WithMaxThreads(n int) Option {
	return func(c *Config) { c.MaxThreads = max(n, 1) }
}

// WithFreezerSpin sets the batch-growing backoff in spin iterations; 0
// (or less) disables it.
func WithFreezerSpin(s int) Option {
	return func(c *Config) {
		c.FreezerSpin = max(s, 0)
		c.FreezerSpinSet = true
	}
}

// WithAdaptiveSpin toggles the adaptive freezer backoff: instead of
// every freeze paying the fixed WithFreezerSpin delay, each aggregator
// tunes its own pre-freeze spin on the batch-degree EWMA - growing
// toward the configured value while batches freeze well-filled
// (waiting is buying batch degree) and decaying toward zero while
// they freeze near-empty (waiting is pure latency). WithFreezerSpin
// remains the ceiling; with a ceiling of 0 there is nothing to adapt.
func WithAdaptiveSpin(on bool) Option {
	return func(c *Config) { c.AdaptiveSpin = on }
}

// WithoutElimination disables in-batch elimination, leaving freezing
// and combining intact (the paper's ablation).
func WithoutElimination() Option {
	return func(c *Config) { c.NoElimination = true }
}

// WithRecycling routes SEC stack nodes through epoch-based reclamation
// instead of the garbage collector.
func WithRecycling() Option {
	return func(c *Config) { c.Recycle = true }
}

// WithAdaptive toggles contention adaptivity in the batch-protocol
// structures: the solo fast path (one direct apply when the recent
// batch degree is ~1, falling back to the full protocol on contention)
// and dynamic shard scaling between 1 and Aggregators.
func WithAdaptive(on bool) Option {
	return func(c *Config) { c.Adaptive = on }
}

// WithBatchRecycling toggles batch recycling: frozen batches retire to
// per-aggregator free lists - slot arrays and payloads reused - so the
// steady-state freeze path allocates nothing.
func WithBatchRecycling(on bool) Option {
	return func(c *Config) { c.BatchRecycle = on }
}

// WithMetrics enables degree counters (batching, elimination,
// combining).
func WithMetrics() Option {
	return func(c *Config) { c.CollectMetrics = true }
}

// WithShards sets the pool's shard count (clamped to at least 1).
func WithShards(n int) Option {
	return func(c *Config) { c.Shards = max(n, 1) }
}

// WithPutOverflow sets the pool's Put-overflow threshold: how many
// consecutive home-shard solo-CAS losses a handle tolerates before its
// Puts start sweeping foreign shards with the TryPush steal primitive.
// 0 disables overflow (every Put stays on its home shard); negative
// values clamp to 0.
func WithPutOverflow(threshold int) Option {
	return func(c *Config) { c.PutOverflow = max(threshold, 0) }
}

// WithElasticShards toggles the pool's elastic shard controller:
// WithShards becomes a ceiling and the live shard window grows under
// sustained steal-miss pressure and shrinks (drain, then fence) when
// every live shard runs solo with idle steal counters. Implies
// WithAdaptive(true) for the pool's shards.
func WithElasticShards(on bool) Option {
	return func(c *Config) { c.ElasticShards = on }
}

// WithElasticPeriod sets the elastic controller's op cadence: one
// controller pass per k Put/Get calls of each handle. Values below 1
// clamp to 1.
func WithElasticPeriod(k int) Option {
	return func(c *Config) { c.ElasticPeriod = max(k, 1) }
}

// WithCapacity bounds the queue's element count (clamped to at least
// 1). Enqueues into a full queue return false instead of blocking.
func WithCapacity(n int) Option {
	return func(c *Config) { c.Capacity = max(n, 1) }
}

// WithInitial sets the funnel counter's starting value.
func WithInitial(v int64) Option {
	return func(c *Config) { c.Initial = v }
}

// WithBackoff sets Treiber's exponential backoff window.
func WithBackoff(min, max int) Option {
	return func(c *Config) {
		if min > 0 && max >= min {
			c.BackoffMin, c.BackoffMax = min, max
		}
	}
}

// WithElimArray sets the EB stack's elimination array size and
// patience.
func WithElimArray(size, patience int) Option {
	return func(c *Config) {
		if size > 0 {
			c.ElimArraySize = size
		}
		if patience > 0 {
			c.ElimPatience = patience
		}
	}
}

// WithCombinerRounds sets the FC combiner's scan rounds per lock hold.
func WithCombinerRounds(r int) Option {
	return func(c *Config) {
		if r > 0 {
			c.CombinerRounds = r
		}
	}
}

// WithServeLimit sets CC-Synch's per-combiner serve limit H.
func WithServeLimit(h int) Option {
	return func(c *Config) {
		if h > 0 {
			c.ServeLimit = h
		}
	}
}

// WithTimestampDelay sets the TS-interval push's interval-widening
// delay; 0 (or less) disables it.
func WithTimestampDelay(d int) Option {
	return func(c *Config) { c.TimestampDelay = max(d, 0) }
}

// WithImplicitSessions toggles the per-P affinity tier of the
// implicit-session layer behind the handle-free APIs (default on).
// Off, implicit ops fall back to the spill-pool-only borrow path.
func WithImplicitSessions(on bool) Option {
	return func(c *Config) { c.ImplicitAffinity = on }
}

// WithAnnounceEvery sets the implicit sessions' amortized-announcement
// cadence: the hazard slot is published once per k implicit ops. 1
// restores the eager per-op announce; values below 1 are clamped to 1.
func WithAnnounceEvery(k int) Option {
	return func(c *Config) { c.AnnounceEvery = max(k, 1) }
}
