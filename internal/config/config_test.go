package config_test

import (
	"testing"

	"secstack/internal/config"
)

func TestDefaultsMatchPaper(t *testing.T) {
	c := config.Resolve(nil)
	if c.Aggregators != 2 || c.MaxThreads != 256 || c.FreezerSpin != 128 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.NoElimination || c.Recycle || c.CollectMetrics {
		t.Fatalf("boolean knobs default on: %+v", c)
	}
	if c.Adaptive || c.BatchRecycle {
		t.Fatalf("adaptivity knobs default on: %+v", c)
	}
	if c.Shards != 4 {
		t.Fatalf("Shards default = %d, want 4", c.Shards)
	}
}

func TestOptionsCompose(t *testing.T) {
	c := config.Resolve([]config.Option{
		config.WithAggregators(5),
		config.WithMaxThreads(32),
		config.WithFreezerSpin(0),
		config.WithoutElimination(),
		config.WithRecycling(),
		config.WithMetrics(),
		config.WithShards(2),
		config.WithInitial(-7),
		config.WithAdaptive(true),
		config.WithBatchRecycling(true),
		nil, // nil options are tolerated
	})
	if c.Aggregators != 5 || c.MaxThreads != 32 || c.FreezerSpin != 0 {
		t.Fatalf("resolved = %+v", c)
	}
	if !c.NoElimination || !c.Recycle || !c.CollectMetrics {
		t.Fatalf("boolean options dropped: %+v", c)
	}
	if !c.Adaptive || !c.BatchRecycle {
		t.Fatalf("adaptivity options dropped: %+v", c)
	}
	if c.Shards != 2 || c.Initial != -7 {
		t.Fatalf("resolved = %+v", c)
	}
}

func TestClamping(t *testing.T) {
	c := config.Resolve([]config.Option{
		config.WithAggregators(0),
		config.WithMaxThreads(-3),
		config.WithFreezerSpin(-1),
		config.WithTimestampDelay(-5),
		config.WithBackoff(0, 10),    // rejected: min must be positive
		config.WithElimArray(0, 0),   // rejected wholesale
		config.WithCombinerRounds(0), // rejected
		config.WithServeLimit(-1),    // rejected
	})
	if c.Aggregators != 1 || c.MaxThreads != 1 {
		t.Fatalf("clamps wrong: %+v", c)
	}
	if c.FreezerSpin != 0 || c.TimestampDelay != 0 {
		t.Fatalf("spin clamps wrong: %+v", c)
	}
	d := config.Default()
	if c.BackoffMin != d.BackoffMin || c.ElimArraySize != d.ElimArraySize ||
		c.CombinerRounds != d.CombinerRounds || c.ServeLimit != d.ServeLimit {
		t.Fatalf("invalid options mutated defaults: %+v", c)
	}
}

func TestAdaptiveSpinOption(t *testing.T) {
	if c := config.Resolve(nil); c.AdaptiveSpin {
		t.Fatal("AdaptiveSpin defaults on; the fixed paper backoff must stay the default")
	}
	c := config.Resolve([]config.Option{config.WithAdaptiveSpin(true)})
	if !c.AdaptiveSpin {
		t.Fatal("config.WithAdaptiveSpin(true) not applied")
	}
	if c.FreezerSpin != 128 {
		t.Fatalf("WithAdaptiveSpin changed the spin ceiling to %d, want default 128", c.FreezerSpin)
	}
	if c.FreezerSpinSet {
		t.Fatal("FreezerSpinSet true without WithFreezerSpin (the pool's 0-spin default would be lost)")
	}
	if c := config.Resolve([]config.Option{config.WithFreezerSpin(64)}); !c.FreezerSpinSet || c.FreezerSpin != 64 {
		t.Fatalf("WithFreezerSpin(64) = (%d, set=%v), want (64, true)", c.FreezerSpin, c.FreezerSpinSet)
	}
	c = config.Resolve([]config.Option{config.WithAdaptiveSpin(true), config.WithAdaptiveSpin(false)})
	if c.AdaptiveSpin {
		t.Fatal("config.WithAdaptiveSpin(false) did not override")
	}
}

func TestPutOverflowOption(t *testing.T) {
	if c := config.Resolve(nil); c.PutOverflow != 2 {
		t.Fatalf("PutOverflow default = %d, want 2", c.PutOverflow)
	}
	if c := config.Resolve([]config.Option{config.WithPutOverflow(5)}); c.PutOverflow != 5 {
		t.Fatalf("WithPutOverflow(5) = %d", c.PutOverflow)
	}
	if c := config.Resolve([]config.Option{config.WithPutOverflow(0)}); c.PutOverflow != 0 {
		t.Fatalf("WithPutOverflow(0) = %d, want 0 (disabled)", c.PutOverflow)
	}
	if c := config.Resolve([]config.Option{config.WithPutOverflow(-3)}); c.PutOverflow != 0 {
		t.Fatalf("WithPutOverflow(-3) = %d, want clamp to 0", c.PutOverflow)
	}
}
