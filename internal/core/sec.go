// Package core implements SEC (Sharded Elimination and Combining), the
// blocking linearizable concurrent stack of Singh, Metaxakis and
// Fatourou (PPoPP '26) - the primary contribution this repository
// reproduces.
//
// Threads are partitioned across K aggregators; the operations of each
// aggregator's threads are grouped into batches. Announcing an
// operation is one fetch&increment on the batch's push or pop counter;
// the returned sequence number doubles as the thread's slot in the
// batch's elimination array. The first push and first pop race on a
// test&set bit to become the batch's freezer, which - after a short
// batch-growing backoff - snapshots both counters and installs a fresh
// batch in the aggregator. Opposite operations with equal sequence
// numbers below the snapshot eliminate each other; the survivors (all
// of one type) are applied to the shared stack by a single per-batch
// combiner with one CAS: push combiners splice a pre-linked substack
// under the top pointer, pop combiners detach a chain of nodes and
// publish it for their batch's waiters to read return values from.
//
// Deviations from the paper's pseudocode, both required for a connected
// substack (see DESIGN.md §7):
//
//   - PushToStack initializes the chain head at the combiner's own node
//     (the paper's top=⊥ would disconnect it from the nodes linked on
//     top of it);
//   - PopFromStack advances k = popCountAtFreeze-pushCountAtFreeze nodes
//     past the old top (the paper's loop advances k-1, which would leave
//     the last served pop's node on the stack).
package core

import (
	"fmt"
	"sync/atomic"

	"secstack/internal/backoff"
	"secstack/internal/ebr"
	"secstack/internal/metrics"
	"secstack/internal/tid"
)

// node is one cell of the shared stack (and of batch substacks).
type node[T any] struct {
	value T
	next  *node[T]
}

// batch is the unit of freezing, elimination and combining (Figure 1 of
// the paper). All fields are shared across the aggregator's threads.
type batch[T any] struct {
	pushCount atomic.Int64
	popCount  atomic.Int64

	// Snapshots taken by the freezer; published to the other threads by
	// the aggregator's batch-pointer swap (release) that every
	// non-freezer waits on (acquire).
	pushCountAtFreeze atomic.Int64
	popCountAtFreeze  atomic.Int64

	isFreezerDecided atomic.Bool
	pushApplied      atomic.Bool // push combiner finished
	popApplied       atomic.Bool // pop combiner finished; subStackTop valid

	// subStackTop is the chain the pop combiner detached from the
	// shared stack; waiters index into it by sequence-number offset.
	subStackTop atomic.Pointer[node[T]]

	// pending (recycling only) counts surviving pops that have not yet
	// read their return value; the reader that decrements it to zero
	// retires the detached chain. Retiring per-node as values are read
	// would violate epoch reclamation's contract: the chain stays
	// reachable through subStackTop, and a sibling waiter whose critical
	// section began after an early retire could still traverse the
	// retired node.
	pending atomic.Int64

	// elim[i] is the node announced by the push with sequence number i.
	elim []atomic.Pointer[node[T]]
}

// aggregator holds the pointer to its currently active batch, padded so
// that distinct aggregators do not share a cache line.
type aggregator[T any] struct {
	batch atomic.Pointer[batch[T]]
	_     [56]byte
}

// Options configures a SEC stack. The zero value selects the defaults
// the paper's evaluation uses where applicable.
type Options struct {
	// Aggregators is K, the number of shards threads are partitioned
	// into. The paper's evaluation defaults to 2.
	Aggregators int

	// MaxThreads bounds Register calls; it also sizes elimination
	// arrays (ceil(MaxThreads/Aggregators) slots each). Default 256.
	MaxThreads int

	// FreezerSpin is the freezer's pre-freeze backoff in spin
	// iterations, which grows batches and with them the elimination and
	// combining degrees (§3.1 of the paper). Default 128; 0 disables.
	FreezerSpin int

	// NoElimination disables in-batch elimination, leaving freezing and
	// combining intact: both a push and a pop combiner may then apply
	// their sides of a batch. This is the ablation isolating how much
	// of SEC's win comes from elimination versus combining.
	NoElimination bool

	// Recycle routes node allocation through DEBRA-style epoch-based
	// reclamation (internal/ebr) instead of fresh allocation, the Go
	// analogue of the paper's DEBRA deployment (§4).
	Recycle bool

	// CollectMetrics enables the batching/elimination/combining degree
	// counters behind the paper's Tables 1-3.
	CollectMetrics bool
}

func (o Options) withDefaults() Options {
	if o.Aggregators <= 0 {
		o.Aggregators = 2
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 256
	}
	if o.FreezerSpin < 0 {
		o.FreezerSpin = 0
	}
	return o
}

// Stack is a SEC stack. Use Register to obtain per-goroutine handles.
type Stack[T any] struct {
	top atomic.Pointer[node[T]]

	aggs        []aggregator[T]
	perAgg      int // P: max threads per aggregator = elim array size
	freezerSpin int
	noElim      bool

	m          *metrics.SEC // nil when metrics are disabled
	rec        *ebr.Manager[node[T]]
	tids       *tid.Allocator
	maxThreads int
}

// New returns an empty SEC stack configured by opts.
func New[T any](opts Options) *Stack[T] {
	o := opts.withDefaults()
	perAgg := (o.MaxThreads + o.Aggregators - 1) / o.Aggregators
	s := &Stack[T]{
		aggs:        make([]aggregator[T], o.Aggregators),
		perAgg:      perAgg,
		freezerSpin: o.FreezerSpin,
		noElim:      o.NoElimination,
		maxThreads:  o.MaxThreads,
		tids:        tid.New(o.MaxThreads),
	}
	if o.CollectMetrics {
		s.m = metrics.NewSEC(o.Aggregators)
	}
	if o.Recycle {
		s.rec = ebr.NewManager[node[T]](o.MaxThreads)
	}
	for i := range s.aggs {
		s.aggs[i].batch.Store(s.newBatch())
	}
	return s
}

// newBatch allocates a batch whose elimination array is sized for the
// threads currently registered on this stack's aggregators, not for the
// MaxThreads worst case: batches are allocated on every freeze, so a
// worst-case array would dominate the allocation rate at low thread
// counts. Threads that announce past the array (registered after the
// batch was created) are pushed to the next, larger batch by the
// snapshot clamp in freezeBatch.
func (s *Stack[T]) newBatch() *batch[T] {
	n := s.tids.InUse()
	p := (n + len(s.aggs) - 1) / len(s.aggs)
	if p < 4 {
		p = 4
	}
	if p > s.perAgg {
		p = s.perAgg
	}
	return &batch[T]{elim: make([]atomic.Pointer[node[T]], p)}
}

// Metrics returns the degree snapshot collector, or nil if
// CollectMetrics was not set.
func (s *Stack[T]) Metrics() *metrics.SEC { return s.m }

// Handle is one goroutine's session on the stack: its thread id fixes
// its aggregator. Handles must not be shared between goroutines.
type Handle[T any] struct {
	s      *Stack[T]
	tid    int
	aggIdx int
	agg    *aggregator[T]
	rec    *ebr.Handle[node[T]] // nil when recycling is off
	closed bool
}

// Register returns a new handle. Thread ids are drawn from a lock-free
// free list and assigned round-robin across aggregators, giving the
// even distribution the paper prescribes; ids released by Close are
// reused, so MaxThreads bounds concurrently live handles rather than
// lifetime registrations. It panics once MaxThreads handles are live at
// the same time.
func (s *Stack[T]) Register() *Handle[T] {
	h, err := s.TryRegister()
	if err != nil {
		panic(err.Error())
	}
	return h
}

// TryRegister is Register with an error in place of the exhaustion
// panic, for callers that prefer backpressure over crashing.
func (s *Stack[T]) TryRegister() (*Handle[T], error) {
	tid, err := s.tids.Acquire()
	if err != nil {
		return nil, fmt.Errorf("core: more than MaxThreads=%d handles live", s.maxThreads)
	}
	h := &Handle[T]{s: s, tid: tid, aggIdx: tid % len(s.aggs)}
	h.agg = &s.aggs[h.aggIdx]
	if s.rec != nil {
		h.rec = s.rec.Register()
	}
	return h, nil
}

// Close releases the handle's thread id (and its reclamation slot) for
// reuse by a future Register, so goroutine churn cannot exhaust
// MaxThreads. Close is idempotent; any other use of a closed handle is
// a bug. It must not be called while an operation on the handle is in
// flight.
func (h *Handle[T]) Close() {
	if h.closed {
		return
	}
	h.closed = true
	if h.rec != nil {
		h.rec.Close()
	}
	h.s.tids.Release(h.tid)
}

// alloc produces an initialized node, recycled when possible.
func (h *Handle[T]) alloc(v T) *node[T] {
	if h.rec == nil {
		return &node[T]{value: v}
	}
	n := h.rec.Alloc()
	n.value = v
	n.next = nil
	return n
}

// retire hands a consumed node to the reclamation substrate.
func (h *Handle[T]) retire(n *node[T]) {
	if h.rec != nil {
		h.rec.Retire(n)
	}
}

// enter/exit bracket one operation's EBR critical section (no-ops when
// recycling is off).
func (h *Handle[T]) enter() {
	if h.rec != nil {
		h.rec.Enter()
	}
}

func (h *Handle[T]) exit() {
	if h.rec != nil {
		h.rec.Exit()
	}
}

// freezeBatch is the paper's FreezeBatch: snapshot both counters, then
// install a fresh batch, which releases every spinning announcer.
func (h *Handle[T]) freezeBatch(b *batch[T]) {
	if h.s.freezerSpin > 0 {
		backoff.Spin(h.s.freezerSpin) // grow the batch (§3.1)
	}
	limit := int64(len(b.elim))
	pops := min(b.popCount.Load(), limit)
	pushes := min(b.pushCount.Load(), limit)
	b.popCountAtFreeze.Store(pops)
	b.pushCountAtFreeze.Store(pushes)
	h.agg.batch.Store(h.s.newBatch())
	if h.s.m != nil {
		elimPairs := min(pushes, pops)
		if h.s.noElim {
			elimPairs = 0
		}
		h.s.m.RecordBatchRaw(h.aggIdx, int(pushes+pops), int(2*elimPairs))
	}
}

// elimCount returns e, the number of eliminated pairs of the frozen
// batch: operations with sequence number < e are eliminated; the
// combiner of each surviving side is the operation with sequence number
// exactly e.
func (s *Stack[T]) elimCount(pushAtF, popAtF int64) int64 {
	if s.noElim {
		return 0
	}
	return min(pushAtF, popAtF)
}

// Push adds v to the stack (Algorithm 1 of the paper).
func (h *Handle[T]) Push(v T) {
	h.enter()
	defer h.exit()

	n := h.alloc(v)
	for {
		b := h.agg.batch.Load()
		seq := b.pushCount.Add(1) - 1
		if int(seq) < len(b.elim) {
			b.elim[seq].Store(n) // announce the value immediately (line 7)
		}

		if seq == 0 && b.isFreezerDecided.CompareAndSwap(false, true) {
			h.freezeBatch(b)
		} else {
			var w backoff.Waiter
			for h.agg.batch.Load() == b {
				w.Wait()
			}
		}

		pushAtF := b.pushCountAtFreeze.Load()
		popAtF := b.popCountAtFreeze.Load()
		if seq >= pushAtF {
			continue // announced after the freeze: retry in a later batch
		}

		e := h.s.elimCount(pushAtF, popAtF)
		if seq >= e { // not eliminated
			if seq == e { // first survivor: combiner
				h.pushToStack(b, seq, pushAtF)
				b.pushApplied.Store(true)
			} else {
				var w backoff.Waiter
				for !b.pushApplied.Load() {
					w.Wait()
				}
			}
		}
		// Eliminated pushes return right away: the paired pop reads the
		// node from the elimination array.
		return
	}
}

// pushToStack is the paper's PushToStack, executed only by a batch's
// push combiner: link the surviving nodes into a substack and splice it
// onto the shared stack with one CAS.
func (h *Handle[T]) pushToStack(b *batch[T], seq, pushAtF int64) {
	s := h.s
	bot := b.elim[seq].Load() // the combiner's own node, already stored
	top := bot
	for i := seq + 1; i < pushAtF; i++ {
		var w backoff.Waiter
		var n *node[T]
		for {
			if n = b.elim[i].Load(); n != nil {
				break
			}
			w.Wait() // announcer is between its F&I and its slot store
		}
		n.next = top
		top = n
	}
	for {
		oldTop := s.top.Load()
		bot.next = oldTop
		if s.top.CompareAndSwap(oldTop, top) {
			return
		}
	}
}

// Pop removes and returns the top element (Algorithm 2 of the paper);
// ok is false if the stack did not hold enough elements for this
// operation's slice of its batch.
func (h *Handle[T]) Pop() (v T, ok bool) {
	h.enter()
	defer h.exit()

	for {
		b := h.agg.batch.Load()
		seq := b.popCount.Add(1) - 1

		if seq == 0 && b.isFreezerDecided.CompareAndSwap(false, true) {
			h.freezeBatch(b)
		} else {
			var w backoff.Waiter
			for h.agg.batch.Load() == b {
				w.Wait()
			}
		}

		pushAtF := b.pushCountAtFreeze.Load()
		popAtF := b.popCountAtFreeze.Load()
		if seq >= popAtF {
			continue // announced after the freeze: retry in a later batch
		}

		e := h.s.elimCount(pushAtF, popAtF)
		if seq < e {
			// Eliminated: take the value of the push with our sequence
			// number straight from the elimination array.
			var w backoff.Waiter
			var n *node[T]
			for {
				if n = b.elim[seq].Load(); n != nil {
					break
				}
				w.Wait()
			}
			val := n.value
			h.retire(n)
			return val, true
		}

		k := popAtF - e
		if seq == e { // first survivor: combiner
			h.popFromStack(b, k)
			b.popApplied.Store(true)
		} else {
			var w backoff.Waiter
			for !b.popApplied.Load() {
				w.Wait()
			}
		}
		v, ok = h.getValue(b, seq-e)
		h.releaseSubstack(b, k)
		return v, ok
	}
}

// releaseSubstack notes that one surviving pop has read its value; the
// last reader retires the batch's detached chain (recycling only).
func (h *Handle[T]) releaseSubstack(b *batch[T], k int64) {
	if h.rec == nil {
		return
	}
	if b.pending.Add(-1) != 0 {
		return
	}
	n := b.subStackTop.Load()
	for i := int64(0); i < k && n != nil; i++ {
		next := n.next
		h.retire(n)
		n = next
	}
}

// popFromStack is the paper's PopFromStack, executed only by a batch's
// pop combiner: detach k nodes (or as many as exist) from the shared
// stack with one CAS and publish the removed chain.
func (h *Handle[T]) popFromStack(b *batch[T], k int64) {
	s := h.s
	if h.rec != nil {
		b.pending.Store(k) // published to waiters by popApplied below
	}
	for {
		oldTop := s.top.Load()
		newTop := oldTop
		for i := int64(0); i < k && newTop != nil; i++ {
			newTop = newTop.next
		}
		if s.top.CompareAndSwap(oldTop, newTop) {
			b.subStackTop.Store(oldTop)
			return
		}
	}
}

// getValue is the paper's GetValue: the pop with offset off into its
// batch's surviving pops receives the off-th node of the removed chain,
// or EMPTY if the stack ran out.
func (h *Handle[T]) getValue(b *batch[T], off int64) (v T, ok bool) {
	n := b.subStackTop.Load()
	for i := int64(0); i < off && n != nil; i++ {
		n = n.next
	}
	if n == nil {
		return v, false
	}
	return n.value, true
}

// Peek returns the top element without removing it; a single atomic
// read of the top pointer, as in the paper.
func (h *Handle[T]) Peek() (v T, ok bool) {
	h.enter()
	defer h.exit()
	n := h.s.top.Load()
	if n == nil {
		return v, false
	}
	return n.value, true
}

// Len counts the elements currently on the shared stack; a racy
// diagnostic for tests and quiescent states.
func (s *Stack[T]) Len() int {
	n := 0
	for p := s.top.Load(); p != nil; p = p.next {
		n++
	}
	return n
}

// Aggregators reports K, for harness labeling.
func (s *Stack[T]) Aggregators() int { return len(s.aggs) }

// RegisteredThreads reports how many handles are currently live
// (registered and not yet closed).
func (s *Stack[T]) RegisteredThreads() int { return s.tids.InUse() }
