// Package core implements SEC (Sharded Elimination and Combining), the
// blocking linearizable concurrent stack of Singh, Metaxakis and
// Fatourou (PPoPP '26) - the primary contribution this repository
// reproduces.
//
// Threads are partitioned across K aggregators; the operations of each
// aggregator's threads are grouped into batches. Announcing an
// operation is one fetch&increment on the batch's push or pop counter;
// the returned sequence number doubles as the thread's slot in the
// batch's elimination array. The first push and first pop race on a
// test&set bit to become the batch's freezer, which - after a short
// batch-growing backoff - snapshots both counters and installs a fresh
// batch in the aggregator. Opposite operations with equal sequence
// numbers below the snapshot eliminate each other; the survivors (all
// of one type) are applied to the shared stack by a single per-batch
// combiner with one CAS: push combiners splice a pre-linked substack
// under the top pointer, pop combiners detach a chain of nodes and
// publish it for their batch's waiters to read return values from.
//
// The aggregator/batch lifecycle itself - announcement, the freezer
// race and its backoff, elimination bookkeeping, combiner election,
// batch sizing, session recycling, degree metrics - lives in
// internal/agg, shared with the deque and funnel packages. This
// package instantiates the engine with SEC's pairwise eliminator and
// the stack's appliers: the splice-substack CAS for surviving pushes
// and the detach-chain CAS for surviving pops.
//
// Deviations from the paper's pseudocode, both required for a connected
// substack (see DESIGN.md §7); both live in the appliers below:
//
//   - applyPush initializes the chain head at the combiner's own node
//     (the paper's top=⊥ would disconnect it from the nodes linked on
//     top of it);
//   - applyPop advances k = popCountAtFreeze-pushCountAtFreeze nodes
//     past the old top (the paper's loop advances k-1, which would leave
//     the last served pop's node on the stack).
package core

import (
	"fmt"
	"sync/atomic"

	"secstack/internal/agg"
	"secstack/internal/ebr"
	"secstack/internal/metrics"
)

// node is one cell of the shared stack (and of batch substacks).
type node[T any] struct {
	value T
	next  *node[T]
}

// popChain is the per-batch payload: the chain the pop combiner
// detached from the shared stack, which waiters index into by
// sequence-number offset, plus the surviving-pop countdown used by
// node recycling.
type popChain[T any] struct {
	// top is the detached chain's head; published to waiters by the
	// engine's applied handshake.
	top atomic.Pointer[node[T]]

	// pending (recycling only) counts surviving pops that have not yet
	// read their return value; the reader that decrements it to zero
	// retires the detached chain. Retiring per-node as values are read
	// would violate epoch reclamation's contract: the chain stays
	// reachable through top, and a sibling waiter whose critical
	// section began after an early retire could still traverse the
	// retired node.
	pending atomic.Int64
}

// secBatch and secEngine name this package's engine instantiation.
type (
	secBatch[T any]  = agg.Batch[node[T], popChain[T]]
	secEngine[T any] = agg.Engine[node[T], popChain[T]]
)

// Options configures a SEC stack. The zero value selects the defaults
// the paper's evaluation uses where applicable.
type Options struct {
	// Aggregators is K, the number of shards threads are partitioned
	// into. The paper's evaluation defaults to 2.
	Aggregators int

	// MaxThreads bounds Register calls; it also sizes elimination
	// arrays (ceil(MaxThreads/Aggregators) slots each). Default 256.
	MaxThreads int

	// FreezerSpin is the freezer's pre-freeze backoff in spin
	// iterations, which grows batches and with them the elimination and
	// combining degrees (§3.1 of the paper). Default 128; 0 disables.
	FreezerSpin int

	// AdaptiveSpin turns FreezerSpin into the ceiling of a
	// per-aggregator controller driven by the batch-degree EWMA: the
	// effective spin grows toward FreezerSpin while batches freeze
	// well-filled and decays toward zero while they freeze near-empty
	// (see DESIGN.md §9).
	AdaptiveSpin bool

	// NoElimination disables in-batch elimination, leaving freezing and
	// combining intact: both a push and a pop combiner may then apply
	// their sides of a batch. This is the ablation isolating how much
	// of SEC's win comes from elimination versus combining.
	NoElimination bool

	// Recycle routes node allocation through DEBRA-style epoch-based
	// reclamation (internal/ebr) instead of fresh allocation, the Go
	// analogue of the paper's DEBRA deployment (§4).
	Recycle bool

	// CollectMetrics enables the batching/elimination/combining degree
	// counters behind the paper's Tables 1-3.
	CollectMetrics bool

	// Adaptive enables contention adaptivity: the solo fast path (a
	// push or pop attempts one Treiber-style CAS directly when its
	// aggregator's recent batch degree is ~1, falling back to the full
	// batch protocol on contention) and dynamic shard scaling between 1
	// and Aggregators. See DESIGN.md §8.
	Adaptive bool

	// BatchRecycle retires frozen batches to per-aggregator free lists
	// for reuse - slot arrays and pop-chain payloads included - so the
	// steady-state freeze path allocates nothing.
	BatchRecycle bool
}

func (o Options) withDefaults() Options {
	if o.Aggregators <= 0 {
		o.Aggregators = 2
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 256
	}
	if o.FreezerSpin < 0 {
		o.FreezerSpin = 0
	}
	return o
}

// Stack is a SEC stack. Use Register to obtain per-goroutine handles.
type Stack[T any] struct {
	top atomic.Pointer[node[T]]

	eng *secEngine[T]
	rec *ebr.Manager[node[T]]
}

// New returns an empty SEC stack configured by opts.
func New[T any](opts Options) *Stack[T] {
	o := opts.withDefaults()
	s := &Stack[T]{}
	eliminate := agg.PairElim
	if o.NoElimination {
		eliminate = agg.NoElim
	}
	var m *metrics.SEC
	if o.CollectMetrics {
		m = metrics.NewSEC(o.Aggregators)
	}
	if o.Recycle {
		s.rec = ebr.NewManager[node[T]](o.MaxThreads)
	}
	s.eng = agg.New(agg.Spec[node[T], popChain[T]]{
		Aggregators:  o.Aggregators,
		MaxThreads:   o.MaxThreads,
		FreezerSpin:  o.FreezerSpin,
		AdaptiveSpin: o.AdaptiveSpin,
		Partitioned:  true,
		Recycle:      o.BatchRecycle,
		Adaptive:     o.Adaptive,
		Eliminate:    eliminate,
		ResetData:    s.resetChain,
		ApplyPush:    s.applyPush,
		ApplyPop:     s.applyPop,
		TrySoloPush:  s.trySoloPush,
		TrySoloPop:   s.trySoloPop,
		Metrics:      m,
	})
	return s
}

// resetChain clears a recycled batch's pop-chain payload so a reused
// batch cannot publish a previous incarnation's detached chain (or
// keep its nodes reachable for the GC).
func (s *Stack[T]) resetChain(p *popChain[T]) {
	p.top.Store(nil)
	p.pending.Store(0)
}

// Metrics returns the degree snapshot collector, or nil if
// CollectMetrics was not set.
func (s *Stack[T]) Metrics() *metrics.SEC { return s.eng.Metrics() }

// Handle is one goroutine's session on the stack: its thread id maps
// to its aggregator (consulted per operation, since dynamic shard
// scaling may remap it). Handles must not be shared between
// goroutines.
type Handle[T any] struct {
	s      *Stack[T]
	tid    int
	rec    *ebr.Handle[node[T]] // nil when recycling is off
	closed bool

	// hz is the session's cached hazard slot (nil without batch
	// recycling): the op-end Done bookkeeping runs through it inline
	// instead of an engine call per operation.
	hz *agg.HazardSlot[node[T], popChain[T]]

	// spare is a scrubbed node recovered from a failed TryPush when no
	// reclamation substrate exists to take it (rec == nil); the next
	// alloc reuses it, so a contended steal sweep costs CASes, not
	// dead allocations.
	spare *node[T]
}

// Register returns a new handle. Thread ids are drawn from a lock-free
// free list and assigned round-robin across aggregators, giving the
// even distribution the paper prescribes; ids released by Close are
// reused, so MaxThreads bounds concurrently live handles rather than
// lifetime registrations. It panics once MaxThreads handles are live at
// the same time.
func (s *Stack[T]) Register() *Handle[T] {
	h, err := s.TryRegister()
	if err != nil {
		panic(err.Error())
	}
	return h
}

// TryRegister is Register with an error in place of the exhaustion
// panic, for callers that prefer backpressure over crashing.
func (s *Stack[T]) TryRegister() (*Handle[T], error) {
	tid, err := s.eng.Register()
	if err != nil {
		return nil, fmt.Errorf("core: more than MaxThreads=%d handles live", s.eng.MaxThreads())
	}
	h := &Handle[T]{s: s, tid: tid, hz: s.eng.Hazard(tid)}
	if s.rec != nil {
		h.rec = s.rec.Register()
	}
	return h, nil
}

// SetDoneCadence amortizes this handle's announcement: the session's
// hazard is cleared on every k-th operation instead of every one, so
// long runs on one aggregator skip the per-op publish-and-revalidate
// (see agg.Engine.SetDoneCadence for the safety bound). The implicit
// session layer sets it on its cached handles; explicit callers may
// too when a handle lives for many operations. No-op without batch
// recycling.
func (h *Handle[T]) SetDoneCadence(k int) {
	h.s.eng.SetDoneCadence(h.tid, k)
}

// Close releases the handle's thread id (and its reclamation slot) for
// reuse by a future Register, so goroutine churn cannot exhaust
// MaxThreads. Close is idempotent; any other use of a closed handle is
// a bug. It must not be called while an operation on the handle is in
// flight.
func (h *Handle[T]) Close() {
	if h.closed {
		return
	}
	h.closed = true
	if h.rec != nil {
		h.rec.Close()
	}
	h.s.eng.Release(h.tid)
}

// alloc produces an initialized node, recycled when possible (from the
// EBR pool, or from the spare a failed TryPush left behind).
func (h *Handle[T]) alloc(v T) *node[T] {
	if h.rec == nil {
		if n := h.spare; n != nil {
			h.spare = nil
			n.value = v
			return n
		}
		return &node[T]{value: v}
	}
	n := h.rec.Alloc()
	n.value = v
	n.next = nil
	return n
}

// retire hands a consumed node to the reclamation substrate.
func (h *Handle[T]) retire(n *node[T]) {
	if h.rec != nil {
		h.rec.Retire(n)
	}
}

// enter/exit bracket one operation's EBR critical section (no-ops when
// recycling is off).
func (h *Handle[T]) enter() {
	if h.rec != nil {
		h.rec.Enter()
	}
}

func (h *Handle[T]) exit() {
	if h.rec != nil {
		h.rec.Exit()
	}
}

// Push adds v to the stack (Algorithm 1 of the paper). The batch
// lifecycle - announcement, freeze, elimination, combiner election -
// runs in the engine; an eliminated push returns right away (the
// paired pop reads the node from the elimination array), a surviving
// push returns once its batch's combiner spliced the substack.
func (h *Handle[T]) Push(v T) {
	h.enter()
	eng := h.s.eng
	eng.Push(h.tid, eng.AggOf(h.tid), h.alloc(v))
	if hz := h.hz; hz != nil && hz.Tick() {
		hz.Clear()
	}
	h.exit()
}

// applyPush is the paper's PushToStack, executed only by a batch's
// push combiner: link the surviving nodes into a substack and splice it
// onto the shared stack with one CAS. WaitSlot covers announcers still
// between their fetch&increment and their slot store.
func (s *Stack[T]) applyPush(_ int, b *secBatch[T], seq, pushAtF int64) {
	bot := b.WaitSlot(seq) // the combiner's own node, already stored
	top := bot
	for i := seq + 1; i < pushAtF; i++ {
		n := b.WaitSlot(i)
		n.next = top
		top = n
	}
	for {
		oldTop := s.top.Load()
		bot.next = oldTop
		if s.top.CompareAndSwap(oldTop, top) {
			return
		}
	}
}

// Pop removes and returns the top element (Algorithm 2 of the paper);
// ok is false if the stack did not hold enough elements for this
// operation's slice of its batch.
func (h *Handle[T]) Pop() (v T, ok bool) {
	h.enter()
	eng := h.s.eng
	t := eng.Pop(h.tid, eng.AggOf(h.tid))
	if t.Elim != nil {
		// Eliminated: the paired push's node came straight from the
		// elimination array.
		val := t.Elim.value
		h.retire(t.Elim)
		if hz := h.hz; hz != nil && hz.Tick() {
			hz.Clear()
		}
		h.exit()
		return val, true
	}
	v, ok = getValue(t.B, t.Off)
	h.releaseSubstack(t.B, t.K)
	if hz := h.hz; hz != nil && hz.Tick() {
		hz.Clear() // finished with the batch's published chain
	}
	h.exit()
	return v, ok
}

// TryPop attempts to serve one pop with a single Treiber-style CAS
// through the session's scratch batch, bypassing the batch protocol
// regardless of the aggregator's mode - the cheap steal primitive
// behind the pool's peek-then-steal Get. applied=false means the CAS
// lost to a concurrent operation: the stack is unchanged, nothing was
// announced, and the caller may walk away or escalate to the full
// Pop. applied=true answers the pop: ok=false when the stack was
// observed empty (linearizing at the top load, like Pop), ok=true
// with the detached top's value otherwise. Unlike Pop it never joins
// a batch, never eliminates, and feeds no adaptivity signal - a
// foreign thief's probe says nothing about the home threads' degree.
func (h *Handle[T]) TryPop() (v T, ok, applied bool) {
	h.enter()
	eng := h.s.eng
	t, applied := eng.TryPop(h.tid, eng.AggOf(h.tid))
	if !applied {
		h.exit()
		return v, false, false
	}
	v, ok = getValue(t.B, t.Off)
	h.releaseSubstack(t.B, t.K)
	// No Done: TryPop announces on no shared batch, so the session's
	// hazard was never published.
	h.exit()
	return v, ok, true
}

// TryPush is TryPop's push-side twin: one Treiber-style CAS attempt
// splicing a single node under the top pointer through the session's
// scratch batch, bypassing the batch protocol regardless of the
// aggregator's mode - the steal primitive behind the pool's
// Put-overflow sweep. applied=false means the CAS lost to a concurrent
// operation: the stack is unchanged, nothing was announced, the node
// is recovered (into the handle's reclamation pool, or as the handle's
// spare when recycling is off), and the caller may try elsewhere or
// escalate to the full Push. Like TryPop it never joins a batch, never
// eliminates, and feeds no adaptivity signal.
func (h *Handle[T]) TryPush(v T) (applied bool) {
	h.enter()
	eng := h.s.eng
	n := h.alloc(v)
	if _, applied = eng.TryPush(h.tid, eng.AggOf(h.tid), n); !applied {
		// The node was never published; clear it and hand it straight
		// back so a failed attempt costs no allocation in steady state.
		var zero T
		n.value = zero
		n.next = nil
		if h.rec != nil {
			h.rec.Unalloc(n)
		} else {
			h.spare = n
		}
	}
	// No Done: TryPush announces on no shared batch, so the session's
	// hazard was never published.
	h.exit()
	return applied
}

// applyPop is the paper's PopFromStack, executed only by a batch's
// pop combiner: detach k nodes (or as many as exist) from the shared
// stack with one CAS and publish the removed chain.
func (s *Stack[T]) applyPop(_ int, b *secBatch[T], e, popAtF int64) {
	k := popAtF - e
	if s.rec != nil {
		b.Data.pending.Store(k) // published to waiters by the applied flag
	}
	for {
		oldTop := s.top.Load()
		newTop := oldTop
		for i := int64(0); i < k && newTop != nil; i++ {
			newTop = newTop.next
		}
		if s.top.CompareAndSwap(oldTop, newTop) {
			b.Data.top.Store(oldTop)
			return
		}
	}
}

// trySoloPush is the solo fast path's push applier: one Treiber-style
// CAS attempt splicing the scratch batch's single node under the top
// pointer. Failure leaves the stack unchanged and sends the operation
// through the full batch protocol.
func (s *Stack[T]) trySoloPush(_ int, b *secBatch[T]) bool {
	n := b.Slot(0)
	old := s.top.Load()
	n.next = old
	return s.top.CompareAndSwap(old, n)
}

// trySoloPop is the solo fast path's pop applier: one Treiber-style
// CAS attempt detaching the top node, published through the scratch
// batch's chain payload exactly as applyPop publishes a k-node chain
// (so getValue and releaseSubstack serve solo pops unchanged). An
// observed-empty stack "succeeds" with a nil chain - the operation
// linearizes at the top load. ABA is excluded the same way as in
// applyPop: under EBR recycling the operation is inside its critical
// section, and without it the garbage collector pins the node.
func (s *Stack[T]) trySoloPop(_ int, b *secBatch[T]) bool {
	old := s.top.Load()
	if old != nil && !s.top.CompareAndSwap(old, old.next) {
		return false
	}
	if s.rec != nil {
		b.Data.pending.Store(1)
	}
	b.Data.top.Store(old)
	return true
}

// getValue is the paper's GetValue: the pop with offset off into its
// batch's surviving pops receives the off-th node of the removed chain,
// or EMPTY if the stack ran out.
func getValue[T any](b *secBatch[T], off int64) (v T, ok bool) {
	n := b.Data.top.Load()
	for i := int64(0); i < off && n != nil; i++ {
		n = n.next
	}
	if n == nil {
		return v, false
	}
	return n.value, true
}

// releaseSubstack notes that one surviving pop has read its value; the
// last reader retires the batch's detached chain (recycling only).
func (h *Handle[T]) releaseSubstack(b *secBatch[T], k int64) {
	if h.rec == nil {
		return
	}
	if b.Data.pending.Add(-1) != 0 {
		return
	}
	n := b.Data.top.Load()
	for i := int64(0); i < k && n != nil; i++ {
		next := n.next
		h.retire(n)
		n = next
	}
}

// Peek returns the top element without removing it; a single atomic
// read of the top pointer, as in the paper.
func (h *Handle[T]) Peek() (v T, ok bool) {
	h.enter()
	if n := h.s.top.Load(); n != nil {
		// Read inside the critical section: under recycling the node
		// may be scrubbed and reused the moment we exit.
		v, ok = n.value, true
	}
	h.exit()
	return v, ok
}

// Len counts the elements currently on the shared stack; a racy
// diagnostic for tests and quiescent states.
func (s *Stack[T]) Len() int {
	n := 0
	for p := s.top.Load(); p != nil; p = p.next {
		n++
	}
	return n
}

// Aggregators reports K, for harness labeling.
func (s *Stack[T]) Aggregators() int { return s.eng.Aggregators() }

// EffectiveAggregators reports the current effective shard count
// (equal to Aggregators unless Adaptive shard scaling shrank it).
func (s *Stack[T]) EffectiveAggregators() int { return s.eng.EffectiveAggregators() }

// RegisteredThreads reports how many handles are currently live
// (registered and not yet closed).
func (s *Stack[T]) RegisteredThreads() int { return s.eng.InUse() }

// DegreeEWMA reports the mean batch-degree EWMA across the stack's
// effective aggregators, in operations per batch - the per-shard
// contention estimate the pool's elastic controller reads.
func (s *Stack[T]) DegreeEWMA() float64 {
	k := s.eng.EffectiveAggregators()
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += s.eng.DegreeEWMA(i)
	}
	return sum / float64(k)
}

// Solo reports whether every effective aggregator currently runs the
// solo fast path - the stack has seen no recent contention. Always
// false when Adaptive is off.
func (s *Stack[T]) Solo() bool {
	k := s.eng.EffectiveAggregators()
	for i := 0; i < k; i++ {
		if !s.eng.SoloMode(i) {
			return false
		}
	}
	return true
}
