package core_test

import (
	"sync"
	"testing"

	"secstack/internal/core"
	"secstack/internal/stacktest"
)

type adapter struct{ s *core.Stack[int64] }

func (a adapter) Register() stacktest.Handle { return a.s.Register() }

func factory() stacktest.Stack {
	return adapter{core.New[int64](core.Options{})}
}

func TestConformanceDefaults(t *testing.T) {
	stacktest.RunAll(t, factory)
}

func TestConformanceOneAggregator(t *testing.T) {
	stacktest.RunAll(t, func() stacktest.Stack {
		return adapter{core.New[int64](core.Options{Aggregators: 1})}
	})
}

func TestConformanceFiveAggregators(t *testing.T) {
	stacktest.RunAll(t, func() stacktest.Stack {
		return adapter{core.New[int64](core.Options{Aggregators: 5})}
	})
}

func TestConformanceNoElimination(t *testing.T) {
	stacktest.RunAll(t, func() stacktest.Stack {
		return adapter{core.New[int64](core.Options{NoElimination: true})}
	})
}

func TestConformanceRecycle(t *testing.T) {
	stacktest.RunAll(t, func() stacktest.Stack {
		return adapter{core.New[int64](core.Options{Recycle: true})}
	})
}

func TestConformanceNoFreezerSpin(t *testing.T) {
	stacktest.RunAll(t, func() stacktest.Stack {
		return adapter{core.New[int64](core.Options{FreezerSpin: -1})}
	})
}

func TestRegisterPanicsPastMaxThreads(t *testing.T) {
	s := core.New[int64](core.Options{MaxThreads: 2})
	s.Register()
	s.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-registration")
		}
	}()
	s.Register()
}

func TestDefaultsApplied(t *testing.T) {
	s := core.New[int64](core.Options{})
	if got := s.Aggregators(); got != 2 {
		t.Fatalf("default Aggregators = %d, want 2", got)
	}
	if s.Metrics() != nil {
		t.Fatal("metrics collected without CollectMetrics")
	}
}

// TestSingleThreadBatches: a lone thread forms singleton batches; every
// operation must still complete with correct LIFO semantics.
func TestSingleThreadBatches(t *testing.T) {
	s := core.New[int64](core.Options{Aggregators: 2, FreezerSpin: 0})
	h := s.Register()
	for i := int64(0); i < 1000; i++ {
		h.Push(i)
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
	for want := int64(999); want >= 0; want-- {
		v, ok := h.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
}

// TestMetricsDegreesBalanced: with a perfectly balanced push/pop mix
// driven hard, the elimination percentage must be substantial, and the
// identity elimination% + combining% = 100 must hold.
func TestMetricsDegreesBalanced(t *testing.T) {
	s := core.New[int64](core.Options{CollectMetrics: true, FreezerSpin: 256})
	var wg sync.WaitGroup
	const g, per = 8, 4000
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			for i := 0; i < per; i++ {
				if (i+w)%2 == 0 {
					h.Push(int64(i))
				} else {
					h.Pop()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := s.Metrics().Snapshot()
	if snap.Batches == 0 || snap.Ops == 0 {
		t.Fatalf("no batches recorded: %+v", snap)
	}
	if snap.Eliminated+snap.Combined != snap.Ops {
		t.Fatalf("eliminated %d + combined %d != ops %d", snap.Eliminated, snap.Combined, snap.Ops)
	}
	if snap.Eliminated%2 != 0 {
		t.Fatalf("eliminated count %d is odd (elimination is pairwise)", snap.Eliminated)
	}
}

// TestMetricsNoElimination: the ablation must report zero eliminated
// operations no matter the mix.
func TestMetricsNoElimination(t *testing.T) {
	s := core.New[int64](core.Options{CollectMetrics: true, NoElimination: true})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			for i := 0; i < 2000; i++ {
				if i%2 == 0 {
					h.Push(int64(i))
				} else {
					h.Pop()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := s.Metrics().Snapshot()
	if snap.Eliminated != 0 {
		t.Fatalf("NoElimination run eliminated %d operations", snap.Eliminated)
	}
	if snap.Combined != snap.Ops {
		t.Fatalf("combined %d != ops %d", snap.Combined, snap.Ops)
	}
}

// TestPushOnlyMetrics: with no pops there is nothing to eliminate, so
// combining must account for 100% of operations (paper Fig. 4's
// push-only column).
func TestPushOnlyMetrics(t *testing.T) {
	s := core.New[int64](core.Options{CollectMetrics: true})
	var wg sync.WaitGroup
	const g, per = 6, 2000
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			for i := 0; i < per; i++ {
				h.Push(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	snap := s.Metrics().Snapshot()
	if snap.Eliminated != 0 {
		t.Fatalf("push-only run eliminated %d operations", snap.Eliminated)
	}
	if snap.Ops != int64(g*per) {
		t.Fatalf("ops = %d, want %d", snap.Ops, g*per)
	}
	if s.Len() != g*per {
		t.Fatalf("Len = %d, want %d", s.Len(), g*per)
	}
}

// TestBatchSubstackOrder: values pushed by one batch must land on the
// shared stack in sequence-number order (smaller sequence numbers
// deeper), which is what makes SEC linearizable. We drive two threads
// of one aggregator in lockstep so their pushes share batches, then
// check the drain order is a valid linearization: within each thread's
// own values, LIFO order must hold.
func TestBatchSubstackOrder(t *testing.T) {
	s := core.New[int64](core.Options{Aggregators: 1, FreezerSpin: 512})
	var wg sync.WaitGroup
	const g, per = 4, 1000
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			base := int64(w) << 32
			for i := 1; i <= per; i++ {
				h.Push(base + int64(i))
			}
		}(w)
	}
	wg.Wait()
	h := s.Register()
	last := map[int64]int64{}
	n := 0
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		n++
		w, seq := v>>32, v&0xffffffff
		if prev, seen := last[w]; seen && seq >= prev {
			t.Fatalf("thread %d: popped %d after %d (substack order broken)", w, seq, prev)
		}
		last[w] = seq
	}
	if n != g*per {
		t.Fatalf("drained %d, want %d", n, g*per)
	}
}

// TestRecycleActuallyRecycles: under sustained push/pop churn with
// recycling enabled, nodes must flow through the EBR free lists.
func TestRecycleActuallyRecycles(t *testing.T) {
	s := core.New[int64](core.Options{Recycle: true})
	var wg sync.WaitGroup
	const g, per = 4, 5000
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			for i := 0; i < per; i++ {
				h.Push(int64(i))
				h.Pop()
			}
		}(w)
	}
	wg.Wait()
	// Conservation after churn: drain what's left and count.
	h := s.Register()
	for {
		if _, ok := h.Pop(); !ok {
			break
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after drain", s.Len())
	}
}

// TestAggregatorIsolation: threads of different aggregators share only
// the stack top, not batches; a push flood on one aggregator must not
// stall a popper on another.
func TestAggregatorIsolation(t *testing.T) {
	s := core.New[int64](core.Options{Aggregators: 2})
	h0 := s.Register() // tid 0 -> aggregator 0
	h1 := s.Register() // tid 1 -> aggregator 1
	h0.Push(7)
	if v, ok := h1.Pop(); !ok || v != 7 {
		t.Fatalf("cross-aggregator Pop = (%d, %v), want (7, true)", v, ok)
	}
}

// TestManyAggregatorsFewThreads: more aggregators than threads leaves
// some aggregators idle; operations must still complete.
func TestManyAggregatorsFewThreads(t *testing.T) {
	s := core.New[int64](core.Options{Aggregators: 16})
	h := s.Register()
	h.Push(1)
	h.Push(2)
	if v, _ := h.Pop(); v != 2 {
		t.Fatal("LIFO broken with idle aggregators")
	}
	if v, _ := h.Pop(); v != 1 {
		t.Fatal("LIFO broken with idle aggregators")
	}
}

// TestCloseRecyclesThreadIDs checks that MaxThreads bounds live
// handles, not lifetime registrations: closed handles' thread ids flow
// back and Register succeeds forever under churn.
func TestCloseRecyclesThreadIDs(t *testing.T) {
	s := core.New[int64](core.Options{MaxThreads: 2})
	for i := 0; i < 10; i++ {
		h := s.Register()
		h.Push(int64(i))
		h.Close()
		h.Close() // idempotent
	}
	if got := s.RegisteredThreads(); got != 0 {
		t.Fatalf("RegisteredThreads = %d after closing all handles, want 0", got)
	}
	a, b := s.Register(), s.Register() // exactly MaxThreads live handles fit
	if v, ok := a.Pop(); !ok || v != 9 {
		t.Fatalf("Pop = (%d, %v) after churn, want (9, true)", v, ok)
	}
	a.Close()
	b.Close()
}

func TestTryRegisterBackpressure(t *testing.T) {
	s := core.New[int64](core.Options{MaxThreads: 1})
	h, err := s.TryRegister()
	if err != nil {
		t.Fatalf("first TryRegister: %v", err)
	}
	if _, err := s.TryRegister(); err == nil {
		t.Fatal("TryRegister succeeded past MaxThreads live handles")
	}
	h.Close()
	h2, err := s.TryRegister()
	if err != nil {
		t.Fatalf("TryRegister after Close: %v", err)
	}
	h2.Close()
}

// TestCloseWithRecyclingReleasesEBRSlot checks that Close releases the
// epoch-reclamation slot too: with MaxThreads=1 and recycling on, churn
// would exhaust the EBR manager if slots leaked.
func TestCloseWithRecyclingReleasesEBRSlot(t *testing.T) {
	s := core.New[int64](core.Options{MaxThreads: 1, Recycle: true})
	for i := 0; i < 5; i++ {
		h := s.Register()
		h.Push(int64(i))
		h.Pop()
		h.Close()
	}
}

// TestTryPopStealAnswers pins the steal primitive's three outcomes on
// a live stack: a hit detaches the top, an empty stack answers with
// applied=true/ok=false, and the stack stays consistent with full
// operations interleaved.
func TestTryPopStealAnswers(t *testing.T) {
	s := core.New[int64](core.Options{Aggregators: 1, MaxThreads: 4})
	h := s.Register()
	defer h.Close()
	if _, ok, applied := h.TryPop(); !applied || ok {
		t.Fatalf("TryPop on empty stack = (ok=%v, applied=%v), want (false, true)", ok, applied)
	}
	h.Push(7)
	h.Push(9)
	if v, ok, applied := h.TryPop(); !applied || !ok || v != 9 {
		t.Fatalf("TryPop = (%d, %v, %v), want (9, true, true)", v, ok, applied)
	}
	if v, ok := h.Pop(); !ok || v != 7 {
		t.Fatalf("Pop after steal = (%d, %v), want (7, true)", v, ok)
	}
	if _, ok, applied := h.TryPop(); !applied || ok {
		t.Fatalf("TryPop on drained stack = (ok=%v, applied=%v), want (false, true)", ok, applied)
	}
}

// BenchmarkEmptyProbe is the pool Get miss loop's per-shard cost,
// before and after the steal primitive: "full" is what probing a
// foreign shard used to cost (a full-protocol Pop observing EMPTY -
// announcement, freeze, combiner election), "steal" is the TryPop that
// replaced it (one top-pointer load through the scratch batch). Both
// report allocations; steal must show 0 allocs/op.
func BenchmarkEmptyProbe(b *testing.B) {
	b.Run("full", func(b *testing.B) {
		s := core.New[int64](core.Options{Aggregators: 1, MaxThreads: 4})
		h := s.Register()
		defer h.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Pop()
		}
	})
	b.Run("steal", func(b *testing.B) {
		s := core.New[int64](core.Options{Aggregators: 1, MaxThreads: 4})
		h := s.Register()
		defer h.Close()
		h.TryPop() // allocate the scratch batch once
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.TryPop()
		}
	})
}

// TestTryPushStealAnswers pins the push-side steal primitive on a live
// stack: an applied TryPush is a real push (LIFO-ordered against full
// operations), it works with node recycling on, and a sequence of
// TryPushes drains back in reverse order through both TryPop and Pop.
func TestTryPushStealAnswers(t *testing.T) {
	for _, recycle := range []bool{false, true} {
		s := core.New[int64](core.Options{Aggregators: 1, MaxThreads: 4, Recycle: recycle})
		h := s.Register()
		if !h.TryPush(7) {
			t.Fatalf("recycle=%v: uncontended TryPush did not apply", recycle)
		}
		h.Push(9) // full protocol on top of a stolen push
		if !h.TryPush(11) {
			t.Fatalf("recycle=%v: TryPush over a full push did not apply", recycle)
		}
		if got := s.Len(); got != 3 {
			t.Fatalf("recycle=%v: Len = %d after three pushes, want 3", recycle, got)
		}
		if v, ok, applied := h.TryPop(); !applied || !ok || v != 11 {
			t.Fatalf("recycle=%v: TryPop = (%d, %v, %v), want (11, true, true)", recycle, v, ok, applied)
		}
		if v, ok := h.Pop(); !ok || v != 9 {
			t.Fatalf("recycle=%v: Pop = (%d, %v), want (9, true)", recycle, v, ok)
		}
		if v, ok := h.Pop(); !ok || v != 7 {
			t.Fatalf("recycle=%v: Pop = (%d, %v), want (7, true)", recycle, v, ok)
		}
		if _, ok := h.Pop(); ok {
			t.Fatalf("recycle=%v: Pop on drained stack succeeded", recycle)
		}
		h.Close()
	}
}
