package core

// White-box tests exercising SEC's batch mechanics through the shared
// agg engine: batch sizing, counter clamping at freeze, substack chain
// shapes, and the surviving-pop countdown. The engine's own lifecycle
// mechanics (freezer race, eliminators, occupancy accounting) are
// covered by internal/agg's tests.

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewBatchSizing(t *testing.T) {
	s := New[int](Options{Aggregators: 2, MaxThreads: 64})
	// No registrations yet: minimum size.
	if got := s.eng.NewBatch().Cap(); got != 4 {
		t.Fatalf("empty-stack batch size = %d, want 4", got)
	}
	for i := 0; i < 10; i++ {
		s.Register()
	}
	// 10 threads over 2 aggregators -> 5 per aggregator.
	if got := s.eng.NewBatch().Cap(); got != 5 {
		t.Fatalf("batch size with 10 threads = %d, want 5", got)
	}
}

func TestNewBatchSizeCappedAtPerAgg(t *testing.T) {
	s := New[int](Options{Aggregators: 2, MaxThreads: 8})
	for i := 0; i < 8; i++ {
		s.Register()
	}
	if got, want := s.eng.NewBatch().Cap(), 4; got != want {
		t.Fatalf("batch size = %d, want cap %d", got, want)
	}
}

func TestFreezeClampsToElimArray(t *testing.T) {
	s := New[int](Options{Aggregators: 1, MaxThreads: 64})
	s.Register()
	b := s.eng.NewBatch() // size 4 (one registered thread, min 4)
	// Simulate 10 announced pushes against a 4-slot batch.
	b.PushCount.Store(10)
	b.PopCount.Store(2)
	s.eng.Freeze(0, b)
	if got := b.PushAtFreeze.Load(); got != 4 {
		t.Fatalf("PushAtFreeze = %d, want clamped 4", got)
	}
	if got := b.PopAtFreeze.Load(); got != 2 {
		t.Fatalf("PopAtFreeze = %d, want 2", got)
	}
}

func TestFreezeInstallsNewBatch(t *testing.T) {
	s := New[int](Options{Aggregators: 1})
	old := s.eng.ActiveBatch(0)
	s.eng.Freeze(0, old)
	if s.eng.ActiveBatch(0) == old {
		t.Fatal("freeze did not replace the aggregator's batch")
	}
}

// TestApplyPushChainShape verifies the substack built by the push
// combiner: sequence order must map to depth (larger sequence number
// nearer the top), and the chain must connect down to the old top -
// the connectivity the paper's top=⊥ pseudocode typo would break.
func TestApplyPushChainShape(t *testing.T) {
	s := New[int](Options{Aggregators: 1})

	// A pre-existing element to splice on top of.
	under := &node[int]{value: 99}
	s.top.Store(under)

	b := s.eng.NewBatch()
	for i := 0; i < 4; i++ {
		b.StoreSlot(int64(i), &node[int]{value: i})
	}
	// Combiner seq 0 applies pushes 0..3.
	s.applyPush(0, b, 0, 4)

	want := []int{3, 2, 1, 0, 99}
	got := []int{}
	for p := s.top.Load(); p != nil; p = p.next {
		got = append(got, p.value)
	}
	if len(got) != len(want) {
		t.Fatalf("stack = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stack = %v, want %v", got, want)
		}
	}
}

// TestApplyPushPartialBatch: a combiner with a non-zero sequence
// number (some pushes eliminated) must splice only slots seq..pushAtF-1.
func TestApplyPushPartialBatch(t *testing.T) {
	s := New[int](Options{Aggregators: 1})
	b := s.eng.NewBatch()
	for i := 0; i < 4; i++ {
		b.StoreSlot(int64(i), &node[int]{value: i})
	}
	s.applyPush(0, b, 2, 4) // slots 2 and 3 survive
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if v := s.top.Load().value; v != 3 {
		t.Fatalf("top = %d, want 3", v)
	}
}

// TestApplyPopExactCount verifies the pop combiner removes exactly
// k nodes - the off-by-one the paper's pseudocode loop would introduce.
func TestApplyPopExactCount(t *testing.T) {
	for k := int64(1); k <= 5; k++ {
		s := New[int](Options{Aggregators: 1})
		var chain *node[int]
		for i := 9; i >= 0; i-- { // stack 0(top) .. 9(bottom)... build top-down
			chain = &node[int]{value: i, next: chain}
		}
		// chain: 0 -> 1 -> ... -> 9, top value 0
		s.top.Store(chain)

		b := s.eng.NewBatch()
		s.applyPop(0, b, 0, k)
		if got := int64(10) - int64(s.Len()); got != k {
			t.Fatalf("k=%d: removed %d nodes", k, got)
		}
		// The detached chain's j-th node is the j-th popped value.
		for j := int64(0); j < k; j++ {
			v, ok := getValue(b, j)
			if !ok || v != int(j) {
				t.Fatalf("k=%d: getValue(%d) = (%d, %v), want (%d, true)", k, j, v, ok, j)
			}
		}
	}
}

// TestApplyPopDrainsShortStack: k greater than the stack size
// empties the stack; waiters past the chain get EMPTY.
func TestApplyPopDrainsShortStack(t *testing.T) {
	s := New[int](Options{Aggregators: 1})
	s.top.Store(&node[int]{value: 1, next: &node[int]{value: 2}})
	b := s.eng.NewBatch()
	s.applyPop(0, b, 0, 4)
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if v, ok := getValue(b, 0); !ok || v != 1 {
		t.Fatalf("getValue(0) = (%d, %v)", v, ok)
	}
	if v, ok := getValue(b, 1); !ok || v != 2 {
		t.Fatalf("getValue(1) = (%d, %v)", v, ok)
	}
	if _, ok := getValue(b, 2); ok {
		t.Fatal("getValue past the chain returned a value")
	}
	if _, ok := getValue(b, 3); ok {
		t.Fatal("getValue past the chain returned a value")
	}
}

// TestApplyPopEmptyStack: the combiner on an empty stack publishes
// a nil chain and every waiter sees EMPTY.
func TestApplyPopEmptyStack(t *testing.T) {
	s := New[int](Options{Aggregators: 1})
	b := s.eng.NewBatch()
	s.applyPop(0, b, 0, 3)
	if b.Data.top.Load() != nil {
		t.Fatal("detached chain non-nil on empty stack")
	}
	for j := int64(0); j < 3; j++ {
		if _, ok := getValue(b, j); ok {
			t.Fatalf("getValue(%d) returned a value from an empty stack", j)
		}
	}
}

// TestReleaseSubstackCountdown: with recycling on, only the LAST of k
// readers triggers retirement, and exactly k nodes are retired.
func TestReleaseSubstackCountdown(t *testing.T) {
	s := New[int](Options{Aggregators: 1, Recycle: true})
	h := s.Register()
	h.rec.Enter()
	defer h.rec.Exit()

	var chain *node[int]
	for i := 0; i < 5; i++ {
		chain = &node[int]{value: i, next: chain}
	}
	s.top.Store(chain)

	b := s.eng.NewBatch()
	const k = 3
	s.applyPop(0, b, 0, k)
	if got := b.Data.pending.Load(); got != k {
		t.Fatalf("pending = %d, want %d", got, k)
	}
	h.releaseSubstack(b, k)
	h.releaseSubstack(b, k)
	if got := h.rec.LimboCount(); got != 0 {
		t.Fatalf("nodes retired before the last reader: limbo=%d", got)
	}
	h.releaseSubstack(b, k)
	if got := h.rec.LimboCount(); got != k {
		t.Fatalf("limbo = %d after last reader, want %d", got, k)
	}
}

// TestQuickSingleThreadAnyOptions drives random option combinations
// single-threaded against a model.
func TestQuickSingleThreadAnyOptions(t *testing.T) {
	check := func(aggs, spin uint8, noElim, recycle bool, ops []int16) bool {
		s := New[int64](Options{
			Aggregators:   int(aggs%6) + 1,
			FreezerSpin:   int(spin) % 64,
			NoElimination: noElim,
			Recycle:       recycle,
		})
		h := s.Register()
		var model []int64
		for _, op := range ops {
			if op >= 0 {
				h.Push(int64(op))
				model = append(model, int64(op))
			} else {
				v, ok := h.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || v != want {
					return false
				}
			}
		}
		return s.Len() == len(model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentFreezerUniqueness: every batch must record exactly the
// operations that belonged to it; summing the metrics ops over a closed
// workload must equal the number of performed operations (each op
// belongs to exactly one frozen batch).
func TestConcurrentFreezerUniqueness(t *testing.T) {
	s := New[int64](Options{Aggregators: 3, CollectMetrics: true})
	const g, per = 9, 2000
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			for i := 0; i < per; i++ {
				if (w+i)%2 == 0 {
					h.Push(int64(i))
				} else {
					h.Pop()
				}
			}
		}(w)
	}
	wg.Wait()
	// Metrics count ops at freeze time; unfrozen residue lives in the 3
	// still-active batches (at most one per aggregator, snapshot-able
	// because the system is quiescent).
	snap := s.Metrics().Snapshot()
	residue := int64(0)
	for i := 0; i < s.eng.Aggregators(); i++ {
		b := s.eng.ActiveBatch(i)
		residue += b.PushCount.Load() + b.PopCount.Load()
	}
	if snap.Ops+residue != int64(g*per) {
		t.Fatalf("recorded %d + residue %d != %d ops (batch accounting broken)",
			snap.Ops, residue, g*per)
	}
}
