// Package ebr implements DEBRA-style epoch-based memory reclamation
// (Brown, PODC '15), the reclamation substrate the paper deploys in SEC
// for batches and stack nodes.
//
// Go is garbage collected, so "reclamation" here drives *recycling*: a
// retired object goes into a per-thread limbo bag and is handed back for
// reuse only once no concurrent operation can still hold a reference to
// it. This mirrors the role DEBRA plays in the C++ artifact and is what
// makes node reuse safe in the CAS-based stacks (an object cannot be
// recycled - and thus cannot cause ABA - while a reader that might have
// observed it is still in its critical section).
//
// The scheme is the classic three-epoch design. A global epoch counter
// advances only when every thread currently inside a critical section
// has announced the current epoch. Each handle keeps three limbo bags;
// objects retired two epochs ago are moved to a free list when the
// handle observes an epoch change.
//
// Like DEBRA (and unlike its neutralization-based successors), a thread
// that stalls inside a critical section blocks epoch advance; bags grow
// but safety is never violated.
package ebr

import (
	"fmt"
	"sync/atomic"

	"secstack/internal/pad"
	"secstack/internal/tid"
)

const (
	// advancePeriod is how many Retire calls a handle performs between
	// attempts to advance the global epoch.
	advancePeriod = 32

	// activeBit marks a slot's announcement as "inside a critical
	// section"; the remaining bits carry the announced epoch.
	activeBit = 1
)

type paddedSlot struct {
	// ann = epoch<<1 | activeBit while in a critical section,
	// epoch<<1 when quiescent.
	ann atomic.Uint64
	_   [pad.CacheLine - 8]byte
}

// Manager coordinates epochs across up to maxThreads participants and
// recycles objects of type T.
type Manager[T any] struct {
	epoch atomic.Uint64
	slots []paddedSlot
	ids   *tid.Allocator
}

// NewManager returns a manager supporting up to maxThreads concurrently
// registered handles.
func NewManager[T any](maxThreads int) *Manager[T] {
	if maxThreads < 1 {
		maxThreads = 1
	}
	return &Manager[T]{slots: make([]paddedSlot, maxThreads), ids: tid.New(maxThreads)}
}

// Epoch reports the current global epoch, for tests and monitoring.
func (m *Manager[T]) Epoch() uint64 { return m.epoch.Load() }

// Register allocates a handle for one thread (goroutine). Slot ids are
// recycled through Close, so maxThreads bounds concurrently live
// handles, not lifetime registrations; Register panics only when that
// many handles are simultaneously open. Handles are not safe for
// concurrent use; each worker goroutine owns exactly one.
func (m *Manager[T]) Register() *Handle[T] {
	id, err := m.ids.Acquire()
	if err != nil {
		panic(fmt.Sprintf("ebr: more than %d handles live", len(m.slots)))
	}
	h := &Handle[T]{m: m, id: id}
	h.localEpoch = m.epoch.Load()
	// Start quiescent at the current epoch.
	m.slots[id].ann.Store(h.localEpoch << 1)
	return h
}

// tryAdvance bumps the global epoch if every active participant has
// announced it. Returns true if the epoch moved (by this or another
// thread).
func (m *Manager[T]) tryAdvance() bool {
	e := m.epoch.Load()
	n := m.ids.HighWater()
	for i := 0; i < n; i++ {
		a := m.slots[i].ann.Load()
		if a&activeBit != 0 && a>>1 != e {
			return m.epoch.Load() != e
		}
	}
	return m.epoch.CompareAndSwap(e, e+1) || m.epoch.Load() != e
}

// limboBag holds objects retired during one epoch.
type limboBag[T any] struct {
	epoch uint64
	items []*T
}

// Handle is one thread's view of the manager: its epoch announcement
// slot, its three limbo bags, and its free list of recycled objects.
type Handle[T any] struct {
	m           *Manager[T]
	id          int
	localEpoch  uint64
	bags        [3]limboBag[T]
	free        []*T
	retireCount int
	depth       int // critical-section nesting depth
	closed      bool

	// Stats, exposed for tests and the reclamation ablation bench.
	Recycled int64 // objects moved from limbo to the free list
	Fresh    int64 // objects allocated because the free list was empty
}

// Enter begins a critical section: the handle announces the current
// global epoch and is guaranteed that no object retired from now on is
// recycled until the matching Exit. Enter/Exit pairs may nest; only the
// outermost pair performs announcements.
func (h *Handle[T]) Enter() {
	h.depth++
	if h.depth > 1 {
		return
	}
	e := h.m.epoch.Load()
	h.m.slots[h.id].ann.Store(e<<1 | activeBit)
	if e != h.localEpoch {
		h.rotate(e)
	}
}

// Exit ends the critical section begun by the matching Enter.
func (h *Handle[T]) Exit() {
	if h.depth == 0 {
		panic("ebr: Exit without matching Enter")
	}
	h.depth--
	if h.depth > 0 {
		return
	}
	h.m.slots[h.id].ann.Store(h.localEpoch << 1)
}

// rotate adopts global epoch e: every bag whose retirement epoch is at
// least two behind e is drained to the free list (an object retired at
// epoch b can only be referenced by threads that announced b or b+1, so
// once the global epoch reaches b+2 no critical section can still see
// it). Because bag indices are epoch%3 and a bag sharing an index with
// the new current epoch is at least three epochs old, the current bag
// is always empty after draining.
func (h *Handle[T]) rotate(e uint64) {
	for i := range h.bags {
		b := &h.bags[i]
		if len(b.items) > 0 && b.epoch+2 <= e {
			h.Recycled += int64(len(b.items))
			h.free = append(h.free, b.items...)
			b.items = b.items[:0]
		}
	}
	h.localEpoch = e
}

// Retire submits p for recycling once it is safe. Must be called inside
// a critical section (between Enter and Exit).
func (h *Handle[T]) Retire(p *T) {
	if h.depth == 0 {
		panic("ebr: Retire outside critical section")
	}
	b := &h.bags[h.localEpoch%3]
	if len(b.items) == 0 {
		b.epoch = h.localEpoch
	}
	b.items = append(b.items, p)
	h.retireCount++
	if h.retireCount%advancePeriod == 0 {
		h.m.tryAdvance()
	}
}

// Unalloc returns an object obtained from Alloc straight to the free
// list, without the epoch delay Retire imposes. It is only safe for
// objects that were never made reachable to another thread - e.g. a
// node whose publishing CAS lost - since an unpublished object cannot
// be held by any concurrent reader.
func (h *Handle[T]) Unalloc(p *T) {
	h.free = append(h.free, p)
}

// Alloc returns a recycled object if one is available, or a fresh
// zero-valued one otherwise. The caller is responsible for
// re-initializing recycled objects.
func (h *Handle[T]) Alloc() *T {
	if n := len(h.free); n > 0 {
		p := h.free[n-1]
		h.free[n-1] = nil
		h.free = h.free[:n-1]
		return p
	}
	h.Fresh++
	return new(T)
}

// Close releases the handle's slot for reuse by a future Register.
// Close must be called outside any critical section; it panics between
// Enter and Exit. The handle's limbo bags and free list are dropped to
// the garbage collector - an object in limbo may still be referenced by
// a concurrent critical section, and letting the GC reclaim it is
// always safe in Go, whereas handing it to another handle's free list
// would not be. Close is idempotent; any other use of a closed handle
// is a bug.
func (h *Handle[T]) Close() {
	if h.closed {
		return
	}
	if h.depth != 0 {
		panic("ebr: Close inside critical section")
	}
	h.closed = true
	for i := range h.bags {
		h.bags[i].items = nil
	}
	h.free = nil
	// The slot was left quiescent by the last Exit (or never activated),
	// so a released slot can never block epoch advance.
	h.m.ids.Release(h.id)
}

// FreeCount reports the number of objects currently on the free list.
func (h *Handle[T]) FreeCount() int { return len(h.free) }

// LimboCount reports the number of objects in limbo bags, i.e. retired
// but not yet recyclable.
func (h *Handle[T]) LimboCount() int {
	return len(h.bags[0].items) + len(h.bags[1].items) + len(h.bags[2].items)
}
