package ebr

import (
	"sync"
	"sync/atomic"
	"testing"
)

type obj struct {
	val      int64
	poisoned atomic.Bool
}

func TestRegisterAssignsDistinctSlots(t *testing.T) {
	m := NewManager[obj](4)
	h1 := m.Register()
	h2 := m.Register()
	if h1.id == h2.id {
		t.Fatal("two handles share a slot")
	}
}

func TestRegisterPanicsPastCapacity(t *testing.T) {
	m := NewManager[obj](1)
	m.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-registration")
		}
	}()
	m.Register()
}

func TestExitWithoutEnterPanics(t *testing.T) {
	m := NewManager[obj](1)
	h := m.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Exit without Enter")
		}
	}()
	h.Exit()
}

func TestRetireOutsideCriticalSectionPanics(t *testing.T) {
	m := NewManager[obj](1)
	h := m.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Retire outside Enter/Exit")
		}
	}()
	h.Retire(&obj{})
}

func TestNestedEnterExit(t *testing.T) {
	m := NewManager[obj](1)
	h := m.Register()
	h.Enter()
	h.Enter()
	h.Retire(&obj{})
	h.Exit()
	h.Retire(&obj{}) // still inside outer section
	h.Exit()
	if h.depth != 0 {
		t.Fatalf("depth = %d after balanced enter/exit", h.depth)
	}
}

func TestAllocPrefersFreeList(t *testing.T) {
	m := NewManager[obj](1)
	h := m.Register()
	p := &obj{val: 42}
	// Retire p and drive epochs forward until it is recycled.
	h.Enter()
	h.Retire(p)
	h.Exit()
	for i := 0; i < 10 && h.FreeCount() == 0; i++ {
		m.tryAdvance()
		h.Enter()
		h.Exit()
	}
	if h.FreeCount() != 1 {
		t.Fatalf("FreeCount = %d, want 1 (limbo=%d, epoch=%d)", h.FreeCount(), h.LimboCount(), m.Epoch())
	}
	got := h.Alloc()
	if got != p {
		t.Fatal("Alloc did not return the recycled object")
	}
	if h.Recycled != 1 {
		t.Fatalf("Recycled = %d, want 1", h.Recycled)
	}
}

func TestAllocFreshWhenEmpty(t *testing.T) {
	m := NewManager[obj](1)
	h := m.Register()
	p := h.Alloc()
	if p == nil {
		t.Fatal("Alloc returned nil")
	}
	if h.Fresh != 1 {
		t.Fatalf("Fresh = %d, want 1", h.Fresh)
	}
}

// TestNoRecycleWhileProtected pins the core safety property: an object
// retired while another thread is inside a critical section that began
// before the retirement cannot be recycled until that thread exits.
func TestNoRecycleWhileProtected(t *testing.T) {
	m := NewManager[obj](2)
	reader := m.Register()
	writer := m.Register()

	reader.Enter() // reader is now pinned at the current epoch

	p := &obj{}
	writer.Enter()
	writer.Retire(p)
	writer.Exit()

	// Drive the writer as hard as we like: the epoch cannot advance by 2
	// while the reader sits in its critical section.
	for i := 0; i < 100; i++ {
		m.tryAdvance()
		writer.Enter()
		writer.Exit()
	}
	if writer.FreeCount() != 0 {
		t.Fatal("object recycled while a reader was inside its critical section")
	}

	reader.Exit()
	// Now the reader re-announces on each Enter, so epochs can move.
	for i := 0; i < 100 && writer.FreeCount() == 0; i++ {
		m.tryAdvance()
		reader.Enter()
		reader.Exit()
		writer.Enter()
		writer.Exit()
	}
	if writer.FreeCount() != 1 {
		t.Fatalf("object not recycled after reader exited (limbo=%d)", writer.LimboCount())
	}
}

func TestEpochAdvanceRequiresAllActive(t *testing.T) {
	m := NewManager[obj](3)
	a := m.Register()
	b := m.Register()
	_ = m.Register() // never enters: quiescent threads must not block advance

	a.Enter()
	b.Enter()
	e := m.Epoch()
	if m.tryAdvance(); m.Epoch() != e+1 {
		t.Fatalf("epoch did not advance with all active threads current: %d", m.Epoch())
	}
	// a and b are now stale (announced e, epoch is e+1): advance stalls.
	if m.tryAdvance(); m.Epoch() != e+1 {
		t.Fatal("epoch advanced past stale active threads")
	}
	b.Exit()
	b.Enter() // b re-announces at e+1; a is still stale
	if m.tryAdvance(); m.Epoch() != e+1 {
		t.Fatal("epoch advanced past one remaining stale thread")
	}
	a.Exit()
	a.Enter() // now both are current
	if m.tryAdvance(); m.Epoch() != e+2 {
		t.Fatal("epoch did not advance after all stale threads re-announced")
	}
	a.Exit()
	b.Exit()
}

// TestStressPoisonDetection runs readers and writers concurrently.
// Writers retire objects and poison them when they come back through
// the free list; readers grab the currently published object inside a
// critical section and verify it is never poisoned while held.
func TestStressPoisonDetection(t *testing.T) {
	const (
		readers = 4
		writers = 2
		iters   = 20000
	)
	m := NewManager[obj](readers + writers)
	var published atomic.Pointer[obj]
	published.Store(&obj{})

	var wg sync.WaitGroup
	var failures atomic.Int64

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Register()
			for i := 0; i < iters; i++ {
				h.Enter()
				next := h.Alloc()
				// Reinitializing a recycled object is only safe if no
				// pinned reader can still observe it; a reader seeing
				// val change mid-hold proves premature recycling.
				atomic.StoreInt64(&next.val, int64(i))
				old := published.Swap(next)
				h.Retire(old)
				h.Exit()
			}
		}()
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Register()
			for i := 0; i < iters; i++ {
				h.Enter()
				p := published.Load()
				// While we are in the critical section, p must not be
				// recycled out from under us: val must stay stable.
				v1 := atomic.LoadInt64(&p.val)
				for spin := 0; spin < 10; spin++ {
					if atomic.LoadInt64(&p.val) != v1 {
						failures.Add(1)
						break
					}
				}
				h.Exit()
			}
		}()
	}

	wg.Wait()
	if f := failures.Load(); f > 0 {
		t.Fatalf("%d protected objects were modified while held", f)
	}
}

func TestRecycleEventuallyHappensUnderChurn(t *testing.T) {
	m := NewManager[obj](2)
	h := m.Register()
	other := m.Register()
	for i := 0; i < 1000; i++ {
		h.Enter()
		h.Retire(h.Alloc())
		h.Exit()
		other.Enter()
		other.Exit()
	}
	if h.Recycled == 0 {
		t.Fatalf("no objects recycled after 1000 retire cycles (limbo=%d, free=%d, epoch=%d)",
			h.LimboCount(), h.FreeCount(), m.Epoch())
	}
}

func TestLimboPlusFreeConservation(t *testing.T) {
	m := NewManager[obj](1)
	h := m.Register()
	const n = 500
	for i := 0; i < n; i++ {
		h.Enter()
		h.Retire(&obj{})
		h.Exit()
		m.tryAdvance()
	}
	total := h.LimboCount() + h.FreeCount()
	if total != n {
		t.Fatalf("limbo+free = %d, want %d (objects lost or duplicated)", total, n)
	}
}

func BenchmarkEnterExit(b *testing.B) {
	m := NewManager[obj](1)
	h := m.Register()
	for i := 0; i < b.N; i++ {
		h.Enter()
		h.Exit()
	}
}

func BenchmarkRetireAllocCycle(b *testing.B) {
	m := NewManager[obj](1)
	h := m.Register()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Enter()
		h.Retire(h.Alloc())
		h.Exit()
		if i%64 == 0 {
			m.tryAdvance()
		}
	}
}

// TestCloseRecyclesSlot checks that Close returns the handle's slot for
// reuse: a capacity-1 manager must support unbounded register/close
// churn, and a closed (quiescent) slot must never block epoch advance.
func TestCloseRecyclesSlot(t *testing.T) {
	m := NewManager[int](1)
	for i := 0; i < 5; i++ {
		h := m.Register()
		h.Enter()
		h.Retire(new(int))
		h.Exit()
		h.Close()
		h.Close() // idempotent
	}
	// The survivor can still advance epochs: closed slots are quiescent.
	h := m.Register()
	before := m.Epoch()
	for i := 0; i < 200; i++ {
		h.Enter()
		h.Retire(new(int))
		h.Exit()
	}
	if m.Epoch() == before {
		t.Fatal("epoch never advanced after churned slots were closed")
	}
	h.Close()
}

func TestClosePanicsInsideCriticalSection(t *testing.T) {
	m := NewManager[int](1)
	h := m.Register()
	h.Enter()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Close inside critical section")
		}
	}()
	h.Close()
}
