// Package ebstack implements the Elimination-Backoff stack of Hendler,
// Shavit and Yerushalmi (SPAA '04), the EB baseline of the paper's
// evaluation: a Treiber stack whose contention backoff is an elimination
// array. An operation that fails its CAS visits a random exchanger in
// the array; a push and a pop that meet there cancel without ever
// touching the shared top pointer.
//
// The elimination range adapts per thread: a successful elimination
// widens the range (more slots, more parallel rendezvous), a timeout
// narrows it (fewer slots, faster matches), as in the original paper.
package ebstack

import (
	"sync/atomic"

	"secstack/internal/xrand"
)

// node is one stack cell.
type node[T any] struct {
	value T
	next  *node[T]
}

// Stack is an elimination-backoff stack. Use Register to obtain
// per-goroutine handles.
type Stack[T any] struct {
	top atomic.Pointer[node[T]]

	arr      []exchanger[T]
	patience int
	seq      atomic.Uint64
}

// Option configures a Stack.
type Option func(*config)

type config struct {
	arraySize int
	patience  int
}

// WithArraySize sets the number of exchangers in the elimination array.
// Defaults to GOMAXPROCS-sized arrays being unnecessary; 16 slots cover
// the thread counts of the paper's experiments.
func WithArraySize(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.arraySize = n
		}
	}
}

// WithPatience sets how many wait steps an operation spends at an
// exchanger before giving up. Default 64.
func WithPatience(p int) Option {
	return func(c *config) {
		if p > 0 {
			c.patience = p
		}
	}
}

// New returns an empty elimination-backoff stack.
func New[T any](opts ...Option) *Stack[T] {
	c := config{arraySize: 16, patience: 64}
	for _, o := range opts {
		o(&c)
	}
	return &Stack[T]{arr: make([]exchanger[T], c.arraySize), patience: c.patience}
}

// Handle is a per-goroutine session: RNG plus the adaptive elimination
// range. Handles must not be shared between goroutines.
type Handle[T any] struct {
	s     *Stack[T]
	rng   *xrand.State
	rangE int // current elimination range, in [1, len(arr)]
}

// Register returns a new handle on the stack.
func (s *Stack[T]) Register() *Handle[T] {
	return &Handle[T]{s: s, rng: xrand.New(s.seq.Add(1)), rangE: 1}
}

// Close releases the handle. EB handles hold only a private RNG and the
// adaptive elimination range, so Close is a no-op beyond marking the end
// of the session; it exists to satisfy the uniform handle-lifecycle
// contract. Idempotent.
func (h *Handle[T]) Close() {}

// adapt widens the range after a hit and narrows it after a miss.
func (h *Handle[T]) adapt(hit bool) {
	if hit {
		if h.rangE < len(h.s.arr) {
			h.rangE++
		}
	} else if h.rangE > 1 {
		h.rangE--
	}
}

// Push adds v to the top of the stack.
func (h *Handle[T]) Push(v T) {
	s := h.s
	n := &node[T]{value: v}
	for {
		old := s.top.Load()
		n.next = old
		if s.top.CompareAndSwap(old, n) {
			return
		}
		// Contention: go to the elimination array instead of retrying.
		of := &offer[T]{isPush: true, value: v}
		slot := &s.arr[h.rng.Intn(h.rangE)]
		if _, ok := slot.exchange(of, s.patience); ok {
			h.adapt(true)
			return
		}
		h.adapt(false)
	}
}

// Pop removes and returns the top element; ok is false if the stack was
// empty at the linearization point.
func (h *Handle[T]) Pop() (v T, ok bool) {
	s := h.s
	for {
		old := s.top.Load()
		if old == nil {
			return v, false
		}
		if s.top.CompareAndSwap(old, old.next) {
			return old.value, true
		}
		of := &offer[T]{isPush: false}
		slot := &s.arr[h.rng.Intn(h.rangE)]
		if got, ok := slot.exchange(of, s.patience); ok {
			h.adapt(true)
			return got, true
		}
		h.adapt(false)
	}
}

// Peek returns the top element without removing it; ok is false if the
// stack is empty.
func (h *Handle[T]) Peek() (v T, ok bool) {
	old := h.s.top.Load()
	if old == nil {
		return v, false
	}
	return old.value, true
}

// Len counts the elements currently on the stack; a racy diagnostic for
// tests and quiescent states.
func (s *Stack[T]) Len() int {
	n := 0
	for p := s.top.Load(); p != nil; p = p.next {
		n++
	}
	return n
}
