package ebstack_test

import (
	"sync"
	"testing"

	"secstack/internal/ebstack"
	"secstack/internal/stacktest"
)

type adapter struct{ s *ebstack.Stack[int64] }

func (a adapter) Register() stacktest.Handle { return a.s.Register() }

func factory() stacktest.Stack { return adapter{ebstack.New[int64]()} }

func TestConformance(t *testing.T) {
	stacktest.RunAll(t, factory)
}

func TestSmallArrayHighContention(t *testing.T) {
	// A single exchanger slot maximizes elimination collisions; the
	// stack must stay correct.
	s := ebstack.New[int64](ebstack.WithArraySize(1), ebstack.WithPatience(16))
	var wg sync.WaitGroup
	const g, per = 8, 2000
	var popped [g * per]int32
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			for i := 0; i < per; i++ {
				h.Push(int64(w*per + i))
				if v, ok := h.Pop(); ok {
					popped[v]++
				}
			}
		}(w)
	}
	wg.Wait()
	h := s.Register()
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		popped[v]++
	}
	for v, c := range popped {
		if c != 1 {
			t.Fatalf("value %d seen %d times", v, c)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	// Non-positive options fall back to defaults rather than panicking.
	s := ebstack.New[int64](ebstack.WithArraySize(0), ebstack.WithPatience(-1))
	h := s.Register()
	h.Push(1)
	if v, ok := h.Pop(); !ok || v != 1 {
		t.Fatal("stack with defaulted options broken")
	}
}

func TestLen(t *testing.T) {
	s := ebstack.New[int64]()
	h := s.Register()
	for i := 0; i < 5; i++ {
		h.Push(int64(i))
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
}
