package ebstack

import (
	"sync/atomic"

	"secstack/internal/backoff"
)

// exchanger is a lock-free asymmetric rendezvous object in the style of
// the Herlihy–Shavit LockFreeExchanger: a push and a pop that meet at
// the same exchanger within each other's timeout windows cancel out.
//
// The slot holds a waiting offer (or nil). The single synchronization
// point deciding an offer's fate is its claimed field:
//
//   - a partner completes the exchange with claimed.CAS(nil, partner);
//   - the owner withdraws on timeout with claimed.CAS(nil, owner),
//     using its own offer pointer as the "withdrawn" sentinel.
//
// Because both transitions CAS the same location from nil, an offer can
// never be both withdrawn and claimed - the race that would duplicate a
// pushed value. The slot pointer itself is only a meeting place and is
// cleaned up lazily.
//
// Cost per elimination: one CAS to install, one to claim, one to clear
// the slot - the up-to-three-CAS protocol the paper contrasts with SEC's
// two fetch&increments.
type exchanger[T any] struct {
	slot atomic.Pointer[offer[T]]
	_    [56]byte // pad: exchangers sit in an array
}

// offer is one operation waiting at an exchanger.
type offer[T any] struct {
	isPush bool
	value  T // the pushed value (push offers only)

	// claimed is nil while waiting; it transitions exactly once, to a
	// partner's offer (exchange) or to the owner itself (withdrawal).
	claimed atomic.Pointer[offer[T]]
}

// settle converts a completed pairing into the exchange result for the
// side that owns my: pushes learn only that their value was consumed,
// pops receive the push's value.
func settle[T any](my, partner *offer[T]) (v T, ok bool) {
	if my.isPush {
		return v, true
	}
	return partner.value, true
}

// exchange attempts to eliminate my against an opposite operation at
// this exchanger within roughly patience wait steps. (zero, false)
// means timeout or an incompatible partner; the caller goes back to the
// shared stack.
func (e *exchanger[T]) exchange(my *offer[T], patience int) (v T, ok bool) {
	var w backoff.Waiter
	for attempt := 0; attempt < patience; attempt++ {
		cur := e.slot.Load()
		switch {
		case cur == nil: // EMPTY: install our offer and wait
			if !e.slot.CompareAndSwap(nil, my) {
				continue // somebody beat us; re-read
			}
			for i := 0; i < patience; i++ {
				if p := my.claimed.Load(); p != nil {
					e.slot.CompareAndSwap(my, nil)
					return settle(my, p)
				}
				w.Wait()
			}
			// Timed out: withdraw through the claimed field. Failure
			// means a partner claimed us concurrently.
			if my.claimed.CompareAndSwap(nil, my) {
				e.slot.CompareAndSwap(my, nil)
				return v, false
			}
			p := my.claimed.Load()
			e.slot.CompareAndSwap(my, nil)
			return settle(my, p)

		case cur.claimed.Load() != nil:
			// Stale offer (already claimed or withdrawn): help clear
			// the slot and retry.
			e.slot.CompareAndSwap(cur, nil)

		case cur.isPush == my.isPush: // same type: no elimination here
			return v, false

		default: // WAITING with opposite type: try to claim it
			if cur.claimed.CompareAndSwap(nil, my) {
				e.slot.CompareAndSwap(cur, nil)
				return settle(my, cur)
			}
			w.Wait() // lost the claim race; slot will clear soon
		}
	}
	return v, false
}
