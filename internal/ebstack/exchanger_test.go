package ebstack

// White-box tests for the elimination exchanger: the single-CAS-point
// claim/withdraw protocol is where a subtle race would duplicate or
// lose a pushed value (an earlier draft of this package had exactly
// that bug - withdrawal through the slot pointer raced with a claim
// through the offer - so these tests pin the protocol directly).

import (
	"sync"
	"testing"
)

func TestExchangeTimesOutAlone(t *testing.T) {
	var e exchanger[int64]
	of := &offer[int64]{isPush: true, value: 7}
	if _, ok := e.exchange(of, 4); ok {
		t.Fatal("lone push exchanged with nobody")
	}
	// After a withdrawal the slot must be reusable.
	if e.slot.Load() != nil && e.slot.Load().claimed.Load() == nil {
		t.Fatal("slot left holding a live offer after timeout")
	}
}

func TestExchangeSameTypeRefused(t *testing.T) {
	var e exchanger[int64]
	done := make(chan bool)
	go func() {
		of := &offer[int64]{isPush: true, value: 1}
		_, ok := e.exchange(of, 1<<16)
		done <- ok
	}()
	// Wait until the first push has installed itself.
	for e.slot.Load() == nil {
	}
	of2 := &offer[int64]{isPush: true, value: 2}
	if _, ok := e.exchange(of2, 4); ok {
		t.Fatal("push exchanged with push")
	}
	// Unblock the waiter by having a pop take it.
	pop := &offer[int64]{isPush: false}
	if v, ok := e.exchange(pop, 1<<16); !ok || v != 1 {
		t.Fatalf("pop exchange = (%d, %v), want (1, true)", v, ok)
	}
	if !<-done {
		t.Fatal("waiting push was claimed but reported failure")
	}
}

func TestExchangePairTransfersValue(t *testing.T) {
	var e exchanger[int64]
	var got int64
	var gotOK bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		of := &offer[int64]{isPush: true, value: 42}
		for {
			if _, ok := e.exchange(of, 1<<12); ok {
				return
			}
			of = &offer[int64]{isPush: true, value: 42}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			of := &offer[int64]{isPush: false}
			if v, ok := e.exchange(of, 1<<12); ok {
				got, gotOK = v, ok
				return
			}
		}
	}()
	wg.Wait()
	if !gotOK || got != 42 {
		t.Fatalf("pop received (%d, %v), want (42, true)", got, gotOK)
	}
}

// TestExchangeNoDuplicationUnderRaces hammers one exchanger with
// pushes and pops and verifies the fundamental exactly-once property:
// every pushed value is received by at most one pop, and a push that
// reports failure has NOT had its value consumed.
func TestExchangeNoDuplicationUnderRaces(t *testing.T) {
	var e exchanger[int64]
	const (
		pushers = 4
		poppers = 4
		perG    = 5000
	)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		delivered = make(map[int64]int) // value -> times exchanged (push side)
		received  = make(map[int64]int) // value -> times received (pop side)
	)
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ok2 := make(map[int64]int)
			for i := 0; i < perG; i++ {
				v := int64(p)<<32 | int64(i)
				of := &offer[int64]{isPush: true, value: v}
				if _, ok := e.exchange(of, 64); ok {
					ok2[v]++
				}
			}
			mu.Lock()
			for v, c := range ok2 {
				delivered[v] += c
			}
			mu.Unlock()
		}(p)
	}
	for p := 0; p < poppers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := make(map[int64]int)
			for i := 0; i < perG; i++ {
				of := &offer[int64]{isPush: false}
				if v, ok := e.exchange(of, 64); ok {
					got[v]++
				}
			}
			mu.Lock()
			for v, c := range got {
				received[v] += c
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	for v, c := range received {
		if c != 1 {
			t.Fatalf("value %d received %d times", v, c)
		}
		if delivered[v] != 1 {
			t.Fatalf("value %d received but its push reported %d successes", v, delivered[v])
		}
	}
	for v, c := range delivered {
		if c != 1 || received[v] != 1 {
			t.Fatalf("push of %d succeeded %d times but was received %d times", v, c, received[v])
		}
	}
}
