// Package faultpoint is the repository's fault-injection framework: a
// registry of named sites threaded through the serving and recovery
// paths (internal/secd, internal/wire, pool) that tests and chaos
// drivers arm to make hard failure paths reachable deterministically -
// a connection that panics between handle registrations, a shrink
// drain whose every steal is contended, a write that silently
// disappears - instead of hoping goroutine timing lines them up.
//
// The design constraint is that production code pays nothing for the
// instrumentation: while no site is armed, Hit compiles to a single
// atomic load of a package-level counter and an immediate return - no
// map lookup, no mutex, no allocation (the allocation guard in
// faultpoint_test.go pins this at 0 allocs/op). Only once Arm moves
// the armed-site count above zero does a hit take the slow path that
// consults the site table.
//
// A site is armed with a Spec: an Action (return an error, sleep,
// report a drop, or panic), an optional Skip prefix of hits to pass
// through untouched, and an optional Count bounding how many hits
// fire. Skip and Count make multi-step protocols addressable: "fail
// the third flush", "stall the first two drain bursts, then recover".
// Hits and fires are counted per site while armed, so a test can
// assert not just the outcome but that the injected path actually ran.
//
// Sites are plain strings owned by the package that calls Hit; the
// convention is "package.site" ("secd.read", "pool.migrate.contended",
// "wire.decode"). See DESIGN.md §14 for the site inventory.
package faultpoint

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Action is what an armed site does when a hit fires.
type Action uint8

const (
	// ActError makes Hit return the Spec's Err (ErrInjected when nil).
	ActError Action = iota
	// ActDrop makes Hit return ErrDropped: the site should pretend the
	// I/O or operation silently disappeared (skip a reply write, treat
	// a steal as contended) rather than surface an error.
	ActDrop
	// ActDelay makes Hit sleep the Spec's Delay and then report no
	// fault - latency injection without a failure.
	ActDelay
	// ActPanic makes Hit panic with a Panic value naming the site,
	// exercising recover-and-unwind paths.
	ActPanic
)

// ErrInjected is ActError's default return; armed errors that should
// be recognizable wrap it.
var ErrInjected = errors.New("faultpoint: injected fault")

// ErrDropped is ActDrop's return. It wraps ErrInjected so generic
// "was this injected?" checks keep working.
var ErrDropped = fmt.Errorf("%w: dropped", ErrInjected)

// Panic is the value an ActPanic site panics with; recovery code and
// tests recognize injected panics by type-asserting against it.
type Panic struct{ Site string }

func (p Panic) Error() string { return "faultpoint: injected panic at " + p.Site }

// Spec arms one site.
type Spec struct {
	// Action selects the fault (default ActError).
	Action Action
	// Err overrides ActError's returned error (default ErrInjected).
	Err error
	// Delay is ActDelay's sleep.
	Delay time.Duration
	// Skip is how many hits pass through untouched before the site
	// starts firing.
	Skip int64
	// Count bounds how many hits fire; 0 fires on every hit past Skip.
	// A site whose Count is exhausted stays armed but inert (its hit
	// counter keeps moving) until Disarm or Reset.
	Count int64
}

// site is one armed site's mu-guarded state.
type site struct {
	spec  Spec
	hits  int64 // hits observed while armed
	fires int64 // hits that actually fired
}

var (
	// armed counts armed sites; the Hit fast path is one atomic load of
	// it. Guarded by mu for writes.
	armed atomic.Int32
	mu    sync.Mutex
	sites map[string]*site
)

// Arm arms (or re-arms, resetting counters) the named site.
func Arm(name string, sp Spec) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*site)
	}
	if _, ok := sites[name]; !ok {
		armed.Add(1)
	}
	sites[name] = &site{spec: sp}
}

// Disarm disarms the named site; its counters are discarded. Disarming
// an unarmed site is a no-op.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; ok {
		delete(sites, name)
		armed.Add(-1)
	}
}

// Reset disarms every site - test cleanup's one-liner.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for name := range sites {
		delete(sites, name)
		armed.Add(-1)
	}
}

// Armed reports whether the named site is currently armed.
func Armed(name string) bool {
	mu.Lock()
	defer mu.Unlock()
	_, ok := sites[name]
	return ok
}

// Hits returns how many times the named site was hit while armed.
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if s := sites[name]; s != nil {
		return s.hits
	}
	return 0
}

// Fires returns how many of the named site's hits actually fired -
// the assertion that an injected path really ran.
func Fires(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if s := sites[name]; s != nil {
		return s.fires
	}
	return 0
}

// Hit is the hot-path probe a site compiles to: with no site armed it
// is a single atomic load and a nil return. Armed, it returns the
// site's error (ActError/ActDrop), sleeps and returns nil (ActDelay),
// or panics with a Panic value (ActPanic).
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return hitSlow(name)
}

// Fired is Hit for sites whose fault is a behavior change rather than
// an error to thread: true means "the injected path is on this hit".
// ActDelay sites sleep and report false; ActPanic sites still panic.
func Fired(name string) bool { return Hit(name) != nil }

func hitSlow(name string) error {
	mu.Lock()
	s := sites[name]
	if s == nil {
		mu.Unlock()
		return nil
	}
	n := s.hits
	s.hits++
	sp := s.spec
	fire := n >= sp.Skip && (sp.Count == 0 || n < sp.Skip+sp.Count)
	if fire {
		s.fires++
	}
	mu.Unlock()
	if !fire {
		return nil
	}
	switch sp.Action {
	case ActDelay:
		time.Sleep(sp.Delay)
		return nil
	case ActDrop:
		return ErrDropped
	case ActPanic:
		panic(Panic{Site: name})
	default:
		if sp.Err != nil {
			return sp.Err
		}
		return ErrInjected
	}
}
