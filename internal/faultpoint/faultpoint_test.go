package faultpoint

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedHitIsNil(t *testing.T) {
	Reset()
	if err := Hit("never.armed"); err != nil {
		t.Fatalf("disarmed Hit = %v, want nil", err)
	}
	if Fired("never.armed") {
		t.Fatal("disarmed Fired = true")
	}
	if Hits("never.armed") != 0 {
		t.Fatal("disarmed site counted hits")
	}
}

func TestArmErrorAndCounters(t *testing.T) {
	defer Reset()
	Arm("t.err", Spec{Action: ActError})
	if err := Hit("t.err"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit = %v, want ErrInjected", err)
	}
	// An armed site elsewhere must not fire other sites.
	if err := Hit("t.other"); err != nil {
		t.Fatalf("unarmed site under armed registry = %v", err)
	}
	if got := Hits("t.err"); got != 1 {
		t.Fatalf("Hits = %d, want 1", got)
	}
	if got := Fires("t.err"); got != 1 {
		t.Fatalf("Fires = %d, want 1", got)
	}
	custom := errors.New("custom")
	Arm("t.err", Spec{Action: ActError, Err: custom})
	if err := Hit("t.err"); !errors.Is(err, custom) {
		t.Fatalf("Hit with custom err = %v", err)
	}
	if got := Hits("t.err"); got != 1 {
		t.Fatalf("re-Arm did not reset counters: Hits = %d", got)
	}
	Disarm("t.err")
	if Armed("t.err") {
		t.Fatal("still armed after Disarm")
	}
	if err := Hit("t.err"); err != nil {
		t.Fatalf("Hit after Disarm = %v", err)
	}
}

func TestSkipAndCountWindow(t *testing.T) {
	defer Reset()
	// Pass 2 hits, fire 3, then inert.
	Arm("t.win", Spec{Action: ActError, Skip: 2, Count: 3})
	var fired int
	for i := 0; i < 10; i++ {
		if Hit("t.win") != nil {
			fired++
			if i < 2 || i > 4 {
				t.Fatalf("hit %d fired outside the [2,4] window", i)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
	if got := Hits("t.win"); got != 10 {
		t.Fatalf("Hits = %d, want 10 (inert hits still count)", got)
	}
	if got := Fires("t.win"); got != 3 {
		t.Fatalf("Fires = %d, want 3", got)
	}
}

func TestDropIsRecognizable(t *testing.T) {
	defer Reset()
	Arm("t.drop", Spec{Action: ActDrop})
	err := Hit("t.drop")
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("Hit = %v, want ErrDropped", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatal("ErrDropped does not wrap ErrInjected")
	}
	if !Fired("t.drop") {
		t.Fatal("Fired = false for an armed drop")
	}
}

func TestDelaySleepsWithoutFault(t *testing.T) {
	defer Reset()
	Arm("t.delay", Spec{Action: ActDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Hit("t.delay"); err != nil {
		t.Fatalf("delay Hit = %v, want nil", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay site slept %v, want >= 20ms", d)
	}
	if got := Fires("t.delay"); got != 1 {
		t.Fatalf("Fires = %d, want 1", got)
	}
}

func TestPanicCarriesSite(t *testing.T) {
	defer Reset()
	Arm("t.panic", Spec{Action: ActPanic})
	defer func() {
		r := recover()
		p, ok := r.(Panic)
		if !ok || p.Site != "t.panic" {
			t.Fatalf("recovered %v, want Panic{t.panic}", r)
		}
	}()
	Hit("t.panic")
	t.Fatal("armed panic site did not panic")
}

func TestResetDisarmsAll(t *testing.T) {
	Arm("t.a", Spec{})
	Arm("t.b", Spec{})
	Reset()
	if Armed("t.a") || Armed("t.b") {
		t.Fatal("sites survive Reset")
	}
	if err := Hit("t.a"); err != nil {
		t.Fatalf("Hit after Reset = %v", err)
	}
}

func TestConcurrentHitsUnderArm(t *testing.T) {
	defer Reset()
	Arm("t.conc", Spec{Action: ActError, Count: 100})
	done := make(chan int64)
	for g := 0; g < 4; g++ {
		go func() {
			var fired int64
			for i := 0; i < 1000; i++ {
				if Hit("t.conc") != nil {
					fired++
				}
			}
			done <- fired
		}()
	}
	var total int64
	for g := 0; g < 4; g++ {
		total += <-done
	}
	if total != 100 {
		t.Fatalf("fired %d across goroutines, want exactly Count=100", total)
	}
	if got := Hits("t.conc"); got != 4000 {
		t.Fatalf("Hits = %d, want 4000", got)
	}
}

// TestAllocCeilingDisarmed is the acceptance pin: a disarmed site adds
// zero allocations to its host's hot path.
func TestAllocCeilingDisarmed(t *testing.T) {
	Reset()
	if avg := testing.AllocsPerRun(1000, func() {
		Hit("secd.read")
		Fired("pool.migrate.contended")
	}); avg != 0 {
		t.Fatalf("disarmed Hit allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkHitDisarmed measures the disarmed probe every serving-path
// request pays: one atomic load.
func BenchmarkHitDisarmed(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Hit("secd.read") != nil {
			b.Fatal("disarmed site fired")
		}
	}
}
