// Package fcstack implements the flat-combining stack of Hendler, Incze,
// Shavit and Tzafrir (SPAA '10), the FC baseline of the paper's
// evaluation. Threads publish operation requests on a publication list;
// whoever acquires the global combiner lock scans the list and applies
// all pending requests to a sequential stack, so the shared structure is
// only ever touched by one thread at a time.
//
// The paper's critique, which our benchmarks reproduce, is that the
// single combiner serializes entire operations and becomes a bottleneck
// at high thread counts - exactly what SEC's per-batch combiners avoid.
package fcstack

import (
	"sync"
	"sync/atomic"

	"secstack/internal/backoff"
	"secstack/internal/seqstack"
)

// Request codes posted in a publication record.
const (
	opNone int32 = iota // no pending request
	opPush
	opPop
	opPeek
	opDone // response ready
)

// record is one thread's slot on the publication list. The owner writes
// value before storing op (release); the combiner reads op (acquire)
// then value, and writes result/resultOK before storing opDone.
type record[T any] struct {
	op       atomic.Int32
	value    T
	result   T
	resultOK bool
	next     *record[T] // publication list link, immutable once linked
	_        [24]byte   // pad to keep hot records apart
}

// Stack is a flat-combining stack. Use Register to obtain per-goroutine
// handles.
type Stack[T any] struct {
	lock atomic.Bool // the combiner lock (test-and-test-and-set)
	head atomic.Pointer[record[T]]
	stk  *seqstack.Stack[T]

	// freeMu guards freeRecs, the records returned by Close and awaiting
	// a new owner. Registration is a lifecycle operation, not a hot
	// path, so a mutex is fine here; reusing records through a Treiber
	// free list would reintroduce the ABA hazard that fresh-node
	// allocation avoids.
	freeMu   sync.Mutex
	freeRecs []*record[T]

	// rounds is how many passes over the publication list a combiner
	// makes per lock acquisition; >1 lets the combiner pick up requests
	// published while it was scanning (the "combining degree" knob).
	rounds int
}

// Option configures a Stack.
type Option func(*config)

type config struct{ rounds int }

// WithCombinerRounds sets the number of publication-list scan rounds per
// combiner session. Default 2.
func WithCombinerRounds(r int) Option {
	return func(c *config) {
		if r > 0 {
			c.rounds = r
		}
	}
}

// New returns an empty flat-combining stack.
func New[T any](opts ...Option) *Stack[T] {
	c := config{rounds: 2}
	for _, o := range opts {
		o(&c)
	}
	return &Stack[T]{stk: seqstack.New[T](1024), rounds: c.rounds}
}

// Handle is a per-goroutine session owning one publication record.
// Handles must not be shared between goroutines.
type Handle[T any] struct {
	s   *Stack[T]
	rec *record[T]
}

// Register returns a handle owning one publication record, reusing a
// record released by Close when one is available and publishing a fresh
// one otherwise. Records are never unlinked from the publication list -
// the combiner simply skips records with no pending request - so the
// list length is bounded by the peak number of simultaneously live
// handles, not by registration churn.
func (s *Stack[T]) Register() *Handle[T] {
	s.freeMu.Lock()
	if n := len(s.freeRecs); n > 0 {
		r := s.freeRecs[n-1]
		s.freeRecs = s.freeRecs[:n-1]
		s.freeMu.Unlock()
		return &Handle[T]{s: s, rec: r}
	}
	s.freeMu.Unlock()
	r := &record[T]{}
	for {
		old := s.head.Load()
		r.next = old
		if s.head.CompareAndSwap(old, r) {
			return &Handle[T]{s: s, rec: r}
		}
	}
}

// Close returns the handle's publication record for reuse by a future
// Register. The record is quiescent between operations (op is opNone),
// so the combiner ignores it until a new owner posts on it. Close is
// idempotent; any other use of a closed handle is a bug.
func (h *Handle[T]) Close() {
	if h.rec == nil {
		return
	}
	r := h.rec
	h.rec = nil
	h.s.freeMu.Lock()
	h.s.freeRecs = append(h.s.freeRecs, r)
	h.s.freeMu.Unlock()
}

// apply executes one request against the sequential stack.
func (s *Stack[T]) apply(r *record[T], op int32) {
	switch op {
	case opPush:
		s.stk.Push(r.value)
		r.resultOK = true
	case opPop:
		r.result, r.resultOK = s.stk.Pop()
	case opPeek:
		r.result, r.resultOK = s.stk.Peek()
	}
	r.op.Store(opDone)
}

// combine drains pending requests; caller must hold the lock.
func (s *Stack[T]) combine() {
	for round := 0; round < s.rounds; round++ {
		for r := s.head.Load(); r != nil; r = r.next {
			if op := r.op.Load(); op > opNone && op < opDone {
				s.apply(r, op)
			}
		}
	}
}

// submit posts op on the handle's record and waits for a response,
// becoming the combiner if the lock is free.
func (h *Handle[T]) submit(op int32, v T) (T, bool) {
	r := h.rec
	r.value = v
	r.op.Store(op)
	s := h.s
	var w backoff.Waiter
	for {
		if r.op.Load() == opDone {
			break
		}
		// Test-and-test-and-set keeps lock cache traffic down.
		if !s.lock.Load() && s.lock.CompareAndSwap(false, true) {
			s.combine()
			s.lock.Store(false)
			if r.op.Load() == opDone {
				break
			}
			// Our own request can still be pending if another combiner
			// raced us and we served a round without it being visible;
			// loop and wait or re-acquire.
			continue
		}
		w.Wait()
	}
	res, ok := r.result, r.resultOK
	r.op.Store(opNone) // reset for the next operation
	return res, ok
}

// Push adds v to the top of the stack.
func (h *Handle[T]) Push(v T) {
	h.submit(opPush, v)
}

// Pop removes and returns the top element; ok is false if the stack was
// empty when the combiner served the request.
func (h *Handle[T]) Pop() (v T, ok bool) {
	var zero T
	return h.submit(opPop, zero)
}

// Peek returns the top element without removing it.
func (h *Handle[T]) Peek() (v T, ok bool) {
	var zero T
	return h.submit(opPeek, zero)
}

// Len reports the number of elements; a racy diagnostic for tests and
// quiescent states.
func (s *Stack[T]) Len() int { return s.stk.Len() }
