package fcstack_test

import (
	"sync"
	"testing"

	"secstack/internal/fcstack"
	"secstack/internal/stacktest"
)

type adapter struct{ s *fcstack.Stack[int64] }

func (a adapter) Register() stacktest.Handle { return a.s.Register() }

func factory() stacktest.Stack { return adapter{fcstack.New[int64]()} }

func TestConformance(t *testing.T) {
	stacktest.RunAll(t, factory)
}

func TestSingleRoundCombiner(t *testing.T) {
	s := fcstack.New[int64](fcstack.WithCombinerRounds(1))
	var wg sync.WaitGroup
	const g, per = 6, 1500
	seen := make([]int32, g*per)
	var mu sync.Mutex
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			local := make([]int64, 0, per)
			for i := 0; i < per; i++ {
				h.Push(int64(w*per + i))
				if v, ok := h.Pop(); ok {
					local = append(local, v)
				}
			}
			mu.Lock()
			for _, v := range local {
				seen[v]++
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	h := s.Register()
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		seen[v]++
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("value %d seen %d times", v, c)
		}
	}
}

func TestManyRegistrations(t *testing.T) {
	s := fcstack.New[int64]()
	handles := make([]*fcstack.Handle[int64], 64)
	for i := range handles {
		handles[i] = s.Register()
	}
	for i, h := range handles {
		h.Push(int64(i))
	}
	if s.Len() != len(handles) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(handles))
	}
	// Drain through an arbitrary handle.
	for i := len(handles) - 1; i >= 0; i-- {
		v, ok := handles[0].Pop()
		if !ok || v != int64(i) {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
}
