package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// WriteCSV renders the series in long form - one row per measurement
// point - suitable for external plotting tools:
//
//	title,workload,column,threads,mops,stddev,runs
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"title", "workload", "column", "threads", "mops", "stddev", "runs", "allocs_op", "bytes_op"}); err != nil {
		return err
	}
	for _, t := range s.Threads() {
		for _, c := range s.Columns {
			r, ok := s.Cells[t][c]
			if !ok {
				continue
			}
			rec := []string{
				s.Title,
				r.Workload.Name,
				c,
				strconv.Itoa(t),
				strconv.FormatFloat(r.Mops, 'f', 4, 64),
				strconv.FormatFloat(r.Stddev, 'f', 4, 64),
				strconv.Itoa(r.Runs),
				strconv.FormatFloat(r.AllocsPerOp, 'f', 3, 64),
				strconv.FormatFloat(r.BytesPerOp, 'f', 1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// LatencyResult holds per-operation latency percentiles from a sampled
// run (RunLatency). The paper reports throughput only; latency is the
// natural companion measurement for a blocking algorithm and feeds the
// ablation discussion in EXPERIMENTS.md.
type LatencyResult struct {
	Config
	Samples          int
	P50, P90, P99    time.Duration
	Max              time.Duration
	MeanNanos        float64
	ThroughputUnder  float64 // Mops/s achieved while sampling
	samplesCollected []time.Duration
}

// RunLatency performs one timed run in which every worker samples the
// latency of every sampleEvery-th operation.
func RunLatency(cfg Config, f Factory, sampleEvery int) LatencyResult {
	cfg = cfg.withDefaults()
	if err := cfg.Workload.Validate(); err != nil {
		panic(err)
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	s := f()
	out := LatencyResult{Config: cfg}

	type workerOut struct {
		samples []time.Duration
		ops     int64
	}
	results := make(chan workerOut, cfg.Threads)
	stop := make(chan struct{})
	gate := make(chan struct{})

	for t := 0; t < cfg.Threads; t++ {
		go func(t int) {
			h := s.Register()
			defer h.Close()
			rng := newWorkerRNG(cfg.Seed, t)
			base := int64(t+1) << 32
			var w workerOut
			<-gate
			for {
				select {
				case <-stop:
					results <- w
					return
				default:
				}
				for i := 0; i < sampleEvery; i++ {
					kind := cfg.Workload.Pick(rng.Intn(100))
					sample := i == 0
					var start time.Time
					if sample {
						start = time.Now()
					}
					switch kind {
					case OpPush:
						h.Push(base | w.ops)
					case OpPop:
						h.Pop()
					case OpPeek:
						h.Peek()
					}
					if sample {
						w.samples = append(w.samples, time.Since(start))
					}
					w.ops++
				}
			}
		}(t)
	}
	close(gate)
	time.Sleep(cfg.Duration)
	close(stop)

	totalOps := int64(0)
	for t := 0; t < cfg.Threads; t++ {
		w := <-results
		out.samplesCollected = append(out.samplesCollected, w.samples...)
		totalOps += w.ops
	}
	out.ThroughputUnder = float64(totalOps) / cfg.Duration.Seconds() / 1e6

	sort.Slice(out.samplesCollected, func(i, j int) bool {
		return out.samplesCollected[i] < out.samplesCollected[j]
	})
	n := len(out.samplesCollected)
	out.Samples = n
	if n == 0 {
		return out
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(n-1))
		return out.samplesCollected[i]
	}
	out.P50, out.P90, out.P99 = pct(0.50), pct(0.90), pct(0.99)
	out.Max = out.samplesCollected[n-1]
	var sum float64
	for _, d := range out.samplesCollected {
		sum += float64(d.Nanoseconds())
	}
	out.MeanNanos = sum / float64(n)
	return out
}

// String renders the latency summary on one line.
func (l LatencyResult) String() string {
	return fmt.Sprintf("%s threads=%d: p50=%v p90=%v p99=%v max=%v (%d samples, %.2f Mops/s)",
		l.Label, l.Threads, l.P50, l.P90, l.P99, l.Max, l.Samples, l.ThroughputUnder)
}
