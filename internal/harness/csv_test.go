package harness

import (
	"strings"
	"testing"
	"time"

	"secstack/stack"
)

func TestWriteCSV(t *testing.T) {
	s := NewSeries("fig", []string{"A", "B"})
	s.Add("A", Result{Config: Config{Threads: 2, Workload: Update100, Runs: 3}, Mops: 1.25, Stddev: 0.1})
	s.Add("B", Result{Config: Config{Threads: 2, Workload: Update100, Runs: 3}, Mops: 2.5})
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), out)
	}
	if lines[0] != "title,workload,column,threads,mops,stddev,runs,allocs_op,bytes_op" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "fig,100%upd,A,2,1.2500,0.1000,3") {
		t.Fatalf("row A = %q", lines[1])
	}
}

func TestWriteCSVSkipsMissingCells(t *testing.T) {
	s := NewSeries("fig", []string{"A", "B"})
	s.Add("A", Result{Config: Config{Threads: 4, Workload: Update50}, Mops: 1})
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "\n") != 2 { // header + one row
		t.Fatalf("unexpected CSV:\n%s", sb.String())
	}
}

func TestRunLatencyCollectsSamples(t *testing.T) {
	cfg := Config{
		Threads:  4,
		Duration: 60 * time.Millisecond,
		Prefill:  100,
		Workload: Update100,
		Label:    "SEC",
	}
	l := RunLatency(cfg, FactoryFor(stack.SEC, stack.WithAggregators(2)), 8)
	if l.Samples == 0 {
		t.Fatal("no latency samples collected")
	}
	if l.P50 <= 0 || l.P99 < l.P50 || l.Max < l.P99 {
		t.Fatalf("percentile ordering broken: p50=%v p99=%v max=%v", l.P50, l.P99, l.Max)
	}
	if l.ThroughputUnder <= 0 {
		t.Fatal("no throughput recorded")
	}
	if !strings.Contains(l.String(), "p50=") {
		t.Fatalf("String() = %q", l.String())
	}
}

func TestRunLatencySampleEveryClamped(t *testing.T) {
	cfg := Config{Threads: 1, Duration: 20 * time.Millisecond, Workload: PushOnly}
	l := RunLatency(cfg, FactoryFor(stack.TRB), 0) // clamps to 1
	if l.Samples == 0 {
		t.Fatal("no samples with sampleEvery=0")
	}
}
