package harness

import (
	"strings"
	"testing"
	"time"

	"secstack/stack"
)

func TestWorkloadValidate(t *testing.T) {
	for _, w := range []Workload{Update100, Update50, Update10, PushOnly, PopOnly} {
		if err := w.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", w.Name, err)
		}
	}
	bad := Workload{Name: "bad", PushPct: 50, PopPct: 30, PeekPct: 30}
	if bad.Validate() == nil {
		t.Fatal("110%% workload accepted")
	}
	neg := Workload{Name: "neg", PushPct: -10, PopPct: 60, PeekPct: 50}
	if neg.Validate() == nil {
		t.Fatal("negative workload accepted")
	}
}

func TestWorkloadPickBoundaries(t *testing.T) {
	w := Update50 // 25/25/50
	if w.Pick(0) != OpPush || w.Pick(24) != OpPush {
		t.Fatal("push band wrong")
	}
	if w.Pick(25) != OpPop || w.Pick(49) != OpPop {
		t.Fatal("pop band wrong")
	}
	if w.Pick(50) != OpPeek || w.Pick(99) != OpPeek {
		t.Fatal("peek band wrong")
	}
}

func TestMachinePresets(t *testing.T) {
	for _, m := range Machines() {
		if len(m.Ladder) == 0 || m.HW == 0 {
			t.Fatalf("machine %q incomplete", m.Name)
		}
		for i := 1; i < len(m.Ladder); i++ {
			if m.Ladder[i] <= m.Ladder[i-1] {
				t.Fatalf("machine %q ladder not increasing", m.Name)
			}
		}
	}
	if _, ok := MachineByName("Emerald"); !ok {
		t.Fatal("Emerald preset missing")
	}
	if _, ok := MachineByName("nope"); ok {
		t.Fatal("bogus machine resolved")
	}
}

func TestMeanStddev(t *testing.T) {
	m, s := meanStddev(nil)
	if m != 0 || s != 0 {
		t.Fatal("empty input")
	}
	m, s = meanStddev([]float64{5})
	if m != 5 || s != 0 {
		t.Fatal("single input")
	}
	m, s = meanStddev([]float64{1, 2, 3})
	if m != 2 || s != 1 {
		t.Fatalf("mean/stddev = %v/%v, want 2/1", m, s)
	}
}

func TestRunProducesThroughput(t *testing.T) {
	cfg := Config{
		Threads:  4,
		Duration: 50 * time.Millisecond,
		Prefill:  100,
		Workload: Update100,
		Runs:     2,
	}
	r := Run(cfg, FactoryFor(stack.SEC, stack.WithAggregators(2)))
	if r.Mops <= 0 {
		t.Fatalf("Mops = %v, want > 0", r.Mops)
	}
	if len(r.PerRun) != 2 {
		t.Fatalf("PerRun = %v, want 2 entries", r.PerRun)
	}
	if r.TotalOps <= 0 {
		t.Fatal("TotalOps not recorded")
	}
	if r.HasDegree {
		t.Fatal("degrees reported without CollectMetrics")
	}
}

func TestRunCollectsDegrees(t *testing.T) {
	cfg := Config{
		Threads:  4,
		Duration: 50 * time.Millisecond,
		Workload: Update100,
	}
	r := Run(cfg, FactoryFor(stack.SEC, stack.WithAggregators(2), stack.WithMetrics()))
	if !r.HasDegree {
		t.Fatal("no degrees from metric-collecting SEC")
	}
	if r.Degrees.Batches == 0 || r.Degrees.Ops == 0 {
		t.Fatalf("empty degree snapshot: %+v", r.Degrees)
	}
}

func TestRunAllAlgorithmsSmoke(t *testing.T) {
	for _, alg := range stack.Algorithms() {
		cfg := Config{
			Threads:  2,
			Duration: 20 * time.Millisecond,
			Prefill:  50,
			Workload: Update50,
		}
		r := Run(cfg, FactoryFor(alg, stack.WithAggregators(2)))
		if r.Mops <= 0 {
			t.Fatalf("%s: zero throughput", alg)
		}
	}
}

func TestRunPanicsOnBadWorkload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid workload")
		}
	}()
	Run(Config{Workload: Workload{Name: "bad", PushPct: 1}}, FactoryFor(stack.TRB))
}

func TestFactoryForUnknownPanics(t *testing.T) {
	f := FactoryFor(stack.Algorithm("NOPE"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown algorithm")
		}
	}()
	f()
}

func TestSeriesReport(t *testing.T) {
	s := NewSeries("test", []string{"A", "B"})
	s.Add("A", Result{Config: Config{Threads: 1}, Mops: 1.5})
	s.Add("B", Result{Config: Config{Threads: 1}, Mops: 3.0})
	s.Add("A", Result{Config: Config{Threads: 8}, Mops: 4.0})

	if got := s.Threads(); len(got) != 2 || got[0] != 1 || got[1] != 8 {
		t.Fatalf("Threads() = %v", got)
	}
	var sb strings.Builder
	if _, err := s.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# test", "threads", "A", "B", "1.50", "3.00", "4.00", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	w := s.Winner()
	if w[1] != "B" || w[8] != "A" {
		t.Fatalf("Winner() = %v", w)
	}
	if sp := s.SpeedupOver("B", "A", 1); sp != 2.0 {
		t.Fatalf("SpeedupOver = %v, want 2", sp)
	}
	if sp := s.SpeedupOver("B", "A", 8); sp != 0 {
		t.Fatalf("SpeedupOver with missing cell = %v, want 0", sp)
	}
}

func TestDegreeTableFormat(t *testing.T) {
	out := DegreeTable("Table 1", []DegreeRow{
		{Workload: "100%upd", BatchingDegree: 17.8, EliminationPct: 79, CombiningPct: 21, SpinAvg: 96.5, ReclaimScans: 12, ReclaimSkips: 84},
		{Workload: "50%upd", BatchingDegree: 17.2, EliminationPct: 79, CombiningPct: 21},
	})
	for _, want := range []string{"Table 1", "Batching Degree", "17.8", "%Elimination", "79%", "%Combining", "21%",
		"SpinAvg", "96.5", "ReclaimScan/Skip", "12/84"} {
		if !strings.Contains(out, want) {
			t.Fatalf("degree table missing %q:\n%s", want, out)
		}
	}
}

func TestSweepSmall(t *testing.T) {
	var progress []string
	s := Sweep("mini", SweepOptions{
		Columns:  []string{"TRB", "SEC"},
		Factory:  func(col string) Factory { return FactoryFor(stack.Algorithm(col), stack.WithAggregators(2)) },
		Ladder:   []int{1, 2},
		Workload: Update100,
		Duration: 10 * time.Millisecond,
		Prefill:  10,
		Runs:     1,
		Progress: func(m string) { progress = append(progress, m) },
	})
	if len(s.Threads()) != 2 {
		t.Fatalf("sweep threads = %v", s.Threads())
	}
	if len(progress) != 4 {
		t.Fatalf("progress callbacks = %d, want 4", len(progress))
	}
	for _, tn := range s.Threads() {
		for _, col := range s.Columns {
			if r, ok := s.Cells[tn][col]; !ok || r.Mops <= 0 {
				t.Fatalf("missing/zero cell %s@%d", col, tn)
			}
		}
	}
}

func TestRunDrainMode(t *testing.T) {
	cfg := Config{
		Threads:  4,
		Prefill:  20000,
		Workload: PopOnly,
		Drain:    true,
		Runs:     1,
	}
	for _, alg := range []stack.Algorithm{stack.SEC, stack.TRB} {
		r := Run(cfg, FactoryFor(alg, stack.WithAggregators(2)))
		if r.Mops <= 0 {
			t.Fatalf("%s: drain produced no throughput", alg)
		}
		// Nearly all prefilled elements must be accounted for (blocking
		// batch algorithms may leave a small residue when the first
		// EMPTY is observed).
		if r.TotalOps < int64(cfg.Prefill)*9/10 {
			t.Fatalf("%s: drained only %d of %d", alg, r.TotalOps, cfg.Prefill)
		}
	}
}

func TestRunDrainDefaultPrefill(t *testing.T) {
	cfg := Config{Threads: 8, Prefill: 5000, Workload: PopOnly, Drain: true}
	r := Run(cfg, FactoryFor(stack.EB))
	if r.TotalOps <= 0 {
		t.Fatal("no pops recorded in drain mode")
	}
}
