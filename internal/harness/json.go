package harness

// Machine-readable benchmark output. cmd/secbench's -json flag writes
// one BENCH_<fig>.json document per sweep so the perf trajectory stays
// comparable across PRs without re-parsing text tables.

import (
	"encoding/json"
	"io"
)

// Schema identifies the JSON layout. v2 added allocs_op/bytes_op to
// every point (the allocation trajectory the batch-recycling work is
// measured by) and fastpath_pct to degree rows. v3 added
// spin_avg/reclaim_scans/reclaim_skips to degree rows (the adaptive
// freezer backoff and reclaim-epoch trajectories). v4 added
// put_steal_hits/put_steal_misses/spin_inherits to degree rows (the
// pool's bidirectional load balancing and the shard-scaling
// inheritance trajectory) and the pool structure to the degree tables.
// v5 added get_steal_hits/get_steal_misses to degree rows (the Get
// steal sweep's mirror of the Put-overflow counters, so the tables
// show both balancing directions) and the p50_us/p99_us point fields
// that served-throughput sweeps (cmd/secload driving a live secd)
// emit. v6 added the per-series implicit flag: true when every point
// of the series was measured through the handle-free API (the per-P
// implicit-session layer) rather than per-worker explicit handles.
// v7 added live_shards/shard_grows/shard_shrinks/migrated to degree
// rows: the elastic pool controller's live-window gauge (the widest
// window the rung reached) and its resize/drain-migration counters.
// v8 added retried/lost to served points: the client retry machinery's
// replayed-attempt count and the operations abandoned with the retry
// budget exhausted (the chaos smoke's zero-acked-loss invariant is
// lost == 0 under fault injection).
// v9 added the queue structure: the bounded MPMC FIFO joins the degree
// tables, and the queue-vs-channel head-to-head (`-fig queue`) emits a
// chan-arm series whose degree snapshot is empty (a channel exposes no
// batching internals).
const Schema = "secbench/v9"

// BenchDoc is the top-level JSON document for one figure or table: its
// sweeps' throughput series and/or its degree tables.
type BenchDoc struct {
	Schema string       `json:"schema"` // see Schema
	Fig    string       `json:"fig"`    // e.g. "fig2a", "table1"
	Series []SeriesJSON `json:"series,omitempty"`
	Tables []TableJSON  `json:"tables,omitempty"`
}

// SeriesJSON is one throughput sweep in long form.
type SeriesJSON struct {
	Title    string      `json:"title"`
	Workload string      `json:"workload,omitempty"`
	Columns  []string    `json:"columns"`
	Implicit bool        `json:"implicit"` // handle-free measurement (schema v6)
	Points   []PointJSON `json:"points"`
}

// PointJSON is one measurement point of a sweep.
type PointJSON struct {
	Column      string  `json:"column"`
	Threads     int     `json:"threads"`
	Mops        float64 `json:"mops"`
	Stddev      float64 `json:"stddev"`
	Runs        int     `json:"runs"`
	AllocsPerOp float64 `json:"allocs_op"`
	BytesPerOp  float64 `json:"bytes_op"`

	// P50Micros and P99Micros carry client-observed round-trip latency
	// for served-throughput points (cmd/secload); zero - and omitted -
	// for in-process sweeps, whose per-op latency is the reciprocal of
	// throughput rather than a measured distribution.
	P50Micros float64 `json:"p50_us,omitempty"`
	P99Micros float64 `json:"p99_us,omitempty"`

	// Retried and Lost carry the client retry machinery's tallies for
	// served points driven through secclient (schema v8): attempts
	// replayed after a connection loss or timeout, and operations
	// abandoned with the retry budget exhausted. Zero - and omitted -
	// for in-process sweeps and fault-free runs.
	Retried int64 `json:"retried,omitempty"`
	Lost    int64 `json:"lost,omitempty"`
}

// TableJSON is one structure's degree table (occupancy, elimination
// rate, batching degree per workload).
type TableJSON struct {
	Title     string      `json:"title"`
	Structure string      `json:"structure"` // "stack", "deque", "funnel", "pool"
	Rows      []DegreeRow `json:"rows"`
}

// NewBenchDoc returns an empty document for the named figure or table.
func NewBenchDoc(fig string) *BenchDoc {
	return &BenchDoc{Schema: Schema, Fig: fig}
}

// AddSeries appends a sweep's series to the document.
func (d *BenchDoc) AddSeries(s *Series) {
	out := SeriesJSON{Title: s.Title, Columns: s.Columns, Implicit: s.Implicit}
	for _, t := range s.Threads() {
		for _, c := range s.Columns {
			r, ok := s.Cells[t][c]
			if !ok {
				continue
			}
			if out.Workload == "" {
				out.Workload = r.Workload.Name
			}
			out.Points = append(out.Points, PointJSON{
				Column:      c,
				Threads:     t,
				Mops:        r.Mops,
				Stddev:      r.Stddev,
				Runs:        r.Runs,
				AllocsPerOp: r.AllocsPerOp,
				BytesPerOp:  r.BytesPerOp,
			})
		}
	}
	d.Series = append(d.Series, out)
}

// AddTable appends one structure's degree table to the document.
func (d *BenchDoc) AddTable(title, structure string, rows []DegreeRow) {
	d.Tables = append(d.Tables, TableJSON{Title: title, Structure: structure, Rows: rows})
}

// WriteJSON renders the document, indented for diffability.
func (d *BenchDoc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
