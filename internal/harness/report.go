package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"secstack/internal/metrics"
)

// Series is one figure's worth of results: throughput per (column
// label, thread count). Columns are algorithm labels for Figure 2/3
// style plots, or aggregator labels (SEC_Agg1..) for Figure 4 style.
type Series struct {
	Title   string
	Columns []string
	// Cells[threads][column] = result
	Cells map[int]map[string]Result

	// Implicit records that every point in the series was measured
	// through the handle-free API (Config.Implicit); the secbench/v6
	// JSON schema carries it so implicit and explicit series of the
	// same figure stay distinguishable after export.
	Implicit bool
}

// NewSeries returns an empty series with the given column order.
func NewSeries(title string, columns []string) *Series {
	return &Series{Title: title, Columns: columns, Cells: make(map[int]map[string]Result)}
}

// Add records one measurement point.
func (s *Series) Add(column string, r Result) {
	row := s.Cells[r.Threads]
	if row == nil {
		row = make(map[string]Result)
		s.Cells[r.Threads] = row
	}
	row[column] = r
}

// Threads returns the sorted thread counts present in the series.
func (s *Series) Threads() []int {
	out := make([]int, 0, len(s.Cells))
	for t := range s.Cells {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// WriteTo renders the series as a text table in the layout of the
// paper's figures: one row per thread count, one column per algorithm,
// cells in million operations per second.
func (s *Series) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (Mops/s)\n", s.Title)
	fmt.Fprintf(&b, "%8s", "threads")
	for _, c := range s.Columns {
		fmt.Fprintf(&b, " %10s", c)
	}
	b.WriteByte('\n')
	for _, t := range s.Threads() {
		fmt.Fprintf(&b, "%8d", t)
		for _, c := range s.Columns {
			if r, ok := s.Cells[t][c]; ok {
				fmt.Fprintf(&b, " %10.2f", r.Mops)
			} else {
				fmt.Fprintf(&b, " %10s", "-")
			}
		}
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Winner returns, for each thread count, the column with the highest
// throughput - the "who wins" shape EXPERIMENTS.md records.
func (s *Series) Winner() map[int]string {
	out := make(map[int]string, len(s.Cells))
	for t, row := range s.Cells {
		best, bestV := "", -1.0
		for _, c := range s.Columns {
			if r, ok := row[c]; ok && r.Mops > bestV {
				best, bestV = c, r.Mops
			}
		}
		out[t] = best
	}
	return out
}

// SpeedupOver reports column a's throughput divided by column b's at
// the given thread count (0 when either is missing).
func (s *Series) SpeedupOver(a, b string, threads int) float64 {
	row := s.Cells[threads]
	ra, oka := row[a]
	rb, okb := row[b]
	if !oka || !okb || rb.Mops == 0 {
		return 0
	}
	return ra.Mops / rb.Mops
}

// DegreeRow is one column of the paper's Tables 1-3 for one workload,
// extended with the batch-occupancy rate the agg engine records
// uniformly for every structure.
type DegreeRow struct {
	Workload       string  `json:"workload"`
	BatchingDegree float64 `json:"batching_degree"`
	EliminationPct float64 `json:"elimination_pct"`
	CombiningPct   float64 `json:"combining_pct"`
	OccupancyPct   float64 `json:"occupancy_pct"`
	FastPathPct    float64 `json:"fastpath_pct"`
	SpinAvg        float64 `json:"spin_avg"`
	ReclaimScans   int64   `json:"reclaim_scans"`
	ReclaimSkips   int64   `json:"reclaim_skips"`
	PutStealHits   int64   `json:"put_steal_hits"`
	PutStealMisses int64   `json:"put_steal_misses"`
	GetStealHits   int64   `json:"get_steal_hits"`
	GetStealMisses int64   `json:"get_steal_misses"`
	SpinInherits   int64   `json:"spin_inherits"`
	LiveShards     int     `json:"live_shards"`
	ShardGrows     int64   `json:"shard_grows"`
	ShardShrinks   int64   `json:"shard_shrinks"`
	Migrated       int64   `json:"migrated"`
}

// DegreeRowFrom fills a row from a degree snapshot.
func DegreeRowFrom(workload string, s metrics.Snapshot) DegreeRow {
	return DegreeRow{
		Workload:       workload,
		BatchingDegree: s.BatchingDegree(),
		EliminationPct: s.EliminationPct(),
		CombiningPct:   s.CombiningPct(),
		OccupancyPct:   s.OccupancyPct(),
		FastPathPct:    s.FastPathPct(),
		SpinAvg:        s.SpinAvg(),
		ReclaimScans:   s.ReclaimScans,
		ReclaimSkips:   s.ReclaimSkips,
		PutStealHits:   s.PutStealHits,
		PutStealMisses: s.PutStealMisses,
		GetStealHits:   s.GetStealHits,
		GetStealMisses: s.GetStealMisses,
		SpinInherits:   s.SpinInherits,
		LiveShards:     s.LiveShards,
		ShardGrows:     s.ShardGrows,
		ShardShrinks:   s.ShardShrinks,
		Migrated:       s.Migrated,
	}
}

// DegreeTable renders rows in the layout of the paper's Table 1, plus
// the occupancy row.
func DegreeTable(title string, rows []DegreeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%-18s", "Workload->")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10s", r.Workload)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "Batching Degree")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10.1f", r.BatchingDegree)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "%Elimination")
	for _, r := range rows {
		fmt.Fprintf(&b, " %9.0f%%", r.EliminationPct)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "%Combining")
	for _, r := range rows {
		fmt.Fprintf(&b, " %9.0f%%", r.CombiningPct)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "%Occupancy")
	for _, r := range rows {
		fmt.Fprintf(&b, " %9.0f%%", r.OccupancyPct)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "%FastPath")
	for _, r := range rows {
		fmt.Fprintf(&b, " %9.0f%%", r.FastPathPct)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "SpinAvg")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10.1f", r.SpinAvg)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "ReclaimScan/Skip")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("%d/%d", r.ReclaimScans, r.ReclaimSkips))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "PutSteal hit/miss")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("%d/%d", r.PutStealHits, r.PutStealMisses))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "GetSteal hit/miss")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("%d/%d", r.GetStealHits, r.GetStealMisses))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "SpinInherits")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10d", r.SpinInherits)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "LiveShards")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10d", r.LiveShards)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "Grow/Shrink")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("%d/%d", r.ShardGrows, r.ShardShrinks))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "Migrated")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10d", r.Migrated)
	}
	b.WriteByte('\n')
	return b.String()
}

// SweepOptions drives a full figure-style sweep.
type SweepOptions struct {
	Columns  []string                 // column labels, in order
	Factory  func(col string) Factory // stack factory per column
	Ladder   []int
	Workload Workload
	Duration time.Duration
	Prefill  int
	Runs     int
	Drain    bool             // drain mode (see Config.Drain)
	Implicit bool             // handle-free measurement (see Config.Implicit)
	Progress func(msg string) // optional progress callback
}

// Sweep measures every (column, thread) point and returns the series.
func Sweep(title string, o SweepOptions) *Series {
	s := NewSeries(title, o.Columns)
	s.Implicit = o.Implicit
	for _, threads := range o.Ladder {
		for _, col := range o.Columns {
			cfg := Config{
				Label:    col,
				Threads:  threads,
				Duration: o.Duration,
				Prefill:  o.Prefill,
				Workload: o.Workload,
				Runs:     o.Runs,
				Drain:    o.Drain,
				Implicit: o.Implicit,
			}
			r := Run(cfg, o.Factory(col))
			s.Add(col, r)
			if o.Progress != nil {
				o.Progress(fmt.Sprintf("%s %s threads=%d: %.2f Mops/s", title, col, threads, r.Mops))
			}
		}
	}
	return s
}
