// Package harness is the benchmark harness behind every figure and
// table of the paper's evaluation: workload generation (operation
// mixes, prefill), timed multi-threaded measurement runs, repeat
// averaging, and the text formatting of throughput series and degree
// tables.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"secstack/internal/metrics"
	"secstack/internal/xrand"
	"secstack/stack"
)

// Factory builds a fresh stack for one measurement run.
type Factory func() stack.Stack[int64]

// FactoryFor returns a Factory for a named algorithm, forwarding opts
// through the stack registry, so every harness sweep configures SEC and
// the baselines through the same functional options the public API
// uses.
func FactoryFor(alg stack.Algorithm, opts ...stack.Option) Factory {
	return func() stack.Stack[int64] {
		s, err := stack.New[int64](alg, opts...)
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		return s
	}
}

// Config is one measurement point.
type Config struct {
	Label    string        // algorithm label for reports
	Threads  int           // worker goroutines
	Duration time.Duration // measured window per run
	Prefill  int           // elements pushed before measuring
	Workload Workload
	Runs     int    // repeats; results are averaged
	Seed     uint64 // base RNG seed (per-thread streams derive from it)

	// Drain switches to drain mode: workers pop (only) until they
	// observe EMPTY, and throughput is successful pops over the actual
	// elapsed time. This measures the cost of pops that do real work;
	// a timed pop-only run over a fixed prefill mostly measures
	// empty-stack pops once the prefill is gone. Duration is ignored;
	// Prefill sets the amount of work.
	Drain bool

	// Implicit drives the run through the handle-free API (s.Push /
	// s.Pop / s.Peek on the structure itself) instead of a per-worker
	// Register-ed handle, measuring the implicit-session layer's per-P
	// cache end to end - session lookup included - against the explicit
	// columns of the same sweep. Ignored in drain mode.
	Implicit bool
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Runs <= 0 {
		c.Runs = 1
	}
	if c.Seed == 0 {
		c.Seed = 0x5ec
	}
	return c
}

// Result is the aggregated outcome of a measurement point.
type Result struct {
	Config
	Mops      float64   // mean throughput, million ops/second
	Stddev    float64   // stddev of per-run throughput (Mops)
	PerRun    []float64 // per-run throughput (Mops)
	TotalOps  int64     // ops summed over all runs
	Degrees   metrics.Snapshot
	HasDegree bool

	// AllocsPerOp and BytesPerOp are process-wide heap-allocation rates
	// over the measured runs (runtime.MemStats deltas divided by
	// operations). Coarse by design: construction, prefill and harness
	// bookkeeping are included, which is exactly what makes a regression
	// visible. They are what the secbench/v2 JSON schema records.
	AllocsPerOp float64
	BytesPerOp  float64
}

// allocMeter samples runtime.MemStats around a measurement region.
type allocMeter struct{ m0 runtime.MemStats }

func startAllocMeter() *allocMeter {
	a := &allocMeter{}
	runtime.GC() // settle pending frees so the delta is mostly the run's own
	runtime.ReadMemStats(&a.m0)
	return a
}

// delta returns heap allocations and bytes since start.
func (a *allocMeter) delta() (allocs, bytes uint64) {
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - a.m0.Mallocs, m1.TotalAlloc - a.m0.TotalAlloc
}

// Run executes cfg against stacks produced by f and aggregates the
// per-run throughputs.
func Run(cfg Config, f Factory) Result {
	cfg = cfg.withDefaults()
	if err := cfg.Workload.Validate(); err != nil {
		panic(err)
	}
	res := Result{Config: cfg, PerRun: make([]float64, 0, cfg.Runs)}
	var allocs, bytes uint64
	for r := 0; r < cfg.Runs; r++ {
		am := startAllocMeter() // before construction: the factory's allocations count too
		s := f()
		var (
			ops    int64
			deg    metrics.Snapshot
			hasDeg bool
			mops   float64
		)
		if cfg.Drain {
			var elapsed time.Duration
			ops, elapsed = runDrain(cfg, s)
			mops = float64(ops) / elapsed.Seconds() / 1e6
		} else {
			ops, deg, hasDeg = runOnce(cfg, s, cfg.Seed+uint64(r)*1e6)
			mops = float64(ops) / cfg.Duration.Seconds() / 1e6
		}
		da, db := am.delta()
		allocs += da
		bytes += db
		res.PerRun = append(res.PerRun, mops)
		res.TotalOps += ops
		if hasDeg {
			res.Degrees.Accumulate(deg)
			res.HasDegree = true
		}
	}
	res.Mops, res.Stddev = meanStddev(res.PerRun)
	if res.TotalOps > 0 {
		res.AllocsPerOp = float64(allocs) / float64(res.TotalOps)
		res.BytesPerOp = float64(bytes) / float64(res.TotalOps)
	}
	return res
}

// runOnce performs a single timed run and returns the operation count
// and, for metric-collecting SEC stacks, the degree snapshot.
func runOnce(cfg Config, s stack.Stack[int64], seed uint64) (int64, metrics.Snapshot, bool) {
	// Prefill through a temporary handle, as the paper prefills before
	// measuring. Values are tagged so they cannot collide with worker
	// pushes.
	if cfg.Prefill > 0 {
		h := s.Register()
		for i := 0; i < cfg.Prefill; i++ {
			h.Push(int64(1)<<48 | int64(i))
		}
		h.Close()
	}

	var (
		stop    atomic.Bool
		started sync.WaitGroup
		done    sync.WaitGroup
		total   atomic.Int64
		gate    = make(chan struct{})
	)
	for t := 0; t < cfg.Threads; t++ {
		started.Add(1)
		done.Add(1)
		go func(t int) {
			defer done.Done()
			var h stack.Handle[int64]
			if !cfg.Implicit {
				h = s.Register()
				defer h.Close()
			}
			rng := newWorkerRNG(seed, t)
			base := int64(t+1) << 32
			started.Done()
			<-gate
			ops := int64(0)
			for !stop.Load() {
				// A small batch between stop checks keeps the check off
				// the hot path without distorting the mix.
				for i := 0; i < 64; i++ {
					op := cfg.Workload.Pick(rng.Intn(100))
					if cfg.Implicit {
						// Handle-free arm: every op resolves its session
						// through the per-P cache, which is the cost under
						// measurement.
						switch op {
						case OpPush:
							s.Push(base | ops)
						case OpPop:
							s.Pop()
						case OpPeek:
							s.Peek()
						}
					} else {
						switch op {
						case OpPush:
							h.Push(base | ops)
						case OpPop:
							h.Pop()
						case OpPeek:
							h.Peek()
						}
					}
					ops++
				}
			}
			total.Add(ops)
		}(t)
	}
	started.Wait()
	close(gate)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	done.Wait()

	if sec, ok := s.(*stack.SECStack[int64]); ok && sec.Metrics() != nil {
		return total.Load(), sec.Metrics().Snapshot(), true
	}
	return total.Load(), metrics.Snapshot{}, false
}

// runDrain prefills the stack and measures how fast cfg.Threads workers
// can pop it dry: each worker pops until it observes EMPTY. Returns the
// number of successful pops and the elapsed wall time.
func runDrain(cfg Config, s stack.Stack[int64]) (int64, time.Duration) {
	prefill := cfg.Prefill
	if prefill <= 0 {
		prefill = 1 << 20
	}
	h := s.Register()
	for i := 0; i < prefill; i++ {
		h.Push(int64(i))
	}
	h.Close()

	var (
		started sync.WaitGroup
		done    sync.WaitGroup
		total   atomic.Int64
		gate    = make(chan struct{})
	)
	for t := 0; t < cfg.Threads; t++ {
		started.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			h := s.Register()
			defer h.Close()
			started.Done()
			<-gate
			ops := int64(0)
			for {
				if _, ok := h.Pop(); !ok {
					break
				}
				ops++
			}
			total.Add(ops)
		}()
	}
	started.Wait()
	start := time.Now()
	close(gate)
	done.Wait()
	return total.Load(), time.Since(start)
}

// newWorkerRNG derives worker t's RNG stream from the run seed.
func newWorkerRNG(seed uint64, t int) *xrand.State {
	return xrand.New(seed + uint64(t)*7919)
}

func meanStddev(xs []float64) (mean, stddev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}
