package harness

// Served-throughput mode: the measurement shapes cmd/secload emits
// when it drives a live secd server over loopback or a real network.
// Unlike Run, the harness does not execute these workloads itself -
// the load generator measures at the client side - but the output
// flows through the same Series/BenchDoc machinery, so a served sweep
// lands in EXPERIMENTS.md and BENCH_*.json with the same point schema
// as every in-process figure, plus the client-observed latency
// quantiles only a served measurement has.

import (
	"fmt"
	"io"
	"strings"
	"time"

	"secstack/internal/metrics"
)

// ServedPoint is one rung of a served-throughput ladder: N connections
// driving a fixed op mix for a fixed window.
type ServedPoint struct {
	Conns    int           // concurrent connections
	Ops      int64         // completed operations (all statuses that reached a reply)
	Errors   int64         // protocol errors (unexpected status, broken frame)
	Busy     int64         // handshakes refused with backpressure
	Retried  int64         // attempts the client retry machinery replayed (schema v8)
	Lost     int64         // operations abandoned with the retry budget exhausted (schema v8)
	Elapsed  time.Duration // measurement window
	P50, P99 time.Duration // client-observed round-trip latency quantiles
}

// OpsPerSec is the rung's served throughput.
func (p ServedPoint) OpsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Ops) / p.Elapsed.Seconds()
}

// ServedPointFrom summarizes one rung from its merged latency
// histogram.
func ServedPointFrom(conns int, ops, errors, busy int64, elapsed time.Duration, h *metrics.LatencyHist) ServedPoint {
	return ServedPoint{
		Conns:   conns,
		Ops:     ops,
		Errors:  errors,
		Busy:    busy,
		Elapsed: elapsed,
		P50:     h.Quantile(0.50),
		P99:     h.Quantile(0.99),
	}
}

// WriteServedTable renders a served ladder as a text table: one row
// per connection count, with throughput and the latency quantiles the
// paper-style Mops tables cannot carry.
func WriteServedTable(w io.Writer, title string, pts []ServedPoint) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%8s %12s %10s %10s %8s %6s %8s %6s\n", "conns", "ops/s", "p50", "p99", "errors", "busy", "retried", "lost")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8d %12.0f %10s %10s %8d %6d %8d %6d\n",
			p.Conns, p.OpsPerSec(), p.P50, p.P99, p.Errors, p.Busy, p.Retried, p.Lost)
	}
	io.WriteString(w, b.String())
}

// AddServedSeries appends a served ladder to the document as one
// series: the shared point schema (column, threads=conns, mops) plus
// the served-only p50_us/p99_us latency fields of schema v5.
func (d *BenchDoc) AddServedSeries(title, label, workload string, pts []ServedPoint) {
	out := SeriesJSON{Title: title, Workload: workload, Columns: []string{label}}
	for _, p := range pts {
		out.Points = append(out.Points, PointJSON{
			Column:    label,
			Threads:   p.Conns,
			Mops:      p.OpsPerSec() / 1e6,
			Runs:      1,
			P50Micros: float64(p.P50) / float64(time.Microsecond),
			P99Micros: float64(p.P99) / float64(time.Microsecond),
			Retried:   p.Retried,
			Lost:      p.Lost,
		})
	}
	d.Series = append(d.Series, out)
}
