package harness

// Degree measurement for the non-stack structures. The agg engine
// records batch occupancy and elimination rate uniformly for the
// stack, the deque and the funnel; these runners drive the deque and
// funnel with the paper's update mixes so cmd/secbench can print one
// degree table per structure. The stack's runner lives in runner.go.

import (
	"sync"
	"sync/atomic"
	"time"

	"secstack/deque"
	"secstack/funnel"
	"secstack/internal/metrics"
	"secstack/pool"
	"secstack/queue"
)

// structureOps is one worker's operation set over a generic structure:
// the mix's push and pop map to the structure's updates, peek to its
// read (the funnel's Load, the deque's Len - the only read either
// offers).
type structureOps struct {
	push func(v int64)
	pop  func()
	read func()
	done func()
}

// runStructureOnce drives cfg.Threads workers for cfg.Duration and
// returns the operation count.
func runStructureOnce(cfg Config, register func(t int) structureOps) int64 {
	var (
		stop    atomic.Bool
		started sync.WaitGroup
		done    sync.WaitGroup
		total   atomic.Int64
		gate    = make(chan struct{})
	)
	for t := 0; t < cfg.Threads; t++ {
		started.Add(1)
		done.Add(1)
		go func(t int) {
			defer done.Done()
			w := register(t)
			defer w.done()
			rng := newWorkerRNG(cfg.Seed, t)
			base := int64(t+1) << 32
			started.Done()
			<-gate
			ops := int64(0)
			for !stop.Load() {
				// As in runOnce: a small batch between stop checks keeps
				// the check off the hot path.
				for i := 0; i < 64; i++ {
					switch cfg.Workload.Pick(rng.Intn(100)) {
					case OpPush:
						w.push(base | ops)
					case OpPop:
						w.pop()
					case OpPeek:
						w.read()
					}
					ops++
				}
			}
			total.Add(ops)
		}(t)
	}
	started.Wait()
	close(gate)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	done.Wait()
	return total.Load()
}

// runStructure is the multi-run wrapper shared by RunDeque and
// RunFunnel: average throughput over cfg.Runs and accumulate degree
// snapshots.
func runStructure(cfg Config, build func(cfg Config) (func(t int) structureOps, func() metrics.Snapshot)) Result {
	cfg = cfg.withDefaults()
	if err := cfg.Workload.Validate(); err != nil {
		panic(err)
	}
	res := Result{Config: cfg, PerRun: make([]float64, 0, cfg.Runs)}
	var allocs, bytes uint64
	for r := 0; r < cfg.Runs; r++ {
		am := startAllocMeter() // before construction: the builder's allocations count too
		register, snapshot := build(cfg)
		ops := runStructureOnce(cfg, register)
		da, db := am.delta()
		allocs += da
		bytes += db
		res.PerRun = append(res.PerRun, float64(ops)/cfg.Duration.Seconds()/1e6)
		res.TotalOps += ops
		res.Degrees.Accumulate(snapshot())
		res.HasDegree = true
	}
	res.Mops, res.Stddev = meanStddev(res.PerRun)
	if res.TotalOps > 0 {
		res.AllocsPerOp = float64(allocs) / float64(res.TotalOps)
		res.BytesPerOp = float64(bytes) / float64(res.TotalOps)
	}
	return res
}

// RunDeque measures an instrumented SEC-style deque under cfg's mix:
// pushes and pops split evenly across the two ends by the worker's RNG
// stream, peeks map to Len (the deque's only read operation).
func RunDeque(cfg Config) Result {
	return runStructure(cfg, func(cfg Config) (func(t int) structureOps, func() metrics.Snapshot) {
		d := deque.New[int64](deque.WithMetrics(), deque.WithMaxThreads(cfg.Threads+1))
		if cfg.Prefill > 0 {
			h := d.Register()
			for i := 0; i < cfg.Prefill; i++ {
				h.PushRight(int64(1)<<48 | int64(i))
			}
			h.Close()
		}
		register := func(t int) structureOps {
			h := d.Register()
			side := t % 2
			return structureOps{
				push: func(v int64) {
					if side == 0 {
						h.PushLeft(v)
					} else {
						h.PushRight(v)
					}
					side ^= 1
				},
				pop: func() {
					if side == 0 {
						h.PopLeft()
					} else {
						h.PopRight()
					}
					side ^= 1
				},
				read: func() { d.Len() },
				done: h.Close,
			}
		}
		return register, func() metrics.Snapshot { return d.Metrics().Snapshot() }
	})
}

// RunPool measures an instrumented pool under cfg's mix: pushes map to
// Put, pops to Get, and peeks to a borrow/return Get+Put pair - the
// pool's natural read-modify cycle, since a pool offers no read-only
// operation. Adaptivity and batch recycling are on (the configuration
// the pool's steal primitives are designed around), so the snapshot's
// put-steal columns are live exactly when overflow engages; the
// snapshot merges the pool-level steal counters with the shards'
// engine degrees.
func RunPool(cfg Config) Result { return RunPoolOpts(cfg) }

// RunPoolOpts is RunPool with extra pool options appended after the
// harness baseline, so figure drivers can measure configuration arms -
// the elastic ladder passes WithElasticShards(true) here. MaxThreads
// is sized for the workers plus the prefill handle plus the elastic
// controller's internal drain handle.
func RunPoolOpts(cfg Config, opts ...pool.Option) Result {
	return runStructure(cfg, func(cfg Config) (func(t int) structureOps, func() metrics.Snapshot) {
		base := []pool.Option{
			pool.WithMetrics(),
			pool.WithMaxThreads(cfg.Threads + 2),
			pool.WithAdaptive(true),
			pool.WithBatchRecycling(true),
		}
		p := pool.New[int64](append(base, opts...)...)
		if cfg.Prefill > 0 {
			h := p.Register()
			for i := 0; i < cfg.Prefill; i++ {
				h.Put(int64(1)<<48 | int64(i))
			}
			h.Close()
		}
		register := func(t int) structureOps {
			h := p.Register()
			return structureOps{
				push: func(v int64) { h.Put(v) },
				pop:  func() { h.Get() },
				read: func() {
					if v, ok := h.Get(); ok {
						h.Put(v)
					}
				},
				done: h.Close,
			}
		}
		return register, p.Snapshot
	})
}

// queueCapacity sizes both arms of the queue-vs-channel comparison:
// comfortably above the prefill level the self-balancing mixes hover
// around, so the measured regime is the transfer path rather than
// full/empty rejection churn, and identical for the chan arm.
func queueCapacity(cfg Config) int {
	return max(1024, 2*cfg.Prefill)
}

// RunQueue measures the instrumented SEC queue under cfg's mix: pushes
// map to TryEnqueue, pops to TryDequeue (the channel-shaped
// non-blocking forms - full rejections and empty misses count as
// operations, exactly as a select/default does), peeks to Len.
// Adaptivity and batch recycling are on, the configuration the
// head-to-head against chan runs in.
func RunQueue(cfg Config) Result {
	return runStructure(cfg, func(cfg Config) (func(t int) structureOps, func() metrics.Snapshot) {
		q := queue.New[int64](
			queue.WithMetrics(),
			queue.WithMaxThreads(cfg.Threads+1),
			queue.WithCapacity(queueCapacity(cfg)),
			queue.WithAdaptive(true),
			queue.WithBatchRecycling(true),
		)
		if cfg.Prefill > 0 {
			h := q.Register()
			for i := 0; i < cfg.Prefill; i++ {
				h.Enqueue(int64(1)<<48 | int64(i))
			}
			h.Close()
		}
		register := func(t int) structureOps {
			h := q.Register()
			return structureOps{
				push: func(v int64) { h.TryEnqueue(v) },
				pop:  func() { h.TryDequeue() },
				read: func() { q.Len() },
				done: h.Close,
			}
		}
		return register, func() metrics.Snapshot { return q.Metrics().Snapshot() }
	})
}

// RunChan measures a buffered Go channel as the queue's native
// baseline, under the same mix and the same capacity: pushes map to a
// select/default send (drop when full), pops to a select/default
// receive, peeks to len(ch) - the channel's non-blocking forms,
// matching RunQueue's op mapping. The degree snapshot is empty; a
// channel exposes no batching internals.
func RunChan(cfg Config) Result {
	return runStructure(cfg, func(cfg Config) (func(t int) structureOps, func() metrics.Snapshot) {
		ch := make(chan int64, queueCapacity(cfg))
		for i := 0; i < cfg.Prefill; i++ {
			ch <- int64(1)<<48 | int64(i)
		}
		register := func(t int) structureOps {
			return structureOps{
				push: func(v int64) {
					select {
					case ch <- v:
					default:
					}
				},
				pop: func() {
					select {
					case <-ch:
					default:
					}
				},
				read: func() { _ = len(ch) },
				done: func() {},
			}
		}
		return register, func() metrics.Snapshot { return metrics.Snapshot{} }
	})
}

// RunFunnel measures an instrumented funnel under cfg's mix: pushes map
// to FetchAdd(+1), pops to FetchAdd(-1), peeks to Load.
func RunFunnel(cfg Config) Result {
	return runStructure(cfg, func(cfg Config) (func(t int) structureOps, func() metrics.Snapshot) {
		f := funnel.New(funnel.WithMetrics(), funnel.WithMaxThreads(cfg.Threads+1))
		register := func(t int) structureOps {
			h := f.Register()
			return structureOps{
				push: func(int64) { h.FetchAdd(1) },
				pop:  func() { h.FetchAdd(-1) },
				read: func() { f.Load() },
				done: h.Close,
			}
		}
		return register, func() metrics.Snapshot { return f.Metrics().Snapshot() }
	})
}
