package harness

import "fmt"

// Workload is an operation mix in percent. The percentages must sum to
// 100; Validate enforces this.
type Workload struct {
	Name    string
	PushPct int
	PopPct  int
	PeekPct int
}

// The workloads of the paper's evaluation (§6, Methodology).
var (
	// Update100 is the update-heavy mix: 50% push, 50% pop.
	Update100 = Workload{Name: "100%upd", PushPct: 50, PopPct: 50, PeekPct: 0}
	// Update50 is the mixed mix: 25% push, 25% pop, 50% peek.
	Update50 = Workload{Name: "50%upd", PushPct: 25, PopPct: 25, PeekPct: 50}
	// Update10 is the read-heavy mix: 5% push, 5% pop, 90% peek.
	Update10 = Workload{Name: "10%upd", PushPct: 5, PopPct: 5, PeekPct: 90}
	// PushOnly exercises pure insertion (paper Figure 3, left).
	PushOnly = Workload{Name: "push-only", PushPct: 100}
	// PopOnly exercises pure removal (paper Figure 3, right).
	PopOnly = Workload{Name: "pop-only", PopPct: 100}
)

// UpdateWorkloads is the three-mix family of paper Figure 2.
func UpdateWorkloads() []Workload {
	return []Workload{Update100, Update50, Update10}
}

// Validate reports an error when the mix does not sum to 100%.
func (w Workload) Validate() error {
	if w.PushPct < 0 || w.PopPct < 0 || w.PeekPct < 0 {
		return fmt.Errorf("harness: workload %q has negative percentages", w.Name)
	}
	if s := w.PushPct + w.PopPct + w.PeekPct; s != 100 {
		return fmt.Errorf("harness: workload %q sums to %d%%, want 100%%", w.Name, s)
	}
	return nil
}

// OpKind is the operation selected for one workload step.
type OpKind int

// Operation kinds returned by Pick.
const (
	OpPush OpKind = iota
	OpPop
	OpPeek
)

// Pick maps a uniform draw r in [0,100) to an operation kind according
// to the mix.
func (w Workload) Pick(r int) OpKind {
	switch {
	case r < w.PushPct:
		return OpPush
	case r < w.PushPct+w.PopPct:
		return OpPop
	default:
		return OpPeek
	}
}

// Machine is a named thread ladder standing in for one of the paper's
// evaluation hosts. Points beyond the local GOMAXPROCS run
// oversubscribed, as the paper's points beyond the hardware thread
// count do.
type Machine struct {
	Name   string
	HW     int // the original machine's hardware thread count
	Ladder []int
}

// The paper's three machines (§6 and appendices D-E).
var (
	Emerald  = Machine{Name: "Emerald", HW: 56, Ladder: []int{1, 4, 8, 16, 24, 32, 40, 48, 56, 84, 112}}
	IceLake  = Machine{Name: "IceLake", HW: 96, Ladder: []int{1, 8, 16, 24, 48, 72, 96, 144, 192, 240}}
	Sapphire = Machine{Name: "Sapphire", HW: 192, Ladder: []int{1, 24, 48, 72, 96, 120, 144, 168, 192, 240}}
)

// Machines lists the presets.
func Machines() []Machine { return []Machine{Emerald, IceLake, Sapphire} }

// MachineByName resolves a preset by (case-sensitive) name.
func MachineByName(name string) (Machine, bool) {
	for _, m := range Machines() {
		if m.Name == name {
			return m, true
		}
	}
	return Machine{}, false
}
