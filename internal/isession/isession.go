// Package isession is the shared implicit-session layer behind every
// structure's handle-free convenience API (stack.Push, pool.Get,
// funnel.Add, ...).
//
// An implicit operation needs a session (a registered handle) for the
// duration of one call. Borrowing one from a plain sync.Pool works but
// throws away locality twice over: the pool's private-then-shared
// lookup costs more than the solo fast path it gates, and - worse -
// consecutive operations on the same P can draw *different* session
// ids, which map to different aggregators and different solo scratch
// batches, so the engine's degree EWMA sees phantom contention.
//
// This layer caches handles the way sync.Pool caches its poolLocals
// internally: a pad-isolated slot array indexed by the calling
// goroutine's P (procpin identity), sized at GOMAXPROCS. An implicit
// op on P k reuses P k's handle, so it keeps the same session id, the
// same aggregator, the same scratch batch, and the engine's solo fast
// path stays hot. The slot swap is two uncontended atomics: only the
// goroutine currently pinned to P k touches slot k.
//
// A sync.Pool remains underneath, demoted to spill/reclaim tier: it
// absorbs handles whenever the op finishes on a P whose slot is
// already occupied (migration mid-op, nested implicit calls), and its
// GC-clears-the-pool behavior - combined with a runtime.AddCleanup on
// every cached entry - is what eventually Closes handles the cache no
// longer needs. Slot-parked handles are deliberately exempt: up to
// GOMAXPROCS sessions stay registered for the structure's lifetime.
// That is the affinity working as designed, not a leak; Capacity
// documents the bound.
package isession

import (
	"runtime"
	"sync"
	"sync/atomic"

	"secstack/internal/pad"
	"secstack/internal/procpin"
)

// Entry is one cached handle. The indirection exists so the layer can
// attach a cleanup to the cache cell rather than the handle itself:
// when the spill pool drops the entry on a GC, the cleanup closes the
// wrapped handle and its session id returns to the structure's free
// list.
//
// H must be a pointer or interface type (every structure's handle
// is). A pointer-free H under 16 bytes would make Entry eligible for
// the runtime's tiny allocator, which coalesces objects so their
// individual unreachability is invisible - the reclaim cleanup could
// then never run and dropped spill entries would leak their sessions.
type Entry[H any] struct {
	// H is the wrapped handle, exported so the zero-cost accessor
	// inlines into the structures' implicit methods.
	H H

	// p is the slot this entry was last acquired from (-1 before its
	// first affine acquire). Release parks the entry back at p without
	// pinning: the current owner is the only writer, the CAS against
	// the slot is what publishes it, and a stale p after a mid-op
	// migration merely parks the entry under the P it came from - the
	// cache is advisory, so that costs locality on one future op, not
	// correctness.
	p int32
}

// slot is one P's parked entry, padded so neighbouring Ps never share
// a cache line (the whole point is that slot k is P k's private hot
// word).
type slot[H any] struct {
	e atomic.Pointer[Entry[H]]
	_ [pad.CacheLine - 8]byte
}

// Sessions caches implicit-op handles with per-P affinity. H is the
// structure's handle type (kept generic so stack's interface handles
// and deque/pool/funnel's concrete pointers all fit).
type Sessions[H any] struct {
	slots []slot[H]
	spill sync.Pool

	// register mints a new handle when both cache tiers miss; it must
	// surface capacity exhaustion as an error, not a panic. close is
	// the AddCleanup target that retires a dropped entry's handle.
	register func() (H, error)
	close    func(H)

	affinity bool
}

// New builds a Sessions over register/close. With affinity false the
// per-P tier is disabled and every op takes the spill-pool path - the
// pre-affinity behavior, kept reachable as a config escape hatch and
// as the comparison arm of BenchmarkImplicitVsHandle.
func New[H any](affinity bool, register func() (H, error), close func(H)) *Sessions[H] {
	s := &Sessions[H]{register: register, close: close, affinity: affinity}
	if affinity {
		s.slots = make([]slot[H], runtime.GOMAXPROCS(0))
	}
	return s
}

// Capacity reports how many sessions the per-P tier may keep
// registered for the Sessions' lifetime (0 when affinity is off).
// Structures add it to their headroom math: implicit use consumes up
// to Capacity of MaxThreads permanently, plus transient spill entries
// that GC cycles reclaim.
func (s *Sessions[H]) Capacity() int { return len(s.slots) }

// Acquire returns a cached or freshly registered entry, panicking on
// capacity exhaustion exactly like the structures' explicit Register.
// The fast path is pin, one swap, unpin - duplicated from TryAcquire
// rather than delegated so the per-op hot path pays no extra call or
// error check.
func (s *Sessions[H]) Acquire() *Entry[H] {
	if s.affinity {
		p := procpin.Pin()
		if p >= len(s.slots) {
			p %= len(s.slots)
		}
		e := s.slots[p].e.Swap(nil)
		procpin.Unpin()
		if e != nil {
			e.p = int32(p)
			return e
		}
	}
	e, err := s.acquireSlow()
	if err != nil {
		panic(err.Error())
	}
	return e
}

// TryAcquire is Acquire with error surfacing instead of the panic.
func (s *Sessions[H]) TryAcquire() (*Entry[H], error) {
	if s.affinity {
		p := procpin.Pin()
		if p >= len(s.slots) {
			// GOMAXPROCS was raised after New sized the array; fold the
			// extra Ps onto existing slots rather than reallocate.
			p %= len(s.slots)
		}
		e := s.slots[p].e.Swap(nil)
		procpin.Unpin()
		if e != nil {
			e.p = int32(p)
			return e, nil
		}
	}
	return s.acquireSlow()
}

// Release parks e back in the slot it was acquired from; if that slot
// is occupied (another goroutine on the P parked an entry mid-op, or
// implicit ops nest) the entry demotes to the spill pool. Using the
// acquire-time slot instead of re-pinning keeps Release to a single
// CAS: after a mid-op migration the entry parks under its old P,
// which costs one future op's locality, never correctness.
func (s *Sessions[H]) Release(e *Entry[H]) {
	if p := e.p; p >= 0 && s.slots[p].e.CompareAndSwap(nil, e) {
		return
	}
	s.spill.Put(e)
}

// acquireSlow is the both-tiers-missed path: spill pool, then a fresh
// registration, then - only on capacity exhaustion - one forced
// collection to flush handles the spill pool has dropped but whose
// cleanups have not yet run. Exactly one: the pre-affinity
// implementation retried runtime.GC() up to 64 times, which turned a
// misconfigured MaxThreads into a multi-second stall instead of an
// error. If the single collection does not free a session, the
// exhaustion is real and surfaces immediately.
func (s *Sessions[H]) acquireSlow() (*Entry[H], error) {
	if v := s.spill.Get(); v != nil {
		return s.stamp(v.(*Entry[H])), nil
	}
	e, err := s.tryNew()
	if err == nil {
		return s.stamp(e), nil
	}
	// Before paying for a collection, raid the other Ps' slots: with a
	// small MaxThreads every session may be parked under a P we are
	// not running on, and stealing one is cheaper and always correct
	// (the op just runs without affinity this once).
	if e := s.scavenge(); e != nil {
		return s.stamp(e), nil
	}
	runtime.GC()
	runtime.Gosched() // let cleanup goroutines retire dropped handles
	if v := s.spill.Get(); v != nil {
		return s.stamp(v.(*Entry[H])), nil
	}
	if e, err := s.tryNew(); err == nil {
		return s.stamp(e), nil
	}
	if e := s.scavenge(); e != nil {
		return s.stamp(e), nil
	}
	return nil, err
}

// stamp records the calling goroutine's current P in e, so Release
// can park the entry in that P's slot without pinning again. Slow
// path only - the affine fast path stamps the slot it swapped from.
func (s *Sessions[H]) stamp(e *Entry[H]) *Entry[H] {
	if s.affinity {
		p := procpin.Pin()
		procpin.Unpin()
		if p >= len(s.slots) {
			p %= len(s.slots)
		}
		e.p = int32(p)
	}
	return e
}

// tryNew registers a fresh handle and arms its reclaim cleanup.
func (s *Sessions[H]) tryNew() (*Entry[H], error) {
	h, err := s.register()
	if err != nil {
		return nil, err
	}
	// p = -1 until the first affine acquire stamps a slot: a fresh
	// entry released before then goes to the spill pool (with affinity
	// off, always).
	e := &Entry[H]{H: h, p: -1}
	// The cleanup argument is the handle, not the entry: the entry
	// must stay collectable for the cleanup to ever run.
	runtime.AddCleanup(e, s.close, h)
	return e, nil
}

// scavenge steals a parked entry from any P's slot, or nil.
func (s *Sessions[H]) scavenge() *Entry[H] {
	for i := range s.slots {
		if e := s.slots[i].e.Swap(nil); e != nil {
			return e
		}
	}
	return nil
}
