package isession

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testHandle is a pointer handle like the structures', so Entry gets
// a normal (non-tiny) allocation and its reclaim cleanup is reliable.
type testHandle struct{ id int64 }

// capReg is a register func with a hard capacity, counting live
// handles the way the structures' tid allocators do.
type capReg struct {
	live atomic.Int64
	cap  int64
}

var errFull = errors.New("isession_test: capacity exhausted")

func (c *capReg) register() (*testHandle, error) {
	for {
		n := c.live.Load()
		if n >= c.cap {
			return nil, errFull
		}
		if c.live.CompareAndSwap(n, n+1) {
			return &testHandle{id: n}, nil
		}
	}
}

func (c *capReg) close(*testHandle) { c.live.Add(-1) }

func TestAcquireReleaseRoundtrip(t *testing.T) {
	reg := &capReg{cap: 64}
	s := New(true, reg.register, reg.close)
	e := s.Acquire()
	s.Release(e)
	// Same goroutine, no preemption point: overwhelmingly the same P,
	// but the contract is only "some cached entry", so assert that no
	// second registration happened across many iterations on one
	// goroutine (migrations would spill+refill, not re-register).
	for i := 0; i < 1000; i++ {
		e := s.Acquire()
		s.Release(e)
	}
	if n := reg.live.Load(); n > int64(runtime.GOMAXPROCS(0))+1 {
		t.Fatalf("single-goroutine churn registered %d sessions, want <= GOMAXPROCS+1", n)
	}
}

// TestExhaustionSurfacesPromptly is the regression test for the old
// borrow loop, which forced up to 64 garbage collections before
// surfacing exhaustion. The layer may force at most one (plus
// whatever collections happen naturally in a tiny window).
func TestExhaustionSurfacesPromptly(t *testing.T) {
	reg := &capReg{cap: 0} // every registration fails
	s := New(true, reg.register, reg.close)

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	_, err := s.TryAcquire()
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if !errors.Is(err, errFull) {
		t.Fatalf("TryAcquire error = %v, want errFull", err)
	}
	if forced := after.NumGC - before.NumGC; forced > 2 {
		t.Fatalf("exhaustion forced %d collections, want <= 2 (one forced + slack)", forced)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("exhaustion took %v to surface, want prompt", elapsed)
	}

	// Acquire must panic with the register error's text, like the
	// structures' explicit Register on overload.
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Acquire on exhausted capacity did not panic")
		}
	}()
	s.Acquire()
}

// TestScavengeStealsParkedEntry pins capacity to 1: once the only
// session is parked under some P's slot, an acquire that misses its
// own slot must steal it rather than fail.
func TestScavengeStealsParkedEntry(t *testing.T) {
	reg := &capReg{cap: 1}
	s := New(true, reg.register, reg.close)
	s.Release(s.Acquire()) // park the only session somewhere

	var wg sync.WaitGroup
	for g := 0; g < 2*runtime.GOMAXPROCS(0); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Release(s.Acquire())
			}
		}()
	}
	wg.Wait()
	if n := reg.live.Load(); n != 1 {
		t.Fatalf("live sessions = %d, want 1", n)
	}
}

func TestNoAffinityFallsBackToSpill(t *testing.T) {
	reg := &capReg{cap: 16}
	s := New(false, reg.register, reg.close)
	if s.Capacity() != 0 {
		t.Fatalf("Capacity() = %d with affinity off, want 0", s.Capacity())
	}
	for i := 0; i < 100; i++ {
		e := s.Acquire()
		s.Release(e)
	}
	if n := reg.live.Load(); n < 1 || n > 16 {
		t.Fatalf("live sessions = %d, want in [1, 16]", n)
	}
}

// TestCleanupRetiresDroppedHandles drives enough churn through the
// spill tier that GC cycles drop entries, and asserts their cleanups
// give the sessions back.
func TestCleanupRetiresDroppedHandles(t *testing.T) {
	reg := &capReg{cap: 8}
	s := New(false, reg.register, reg.close) // spill-only: everything is droppable
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e, err := s.TryAcquire()
				if err != nil {
					continue // transient: pool dropped, cleanups lagging
				}
				s.Release(e)
				if i%50 == 0 {
					runtime.GC()
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for reg.live.Load() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d sessions still live after churn + GC, want 0", reg.live.Load())
		}
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
}
