package lincheck

import (
	"fmt"
	"sync/atomic"
)

// CtrOp is one completed fetch&add operation of a counter history.
type CtrOp struct {
	Thread int   // informational
	Amount int64 // the amount added
	Ret    int64 // the pre-add value the operation returned
	Invoke int64 // logical invocation timestamp
	Return int64 // logical response timestamp; must be > Invoke
}

func (o CtrOp) String() string {
	return fmt.Sprintf("T%d faa(%+d)=%d @[%d,%d]", o.Thread, o.Amount, o.Ret, o.Invoke, o.Return)
}

// CheckCounter reports whether history is linearizable with respect to
// sequential fetch&add semantics over a counter starting at initial:
// there must be a total order respecting real-time precedence in which
// every operation returns the sum of initial and all earlier amounts.
// It uses the same memoized DFS as CheckStack and panics past 63
// operations; callers generate bounded histories.
func CheckCounter(history []CtrOp, initial int64) bool {
	if len(history) > maxOps {
		panic(fmt.Sprintf("lincheck: history of %d ops exceeds the %d-op bound", len(history), maxOps))
	}
	c := &counterChecker{ops: history, memo: make(map[string]bool)}
	return c.search(0, initial)
}

type counterChecker struct {
	ops  []CtrOp
	memo map[string]bool // (doneMask, value) states proven dead
}

func (c *counterChecker) search(done uint64, value int64) bool {
	if done == (uint64(1)<<len(c.ops))-1 {
		return true
	}
	k := key(done, []int64{value})
	if c.memo[k] {
		return false
	}

	// minReturn is the earliest response among undone ops: any
	// operation invoked after it cannot be linearized next.
	minReturn := int64(1) << 62
	for i, op := range c.ops {
		if done&(1<<i) == 0 && op.Return < minReturn {
			minReturn = op.Return
		}
	}

	for i, op := range c.ops {
		if done&(1<<i) != 0 || op.Invoke > minReturn {
			continue
		}
		if op.Ret != value {
			continue // a fetch&add must return the current value
		}
		if c.search(done|1<<i, value+op.Amount) {
			return true
		}
	}
	c.memo[k] = true
	return false
}

// CtrRecorder collects a concurrent counter history; see Recorder.
type CtrRecorder struct {
	clock atomic.Int64
	slots []ctrThreadLog
}

type ctrThreadLog struct {
	ops []CtrOp
	_   [40]byte
}

// NewCtrRecorder returns a recorder for up to threads worker
// goroutines.
func NewCtrRecorder(threads int) *CtrRecorder {
	return &CtrRecorder{slots: make([]ctrThreadLog, threads)}
}

// Begin stamps an operation invocation.
func (r *CtrRecorder) Begin() int64 { return r.clock.Add(1) }

// Record appends a completed fetch&add for thread t.
func (r *CtrRecorder) Record(t int, amount, ret, invoke int64) {
	r.slots[t].ops = append(r.slots[t].ops, CtrOp{
		Thread: t, Amount: amount, Ret: ret,
		Invoke: invoke, Return: r.clock.Add(1),
	})
}

// History returns all recorded operations; call after workers finish.
func (r *CtrRecorder) History() []CtrOp {
	var out []CtrOp
	for i := range r.slots {
		out = append(out, r.slots[i].ops...)
	}
	return out
}
