package lincheck

import "testing"

// seqCtr builds a sequential (non-overlapping) history from amounts,
// with returns following a plain running sum when faithful is true, or
// corrupting the final return when not.
func seqCtr(initial int64, amounts []int64, faithful bool) []CtrOp {
	ops := make([]CtrOp, 0, len(amounts))
	value := initial
	ts := int64(1)
	for i, a := range amounts {
		ret := value
		if !faithful && i == len(amounts)-1 {
			ret += 7
		}
		ops = append(ops, CtrOp{Thread: 0, Amount: a, Ret: ret, Invoke: ts, Return: ts + 1})
		ts += 2
		value += a
	}
	return ops
}

func TestCounterSequentialAccepted(t *testing.T) {
	if !CheckCounter(nil, 5) {
		t.Fatal("empty history rejected")
	}
	if !CheckCounter(seqCtr(0, []int64{1, 1, 1}, true), 0) {
		t.Fatal("faithful unit history rejected")
	}
	if !CheckCounter(seqCtr(40, []int64{2, -3, 0, 10}, true), 40) {
		t.Fatal("faithful mixed-sign history rejected")
	}
}

func TestCounterCorruptedRejected(t *testing.T) {
	if CheckCounter(seqCtr(0, []int64{1, 1, 1}, false), 0) {
		t.Fatal("history with a corrupted return accepted")
	}
	if CheckCounter(seqCtr(0, []int64{5}, true), 1) {
		t.Fatal("history accepted against the wrong initial value")
	}
}

// TestCounterConcurrentReorderAccepted: two overlapping unit adds may
// linearize in either order, so returns 0 and 1 are fine whichever
// thread got which.
func TestCounterConcurrentReorderAccepted(t *testing.T) {
	h := []CtrOp{
		{Thread: 0, Amount: 1, Ret: 1, Invoke: 1, Return: 4},
		{Thread: 1, Amount: 1, Ret: 0, Invoke: 2, Return: 3},
	}
	if !CheckCounter(h, 0) {
		t.Fatal("overlapping adds with swapped returns rejected")
	}
}

// TestCounterRealTimeViolationRejected: an operation that returned
// before another was invoked must be ordered first; a later return of
// the earlier value breaks real time.
func TestCounterRealTimeViolationRejected(t *testing.T) {
	h := []CtrOp{
		{Thread: 0, Amount: 1, Ret: 1, Invoke: 1, Return: 2}, // completed first, saw 1
		{Thread: 1, Amount: 1, Ret: 0, Invoke: 3, Return: 4}, // invoked after, saw 0
	}
	if CheckCounter(h, 0) {
		t.Fatal("real-time-violating history accepted")
	}
}

// TestCounterDuplicateReturnRejected: two unit adds can never both see
// the same pre-add value.
func TestCounterDuplicateReturnRejected(t *testing.T) {
	h := []CtrOp{
		{Thread: 0, Amount: 1, Ret: 0, Invoke: 1, Return: 3},
		{Thread: 1, Amount: 1, Ret: 0, Invoke: 2, Return: 4},
	}
	if CheckCounter(h, 0) {
		t.Fatal("duplicate fetch&add returns accepted")
	}
}

// TestCounterZeroAmountsOverlap: zero-amount adds all legally return
// the current value.
func TestCounterZeroAmountsOverlap(t *testing.T) {
	h := []CtrOp{
		{Thread: 0, Amount: 0, Ret: 9, Invoke: 1, Return: 4},
		{Thread: 1, Amount: 0, Ret: 9, Invoke: 2, Return: 5},
		{Thread: 2, Amount: 3, Ret: 9, Invoke: 3, Return: 6},
	}
	if !CheckCounter(h, 9) {
		t.Fatal("overlapping zero adds rejected")
	}
}
