package lincheck

import (
	"fmt"
	"sync/atomic"
)

// DeqKind is the operation type of a deque history event.
type DeqKind int

// Deque operation kinds.
const (
	PushLeft DeqKind = iota
	PushRight
	PopLeft
	PopRight
)

func (k DeqKind) String() string {
	switch k {
	case PushLeft:
		return "pushL"
	case PushRight:
		return "pushR"
	case PopLeft:
		return "popL"
	case PopRight:
		return "popR"
	}
	return fmt.Sprintf("DeqKind(%d)", int(k))
}

// DeqOp is one completed deque operation.
type DeqOp struct {
	Thread int
	Kind   DeqKind
	Value  int64
	OK     bool // pops: false means "observed empty"
	Invoke int64
	Return int64
}

func (o DeqOp) String() string {
	switch o.Kind {
	case PushLeft, PushRight:
		return fmt.Sprintf("T%d %s(%d) @[%d,%d]", o.Thread, o.Kind, o.Value, o.Invoke, o.Return)
	default:
		if !o.OK {
			return fmt.Sprintf("T%d %s()=empty @[%d,%d]", o.Thread, o.Kind, o.Invoke, o.Return)
		}
		return fmt.Sprintf("T%d %s()=%d @[%d,%d]", o.Thread, o.Kind, o.Value, o.Invoke, o.Return)
	}
}

// CheckDeque reports whether history is linearizable with respect to
// sequential double-ended-queue semantics, by the same memoized DFS as
// CheckStack. It panics past 63 operations.
func CheckDeque(history []DeqOp) bool {
	if len(history) > maxOps {
		panic(fmt.Sprintf("lincheck: history of %d ops exceeds the %d-op bound", len(history), maxOps))
	}
	c := &dequeChecker{ops: history, memo: make(map[string]bool)}
	return c.search(0, nil)
}

type dequeChecker struct {
	ops  []DeqOp
	memo map[string]bool
}

func (c *dequeChecker) search(done uint64, deq []int64) bool {
	if done == (uint64(1)<<len(c.ops))-1 {
		return true
	}
	k := key(done, deq)
	if c.memo[k] {
		return false
	}
	minReturn := int64(1) << 62
	for i, op := range c.ops {
		if done&(1<<i) == 0 && op.Return < minReturn {
			minReturn = op.Return
		}
	}
	for i, op := range c.ops {
		if done&(1<<i) != 0 || op.Invoke > minReturn {
			continue
		}
		next, legal := applyDeq(deq, op)
		if !legal {
			continue
		}
		if c.search(done|1<<i, next) {
			return true
		}
	}
	c.memo[k] = true
	return false
}

// applyDeq runs op against the abstract deque (index 0 = left end).
func applyDeq(deq []int64, op DeqOp) ([]int64, bool) {
	switch op.Kind {
	case PushLeft:
		next := make([]int64, 0, len(deq)+1)
		next = append(next, op.Value)
		return append(next, deq...), true
	case PushRight:
		next := make([]int64, len(deq), len(deq)+1)
		copy(next, deq)
		return append(next, op.Value), true
	case PopLeft:
		if !op.OK {
			return deq, len(deq) == 0
		}
		if len(deq) == 0 || deq[0] != op.Value {
			return nil, false
		}
		return deq[1:], true
	case PopRight:
		if !op.OK {
			return deq, len(deq) == 0
		}
		if len(deq) == 0 || deq[len(deq)-1] != op.Value {
			return nil, false
		}
		return deq[:len(deq)-1], true
	}
	return nil, false
}

// DeqRecorder collects a concurrent deque history; see Recorder.
type DeqRecorder struct {
	clock atomic.Int64
	slots []deqThreadLog
}

type deqThreadLog struct {
	ops []DeqOp
	_   [40]byte
}

// NewDeqRecorder returns a recorder for up to threads worker goroutines.
func NewDeqRecorder(threads int) *DeqRecorder {
	return &DeqRecorder{slots: make([]deqThreadLog, threads)}
}

// Begin stamps an operation invocation.
func (r *DeqRecorder) Begin() int64 { return r.clock.Add(1) }

// Record appends a completed operation for thread t.
func (r *DeqRecorder) Record(t int, kind DeqKind, v int64, ok bool, invoke int64) {
	r.slots[t].ops = append(r.slots[t].ops, DeqOp{
		Thread: t, Kind: kind, Value: v, OK: ok,
		Invoke: invoke, Return: r.clock.Add(1),
	})
}

// History returns all recorded operations; call after workers finish.
func (r *DeqRecorder) History() []DeqOp {
	var out []DeqOp
	for i := range r.slots {
		out = append(out, r.slots[i].ops...)
	}
	return out
}
