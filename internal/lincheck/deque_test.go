package lincheck

import "testing"

type dstep struct {
	kind DeqKind
	v    int64
	ok   bool
}

func seqDeqHistory(steps []dstep) []DeqOp {
	ops := make([]DeqOp, len(steps))
	t := int64(0)
	for i, s := range steps {
		t++
		inv := t
		t++
		ops[i] = DeqOp{Kind: s.kind, Value: s.v, OK: s.ok, Invoke: inv, Return: t}
	}
	return ops
}

func TestDequeSequentialLegal(t *testing.T) {
	h := seqDeqHistory([]dstep{
		{PushLeft, 2, true}, {PushLeft, 1, true}, {PushRight, 3, true},
		// deque: 1 2 3
		{PopLeft, 1, true}, {PopRight, 3, true}, {PopLeft, 2, true},
		{PopLeft, 0, false}, {PopRight, 0, false},
	})
	if !CheckDeque(h) {
		t.Fatal("legal sequential deque history rejected")
	}
}

func TestDequeWrongEnd(t *testing.T) {
	h := seqDeqHistory([]dstep{
		{PushLeft, 1, true}, {PushLeft, 2, true},
		{PopRight, 2, true}, // 2 is at the LEFT end; right end holds 1
	})
	if CheckDeque(h) {
		t.Fatal("pop from wrong end accepted")
	}
}

func TestDequeStackMode(t *testing.T) {
	h := seqDeqHistory([]dstep{
		{PushLeft, 1, true}, {PushLeft, 2, true},
		{PopLeft, 2, true}, {PopLeft, 1, true},
	})
	if !CheckDeque(h) {
		t.Fatal("stack-mode deque history rejected")
	}
}

func TestDequeQueueMode(t *testing.T) {
	h := seqDeqHistory([]dstep{
		{PushRight, 1, true}, {PushRight, 2, true},
		{PopLeft, 1, true}, {PopLeft, 2, true},
	})
	if !CheckDeque(h) {
		t.Fatal("queue-mode deque history rejected")
	}
}

func TestDequeFalseEmpty(t *testing.T) {
	h := seqDeqHistory([]dstep{
		{PushLeft, 1, true},
		{PopRight, 0, false},
	})
	if CheckDeque(h) {
		t.Fatal("false-empty pop accepted")
	}
}

func TestDequeDoublePop(t *testing.T) {
	h := seqDeqHistory([]dstep{
		{PushLeft, 1, true},
		{PopLeft, 1, true}, {PopRight, 1, true},
	})
	if CheckDeque(h) {
		t.Fatal("double pop accepted")
	}
}

func TestDequeConcurrentReorder(t *testing.T) {
	// Two overlapping pushes at opposite ends; a pop may see either
	// element at its end depending on the chosen order.
	h := []DeqOp{
		{Kind: PushLeft, Value: 1, OK: true, Invoke: 1, Return: 10},
		{Kind: PushRight, Value: 2, OK: true, Invoke: 2, Return: 11},
		{Kind: PopLeft, Value: 1, OK: true, Invoke: 12, Return: 13},
		{Kind: PopLeft, Value: 2, OK: true, Invoke: 14, Return: 15},
	}
	if !CheckDeque(h) {
		t.Fatal("valid concurrent deque history rejected")
	}
}

func TestDequeElimination(t *testing.T) {
	// A PushLeft/PopLeft pair eliminated by the SEC-style deque
	// linearizes adjacently; the older element is untouched.
	h := []DeqOp{
		{Kind: PushLeft, Value: 1, OK: true, Invoke: 1, Return: 2},
		{Kind: PushLeft, Value: 2, OK: true, Invoke: 3, Return: 8},
		{Kind: PopLeft, Value: 2, OK: true, Invoke: 4, Return: 7},
		{Kind: PopLeft, Value: 1, OK: true, Invoke: 9, Return: 10},
	}
	if !CheckDeque(h) {
		t.Fatal("elimination-shaped deque history rejected")
	}
}

func TestDeqKindString(t *testing.T) {
	if PushLeft.String() != "pushL" || PopRight.String() != "popR" {
		t.Fatal("DeqKind.String broken")
	}
	if DeqKind(7).String() != "DeqKind(7)" {
		t.Fatal("unknown DeqKind.String broken")
	}
}

func TestDeqOpString(t *testing.T) {
	op := DeqOp{Thread: 1, Kind: PushRight, Value: 4, OK: true, Invoke: 1, Return: 2}
	if got := op.String(); got != "T1 pushR(4) @[1,2]" {
		t.Fatalf("String() = %q", got)
	}
	op = DeqOp{Kind: PopLeft, OK: false, Invoke: 3, Return: 5}
	if got := op.String(); got != "T0 popL()=empty @[3,5]" {
		t.Fatalf("String() = %q", got)
	}
}

func TestDequeOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CheckDeque(make([]DeqOp, maxOps+1))
}
