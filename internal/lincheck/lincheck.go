// Package lincheck decides linearizability of complete concurrent stack
// histories, in the style of the Wing–Gong algorithm with state
// memoization (Lowe, "Testing for linearizability", 2017).
//
// The checker searches for a total order of the history's operations
// that (a) respects real-time precedence - an operation that returned
// before another was invoked must be ordered first - and (b) is a legal
// sequential stack execution. The search is exponential in the worst
// case, so it is intended for the small bounded histories the test
// suites generate (up to roughly 20 operations); large-history checking
// is done structurally by internal/stacktest instead.
package lincheck

import (
	"fmt"
	"sync/atomic"
)

// Kind is the operation type of a history event.
type Kind int

// Operation kinds.
const (
	Push Kind = iota
	Pop
	Peek
)

func (k Kind) String() string {
	switch k {
	case Push:
		return "push"
	case Pop:
		return "pop"
	case Peek:
		return "peek"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Op is one completed operation of a history.
type Op struct {
	Thread int   // informational
	Kind   Kind  //
	Value  int64 // pushed value, or value returned by pop/peek (when OK)
	OK     bool  // pop/peek: false means "observed empty"
	Invoke int64 // logical invocation timestamp
	Return int64 // logical response timestamp; must be > Invoke
}

func (o Op) String() string {
	switch o.Kind {
	case Push:
		return fmt.Sprintf("T%d push(%d) @[%d,%d]", o.Thread, o.Value, o.Invoke, o.Return)
	default:
		if !o.OK {
			return fmt.Sprintf("T%d %s()=empty @[%d,%d]", o.Thread, o.Kind, o.Invoke, o.Return)
		}
		return fmt.Sprintf("T%d %s()=%d @[%d,%d]", o.Thread, o.Kind, o.Value, o.Invoke, o.Return)
	}
}

// maxOps bounds the history size the exhaustive checker accepts (the
// done-set is a bitmask).
const maxOps = 63

// CheckStack reports whether history is linearizable with respect to
// sequential LIFO stack semantics. It panics if the history exceeds 63
// operations; callers generate bounded histories.
func CheckStack(history []Op) bool {
	if len(history) > maxOps {
		panic(fmt.Sprintf("lincheck: history of %d ops exceeds the %d-op bound", len(history), maxOps))
	}
	c := &checker{ops: history, memo: make(map[string]bool)}
	return c.search(0, nil)
}

// checker carries the DFS state.
type checker struct {
	ops  []Op
	memo map[string]bool // (doneMask, stack) states proven dead
}

// key serializes a search state: which ops are done plus the exact
// stack contents (content order matters).
func key(done uint64, stack []int64) string {
	buf := make([]byte, 0, 8+8*len(stack))
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(done>>(8*i)))
	}
	for _, v := range stack {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(uint64(v)>>(8*i)))
		}
	}
	return string(buf)
}

// search tries to linearize the remaining operations given the current
// abstract stack.
func (c *checker) search(done uint64, stack []int64) bool {
	if done == (uint64(1)<<len(c.ops))-1 {
		return true
	}
	k := key(done, stack)
	if c.memo[k] {
		return false
	}

	// minPendingReturn is the earliest response among undone ops: any
	// operation invoked after it cannot be linearized next.
	minReturn := int64(1) << 62
	for i, op := range c.ops {
		if done&(1<<i) == 0 && op.Return < minReturn {
			minReturn = op.Return
		}
	}

	for i, op := range c.ops {
		if done&(1<<i) != 0 || op.Invoke > minReturn {
			continue
		}
		next, legal := apply(stack, op)
		if !legal {
			continue
		}
		if c.search(done|1<<i, next) {
			return true
		}
	}
	c.memo[k] = true
	return false
}

// apply runs op against the abstract stack, reporting whether its
// recorded result is sequentially legal and the resulting stack.
func apply(stack []int64, op Op) ([]int64, bool) {
	switch op.Kind {
	case Push:
		next := make([]int64, len(stack)+1)
		copy(next, stack)
		next[len(stack)] = op.Value
		return next, true
	case Pop:
		if !op.OK {
			return stack, len(stack) == 0
		}
		if len(stack) == 0 || stack[len(stack)-1] != op.Value {
			return nil, false
		}
		return stack[:len(stack)-1], true
	case Peek:
		if !op.OK {
			return stack, len(stack) == 0
		}
		return stack, len(stack) > 0 && stack[len(stack)-1] == op.Value
	}
	return nil, false
}

// Recorder collects a concurrent history using a shared logical clock.
// Worker goroutines call Begin/EndPush/EndPop/EndPeek around their
// operations; the clock's fetch&adds give timestamps whose order is
// consistent with real time.
type Recorder struct {
	clock atomic.Int64
	slots []threadLog
}

type threadLog struct {
	ops []Op
	_   [40]byte
}

// NewRecorder returns a recorder for up to threads worker goroutines.
func NewRecorder(threads int) *Recorder {
	return &Recorder{slots: make([]threadLog, threads)}
}

// Begin stamps an operation invocation for thread t.
func (r *Recorder) Begin() int64 {
	return r.clock.Add(1)
}

// RecordPush appends a completed push.
func (r *Recorder) RecordPush(t int, v int64, invoke int64) {
	r.slots[t].ops = append(r.slots[t].ops, Op{
		Thread: t, Kind: Push, Value: v, OK: true,
		Invoke: invoke, Return: r.clock.Add(1),
	})
}

// RecordPop appends a completed pop.
func (r *Recorder) RecordPop(t int, v int64, ok bool, invoke int64) {
	r.slots[t].ops = append(r.slots[t].ops, Op{
		Thread: t, Kind: Pop, Value: v, OK: ok,
		Invoke: invoke, Return: r.clock.Add(1),
	})
}

// RecordPeek appends a completed peek.
func (r *Recorder) RecordPeek(t int, v int64, ok bool, invoke int64) {
	r.slots[t].ops = append(r.slots[t].ops, Op{
		Thread: t, Kind: Peek, Value: v, OK: ok,
		Invoke: invoke, Return: r.clock.Add(1),
	})
}

// History returns all recorded operations. Call only after the worker
// goroutines have finished.
func (r *Recorder) History() []Op {
	var out []Op
	for i := range r.slots {
		out = append(out, r.slots[i].ops...)
	}
	return out
}
