package lincheck

import (
	"fmt"
	"sync/atomic"
)

// QKind is the operation type of a queue history event.
type QKind int

// Queue operation kinds.
const (
	Enqueue QKind = iota
	Dequeue
)

func (k QKind) String() string {
	switch k {
	case Enqueue:
		return "enq"
	case Dequeue:
		return "deq"
	}
	return fmt.Sprintf("QKind(%d)", int(k))
}

// QOp is one completed queue operation.
type QOp struct {
	Thread int
	Kind   QKind
	Value  int64 // enqueued value, or value returned by a successful dequeue
	OK     bool  // enqueues: false means "observed full"; dequeues: false means "observed empty"
	Invoke int64
	Return int64
}

func (o QOp) String() string {
	switch o.Kind {
	case Enqueue:
		if !o.OK {
			return fmt.Sprintf("T%d enq(%d)=full @[%d,%d]", o.Thread, o.Value, o.Invoke, o.Return)
		}
		return fmt.Sprintf("T%d enq(%d) @[%d,%d]", o.Thread, o.Value, o.Invoke, o.Return)
	default:
		if !o.OK {
			return fmt.Sprintf("T%d deq()=empty @[%d,%d]", o.Thread, o.Invoke, o.Return)
		}
		return fmt.Sprintf("T%d deq()=%d @[%d,%d]", o.Thread, o.Value, o.Invoke, o.Return)
	}
}

// CheckQueue reports whether history is linearizable with respect to
// sequential bounded-FIFO semantics with the given capacity: each
// dequeue must return the oldest undequeued enqueue in some total
// order consistent with the operations' overlap windows, a failed
// dequeue must observe an empty queue, and a failed enqueue must
// observe exactly capacity elements. capacity <= 0 means unbounded
// (failed enqueues are then never legal). The search is the same
// memoized Wing-Gong DFS as CheckStack; it panics past 63 operations.
func CheckQueue(history []QOp, capacity int) bool {
	if len(history) > maxOps {
		panic(fmt.Sprintf("lincheck: history of %d ops exceeds the %d-op bound", len(history), maxOps))
	}
	c := &queueChecker{ops: history, capacity: capacity, memo: make(map[string]bool)}
	return c.search(0, nil)
}

type queueChecker struct {
	ops      []QOp
	capacity int
	memo     map[string]bool
}

func (c *queueChecker) search(done uint64, q []int64) bool {
	if done == (uint64(1)<<len(c.ops))-1 {
		return true
	}
	k := key(done, q)
	if c.memo[k] {
		return false
	}
	minReturn := int64(1) << 62
	for i, op := range c.ops {
		if done&(1<<i) == 0 && op.Return < minReturn {
			minReturn = op.Return
		}
	}
	for i, op := range c.ops {
		if done&(1<<i) != 0 || op.Invoke > minReturn {
			continue
		}
		next, legal := c.applyQueue(q, op)
		if !legal {
			continue
		}
		if c.search(done|1<<i, next) {
			return true
		}
	}
	c.memo[k] = true
	return false
}

// applyQueue runs op against the abstract queue (index 0 = front).
func (c *queueChecker) applyQueue(q []int64, op QOp) ([]int64, bool) {
	switch op.Kind {
	case Enqueue:
		if !op.OK {
			return q, c.capacity > 0 && len(q) == c.capacity
		}
		if c.capacity > 0 && len(q) >= c.capacity {
			return nil, false
		}
		next := make([]int64, len(q), len(q)+1)
		copy(next, q)
		return append(next, op.Value), true
	case Dequeue:
		if !op.OK {
			return q, len(q) == 0
		}
		if len(q) == 0 || q[0] != op.Value {
			return nil, false
		}
		return q[1:], true
	}
	return nil, false
}

// QRecorder collects a concurrent queue history; see Recorder.
type QRecorder struct {
	clock atomic.Int64
	slots []qThreadLog
}

type qThreadLog struct {
	ops []QOp
	_   [40]byte
}

// NewQRecorder returns a recorder for up to threads worker goroutines.
func NewQRecorder(threads int) *QRecorder {
	return &QRecorder{slots: make([]qThreadLog, threads)}
}

// Begin stamps an operation invocation.
func (r *QRecorder) Begin() int64 { return r.clock.Add(1) }

// RecordEnqueue appends a completed enqueue (ok=false: observed full).
func (r *QRecorder) RecordEnqueue(t int, v int64, ok bool, invoke int64) {
	r.slots[t].ops = append(r.slots[t].ops, QOp{
		Thread: t, Kind: Enqueue, Value: v, OK: ok,
		Invoke: invoke, Return: r.clock.Add(1),
	})
}

// RecordDequeue appends a completed dequeue (ok=false: observed empty).
func (r *QRecorder) RecordDequeue(t int, v int64, ok bool, invoke int64) {
	r.slots[t].ops = append(r.slots[t].ops, QOp{
		Thread: t, Kind: Dequeue, Value: v, OK: ok,
		Invoke: invoke, Return: r.clock.Add(1),
	})
}

// History returns all recorded operations; call after workers finish.
func (r *QRecorder) History() []QOp {
	var out []QOp
	for i := range r.slots {
		out = append(out, r.slots[i].ops...)
	}
	return out
}
