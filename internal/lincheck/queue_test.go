package lincheck

import "testing"

type qstep struct {
	kind QKind
	v    int64
	ok   bool
}

func seqQHistory(steps []qstep) []QOp {
	ops := make([]QOp, len(steps))
	t := int64(0)
	for i, s := range steps {
		t++
		inv := t
		t++
		ops[i] = QOp{Kind: s.kind, Value: s.v, OK: s.ok, Invoke: inv, Return: t}
	}
	return ops
}

func TestQueueSequentialLegal(t *testing.T) {
	h := seqQHistory([]qstep{
		{Enqueue, 1, true}, {Enqueue, 2, true}, {Enqueue, 3, true},
		{Dequeue, 1, true}, {Dequeue, 2, true}, {Dequeue, 3, true},
		{Dequeue, 0, false},
	})
	if !CheckQueue(h, 0) {
		t.Fatal("legal sequential FIFO history rejected")
	}
	if !CheckQueue(h, 3) {
		t.Fatal("legal sequential FIFO history rejected under exact capacity")
	}
}

func TestQueueNonFIFORejected(t *testing.T) {
	h := seqQHistory([]qstep{
		{Enqueue, 1, true}, {Enqueue, 2, true},
		{Dequeue, 2, true}, // LIFO order: 1 is at the front
	})
	if CheckQueue(h, 0) {
		t.Fatal("LIFO dequeue order accepted by the FIFO checker")
	}
}

func TestQueueDequeueNeverEnqueued(t *testing.T) {
	h := seqQHistory([]qstep{
		{Enqueue, 1, true},
		{Dequeue, 7, true},
	})
	if CheckQueue(h, 0) {
		t.Fatal("dequeue of a never-enqueued value accepted")
	}
}

func TestQueueFalseEmpty(t *testing.T) {
	h := seqQHistory([]qstep{
		{Enqueue, 1, true},
		{Dequeue, 0, false}, // claims empty while 1 is enqueued
		{Dequeue, 1, true},
	})
	if CheckQueue(h, 0) {
		t.Fatal("empty-dequeue with an element present accepted")
	}
}

func TestQueueConcurrentEmptyDequeue(t *testing.T) {
	// deq()=empty overlaps the enqueue: legal if ordered before it.
	h := []QOp{
		{Kind: Enqueue, Value: 1, OK: true, Invoke: 1, Return: 4},
		{Kind: Dequeue, Value: 0, OK: false, Invoke: 2, Return: 3},
		{Kind: Dequeue, Value: 1, OK: true, Invoke: 5, Return: 6},
	}
	if !CheckQueue(h, 0) {
		t.Fatal("overlapping empty-dequeue rejected")
	}
}

func TestQueueCapacityExceededRejected(t *testing.T) {
	h := seqQHistory([]qstep{
		{Enqueue, 1, true},
		{Enqueue, 2, true}, // capacity 1: this must have observed full
	})
	if CheckQueue(h, 1) {
		t.Fatal("enqueue past capacity accepted")
	}
	if !CheckQueue(h, 2) {
		t.Fatal("same history rejected under sufficient capacity")
	}
}

func TestQueueFullEnqueueLegality(t *testing.T) {
	full := seqQHistory([]qstep{
		{Enqueue, 1, true},
		{Enqueue, 2, false}, // full at capacity 1
		{Dequeue, 1, true},
		{Enqueue, 3, true},
		{Dequeue, 3, true},
	})
	if !CheckQueue(full, 1) {
		t.Fatal("legal full-enqueue history rejected")
	}
	// A "full" result while the queue has spare room is a lie.
	spare := seqQHistory([]qstep{
		{Enqueue, 1, true},
		{Enqueue, 2, false},
	})
	if CheckQueue(spare, 2) {
		t.Fatal("false-full enqueue accepted below capacity")
	}
	// Unbounded queues never report full.
	if CheckQueue(spare, 0) {
		t.Fatal("full enqueue accepted on an unbounded queue")
	}
}

func TestQueueConcurrentFullEnqueue(t *testing.T) {
	// enq(2)=full overlaps the dequeue that makes room: legal only if
	// ordered before it.
	h := []QOp{
		{Kind: Enqueue, Value: 1, OK: true, Invoke: 1, Return: 2},
		{Kind: Dequeue, Value: 1, OK: true, Invoke: 3, Return: 6},
		{Kind: Enqueue, Value: 2, OK: false, Invoke: 4, Return: 5},
	}
	if !CheckQueue(h, 1) {
		t.Fatal("overlapping full-enqueue rejected")
	}
}

func TestQueueConcurrentReorder(t *testing.T) {
	// Two overlapping enqueues; the dequeues fix their order.
	h := []QOp{
		{Thread: 0, Kind: Enqueue, Value: 1, OK: true, Invoke: 1, Return: 5},
		{Thread: 1, Kind: Enqueue, Value: 2, OK: true, Invoke: 2, Return: 4},
		{Thread: 0, Kind: Dequeue, Value: 2, OK: true, Invoke: 6, Return: 7},
		{Thread: 1, Kind: Dequeue, Value: 1, OK: true, Invoke: 8, Return: 9},
	}
	if !CheckQueue(h, 0) {
		t.Fatal("valid reorder of overlapping enqueues rejected")
	}
	// Without overlap the same dequeue order is a FIFO violation.
	h[0].Return = 2
	h[1].Invoke = 3
	if CheckQueue(h, 0) {
		t.Fatal("real-time enqueue order violated and accepted")
	}
}

func TestQKindString(t *testing.T) {
	if Enqueue.String() != "enq" || Dequeue.String() != "deq" {
		t.Fatalf("kind strings: %v %v", Enqueue, Dequeue)
	}
	if QKind(9).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestQOpString(t *testing.T) {
	ops := seqQHistory([]qstep{
		{Enqueue, 1, true}, {Enqueue, 2, false},
		{Dequeue, 1, true}, {Dequeue, 0, false},
	})
	for _, o := range ops {
		if o.String() == "" {
			t.Fatalf("empty String for %#v", o)
		}
	}
}

func TestQueueOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversize history did not panic")
		}
	}()
	CheckQueue(make([]QOp, maxOps+1), 0)
}
