package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// LatencyHist is a fixed-size log-linear latency histogram in the
// HDR style: durations bucket by octave of nanoseconds with latSub
// linear sub-buckets per octave, bounding quantile error to about
// 1/latSub of the value while keeping Record to a handful of integer
// instructions and one atomic add. The zero value is ready to use;
// all methods are safe for concurrent use.
//
// secd records one histogram per opcode (per-op p50/p99 service
// latency) and secload one per run (client-observed round-trip
// latency); both read quantiles out with Quantile after merging
// per-worker histograms with Merge.
type LatencyHist struct {
	counts [latBuckets]atomic.Int64
}

const (
	latSubBits = 3 // 8 linear sub-buckets per octave: ~±6% quantile error
	latSub     = 1 << latSubBits
	// latBuckets covers every int64 nanosecond value: latSub exact
	// buckets for values below latSub, then latSub sub-buckets per
	// octave for each of the remaining 64-latSubBits octaves.
	latBuckets = latSub + (64-latSubBits)*latSub
)

// latBucket maps a non-negative nanosecond count to its bucket index.
// Values below latSub map to themselves (exact); above, the octave
// (exponent) selects a run of latSub buckets and the next latSubBits
// mantissa bits select within it, so bucket boundaries are monotone.
func latBucket(ns int64) int {
	u := uint64(ns)
	if u < latSub {
		return int(u)
	}
	exp := uint(bits.Len64(u)) - latSubBits - 1
	return latSub + int(uint64(exp)<<latSubBits) + int((u>>exp)&(latSub-1))
}

// Record adds one observation. Negative durations clamp to zero.
func (h *LatencyHist) Record(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[latBucket(ns)].Add(1)
}

// Merge adds other's counts into h. Safe to call while either
// histogram is still being written; the result is then approximate,
// exact once writers have stopped.
func (h *LatencyHist) Merge(other *LatencyHist) {
	if h == nil || other == nil {
		return
	}
	for i := range other.counts {
		if n := other.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
}

// Count returns the number of recorded observations.
func (h *LatencyHist) Count() int64 {
	if h == nil {
		return 0
	}
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Quantile returns the q-quantile (q in [0,1]) of the recorded
// durations, as the representative value of the bucket holding that
// rank. Zero when nothing was recorded.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return bucketValue(i)
		}
	}
	return bucketValue(latBuckets - 1)
}

// bucketValue is latBucket's representative inverse: exact for the
// small linear buckets, the sub-bucket midpoint for log-linear ones.
func bucketValue(idx int) time.Duration {
	if idx < latSub {
		return time.Duration(idx)
	}
	idx -= latSub
	exp := uint(idx >> latSubBits)
	mant := uint64(idx & (latSub - 1))
	lower := (latSub + mant) << exp
	return time.Duration(lower + (uint64(1)<<exp)/2)
}
