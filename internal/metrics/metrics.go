// Package metrics provides the low-overhead instrumentation counters
// behind the paper's Tables 1–3 (batching degree, %eliminated,
// %combined). Counters are cache-line-padded and sharded per aggregator
// so that instrumented runs perturb throughput as little as possible;
// instrumentation is opt-in in the SEC constructor.
package metrics

import (
	"sync/atomic"

	"secstack/internal/pad"
)

// shard is one padded counter block. Batches, eliminated operations and
// combined operations are tallied by whichever thread closes out a
// batch, so a shard sees updates only from the threads of one
// aggregator.
type shard struct {
	batches      atomic.Int64 // batches frozen
	ops          atomic.Int64 // operations that belonged to frozen batches
	eliminated   atomic.Int64 // operations eliminated in-batch
	combined     atomic.Int64 // operations applied to the shared stack
	capacity     atomic.Int64 // summed op capacity of frozen batches
	fastHits     atomic.Int64 // solo fast-path operations applied directly
	fastMisses   atomic.Int64 // solo fast-path attempts that hit contention
	spinSum      atomic.Int64 // summed effective pre-freeze spin of frozen batches
	reclaimScans atomic.Int64 // freezes that ran a full hazard scan
	reclaimSkips atomic.Int64 // freezes that deferred one under the reclaim epoch
	putStealHits atomic.Int64 // overflow Puts that landed on a foreign shard via TryPush
	putStealMiss atomic.Int64 // overflow sweeps that found every foreign shard contended
	getStealHits atomic.Int64 // Gets that stole an element from a foreign shard via TryPop
	getStealMiss atomic.Int64 // steal sweeps that hit only contention and escalated
	spinInherits atomic.Int64 // shard-scaling grows that seeded this shard's controller
	shardGrows   atomic.Int64 // elastic grows that turned this shard live
	shardShrinks atomic.Int64 // elastic shrinks that began draining this shard
	migrated     atomic.Int64 // elements drained off this shard during shrink
	_            [3*pad.CacheLine - 18*8]byte
}

// SEC aggregates per-aggregator statistics for a SEC stack instance.
// A nil *SEC is valid and turns every method into a no-op, which is how
// uninstrumented stacks avoid the overhead entirely.
type SEC struct {
	shards []shard
}

// NewSEC returns a collector with one shard per aggregator.
func NewSEC(aggregators int) *SEC {
	if aggregators < 1 {
		aggregators = 1
	}
	return &SEC{shards: make([]shard, aggregators)}
}

// record is the single tally path every Record* entry point funnels
// through.
func (m *SEC) record(agg, ops, eliminated, capacity int) {
	if m == nil {
		return
	}
	s := &m.shards[agg]
	s.batches.Add(1)
	s.ops.Add(int64(ops))
	s.eliminated.Add(int64(eliminated))
	s.combined.Add(int64(ops - eliminated))
	s.capacity.Add(int64(capacity))
}

// RecordBatch tallies one frozen batch of aggregator agg containing
// pushes+pops operations, of which eliminated were eliminated in-batch
// and the remainder applied to the shared stack by a combiner.
func (m *SEC) RecordBatch(agg, pushes, pops int) {
	m.record(agg, pushes+pops, 2*min(pushes, pops), 0)
}

// RecordBatchRaw tallies one frozen batch of aggregator agg with the
// operation and eliminated-operation counts already computed by the
// caller (used by ablation variants whose elimination count differs
// from 2*min(pushes, pops)).
func (m *SEC) RecordBatchRaw(agg, ops, eliminated int) {
	m.record(agg, ops, eliminated, 0)
}

// RecordBatchOcc is RecordBatchRaw plus the frozen batch's operation
// capacity (slot capacity summed over its announcement sides), from
// which Snapshot derives batch occupancy. The agg engine records every
// frozen batch through this entry point for all structures.
func (m *SEC) RecordBatchOcc(agg, ops, eliminated, capacity int) {
	m.record(agg, ops, eliminated, capacity)
}

// RecordSpin tallies the effective pre-freeze backoff one frozen batch
// of aggregator agg actually paid, in spin iterations. With a fixed
// FreezerSpin every batch records the same value; under adaptive spin
// the running average (Snapshot.SpinAvg) shows where the controller
// settled.
func (m *SEC) RecordSpin(agg, spin int) {
	if m == nil {
		return
	}
	m.shards[agg].spinSum.Add(int64(spin))
}

// RecordReclaim tallies one freeze's reclamation decision on aggregator
// agg: scanned=true is a full hazard-slot scan, scanned=false a freeze
// that deferred one under the reclaim epoch (the pre-epoch engine
// would have scanned). skips/(scans+skips) is the amortization rate
// the epoch buys.
func (m *SEC) RecordReclaim(agg int, scanned bool) {
	if m == nil {
		return
	}
	if scanned {
		m.shards[agg].reclaimScans.Add(1)
	} else {
		m.shards[agg].reclaimSkips.Add(1)
	}
}

// RecordPutSteal tallies one Put-overflow outcome: hit=true is a Put
// that spilled onto foreign shard agg through the TryPush steal
// primitive after its home shard's solo CAS kept losing; hit=false is
// an overflow sweep that found every foreign shard contended too and
// fell back to the home shard's full batch protocol (recorded against
// the home shard). The pool is the only caller; the ratio shows how
// often an overloaded home shard actually found spare capacity
// elsewhere.
func (m *SEC) RecordPutSteal(agg int, hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.shards[agg].putStealHits.Add(1)
	} else {
		m.shards[agg].putStealMiss.Add(1)
	}
}

// RecordGetSteal tallies one Get steal-sweep outcome - the mirror of
// RecordPutSteal, so the degree tables show both balancing directions.
// hit=true is a Get whose home shard came up empty and that stole an
// element from foreign shard agg through the TryPop steal primitive;
// hit=false is a sweep that found no element but hit contention on
// some shard and escalated to the full batch protocol (recorded
// against the home shard). Sweeps that observed every shard
// uncontendedly empty record nothing: an empty pool is an answer, not
// a balancing failure. The pool is the only caller.
func (m *SEC) RecordGetSteal(agg int, hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.shards[agg].getStealHits.Add(1)
	} else {
		m.shards[agg].getStealMiss.Add(1)
	}
}

// RecordSpinInherit tallies one shard-scaling grow that turned
// aggregator agg live with controller state (spin, degree EWMA, mode)
// seeded from the surviving aggregators' mean rather than the stale
// state the shard retired with.
func (m *SEC) RecordSpinInherit(agg int) {
	if m == nil {
		return
	}
	m.shards[agg].spinInherits.Add(1)
}

// RecordResize tallies one elastic pool resize against shard agg:
// grow=true is a grow that turned shard agg live (it rejoins the
// homing window), grow=false a shrink that began draining it. The pool
// is the only caller.
func (m *SEC) RecordResize(agg int, grow bool) {
	if m == nil {
		return
	}
	if grow {
		m.shards[agg].shardGrows.Add(1)
	} else {
		m.shards[agg].shardShrinks.Add(1)
	}
}

// RecordMigrate tallies n elements drained off retiring shard agg by
// the elastic controller's TryPop migration sweep. The pool is the
// only caller.
func (m *SEC) RecordMigrate(agg, n int) {
	if m == nil || n == 0 {
		return
	}
	m.shards[agg].migrated.Add(int64(n))
}

// RecordFastPath tallies one solo fast-path attempt of aggregator agg:
// a hit applied the operation directly (bypassing the batch protocol
// entirely - such operations never appear in Ops), a miss detected
// contention and fell back to the full protocol (where the operation
// is eventually counted through a frozen batch).
func (m *SEC) RecordFastPath(agg int, hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.shards[agg].fastHits.Add(1)
	} else {
		m.shards[agg].fastMisses.Add(1)
	}
}

// Snapshot is a point-in-time view of the collected statistics,
// aggregated over all shards.
type Snapshot struct {
	Batches        int64
	Ops            int64
	Eliminated     int64
	Combined       int64
	Capacity       int64
	FastHits       int64
	FastMisses     int64
	SpinSum        int64
	ReclaimScans   int64
	ReclaimSkips   int64
	PutStealHits   int64
	PutStealMisses int64
	GetStealHits   int64
	GetStealMisses int64
	SpinInherits   int64
	ShardGrows     int64
	ShardShrinks   int64
	Migrated       int64

	// LiveShards is the pool's live shard window size at snapshot time
	// (0 for non-pool snapshots). Unlike the counters it is a gauge:
	// Accumulate keeps the maximum rather than the sum, so a ladder
	// rung's merged snapshot reports the widest window the run reached.
	LiveShards int
}

// Accumulate adds other's counters into s, for callers aggregating
// snapshots across runs or thread-ladder rungs.
func (s *Snapshot) Accumulate(other Snapshot) {
	s.Batches += other.Batches
	s.Ops += other.Ops
	s.Eliminated += other.Eliminated
	s.Combined += other.Combined
	s.Capacity += other.Capacity
	s.FastHits += other.FastHits
	s.FastMisses += other.FastMisses
	s.SpinSum += other.SpinSum
	s.ReclaimScans += other.ReclaimScans
	s.ReclaimSkips += other.ReclaimSkips
	s.PutStealHits += other.PutStealHits
	s.PutStealMisses += other.PutStealMisses
	s.GetStealHits += other.GetStealHits
	s.GetStealMisses += other.GetStealMisses
	s.SpinInherits += other.SpinInherits
	s.ShardGrows += other.ShardGrows
	s.ShardShrinks += other.ShardShrinks
	s.Migrated += other.Migrated
	s.LiveShards = max(s.LiveShards, other.LiveShards)
}

// Snapshot sums all shards. It is safe to call concurrently with
// RecordBatch; the result is approximate while a run is in flight and
// exact once workers have stopped.
func (m *SEC) Snapshot() Snapshot {
	var out Snapshot
	if m == nil {
		return out
	}
	for i := range m.shards {
		s := &m.shards[i]
		out.Batches += s.batches.Load()
		out.Ops += s.ops.Load()
		out.Eliminated += s.eliminated.Load()
		out.Combined += s.combined.Load()
		out.Capacity += s.capacity.Load()
		out.FastHits += s.fastHits.Load()
		out.FastMisses += s.fastMisses.Load()
		out.SpinSum += s.spinSum.Load()
		out.ReclaimScans += s.reclaimScans.Load()
		out.ReclaimSkips += s.reclaimSkips.Load()
		out.PutStealHits += s.putStealHits.Load()
		out.PutStealMisses += s.putStealMiss.Load()
		out.GetStealHits += s.getStealHits.Load()
		out.GetStealMisses += s.getStealMiss.Load()
		out.SpinInherits += s.spinInherits.Load()
		out.ShardGrows += s.shardGrows.Load()
		out.ShardShrinks += s.shardShrinks.Load()
		out.Migrated += s.migrated.Load()
	}
	return out
}

// Reset zeroes all shards.
func (m *SEC) Reset() {
	if m == nil {
		return
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.batches.Store(0)
		s.ops.Store(0)
		s.eliminated.Store(0)
		s.combined.Store(0)
		s.capacity.Store(0)
		s.fastHits.Store(0)
		s.fastMisses.Store(0)
		s.spinSum.Store(0)
		s.reclaimScans.Store(0)
		s.reclaimSkips.Store(0)
		s.putStealHits.Store(0)
		s.putStealMiss.Store(0)
		s.getStealHits.Store(0)
		s.getStealMiss.Store(0)
		s.spinInherits.Store(0)
		s.shardGrows.Store(0)
		s.shardShrinks.Store(0)
		s.migrated.Store(0)
	}
}

// BatchingDegree is the average number of operations per frozen batch
// (the paper's "batching degree"). Zero if no batches were recorded.
func (s Snapshot) BatchingDegree() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Ops) / float64(s.Batches)
}

// EliminationPct is the percentage of batch operations eliminated
// in-batch (the paper's "%elimination"). Zero if no operations.
func (s Snapshot) EliminationPct() float64 {
	if s.Ops == 0 {
		return 0
	}
	return 100 * float64(s.Eliminated) / float64(s.Ops)
}

// CombiningPct is the percentage of batch operations applied to the
// shared stack (the paper's "%combining"); by construction
// EliminationPct + CombiningPct = 100 when Ops > 0.
func (s Snapshot) CombiningPct() float64 {
	if s.Ops == 0 {
		return 0
	}
	return 100 * float64(s.Combined) / float64(s.Ops)
}

// OccupancyPct is how full frozen batches ran relative to their sized
// capacity, in percent. Zero when no capacity was recorded (counters
// fed only through the capacity-less entry points).
func (s Snapshot) OccupancyPct() float64 {
	if s.Capacity == 0 {
		return 0
	}
	return 100 * float64(s.Ops) / float64(s.Capacity)
}

// SpinAvg is the mean effective pre-freeze backoff per frozen batch,
// in spin iterations - the fixed FreezerSpin for a stock engine, the
// controller's running average under adaptive spin. Zero when no
// batches were recorded.
func (s Snapshot) SpinAvg() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.SpinSum) / float64(s.Batches)
}

// ReclaimSkipPct is the percentage of reclaim decisions the epoch
// deferred: skips / (scans + skips), i.e. how much of the pre-epoch
// engine's hazard-scan traffic the amortization removed. Zero when
// reclamation never ran (recycling off, or free list never dry).
func (s Snapshot) ReclaimSkipPct() float64 {
	total := s.ReclaimScans + s.ReclaimSkips
	if total == 0 {
		return 0
	}
	return 100 * float64(s.ReclaimSkips) / float64(total)
}

// PutStealPct is the percentage of Put-overflow sweeps that landed on
// a foreign shard: hits / (hits + misses). Zero when overflow never
// engaged (home solo CASes kept winning, or the threshold was never
// reached).
func (s Snapshot) PutStealPct() float64 {
	total := s.PutStealHits + s.PutStealMisses
	if total == 0 {
		return 0
	}
	return 100 * float64(s.PutStealHits) / float64(total)
}

// GetStealPct is the percentage of Get steal sweeps that landed on a
// foreign shard: hits / (hits + misses) - the get-side mirror of
// PutStealPct. Zero when no sweep ever stole or escalated (home shards
// kept answering, or every sweep observed an uncontendedly empty
// pool).
func (s Snapshot) GetStealPct() float64 {
	total := s.GetStealHits + s.GetStealMisses
	if total == 0 {
		return 0
	}
	return 100 * float64(s.GetStealHits) / float64(total)
}

// FastPathPct is the percentage of completed operations that the solo
// fast path applied directly, out of all operations that completed
// through either path (fast hits plus batch-protocol ops; misses are
// attempts, not completions - a missed operation completes through a
// batch and is counted in Ops). Zero when nothing completed.
func (s Snapshot) FastPathPct() float64 {
	total := s.FastHits + s.Ops
	if total == 0 {
		return 0
	}
	return 100 * float64(s.FastHits) / float64(total)
}
