package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestNilCollectorIsNoop(t *testing.T) {
	var m *SEC
	m.RecordBatch(0, 5, 3) // must not panic
	m.Reset()
	s := m.Snapshot()
	if s.Batches != 0 || s.Ops != 0 {
		t.Fatalf("nil collector snapshot = %+v, want zero", s)
	}
}

func TestRecordBatchAccounting(t *testing.T) {
	m := NewSEC(2)
	m.RecordBatch(0, 5, 3) // 8 ops, 6 eliminated, 2 combined
	m.RecordBatch(1, 2, 2) // 4 ops, 4 eliminated, 0 combined
	s := m.Snapshot()
	if s.Batches != 2 {
		t.Fatalf("Batches = %d, want 2", s.Batches)
	}
	if s.Ops != 12 {
		t.Fatalf("Ops = %d, want 12", s.Ops)
	}
	if s.Eliminated != 10 {
		t.Fatalf("Eliminated = %d, want 10", s.Eliminated)
	}
	if s.Combined != 2 {
		t.Fatalf("Combined = %d, want 2", s.Combined)
	}
}

func TestDegrees(t *testing.T) {
	m := NewSEC(1)
	m.RecordBatch(0, 10, 0) // pure-push batch: nothing eliminated
	s := m.Snapshot()
	if got := s.BatchingDegree(); got != 10 {
		t.Fatalf("BatchingDegree = %v, want 10", got)
	}
	if got := s.EliminationPct(); got != 0 {
		t.Fatalf("EliminationPct = %v, want 0", got)
	}
	if got := s.CombiningPct(); got != 100 {
		t.Fatalf("CombiningPct = %v, want 100", got)
	}
}

func TestDegreesEmptySnapshot(t *testing.T) {
	var s Snapshot
	if s.BatchingDegree() != 0 || s.EliminationPct() != 0 || s.CombiningPct() != 0 {
		t.Fatal("empty snapshot must report zero degrees, not NaN")
	}
}

func TestPercentagesSumTo100(t *testing.T) {
	f := func(pushes, pops uint8) bool {
		if pushes == 0 && pops == 0 {
			return true
		}
		m := NewSEC(1)
		m.RecordBatch(0, int(pushes), int(pops))
		s := m.Snapshot()
		return math.Abs(s.EliminationPct()+s.CombiningPct()-100) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	m := NewSEC(3)
	m.RecordBatch(2, 4, 4)
	m.Reset()
	if s := m.Snapshot(); s.Batches != 0 || s.Ops != 0 || s.Eliminated != 0 || s.Combined != 0 {
		t.Fatalf("snapshot after Reset = %+v, want zeros", s)
	}
}

func TestNewSECClampsAggregators(t *testing.T) {
	m := NewSEC(0)
	m.RecordBatch(0, 1, 1) // must not panic on index 0
}

func TestConcurrentRecording(t *testing.T) {
	const (
		shards  = 4
		workers = 8
		batches = 1000
	)
	m := NewSEC(shards)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				m.RecordBatch(w%shards, 3, 1)
			}
		}(w)
	}
	wg.Wait()
	s := m.Snapshot()
	wantBatches := int64(workers * batches)
	if s.Batches != wantBatches {
		t.Fatalf("Batches = %d, want %d", s.Batches, wantBatches)
	}
	if s.Ops != 4*wantBatches {
		t.Fatalf("Ops = %d, want %d", s.Ops, 4*wantBatches)
	}
	if s.Eliminated != 2*wantBatches {
		t.Fatalf("Eliminated = %d, want %d", s.Eliminated, 2*wantBatches)
	}
}

func BenchmarkRecordBatch(b *testing.B) {
	m := NewSEC(2)
	for i := 0; i < b.N; i++ {
		m.RecordBatch(i&1, 5, 3)
	}
}

func TestRecordBatchOccAndOccupancy(t *testing.T) {
	m := NewSEC(2)
	m.RecordBatchOcc(0, 6, 4, 8)
	m.RecordBatchOcc(1, 2, 0, 8)
	s := m.Snapshot()
	if s.Batches != 2 || s.Ops != 8 || s.Eliminated != 4 || s.Combined != 4 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Capacity != 16 {
		t.Fatalf("Capacity = %d, want 16", s.Capacity)
	}
	if got := s.OccupancyPct(); got != 50 {
		t.Fatalf("OccupancyPct = %.1f, want 50", got)
	}
	m.Reset()
	if s := m.Snapshot(); s.Capacity != 0 {
		t.Fatalf("Capacity = %d after Reset, want 0", s.Capacity)
	}
}

func TestFastPathCounters(t *testing.T) {
	m := NewSEC(2)
	m.RecordFastPath(0, true)
	m.RecordFastPath(0, true)
	m.RecordFastPath(1, true)
	m.RecordFastPath(1, false)
	m.RecordBatchOcc(1, 1, 0, 8) // the missed op completes through a batch
	s := m.Snapshot()
	if s.FastHits != 3 || s.FastMisses != 1 {
		t.Fatalf("fast path counters = %d/%d, want 3/1", s.FastHits, s.FastMisses)
	}
	// 3 solo completions + 1 batch completion: 75% fast path.
	if got := s.FastPathPct(); got != 75 {
		t.Fatalf("FastPathPct = %.1f, want 75", got)
	}
	var acc Snapshot
	acc.Accumulate(s)
	acc.Accumulate(s)
	if acc.FastHits != 6 || acc.FastMisses != 2 {
		t.Fatalf("accumulated fast path counters = %d/%d, want 6/2", acc.FastHits, acc.FastMisses)
	}
	m.Reset()
	if s := m.Snapshot(); s.FastHits != 0 || s.FastMisses != 0 {
		t.Fatalf("fast path counters survive Reset: %+v", s)
	}
	var nilM *SEC
	nilM.RecordFastPath(0, true) // nil collector must be a no-op
	if got := nilM.Snapshot().FastPathPct(); got != 0 {
		t.Fatalf("nil collector FastPathPct = %.1f, want 0", got)
	}
}

func TestOccupancyZeroWithoutCapacity(t *testing.T) {
	m := NewSEC(1)
	m.RecordBatch(0, 3, 1) // capacity-less entry point
	if got := m.Snapshot().OccupancyPct(); got != 0 {
		t.Fatalf("OccupancyPct = %.1f without recorded capacity, want 0", got)
	}
	var nilM *SEC
	nilM.RecordBatchOcc(0, 1, 0, 4) // nil collector must be a no-op
	if got := nilM.Snapshot().OccupancyPct(); got != 0 {
		t.Fatalf("nil collector OccupancyPct = %.1f, want 0", got)
	}
}

func TestSpinAndReclaimCounters(t *testing.T) {
	m := NewSEC(2)
	m.RecordBatchOcc(0, 1, 0, 8)
	m.RecordSpin(0, 128)
	m.RecordBatchOcc(0, 1, 0, 8)
	m.RecordSpin(0, 64)
	m.RecordBatchOcc(1, 1, 0, 8)
	m.RecordSpin(1, 0)
	m.RecordReclaim(0, true)
	m.RecordReclaim(0, false)
	m.RecordReclaim(1, false)
	m.RecordReclaim(1, false)
	s := m.Snapshot()
	if s.SpinSum != 192 {
		t.Fatalf("SpinSum = %d, want 192", s.SpinSum)
	}
	if got := s.SpinAvg(); got != 64 { // 192 spins over 3 batches
		t.Fatalf("SpinAvg = %.1f, want 64", got)
	}
	if s.ReclaimScans != 1 || s.ReclaimSkips != 3 {
		t.Fatalf("reclaim counters = %d/%d, want 1/3", s.ReclaimScans, s.ReclaimSkips)
	}
	if got := s.ReclaimSkipPct(); got != 75 {
		t.Fatalf("ReclaimSkipPct = %.1f, want 75", got)
	}
	var acc Snapshot
	acc.Accumulate(s)
	acc.Accumulate(s)
	if acc.SpinSum != 384 || acc.ReclaimScans != 2 || acc.ReclaimSkips != 6 {
		t.Fatalf("accumulated spin/reclaim = %d/%d/%d, want 384/2/6", acc.SpinSum, acc.ReclaimScans, acc.ReclaimSkips)
	}
	m.Reset()
	if s := m.Snapshot(); s.SpinSum != 0 || s.ReclaimScans != 0 || s.ReclaimSkips != 0 {
		t.Fatalf("spin/reclaim counters survive Reset: %+v", s)
	}
	var nilM *SEC
	nilM.RecordSpin(0, 7) // nil collector must be a no-op
	nilM.RecordReclaim(0, true)
	if got := nilM.Snapshot().SpinAvg(); got != 0 {
		t.Fatalf("nil collector SpinAvg = %.1f, want 0", got)
	}
	if got := (Snapshot{}).ReclaimSkipPct(); got != 0 {
		t.Fatalf("empty ReclaimSkipPct = %.1f, want 0", got)
	}
}

func TestPutStealAndInheritCounters(t *testing.T) {
	m := NewSEC(3)
	m.RecordPutSteal(1, true)
	m.RecordPutSteal(1, true)
	m.RecordPutSteal(0, false)
	m.RecordSpinInherit(2)
	s := m.Snapshot()
	if s.PutStealHits != 2 || s.PutStealMisses != 1 {
		t.Fatalf("put-steal counters = %d/%d, want 2/1", s.PutStealHits, s.PutStealMisses)
	}
	if got := s.PutStealPct(); got < 66 || got > 67 {
		t.Fatalf("PutStealPct = %.2f, want ~66.7", got)
	}
	if s.SpinInherits != 1 {
		t.Fatalf("SpinInherits = %d, want 1", s.SpinInherits)
	}
	var acc Snapshot
	acc.Accumulate(s)
	acc.Accumulate(s)
	if acc.PutStealHits != 4 || acc.PutStealMisses != 2 || acc.SpinInherits != 2 {
		t.Fatalf("Accumulate dropped steal counters: %+v", acc)
	}
	m.Reset()
	if s := m.Snapshot(); s.PutStealHits != 0 || s.PutStealMisses != 0 || s.SpinInherits != 0 {
		t.Fatalf("Reset left steal counters: %+v", s)
	}
	// Nil collectors swallow records, as everywhere else in the package.
	var nilM *SEC
	nilM.RecordPutSteal(0, true)
	nilM.RecordSpinInherit(0)
	if (Snapshot{}).PutStealPct() != 0 {
		t.Fatal("PutStealPct on empty snapshot not 0")
	}
}
