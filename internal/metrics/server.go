package metrics

import (
	"sync/atomic"
	"time"

	"secstack/internal/pad"
)

// Server collects secd's serving-side instrumentation: a live-session
// gauge (connections that completed the handshake and hold engine
// handles), an in-flight operation gauge, a handshake-rejection
// counter, the robustness counters (slow-client evictions, recovered
// per-connection panics, client-reported retries), and a per-opcode
// count + latency histogram. Like *SEC, a nil *Server is valid and
// turns every method into a no-op.
type Server struct {
	sessions atomic.Int64 // live sessions (gauge)
	peak     atomic.Int64 // high-water mark of the sessions gauge
	rejected atomic.Int64 // handshakes refused with backpressure
	inflight atomic.Int64 // operations between OpStart and OpDone (gauge)
	evicted  atomic.Int64 // connections evicted on read-idle/write-stall deadlines
	panics   atomic.Int64 // per-connection panics recovered (session unwound, conn closed)
	retries  atomic.Int64 // retried ops clients reported via OpRetryMark
	_        [pad.CacheLine - 7*8]byte
	ops      []opStat
}

// opStat is one opcode's counter block.
type opStat struct {
	count atomic.Int64
	lat   LatencyHist
}

// NewServer returns a collector with one latency histogram per opcode
// in [0, numOps).
func NewServer(numOps int) *Server {
	if numOps < 1 {
		numOps = 1
	}
	return &Server{ops: make([]opStat, numOps)}
}

// SessionStart moves the live-session gauge up, tracking the peak.
func (m *Server) SessionStart() {
	if m == nil {
		return
	}
	n := m.sessions.Add(1)
	for {
		p := m.peak.Load()
		if n <= p || m.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

// SessionEnd moves the live-session gauge down.
func (m *Server) SessionEnd() {
	if m == nil {
		return
	}
	m.sessions.Add(-1)
}

// Sessions returns the live-session gauge.
func (m *Server) Sessions() int64 {
	if m == nil {
		return 0
	}
	return m.sessions.Load()
}

// PeakSessions returns the gauge's high-water mark.
func (m *Server) PeakSessions() int64 {
	if m == nil {
		return 0
	}
	return m.peak.Load()
}

// RecordReject tallies one handshake refused with backpressure (the
// engines' TryRegister said MaxThreads sessions are live).
func (m *Server) RecordReject() {
	if m == nil {
		return
	}
	m.rejected.Add(1)
}

// Rejected returns the backpressure-rejection count.
func (m *Server) Rejected() int64 {
	if m == nil {
		return 0
	}
	return m.rejected.Load()
}

// RecordEviction tallies one connection evicted by a serving deadline:
// a session that sent nothing for the read-idle budget (half-open or
// stalled peer) or whose reply flush blocked past the write-stall
// budget (a client that stopped reading).
func (m *Server) RecordEviction() {
	if m == nil {
		return
	}
	m.evicted.Add(1)
}

// Evictions returns the deadline-eviction count.
func (m *Server) Evictions() int64 {
	if m == nil {
		return 0
	}
	return m.evicted.Load()
}

// RecordPanic tallies one per-connection panic the server recovered:
// the connection was closed and its engine handles released instead of
// the process dying.
func (m *Server) RecordPanic() {
	if m == nil {
		return
	}
	m.panics.Add(1)
}

// PanicsRecovered returns the recovered-panic count.
func (m *Server) PanicsRecovered() int64 {
	if m == nil {
		return 0
	}
	return m.panics.Load()
}

// RecordRetries adds n client-reported retried operations (the
// OpRetryMark telemetry a reconnecting client sends before replaying).
func (m *Server) RecordRetries(n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.retries.Add(n)
}

// RetriesObserved returns the total retried ops clients have reported.
func (m *Server) RetriesObserved() int64 {
	if m == nil {
		return 0
	}
	return m.retries.Load()
}

// ServerSnapshot is one coherent-enough read of the serving gauges and
// counters (each field is an atomic load; the set is not a single
// linearizable cut, which drain-stats reporting does not need).
type ServerSnapshot struct {
	Sessions        int64 // live-session gauge
	PeakSessions    int64 // gauge high-water mark
	Rejected        int64 // handshakes refused with backpressure
	InFlight        int64 // in-flight operation gauge
	Evictions       int64 // connections evicted on serving deadlines
	PanicsRecovered int64 // per-connection panics recovered
	RetriesObserved int64 // client-reported retried ops
	TotalOps        int64 // sum of per-opcode counts
}

// Snapshot reads the serving counters; zero value on a nil collector.
func (m *Server) Snapshot() ServerSnapshot {
	if m == nil {
		return ServerSnapshot{}
	}
	return ServerSnapshot{
		Sessions:        m.sessions.Load(),
		PeakSessions:    m.peak.Load(),
		Rejected:        m.rejected.Load(),
		InFlight:        m.inflight.Load(),
		Evictions:       m.evicted.Load(),
		PanicsRecovered: m.panics.Load(),
		RetriesObserved: m.retries.Load(),
		TotalOps:        m.TotalOps(),
	}
}

// OpStart moves the in-flight gauge up as an operation begins
// executing against the engines.
func (m *Server) OpStart() {
	if m == nil {
		return
	}
	m.inflight.Add(1)
}

// OpDone moves the in-flight gauge down and records the operation's
// service latency against its opcode. Out-of-range opcodes are
// dropped rather than panicking - the wire decoder rejects them
// before execution, so they can only appear through a caller bug.
func (m *Server) OpDone(op int, d time.Duration) {
	if m == nil {
		return
	}
	m.inflight.Add(-1)
	if op < 0 || op >= len(m.ops) {
		return
	}
	s := &m.ops[op]
	s.count.Add(1)
	s.lat.Record(d)
}

// InFlight returns the in-flight operation gauge.
func (m *Server) InFlight() int64 {
	if m == nil {
		return 0
	}
	return m.inflight.Load()
}

// OpStats is one opcode's served summary.
type OpStats struct {
	Count int64
	P50   time.Duration
	P99   time.Duration
}

// Op returns the summary for one opcode (zero value when out of range
// or nothing recorded).
func (m *Server) Op(op int) OpStats {
	if m == nil || op < 0 || op >= len(m.ops) {
		return OpStats{}
	}
	s := &m.ops[op]
	return OpStats{
		Count: s.count.Load(),
		P50:   s.lat.Quantile(0.50),
		P99:   s.lat.Quantile(0.99),
	}
}

// TotalOps sums the per-opcode counts.
func (m *Server) TotalOps() int64 {
	if m == nil {
		return 0
	}
	var total int64
	for i := range m.ops {
		total += m.ops[i].count.Load()
	}
	return total
}
