package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestLatencyHistBucketsMonotone(t *testing.T) {
	// Bucket indices must be monotone in the value and within range for
	// the full int64 domain.
	prev := -1
	for _, ns := range []int64{0, 1, 7, 8, 9, 15, 16, 31, 100, 1000, 1e6, 1e9, 1e12, math.MaxInt64} {
		idx := latBucket(ns)
		if idx < 0 || idx >= latBuckets {
			t.Fatalf("latBucket(%d) = %d out of range [0, %d)", ns, idx, latBuckets)
		}
		if idx < prev {
			t.Fatalf("latBucket(%d) = %d < previous %d: not monotone", ns, idx, prev)
		}
		prev = idx
	}
	// Small values are exact.
	for ns := int64(0); ns < 2*latSub; ns++ {
		if got := bucketValue(latBucket(ns)); got != time.Duration(ns) {
			t.Fatalf("small bucket not exact: %d -> %v", ns, got)
		}
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zero")
	}
	// 1000 observations at 1us, 10 at 1ms: p50 ~ 1us, p99.9+ ~ 1ms.
	for i := 0; i < 1000; i++ {
		h.Record(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Millisecond)
	}
	if c := h.Count(); c != 1010 {
		t.Fatalf("Count = %d, want 1010", c)
	}
	p50 := h.Quantile(0.50)
	if p50 < 800*time.Nanosecond || p50 > 1200*time.Nanosecond {
		t.Fatalf("p50 = %v, want ~1us", p50)
	}
	p999 := h.Quantile(0.9999)
	if p999 < 800*time.Microsecond || p999 > 1200*time.Microsecond {
		t.Fatalf("p99.99 = %v, want ~1ms", p999)
	}
	// Quantiles are clamped, not panicking, outside [0,1].
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("clamped quantiles out of order")
	}
	// Negative durations clamp to zero instead of indexing negatively.
	h.Record(-time.Second)
	if h.Count() != 1011 {
		t.Fatal("negative duration not recorded")
	}
}

func TestLatencyHistMerge(t *testing.T) {
	var a, b LatencyHist
	a.Record(time.Microsecond)
	b.Record(time.Millisecond)
	b.Record(time.Millisecond)
	a.Merge(&b)
	if c := a.Count(); c != 3 {
		t.Fatalf("merged Count = %d, want 3", c)
	}
	if p99 := a.Quantile(0.99); p99 < 800*time.Microsecond {
		t.Fatalf("merged p99 = %v, want ~1ms", p99)
	}
	// nil receivers and arguments are no-ops.
	var nh *LatencyHist
	nh.Record(time.Second)
	nh.Merge(&a)
	a.Merge(nil)
	if nh.Count() != 0 || nh.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should stay empty")
	}
}

func TestServerCollector(t *testing.T) {
	m := NewServer(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.SessionStart()
			for i := 0; i < 100; i++ {
				m.OpStart()
				m.OpDone(i%4, time.Duration(i)*time.Microsecond)
			}
			m.SessionEnd()
		}()
	}
	wg.Wait()
	if got := m.Sessions(); got != 0 {
		t.Fatalf("Sessions = %d after all ended, want 0", got)
	}
	if m.PeakSessions() < 1 || m.PeakSessions() > 8 {
		t.Fatalf("PeakSessions = %d, want in [1,8]", m.PeakSessions())
	}
	if got := m.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after all done, want 0", got)
	}
	if got := m.TotalOps(); got != 800 {
		t.Fatalf("TotalOps = %d, want 800", got)
	}
	op := m.Op(1)
	if op.Count != 200 || op.P50 <= 0 || op.P99 < op.P50 {
		t.Fatalf("Op(1) = %+v, want 200 ops with ordered quantiles", op)
	}
	m.RecordReject()
	if m.Rejected() != 1 {
		t.Fatal("Rejected not counted")
	}
	// Out-of-range opcodes are dropped, not panics.
	m.OpStart()
	m.OpDone(99, time.Second)
	m.OpDone(-1, time.Second)

	// A nil collector is a valid no-op, as with *SEC.
	var nm *Server
	nm.SessionStart()
	nm.SessionEnd()
	nm.OpStart()
	nm.OpDone(0, time.Second)
	nm.RecordReject()
	nm.RecordEviction()
	nm.RecordPanic()
	nm.RecordRetries(3)
	if nm.Sessions() != 0 || nm.PeakSessions() != 0 || nm.InFlight() != 0 ||
		nm.TotalOps() != 0 || nm.Rejected() != 0 || nm.Op(0) != (OpStats{}) ||
		nm.Evictions() != 0 || nm.PanicsRecovered() != 0 || nm.RetriesObserved() != 0 ||
		nm.Snapshot() != (ServerSnapshot{}) {
		t.Fatal("nil Server should report zeros")
	}
}

// TestServerRobustnessCounters covers the serving-path hardening
// telemetry: deadline evictions, recovered per-connection panics and
// client-reported retries, plus the merged Snapshot view secd's
// drain-stats line prints.
func TestServerRobustnessCounters(t *testing.T) {
	m := NewServer(2)
	m.RecordEviction()
	m.RecordEviction()
	m.RecordPanic()
	m.RecordRetries(5)
	m.RecordRetries(0)  // non-positive reports are dropped
	m.RecordRetries(-7) // (a hostile RetryMark arg must not rewind the counter)
	if got := m.Evictions(); got != 2 {
		t.Fatalf("Evictions = %d, want 2", got)
	}
	if got := m.PanicsRecovered(); got != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", got)
	}
	if got := m.RetriesObserved(); got != 5 {
		t.Fatalf("RetriesObserved = %d, want 5", got)
	}
	m.SessionStart()
	m.OpStart()
	m.OpDone(1, time.Millisecond)
	s := m.Snapshot()
	want := ServerSnapshot{
		Sessions: 1, PeakSessions: 1, Rejected: 0, InFlight: 0,
		Evictions: 2, PanicsRecovered: 1, RetriesObserved: 5, TotalOps: 1,
	}
	if s != want {
		t.Fatalf("Snapshot = %+v, want %+v", s, want)
	}
}

func TestGetStealCounters(t *testing.T) {
	m := NewSEC(2)
	m.RecordGetSteal(1, true)
	m.RecordGetSteal(1, true)
	m.RecordGetSteal(0, false)
	s := m.Snapshot()
	if s.GetStealHits != 2 || s.GetStealMisses != 1 {
		t.Fatalf("get-steal counters = %d/%d, want 2/1", s.GetStealHits, s.GetStealMisses)
	}
	if pct := s.GetStealPct(); math.Abs(pct-100*2.0/3.0) > 1e-9 {
		t.Fatalf("GetStealPct = %v", pct)
	}
	var acc Snapshot
	acc.Accumulate(s)
	acc.Accumulate(s)
	if acc.GetStealHits != 4 || acc.GetStealMisses != 2 {
		t.Fatalf("accumulated get-steal = %d/%d", acc.GetStealHits, acc.GetStealMisses)
	}
	m.Reset()
	if s := m.Snapshot(); s.GetStealHits != 0 || s.GetStealMisses != 0 {
		t.Fatal("Reset did not clear get-steal counters")
	}
	if (Snapshot{}).GetStealPct() != 0 {
		t.Fatal("empty GetStealPct should be 0")
	}
	var nilSEC *SEC
	nilSEC.RecordGetSteal(0, true) // no-op, no panic
}
