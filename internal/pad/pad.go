// Package pad centralizes the cache-line geometry every padded
// structure in the repository assumes. The constant used to be
// duplicated as a private `cacheLine` in internal/metrics and as magic
// `[56]byte` paddings in internal/agg and internal/ebr; drifting copies
// of a false-sharing constant are exactly the kind of bug that never
// shows up in tests, only in perf counters.
package pad

// CacheLine is the assumed cache line (and false-sharing granularity)
// in bytes. 64 is correct for every x86 and most arm64 parts; Apple
// silicon's 128-byte lines would only make the paddings half-strength,
// never unsafe.
const CacheLine = 64
