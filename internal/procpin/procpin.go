// Package procpin exposes the runtime's processor-pinning pair, the
// same primitive sync.Pool uses to give each P a private poolLocal.
//
// Pin returns the id of the P the calling goroutine occupies and
// disables preemption until Unpin, so the id cannot go stale while the
// caller indexes a per-P slot array. The window between Pin and Unpin
// must stay tiny and allocation-free: while it is open the scheduler
// cannot run anything else on this P, and a GC can be held up waiting
// for it. Callers index, swap one pointer, and unpin - the structure
// operation itself runs unpinned.
//
// The identity is advisory the moment Unpin returns: the goroutine may
// migrate immediately after. Correctness must never depend on staying
// on the same P - only locality (cache-warm handles, same-aggregator
// affinity) does.
package procpin

import (
	_ "unsafe" // for go:linkname
)

// Pin disables preemption and returns the current P's id, in
// [0, GOMAXPROCS). Must be paired with Unpin.
//
//go:linkname Pin runtime.procPin
func Pin() int

// Unpin re-enables preemption.
//
//go:linkname Unpin runtime.procUnpin
func Unpin()
