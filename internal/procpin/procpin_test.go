package procpin

import (
	"runtime"
	"sync"
	"testing"
)

func TestPinReturnsValidP(t *testing.T) {
	p := Pin()
	n := runtime.GOMAXPROCS(0)
	Unpin()
	if p < 0 || p >= n {
		t.Fatalf("Pin() = %d, want in [0, %d)", p, n)
	}
}

// TestPinHammer drives Pin/Unpin from more goroutines than Ps so the
// scheduler migrates them across pins; every observed id must stay in
// range and the race detector must stay quiet.
func TestPinHammer(t *testing.T) {
	n := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for g := 0; g < 4*n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				p := Pin()
				ok := p >= 0 && p < n
				Unpin()
				if !ok {
					t.Errorf("Pin() = %d out of range [0, %d)", p, n)
					return
				}
				if i%1024 == 0 {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
}
