// Package secclient is the hardened client side of the secd wire
// protocol: one connection, a handshake, and a Do loop with
// per-request deadlines, automatic reconnect, and bounded retry with
// exponential backoff and jitter. secload is built on it; anything
// else that talks to secd should be too.
//
// Retry semantics are at-most-once per attempt but not end-to-end
// exactly-once: if a request was written and the connection died
// before the reply arrived, the server may or may not have applied
// the operation, and a retry can apply it twice. The client counts
// every such replay and reports the tally to the server via
// OpRetryMark after reconnecting, so duplicate exposure is measurable
// (secd's RetriesObserved counter, the drain-stats line, and the
// chaos smoke all read it). Callers that need idempotence must encode
// it in the operation itself.
package secclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"secstack/internal/wire"
	"secstack/internal/xrand"
)

// ErrBusy is returned by Dial when the server refuses the handshake
// with backpressure (MaxSessions live sessions). Dial does not retry
// it: callers like secload count busy rungs rather than waiting.
var ErrBusy = errors.New("secclient: server busy")

// ErrLost is wrapped into Do's error once the retry budget is
// exhausted: the operation was abandoned without an acknowledgment.
var ErrLost = errors.New("secclient: operation lost")

// Config parameterises a client. Zero values take the defaults noted
// on each field; negative timeouts disable the respective deadline.
type Config struct {
	Addr           string
	DialTimeout    time.Duration // per-connect budget (default 5s)
	RequestTimeout time.Duration // per-attempt write+read budget (default 10s)
	Retries        int           // extra attempts after the first (default 3; negative: none)
	BackoffBase    time.Duration // first backoff step (default 2ms)
	BackoffMax     time.Duration // backoff ceiling (default 200ms)
	Seed           uint64        // jitter RNG seed (default 0x5ecc)
}

func (cfg Config) withDefaults() Config {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 3
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 2 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 200 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5ecc
	}
	return cfg
}

// Stats counts what the retry machinery did. Lost is the one that
// must stay zero under chaos: operations abandoned after the budget.
type Stats struct {
	Dials     int64 // successful handshakes, including the first
	Redials   int64 // successful handshakes after a connection loss
	Retries   int64 // attempts re-sent after a failed one
	BusyWaits int64 // reconnects refused with backpressure mid-retry
	Lost      int64 // operations abandoned with the budget exhausted
}

// Client is a single-connection secd client. It is not safe for
// concurrent use: one goroutine, one Client, as with the underlying
// one-reply-per-request wire protocol.
type Client struct {
	cfg    Config
	rng    *xrand.State
	cn     net.Conn
	br     *bufio.Reader
	buf    []byte
	banner string
	// pendingMark is the number of replayed attempts not yet reported
	// to the server via OpRetryMark.
	pendingMark int64
	stats       Stats
}

// Dial connects and performs the wire handshake eagerly, so callers
// learn about backpressure (ErrBusy) and dead servers immediately
// instead of on the first Do.
func Dial(cfg Config) (*Client, error) {
	c := &Client{cfg: cfg.withDefaults()}
	c.rng = xrand.New(c.cfg.Seed)
	if busy, err := c.connect(); err != nil {
		return nil, err
	} else if busy {
		return nil, ErrBusy
	}
	return c, nil
}

// Banner returns the server's handshake banner.
func (c *Client) Banner() string { return c.banner }

// Stats returns the retry counters so far.
func (c *Client) Stats() Stats { return c.stats }

// Close releases the connection. The client is dead afterwards.
func (c *Client) Close() error {
	if c.cn == nil {
		return nil
	}
	err := c.cn.Close()
	c.cn, c.br = nil, nil
	return err
}

// connect dials and handshakes. busy=true means the server refused
// the session with backpressure (and the conn is already closed).
func (c *Client) connect() (busy bool, err error) {
	cn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return false, err
	}
	if tc, ok := cn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if c.cfg.RequestTimeout > 0 {
		cn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout))
	}
	if _, err := cn.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpHello, Arg: wire.HelloArg()})); err != nil {
		cn.Close()
		return false, err
	}
	br := bufio.NewReader(cn)
	rep, err := wire.ReadReply(br)
	if err != nil {
		cn.Close()
		return false, err
	}
	switch rep.Status {
	case wire.StatusBusy:
		cn.Close()
		return true, nil
	case wire.StatusOK:
	default:
		cn.Close()
		return false, fmt.Errorf("secclient: handshake status %v", rep.Status)
	}
	cn.SetDeadline(time.Time{})
	c.cn, c.br, c.banner = cn, br, string(rep.Banner)
	c.stats.Dials++
	return false, nil
}

// drop abandons the current connection after a failure.
func (c *Client) drop() {
	if c.cn != nil {
		c.cn.Close()
		c.cn, c.br = nil, nil
	}
}

// Do issues one operation and returns its reply, reconnecting and
// retrying per the config. StatusShutdown (the server's drain
// goodbye) and any transport failure count against the retry budget;
// protocol statuses - OK, Empty, Contended, BadRequest - are results,
// returned to the caller as-is.
func (c *Client) Do(op wire.Op, arg int64) (wire.Reply, error) {
	var lastErr error
	attempts := 1 + c.cfg.Retries
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.stats.Retries++
			c.pendingMark++
			c.backoff(attempt)
		}
		if c.cn == nil {
			busy, err := c.connect()
			if busy {
				c.stats.BusyWaits++
				lastErr = ErrBusy
				continue
			}
			if err != nil {
				lastErr = err
				continue
			}
			c.stats.Redials++
			if c.reportMark(); c.cn == nil {
				// The mark report failed and dropped the fresh conn;
				// burn the attempt and reconnect again.
				lastErr = fmt.Errorf("secclient: retry-mark report failed")
				continue
			}
		}
		rep, err := c.roundTrip(op, arg)
		if err != nil {
			lastErr = err
			c.drop()
			continue
		}
		if rep.Status == wire.StatusShutdown {
			lastErr = fmt.Errorf("secclient: server draining")
			c.drop()
			continue
		}
		return rep, nil
	}
	c.stats.Lost++
	return wire.Reply{}, fmt.Errorf("%w: %v after %d attempts: %v", ErrLost, op, attempts, lastErr)
}

// roundTrip writes one request and reads its reply under the
// per-attempt deadline.
func (c *Client) roundTrip(op wire.Op, arg int64) (wire.Reply, error) {
	if c.cfg.RequestTimeout > 0 {
		c.cn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout))
	}
	c.buf = wire.AppendRequest(c.buf[:0], wire.Request{Op: op, Arg: arg})
	if _, err := c.cn.Write(c.buf); err != nil {
		return wire.Reply{}, err
	}
	return wire.ReadReply(c.br)
}

// reportMark tells the freshly-reconnected server how many attempts
// this client has replayed (OpRetryMark telemetry). Best-effort: a
// failure here just drops the connection and leaves the tally pending
// for the next reconnect.
func (c *Client) reportMark() {
	if c.pendingMark == 0 {
		return
	}
	rep, err := c.roundTrip(wire.OpRetryMark, c.pendingMark)
	if err != nil || rep.Status != wire.StatusOK {
		c.drop()
		return
	}
	c.pendingMark = 0
}

// backoff sleeps the attempt's exponential budget with equal jitter:
// half fixed, half uniformly random, capped at BackoffMax.
func (c *Client) backoff(attempt int) {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d <= 0 || d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	half := d / 2
	sleep := half + time.Duration(c.rng.Int63())%(half+1)
	time.Sleep(sleep)
}
