package secclient

import (
	"errors"
	"net"
	"testing"
	"time"

	"secstack/internal/faultpoint"
	"secstack/internal/secd"
	"secstack/internal/wire"
	"secstack/internal/xrand"
)

// startServer runs a secd server on a loopback listener and returns
// it with its address.
func startServer(t *testing.T, cfg secd.Config) (*secd.Server, string) {
	t.Helper()
	s, err := secd.New(cfg)
	if err != nil {
		t.Fatalf("secd.New: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(lis) }()
	t.Cleanup(func() {
		if err := s.Shutdown(2 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return s, lis.Addr().String()
}

// fastCfg keeps retry budgets small so failure tests stay quick.
func fastCfg(addr string) Config {
	return Config{
		Addr:           addr,
		DialTimeout:    2 * time.Second,
		RequestTimeout: 2 * time.Second,
		Retries:        3,
		BackoffBase:    time.Millisecond,
		BackoffMax:     8 * time.Millisecond,
	}
}

func TestDialAndDo(t *testing.T) {
	_, addr := startServer(t, secd.Config{MaxSessions: 2})
	c, err := Dial(fastCfg(addr))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.Banner() == "" {
		t.Fatal("empty handshake banner")
	}
	if rep, err := c.Do(wire.OpFunnelAdd, 7); err != nil || rep.Status != wire.StatusOK {
		t.Fatalf("FunnelAdd: %+v %v", rep, err)
	}
	if rep, err := c.Do(wire.OpFunnelLoad, 0); err != nil || rep.Value != 7 {
		t.Fatalf("FunnelLoad: %+v %v", rep, err)
	}
	if rep, err := c.Do(wire.OpStackPop, 0); err != nil || rep.Status != wire.StatusEmpty {
		t.Fatalf("empty pop should surface StatusEmpty, got %+v %v", rep, err)
	}
	st := c.Stats()
	if st.Dials != 1 || st.Redials != 0 || st.Retries != 0 || st.Lost != 0 {
		t.Fatalf("stats = %+v, want one clean dial", st)
	}
}

func TestDialBusyIsImmediate(t *testing.T) {
	_, addr := startServer(t, secd.Config{MaxSessions: 1})
	holder, err := Dial(fastCfg(addr))
	if err != nil {
		t.Fatalf("holder dial: %v", err)
	}
	defer holder.Close()
	if _, err := Dial(fastCfg(addr)); !errors.Is(err, ErrBusy) {
		t.Fatalf("second dial = %v, want ErrBusy", err)
	}
}

// TestReconnectReplaysAndMarks: an injected server-side read fault
// kills the connection mid-stream; the client redials, reports the
// replay via OpRetryMark, and the retried op succeeds.
func TestReconnectReplaysAndMarks(t *testing.T) {
	defer faultpoint.Reset()
	s, addr := startServer(t, secd.Config{MaxSessions: 2})
	c, err := Dial(fastCfg(addr))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	faultpoint.Arm(secd.FPRead, faultpoint.Spec{Action: faultpoint.ActError, Count: 1})
	rep, err := c.Do(wire.OpFunnelAdd, 5)
	if err != nil || rep.Status != wire.StatusOK {
		t.Fatalf("Do across injected disconnect: %+v %v", rep, err)
	}
	st := c.Stats()
	if st.Redials != 1 || st.Retries != 1 || st.Lost != 0 {
		t.Fatalf("stats = %+v, want one redial and one retry", st)
	}
	if got := s.Metrics().RetriesObserved(); got != 1 {
		t.Fatalf("server RetriesObserved = %d, want 1 (the OpRetryMark)", got)
	}
	if got := s.Funnel().Load(); got != 5 {
		t.Fatalf("funnel = %d, want 5 (the op never executed before the fault)", got)
	}
}

// TestRequestTimeoutRetries: an injected exec delay outlasts the
// per-request budget once; the retry lands on the now-clean path.
func TestRequestTimeoutRetries(t *testing.T) {
	defer faultpoint.Reset()
	_, addr := startServer(t, secd.Config{MaxSessions: 2})
	cfg := fastCfg(addr)
	cfg.RequestTimeout = 100 * time.Millisecond
	c, err := Dial(cfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	faultpoint.Arm(secd.FPExec, faultpoint.Spec{Action: faultpoint.ActDelay, Delay: 400 * time.Millisecond, Count: 1})
	rep, err := c.Do(wire.OpStackPush, 9)
	if err != nil || rep.Status != wire.StatusOK {
		t.Fatalf("Do across injected stall: %+v %v", rep, err)
	}
	if st := c.Stats(); st.Retries < 1 || st.Lost != 0 {
		t.Fatalf("stats = %+v, want at least one retry and nothing lost", st)
	}
}

// TestBudgetExhaustedIsLost: with the server gone entirely, Do burns
// its budget and reports the op lost.
func TestBudgetExhaustedIsLost(t *testing.T) {
	s, addr := startServer(t, secd.Config{MaxSessions: 2})
	c, err := Dial(fastCfg(addr))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	// Kill the server out from under the client. Shutdown is
	// idempotent enough for the cleanup to re-run it.
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := c.Do(wire.OpStackPush, 1); !errors.Is(err, ErrLost) {
		t.Fatalf("Do against a dead server = %v, want ErrLost", err)
	}
	st := c.Stats()
	if st.Lost != 1 || st.Retries != 3 {
		t.Fatalf("stats = %+v, want Lost=1 Retries=3", st)
	}
}

// TestBackoffBounded: the jittered backoff never exceeds the cap and
// never goes negative, across the whole attempt range.
func TestBackoffBounded(t *testing.T) {
	cfg := Config{Addr: "127.0.0.1:1", BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond}.withDefaults()
	c := &Client{cfg: cfg}
	c.rng = xrand.New(1)
	for attempt := 1; attempt < 20; attempt++ {
		start := time.Now()
		c.backoff(attempt)
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Fatalf("backoff(%d) slept %v, cap is %v", attempt, d, cfg.BackoffMax)
		}
	}
}
