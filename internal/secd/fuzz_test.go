package secd

// FuzzServeConn drives the server read loop with arbitrary client
// bytes over a net.Pipe. Whatever arrives - truncated frames,
// oversized length prefixes, unknown opcodes, raw garbage - the
// handler must either answer StatusBadRequest or close the
// connection; it must never panic, never stall past its deadlines,
// and never leak a session.

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"secstack/internal/wire"
)

func FuzzServeConn(f *testing.F) {
	hello := wire.AppendRequest(nil, wire.Request{Op: wire.OpHello, Arg: wire.HelloArg()})
	push := wire.AppendRequest(nil, wire.Request{Op: wire.OpStackPush, Arg: 42})

	f.Add([]byte{})                                                  // immediate EOF
	f.Add(append(hello[:0:0], hello...))                             // clean handshake, then EOF
	f.Add(append(append([]byte{}, hello...), push...))               // handshake + one op
	f.Add(hello[:5])                                                 // truncated mid-frame
	f.Add(push)                                                      // op before handshake
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 0, 0, 0, 0, 0, 0, 0, 0}) // oversized length prefix
	f.Add([]byte{9, 0, 0, 0, 250, 0, 0, 0, 0, 0, 0, 0, 0})           // unknown opcode
	f.Add([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))               // wrong protocol entirely
	bad := append([]byte{}, hello...)
	binary.LittleEndian.PutUint64(bad[5:], 0xdeadbeef) // bad magic in the hello arg
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := New(Config{
			MaxSessions: 2,
			ReadIdle:    100 * time.Millisecond,
			WriteStall:  100 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		cli, srv := net.Pipe()
		s.mu.Lock()
		s.conns[srv] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		done := make(chan struct{})
		go func() { s.handle(srv); close(done) }()
		// Drain whatever the server says so its writes never block on us.
		go io.Copy(io.Discard, cli)

		cli.SetWriteDeadline(time.Now().Add(500 * time.Millisecond))
		cli.Write(data) // short writes are fine: a cut stream is part of the test
		cli.Close()

		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("handler stalled on %d-byte input", len(data))
		}
		if got := s.Metrics().Sessions(); got != 0 {
			t.Fatalf("session gauge = %d after connection closed, want 0", got)
		}
		if got := s.Metrics().InFlight(); got != 0 {
			t.Fatalf("in-flight gauge = %d after connection closed, want 0", got)
		}
	})
}
