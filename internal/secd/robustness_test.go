package secd

// Serving-path hardening tests (DESIGN.md §14): deadline evictions,
// per-connection panic isolation, the handshake partial-session
// unwind, and injected read/write faults. Most run the handler over a
// net.Pipe - a synchronous in-process duplex conn with deadline
// support - so every path is reached deterministically, without
// betting on scheduler or kernel-buffer timing.

import (
	"io"
	"net"
	"testing"
	"time"

	"secstack/internal/faultpoint"
	"secstack/internal/wire"
)

// serveConn runs s.handle on one end of an in-process pipe, returning
// the client end and a channel closed when the handler exits.
func serveConn(t *testing.T, s *Server) (net.Conn, chan struct{}) {
	t.Helper()
	cli, srv := net.Pipe()
	s.mu.Lock()
	s.conns[srv] = struct{}{}
	s.mu.Unlock()
	s.wg.Add(1)
	done := make(chan struct{})
	go func() { s.handle(srv); close(done) }()
	t.Cleanup(func() {
		cli.Close()
		waitDone(t, done)
	})
	return cli, done
}

func waitDone(t *testing.T, done chan struct{}) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not exit")
	}
}

// shake performs the wire handshake on a pipe client.
func shake(t *testing.T, cli net.Conn) wire.Reply {
	t.Helper()
	cli.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := cli.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpHello, Arg: wire.HelloArg()})); err != nil {
		t.Fatalf("hello write: %v", err)
	}
	rep, err := wire.ReadReply(cli)
	if err != nil {
		t.Fatalf("hello reply: %v", err)
	}
	return rep
}

// TestHandshakePanicUnwindsPartialSession is the session-leak
// regression for the handshake path: a panic injected between the
// first engine registration and the last must unwind the
// already-registered handles, so a full complement of sessions still
// fits afterwards and the gauge returns to zero.
func TestHandshakePanicUnwindsPartialSession(t *testing.T) {
	defer faultpoint.Reset()
	const maxSessions = 4
	s, err := New(Config{MaxSessions: maxSessions})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, site := range []string{FPRegisterPool, FPRegisterFunnel} {
		// Two panicking handshakes per site: were the partial handles
		// leaking, the complement check below would wedge at
		// maxSessions-2 slots.
		faultpoint.Arm(site, faultpoint.Spec{Action: faultpoint.ActPanic, Count: 2})
		for i := 0; i < 2; i++ {
			cli, done := serveConn(t, s)
			cli.SetDeadline(time.Now().Add(5 * time.Second))
			if _, err := cli.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpHello, Arg: wire.HelloArg()})); err != nil {
				t.Fatalf("%s hello %d: %v", site, i, err)
			}
			// The injected panic closes the conn without a reply.
			if _, err := wire.ReadReply(cli); err == nil {
				t.Fatalf("%s handshake %d: got a reply, want closed conn", site, i)
			}
			waitDone(t, done)
		}
		if got := faultpoint.Fires(site); got != 2 {
			t.Fatalf("%s fired %d times, want 2", site, got)
		}
		faultpoint.Disarm(site)
	}
	if got := s.Metrics().PanicsRecovered(); got != 4 {
		t.Fatalf("PanicsRecovered = %d, want 4", got)
	}
	if got := s.Metrics().Sessions(); got != 0 {
		t.Fatalf("session gauge = %d after panicking handshakes, want 0", got)
	}
	// Regression proper: every slot must still be available.
	for i := 0; i < maxSessions; i++ {
		cli, _ := serveConn(t, s)
		if rep := shake(t, cli); rep.Status != wire.StatusOK {
			t.Fatalf("post-panic handshake %d = %v (leaked handle slots)", i, rep.Status)
		}
	}
	if got := s.Metrics().Sessions(); got != maxSessions {
		t.Fatalf("session gauge = %d with a full complement, want %d", got, maxSessions)
	}
}

// TestHandshakeErrorUnwinds is the error twin: an injected
// registration error refuses the handshake with StatusBusy and leaks
// nothing.
func TestHandshakeErrorUnwinds(t *testing.T) {
	defer faultpoint.Reset()
	s, err := New(Config{MaxSessions: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	faultpoint.Arm(FPRegisterFunnel, faultpoint.Spec{Action: faultpoint.ActError, Count: 1})
	cli, _ := serveConn(t, s)
	if rep := shake(t, cli); rep.Status != wire.StatusBusy {
		t.Fatalf("injected-error handshake = %v, want busy", rep.Status)
	}
	if got := s.Metrics().Rejected(); got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	// Both slots still register cleanly.
	for i := 0; i < 2; i++ {
		cli, _ := serveConn(t, s)
		if rep := shake(t, cli); rep.Status != wire.StatusOK {
			t.Fatalf("handshake %d after injected error = %v", i, rep.Status)
		}
	}
}

// TestExecPanicIsolatedPerConnection injects a panic mid-operation:
// the connection dies, its handles recycle, other connections and the
// server live on.
func TestExecPanicIsolatedPerConnection(t *testing.T) {
	defer faultpoint.Reset()
	s, err := New(Config{MaxSessions: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	bystander, _ := serveConn(t, s)
	if rep := shake(t, bystander); rep.Status != wire.StatusOK {
		t.Fatalf("bystander handshake: %v", rep.Status)
	}

	victim, done := serveConn(t, s)
	if rep := shake(t, victim); rep.Status != wire.StatusOK {
		t.Fatalf("victim handshake: %v", rep.Status)
	}
	faultpoint.Arm(FPExec, faultpoint.Spec{Action: faultpoint.ActPanic, Count: 1})
	if _, err := victim.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpStackPush, Arg: 1})); err != nil {
		t.Fatalf("victim write: %v", err)
	}
	// The op never executes; the conn closes with no reply.
	victim.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadReply(victim); err == nil {
		t.Fatal("victim got a reply past an injected exec panic")
	}
	waitDone(t, done)
	if got := s.Metrics().PanicsRecovered(); got != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", got)
	}
	if got := s.Metrics().Sessions(); got != 1 {
		t.Fatalf("session gauge = %d after victim died, want 1 (bystander)", got)
	}
	// The bystander session is untouched.
	bystander.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := bystander.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpFunnelAdd, Arg: 7})); err != nil {
		t.Fatalf("bystander write: %v", err)
	}
	if rep, err := wire.ReadReply(bystander); err != nil || rep.Status != wire.StatusOK {
		t.Fatalf("bystander op after victim panic: %+v %v", rep, err)
	}
}

// TestReadIdleEviction: a session that completes the handshake and
// goes silent is evicted once the read-idle budget lapses, releasing
// its handles.
func TestReadIdleEviction(t *testing.T) {
	s, err := New(Config{MaxSessions: 2, ReadIdle: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cli, done := serveConn(t, s)
	if rep := shake(t, cli); rep.Status != wire.StatusOK {
		t.Fatalf("handshake: %v", rep.Status)
	}
	// Silence. The server must hang up on its own.
	waitDone(t, done)
	if got := s.Metrics().Evictions(); got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	if got := s.Metrics().Sessions(); got != 0 {
		t.Fatalf("session gauge = %d after eviction, want 0", got)
	}
	// The evicted client's read surfaces the close.
	cli.SetDeadline(time.Now().Add(time.Second))
	if _, err := wire.ReadReply(cli); err == nil {
		t.Fatal("evicted connection still readable")
	}
}

// TestHalfOpenHandshakeEvicted: a peer that connects and never sends
// the Hello is evicted by the same budget - no session is ever
// registered, so nothing can leak.
func TestHalfOpenHandshakeEvicted(t *testing.T) {
	s, err := New(Config{MaxSessions: 2, ReadIdle: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, done := serveConn(t, s)
	waitDone(t, done)
	if got := s.Metrics().Evictions(); got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	if got := s.Metrics().Sessions(); got != 0 {
		t.Fatalf("session gauge = %d, want 0", got)
	}
}

// TestWriteStallEviction: a client that sends a request and then stops
// reading stalls the reply flush; the write budget evicts it. The
// synchronous pipe makes the stall immediate and deterministic.
func TestWriteStallEviction(t *testing.T) {
	s, err := New(Config{MaxSessions: 2, WriteStall: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cli, done := serveConn(t, s)
	if rep := shake(t, cli); rep.Status != wire.StatusOK {
		t.Fatalf("handshake: %v", rep.Status)
	}
	if _, err := cli.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpFunnelAdd, Arg: 1})); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Never read the reply: the server's flush blocks on the pipe until
	// the write-stall budget fires.
	waitDone(t, done)
	if got := s.Metrics().Evictions(); got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	if got := s.Metrics().Sessions(); got != 0 {
		t.Fatalf("session gauge = %d after write-stall eviction, want 0", got)
	}
	// The operation itself executed - only the ack stalled.
	if got := s.Funnel().Load(); got != 1 {
		t.Fatalf("funnel = %d, want 1", got)
	}
}

// TestWriteDropLeavesOpApplied pins the at-most-once hole client
// retries must tolerate: an acked-op drop means the op ran but the
// client never hears, so a retry would apply it twice.
func TestWriteDropLeavesOpApplied(t *testing.T) {
	defer faultpoint.Reset()
	s, err := New(Config{MaxSessions: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cli, _ := serveConn(t, s)
	if rep := shake(t, cli); rep.Status != wire.StatusOK {
		t.Fatalf("handshake: %v", rep.Status)
	}
	faultpoint.Arm(FPWrite, faultpoint.Spec{Action: faultpoint.ActDrop, Count: 1})
	if _, err := cli.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpFunnelAdd, Arg: 5})); err != nil {
		t.Fatalf("write: %v", err)
	}
	// No ack arrives for the dropped reply.
	cli.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := wire.ReadReply(cli); err == nil {
		t.Fatal("got an ack for a dropped reply")
	}
	// But the op applied, and the connection still serves.
	if got := s.Funnel().Load(); got != 5 {
		t.Fatalf("funnel = %d after dropped ack, want 5", got)
	}
	cli.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := cli.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpFunnelLoad})); err != nil {
		t.Fatalf("follow-up write: %v", err)
	}
	if rep, err := wire.ReadReply(cli); err != nil || rep.Value != 5 {
		t.Fatalf("follow-up load = %+v %v, want 5", rep, err)
	}
}

// TestRetryMarkCountsRetries covers the OpRetryMark telemetry path.
func TestRetryMarkCountsRetries(t *testing.T) {
	s, err := New(Config{MaxSessions: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cli, _ := serveConn(t, s)
	if rep := shake(t, cli); rep.Status != wire.StatusOK {
		t.Fatalf("handshake: %v", rep.Status)
	}
	for _, arg := range []int64{3, -9, 2} {
		if _, err := cli.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpRetryMark, Arg: arg})); err != nil {
			t.Fatalf("retry mark write: %v", err)
		}
		if rep, err := wire.ReadReply(cli); err != nil || rep.Status != wire.StatusOK {
			t.Fatalf("retry mark reply: %+v %v", rep, err)
		}
	}
	if got := s.Metrics().RetriesObserved(); got != 5 {
		t.Fatalf("RetriesObserved = %d, want 5 (negative marks ignored)", got)
	}
}

// TestInjectedReadFaultRecyclesSession: an injected read-path fault is
// an abrupt disconnect; the session's slots recycle.
func TestInjectedReadFaultRecyclesSession(t *testing.T) {
	defer faultpoint.Reset()
	s, err := New(Config{MaxSessions: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	faultpoint.Arm(FPRead, faultpoint.Spec{Action: faultpoint.ActError, Count: 1})
	cli, done := serveConn(t, s)
	if rep := shake(t, cli); rep.Status != wire.StatusOK {
		t.Fatalf("handshake: %v", rep.Status)
	}
	if _, err := cli.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpStackPush, Arg: 1})); err != nil {
		t.Fatalf("write: %v", err)
	}
	waitDone(t, done)
	if got := s.Metrics().Sessions(); got != 0 {
		t.Fatalf("session gauge = %d, want 0", got)
	}
	// MaxSessions is 1: the slot must be free again.
	cli2, _ := serveConn(t, s)
	if rep := shake(t, cli2); rep.Status != wire.StatusOK {
		t.Fatalf("handshake after injected read fault = %v", rep.Status)
	}
}

// TestDrainDelayForceClose reaches Shutdown's force-close budget
// deterministically: an injected drain-path delay outlasts the budget,
// Shutdown reports the force close, and the gauge still ends at zero.
func TestDrainDelayForceClose(t *testing.T) {
	defer faultpoint.Reset()
	s, err := New(Config{MaxSessions: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(lis) }()
	c := dialClient(t, lis.Addr().String())
	defer c.close()
	c.do(t, wire.OpStackPush, 1)

	faultpoint.Arm(FPDrain, faultpoint.Spec{Action: faultpoint.ActDelay, Delay: 300 * time.Millisecond})
	if err := s.Shutdown(50 * time.Millisecond); err == nil {
		t.Fatal("Shutdown returned nil, want force-close error")
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve after forced drain: %v", err)
	}
	if got := s.Metrics().Sessions(); got != 0 {
		t.Fatalf("session gauge = %d after force close, want 0", got)
	}
}

// TestAcceptFaultClosesEarly: an injected accept-time failure closes
// the conn before it can handshake; the next connection is served.
func TestAcceptFaultClosesEarly(t *testing.T) {
	defer faultpoint.Reset()
	faultpoint.Arm(FPAccept, faultpoint.Spec{Action: faultpoint.ActError, Count: 1})
	_, addr := startServer(t, Config{})
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpHello, Arg: wire.HelloArg()}))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(conn); err != nil && err != io.EOF {
		t.Fatalf("read on injected-accept conn: %v", err)
	}
	c := dialClient(t, addr)
	defer c.close()
	if c.hi.Status != wire.StatusOK {
		t.Fatalf("handshake after accept fault = %v", c.hi.Status)
	}
}
