// Package secd implements the network front-end that exposes the
// repository's engines - a stack, a pool and a funnel - as a TCP
// service speaking the internal/wire framing (DESIGN.md §11).
//
// The server exists to turn connection fan-in into engine batches:
// thousands of concurrent RPCs dispatching into the sharded-batching
// engine become exactly the aggregation the freeze/combine protocol is
// built to absorb, so a few frozen batches serve whole swarms of
// clients. The mapping is one session per connection:
//
//   - The handshake TryRegisters one handle on each engine. MaxSessions
//     (the engines' MaxThreads) therefore bounds live connections, and
//     exhaustion is answered with a StatusBusy reply - protocol-level
//     backpressure instead of a crash.
//   - Each connection is served by one goroutine that reads, executes
//     and replies in order, so engine handles keep their single-
//     goroutine contract without locking.
//   - Replies are coalesced: they accumulate in a buffered writer that
//     is flushed only when no complete request is left in the read
//     buffer, so a pipelining client pays one syscall per burst, not
//     per op.
//   - Disconnects - clean or abrupt - close the session's handles,
//     recycling their thread-id slots; connection churn can never leak
//     MaxSessions capacity.
//   - Shutdown drains gracefully: the listener closes, every
//     connection's pending operation completes and flushes, each
//     client gets a StatusShutdown goodbye, and Shutdown returns once
//     the live-session gauge is back to zero.
//
// The serving path is hardened against misbehaving clients and
// injected faults (DESIGN.md §14): every read carries an idle deadline
// and every flush a write-stall budget, so half-open or stalled peers
// are evicted instead of holding session slots forever; a panic
// anywhere in a connection's handler - handshake included - is
// recovered per connection, closing the conn and releasing all of the
// session's engine handles so thread-id slots recycle; and the named
// faultpoint sites below let tests and chaos drivers reach each of
// those paths deterministically.
package secd

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"secstack/funnel"
	"secstack/internal/faultpoint"
	"secstack/internal/metrics"
	"secstack/internal/wire"
	"secstack/pool"
	"secstack/stack"
)

// The server's fault-injection sites (internal/faultpoint). Disarmed -
// the production state - each is one atomic load.
const (
	// FPAccept fires right after Accept, before the connection joins
	// the drain set: the server closes it immediately (an accept-time
	// resource failure).
	FPAccept = "secd.accept"
	// FPRegisterPool and FPRegisterFunnel fire between the session's
	// engine registrations - after the stack handle exists, and after
	// the pool handle exists, respectively. ActError refuses the
	// handshake with StatusBusy; ActPanic exercises the partial-session
	// unwind (no handle may leak).
	FPRegisterPool   = "secd.register.pool"
	FPRegisterFunnel = "secd.register.funnel"
	// FPRead fires after each successfully decoded request; any fault
	// is treated as an abrupt disconnect (ActPanic instead exercises
	// the per-connection recovery).
	FPRead = "secd.read"
	// FPExec fires just before a request executes against the engines.
	// ActPanic is the canonical mid-operation crash; other faults close
	// the connection before the op runs (so the client never gets an
	// ack and must retry).
	FPExec = "secd.exec"
	// FPWrite fires before a reply is written. ActDrop executes the op
	// but silently discards the ack - the at-most-once hole client
	// retries must tolerate; other faults close the connection
	// mid-stream.
	FPWrite = "secd.write"
	// FPDrain fires in the drain goodbye path (ActDelay stretches the
	// drain so Shutdown's force-close budget is reachable in tests).
	FPDrain = "secd.drain"
)

// Config sizes the served engines. The zero value is usable: SEC with
// the paper's defaults, 256 sessions, 4 pool shards.
type Config struct {
	// Algorithm is the served stack algorithm (default SEC). The pool
	// and funnel always run on the SEC engine.
	Algorithm stack.Algorithm
	// MaxSessions bounds concurrently live connections; it is the
	// MaxThreads of every engine (default 256). Handshakes beyond it
	// receive StatusBusy.
	MaxSessions int
	// Aggregators is the stack's and funnel's shard count (default 2,
	// the paper's default).
	Aggregators int
	// Shards is the pool's shard count (default 4).
	Shards int
	// Adaptive enables the engines' contention adaptivity and batch
	// recycling (DESIGN.md §8): idle connections cost one CAS per op,
	// fan-in freezes batches. On by default in cmd/secd.
	Adaptive bool
	// Elastic enables the pool's elastic shard controller (Shards
	// becomes the ceiling) and wires the server's live-session gauge in
	// as its external grow signal, so a connection wave widens the pool
	// before steal convoys form (DESIGN.md §13).
	Elastic bool
	// ReadIdle is the per-connection read-idle budget: a session that
	// sends no request for this long - a half-open peer, a stalled
	// client - is evicted, releasing its engine handles (counted in
	// Metrics().Evictions()). Default 2m; negative disables.
	ReadIdle time.Duration
	// WriteStall is the per-flush write budget: a connection whose
	// client stops reading long enough to backpressure a reply flush
	// past this budget is evicted. Default 10s; negative disables.
	WriteStall time.Duration
}

func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = stack.SEC
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.Aggregators <= 0 {
		c.Aggregators = 2
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.ReadIdle == 0 {
		c.ReadIdle = 2 * time.Minute
	}
	if c.ReadIdle < 0 {
		c.ReadIdle = 0
	}
	if c.WriteStall == 0 {
		c.WriteStall = 10 * time.Second
	}
	if c.WriteStall < 0 {
		c.WriteStall = 0
	}
	return c
}

// Server fronts one stack, one pool and one funnel instance. Construct
// with New, start with Serve or ListenAndServe, stop with Shutdown.
type Server struct {
	cfg    Config
	banner string
	st     stack.Stack[int64]
	pl     *pool.Pool[int64]
	fn     *funnel.Funnel
	m      *metrics.Server

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup // one count per accepted connection
}

// New builds the engines and returns an unstarted server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	common := []stack.Option{
		stack.WithMaxThreads(cfg.MaxSessions),
		stack.WithAggregators(cfg.Aggregators),
	}
	if cfg.Adaptive {
		common = append(common,
			stack.WithAdaptive(true),
			stack.WithBatchRecycling(true),
			stack.WithRecycling(),
		)
	}
	st, err := stack.New[int64](cfg.Algorithm, common...)
	if err != nil {
		return nil, fmt.Errorf("secd: %w", err)
	}
	poolOpts := append([]pool.Option{pool.WithShards(cfg.Shards)}, common...)
	if cfg.Elastic {
		poolOpts = append(poolOpts, pool.WithElasticShards(true))
	}
	fnOpts := append([]funnel.Option{}, common...)
	s := &Server{
		cfg:   cfg,
		st:    st,
		pl:    pool.New[int64](poolOpts...),
		fn:    funnel.New(fnOpts...),
		m:     metrics.NewServer(wire.NumOps),
		conns: make(map[net.Conn]struct{}),
	}
	if cfg.Elastic {
		// One session per connection, so the live-session gauge is the
		// offered parallelism: the controller grows the pool toward the
		// connection count without waiting for steal misses.
		s.pl.SetLoadSignal(func() int { return int(s.m.Sessions()) })
	}
	s.banner = Banner(cfg)
	return s, nil
}

// Banner renders the handshake banner for cfg. The registry= field
// lists stack.Algorithms() verbatim - the registry package is the
// single source of truth, shared with secbench/seccheck's -list pass -
// so a client can discover what a rebuilt server could serve.
func Banner(cfg Config) string {
	cfg = cfg.withDefaults()
	names := make([]string, 0, len(stack.Algorithms()))
	for _, a := range stack.Algorithms() {
		names = append(names, string(a))
	}
	return fmt.Sprintf("secd/%d alg=%s registry=%s maxsessions=%d shards=%d",
		wire.Version, cfg.Algorithm, strings.Join(names, ","), cfg.MaxSessions, cfg.Shards)
}

// Metrics returns the serving-side collector: live-session and
// in-flight gauges, rejection counter, per-op latency.
func (s *Server) Metrics() *metrics.Server { return s.m }

// Funnel returns the served funnel, whose counter doubles as the
// service's rate-limiter state; tests and embedders read it directly.
func (s *Server) Funnel() *funnel.Funnel { return s.fn }

// Addr returns the listening address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// ListenAndServe listens on addr (":7425"-style) and serves until
// Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until Shutdown closes it; it
// returns nil after a graceful drain, or the first accept error
// otherwise.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lis.Close()
		return fmt.Errorf("secd: server already shut down")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		if faultpoint.Hit(FPAccept) != nil {
			// Injected accept-time failure: the conn never joins the
			// drain set; the client sees an immediate close and retries.
			conn.Close()
			continue
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Shutdown drains the server: no new connections, every live
// connection finishes its in-flight operation, flushes its replies,
// receives a StatusShutdown goodbye and closes - recycling its
// engine handles. It returns nil once every session is gone, or an
// error if timeout passed first (connections are then force-closed).
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	s.draining = true
	lis := s.lis
	for c := range s.conns {
		// Interrupt blocked reads; the handler sees a deadline error,
		// not a mid-frame state, because requests are read whole.
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		s.mu.Lock()
		n := len(s.conns)
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return fmt.Errorf("secd: drain timed out, force-closed %d connections", n)
	}
}

// session is one connection's engine handles, registered at handshake
// and closed on disconnect so the thread-id slots recycle.
type session struct {
	st stack.Handle[int64]
	pl *pool.Handle[int64]
	fn *funnel.Handle
}

// register maps a connection onto the engines, unwinding cleanly on
// exhaustion so a refused handshake leaks nothing. The unwind also
// covers panics: a crash between the first TryRegister and the last -
// reachable via the FPRegister* sites - closes every handle already
// taken before the panic continues to the per-connection recovery, so
// a failed handshake can never leak thread-id slots toward MaxThreads
// exhaustion.
func (s *Server) register() (_ *session, err error) {
	sess := &session{}
	defer func() {
		if r := recover(); r != nil {
			sess.close()
			panic(r)
		}
	}()
	if sess.st, err = s.st.TryRegister(); err != nil {
		return nil, err
	}
	if err = faultpoint.Hit(FPRegisterPool); err == nil {
		sess.pl, err = s.pl.TryRegister()
	}
	if err != nil {
		sess.close()
		return nil, err
	}
	if err = faultpoint.Hit(FPRegisterFunnel); err == nil {
		sess.fn, err = s.fn.TryRegister()
	}
	if err != nil {
		sess.close()
		return nil, err
	}
	return sess, nil
}

// close releases whichever engine handles the session holds; partial
// sessions (a handshake that failed or panicked midway) are fine.
// Idempotent: each handle's Close already is.
func (sess *session) close() {
	if sess.fn != nil {
		sess.fn.Close()
	}
	if sess.pl != nil {
		sess.pl.Close()
	}
	if sess.st != nil {
		sess.st.Close()
	}
}

// removeConn drops conn from the drain set.
func (s *Server) removeConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// handle serves one connection: handshake, then read/execute/reply in
// order until disconnect, eviction or drain.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		// Per-connection panic isolation: by the time this recover runs,
		// the deferred session close and conn close registered below it
		// have already released every engine handle and the socket, so a
		// panicking connection - injected or real - costs the process one
		// counter tick, never a thread-id slot.
		if r := recover(); r != nil {
			s.m.RecordPanic()
		}
	}()
	defer s.removeConn(conn)
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // frames are tiny and flushed deliberately
	}
	br := bufio.NewReaderSize(conn, 4096)
	bw := bufio.NewWriterSize(conn, 4096)

	// Handshake: the first frame must be a versioned Hello, and it must
	// arrive within the read-idle budget - a connect-then-silence peer
	// is the simplest half-open client.
	s.armReadDeadline(conn)
	q, err := wire.ReadRequest(br)
	if err != nil {
		s.noteReadError(err)
		return
	}
	if q.Op != wire.OpHello || wire.CheckHello(q.Arg) != nil {
		s.sayAndClose(bw, conn, wire.Reply{Status: wire.StatusBadRequest})
		return
	}
	sess, err := s.register()
	if err != nil {
		// MaxSessions live: protocol-level backpressure, not a crash.
		s.m.RecordReject()
		s.sayAndClose(bw, conn, wire.Reply{Status: wire.StatusBusy})
		return
	}
	defer sess.close()
	s.m.SessionStart()
	defer s.m.SessionEnd()
	bw.Write(wire.AppendReply(nil, wire.Reply{
		Status: wire.StatusOK,
		Value:  int64(s.cfg.MaxSessions),
		Banner: s.banner,
	}))
	if !s.flush(bw, conn) {
		return
	}

	var scratch []byte
	for {
		s.armReadDeadline(conn)
		q, err := wire.ReadRequest(br)
		if err != nil {
			// Drain deadline, idle eviction, clean EOF or abrupt
			// disconnect: either way the deferred close recycles this
			// session's handle slots.
			if s.isDraining() {
				faultpoint.Hit(FPDrain)
				s.sayAndClose(bw, conn, wire.Reply{Status: wire.StatusShutdown})
				return
			}
			s.noteReadError(err)
			return
		}
		if faultpoint.Hit(FPRead) != nil {
			return // injected read fault: an abrupt disconnect
		}
		if faultpoint.Hit(FPExec) != nil {
			return // injected pre-execution failure: op never ran, no ack
		}
		rep, ok := s.exec(sess, q)
		if !ok {
			s.sayAndClose(bw, conn, wire.Reply{Status: wire.StatusBadRequest})
			return
		}
		if werr := faultpoint.Hit(FPWrite); werr != nil {
			if errors.Is(werr, faultpoint.ErrDropped) {
				// The op ran but its ack evaporates: the client must
				// retry, and a non-idempotent op may apply twice - the
				// documented at-most-once hole (DESIGN.md §14).
				continue
			}
			return
		}
		scratch = wire.AppendReply(scratch[:0], rep)
		if _, err := bw.Write(scratch); err != nil {
			return
		}
		// Write coalescing: only flush when the read buffer holds no
		// complete request, i.e. the pipelined burst is exhausted and
		// the client is (or will be) waiting on us.
		if br.Buffered() < wire.RequestSize {
			if !s.flush(bw, conn) {
				return
			}
		}
	}
}

// armReadDeadline starts a read's idle budget.
func (s *Server) armReadDeadline(conn net.Conn) {
	if s.cfg.ReadIdle > 0 {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadIdle))
	}
}

// noteReadError classifies a read-loop error outside drain: a deadline
// expiry is an idle eviction (counted); EOF and peer resets are
// ordinary disconnects.
func (s *Server) noteReadError(err error) {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		s.m.RecordEviction()
	}
}

// flush writes the buffered replies within the write-stall budget;
// false means the connection is gone. A flush that blocked past the
// budget means the client stopped reading - a stalled or half-open
// peer - and counts as an eviction.
func (s *Server) flush(bw *bufio.Writer, conn net.Conn) bool {
	if s.cfg.WriteStall > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteStall))
	}
	if err := bw.Flush(); err != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			s.m.RecordEviction()
		}
		return false
	}
	return true
}

// sayAndClose best-effort-writes a final reply under the write-stall
// budget; the caller closes the connection right after.
func (s *Server) sayAndClose(bw *bufio.Writer, conn net.Conn, rep wire.Reply) {
	bw.Write(wire.AppendReply(nil, rep))
	s.flush(bw, conn)
}

// exec runs one decoded request against the session's handles,
// recording in-flight and latency metrics. ok=false means the opcode
// cannot be executed on an established session.
func (s *Server) exec(sess *session, q wire.Request) (rep wire.Reply, ok bool) {
	s.m.OpStart()
	start := time.Now()
	rep, ok = s.apply(sess, q)
	s.m.OpDone(int(q.Op), time.Since(start))
	return rep, ok
}

func (s *Server) apply(sess *session, q wire.Request) (wire.Reply, bool) {
	switch q.Op {
	case wire.OpHello:
		// A repeated Hello is harmless: re-send the banner.
		return wire.Reply{Status: wire.StatusOK, Value: int64(s.cfg.MaxSessions), Banner: s.banner}, true
	case wire.OpStackPush:
		sess.st.Push(q.Arg)
		return wire.Reply{Status: wire.StatusOK}, true
	case wire.OpStackPop:
		v, ok := sess.st.Pop()
		return valueReply(v, ok), true
	case wire.OpStackPeek:
		v, ok := sess.st.Peek()
		return valueReply(v, ok), true
	case wire.OpPoolPut:
		sess.pl.Put(q.Arg)
		return wire.Reply{Status: wire.StatusOK}, true
	case wire.OpPoolGet:
		v, ok := sess.pl.Get()
		return valueReply(v, ok), true
	case wire.OpFunnelAdd:
		old := sess.fn.FetchAdd(q.Arg)
		return wire.Reply{Status: wire.StatusOK, Value: old}, true
	case wire.OpFunnelTryAdd:
		old, applied := sess.fn.TryFetchAdd(q.Arg)
		if !applied {
			return wire.Reply{Status: wire.StatusContended}, true
		}
		return wire.Reply{Status: wire.StatusOK, Value: old}, true
	case wire.OpFunnelLoad:
		return wire.Reply{Status: wire.StatusOK, Value: s.fn.Load()}, true
	case wire.OpStats:
		return wire.Reply{Status: wire.StatusOK, Value: s.m.Sessions()}, true
	case wire.OpRetryMark:
		// A reconnecting client reporting how many ops it is about to
		// replay; negative or zero args are ignored (RecordRetries
		// clamps) so a hostile mark cannot rewind the counter.
		s.m.RecordRetries(q.Arg)
		return wire.Reply{Status: wire.StatusOK, Value: s.m.RetriesObserved()}, true
	}
	return wire.Reply{}, false
}

// valueReply maps a (value, ok) engine answer onto OK/Empty.
func valueReply(v int64, ok bool) wire.Reply {
	if !ok {
		return wire.Reply{Status: wire.StatusEmpty}
	}
	return wire.Reply{Status: wire.StatusOK, Value: v}
}
