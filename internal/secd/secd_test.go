package secd

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"secstack/internal/wire"
	"secstack/stack"
)

// startServer launches a server on a loopback port and returns it with
// its address; cleanup shuts it down.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(lis) }()
	t.Cleanup(func() {
		if err := s.Shutdown(5 * time.Second); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, lis.Addr().String()
}

// client is a minimal test-side protocol client.
type client struct {
	conn net.Conn
	br   *bufio.Reader
	hi   wire.Reply // handshake reply
}

func dialClient(t *testing.T, addr string) *client {
	t.Helper()
	c, err := dialRaw(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return c
}

func dialRaw(addr string) (*client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := &client{conn: conn, br: bufio.NewReader(conn)}
	if _, err := conn.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpHello, Arg: wire.HelloArg()})); err != nil {
		conn.Close()
		return nil, err
	}
	rep, err := wire.ReadReply(c.br)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.hi = rep
	return c, nil
}

func (c *client) do(t *testing.T, op wire.Op, arg int64) wire.Reply {
	t.Helper()
	rep, err := c.tryDo(op, arg)
	if err != nil {
		t.Fatalf("%v(%d): %v", op, arg, err)
	}
	return rep
}

func (c *client) tryDo(op wire.Op, arg int64) (wire.Reply, error) {
	if _, err := c.conn.Write(wire.AppendRequest(nil, wire.Request{Op: op, Arg: arg})); err != nil {
		return wire.Reply{}, err
	}
	return wire.ReadReply(c.br)
}

func (c *client) close() { c.conn.Close() }

// waitSessions polls the live-session gauge until it reaches want.
func waitSessions(t *testing.T, s *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Metrics().Sessions() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("sessions = %d, want %d (handle slots leaked?)", s.Metrics().Sessions(), want)
}

func TestServeRoundTrips(t *testing.T) {
	s, addr := startServer(t, Config{Adaptive: true})
	c := dialClient(t, addr)
	defer c.close()

	if c.hi.Status != wire.StatusOK {
		t.Fatalf("handshake status %v", c.hi.Status)
	}
	// Stack: LIFO through one session.
	c.do(t, wire.OpStackPush, 10)
	c.do(t, wire.OpStackPush, 20)
	if rep := c.do(t, wire.OpStackPeek, 0); rep.Status != wire.StatusOK || rep.Value != 20 {
		t.Fatalf("peek = %+v", rep)
	}
	if rep := c.do(t, wire.OpStackPop, 0); rep.Status != wire.StatusOK || rep.Value != 20 {
		t.Fatalf("pop = %+v", rep)
	}
	if rep := c.do(t, wire.OpStackPop, 0); rep.Status != wire.StatusOK || rep.Value != 10 {
		t.Fatalf("pop = %+v", rep)
	}
	if rep := c.do(t, wire.OpStackPop, 0); rep.Status != wire.StatusEmpty {
		t.Fatalf("pop on empty = %+v", rep)
	}
	// Pool: put/get some element.
	c.do(t, wire.OpPoolPut, 77)
	if rep := c.do(t, wire.OpPoolGet, 0); rep.Status != wire.StatusOK || rep.Value != 77 {
		t.Fatalf("pool get = %+v", rep)
	}
	if rep := c.do(t, wire.OpPoolGet, 0); rep.Status != wire.StatusEmpty {
		t.Fatalf("pool get on empty = %+v", rep)
	}
	// Funnel: the served counter.
	if rep := c.do(t, wire.OpFunnelAdd, 5); rep.Status != wire.StatusOK || rep.Value != 0 {
		t.Fatalf("funnel add = %+v", rep)
	}
	if rep := c.do(t, wire.OpFunnelLoad, 0); rep.Status != wire.StatusOK || rep.Value != 5 {
		t.Fatalf("funnel load = %+v", rep)
	}
	// TryAdd: single client, must apply.
	rep := c.do(t, wire.OpFunnelTryAdd, 3)
	if rep.Status != wire.StatusOK && rep.Status != wire.StatusContended {
		t.Fatalf("funnel tryadd = %+v", rep)
	}
	// Stats: one live session (this one).
	if rep := c.do(t, wire.OpStats, 0); rep.Status != wire.StatusOK || rep.Value != 1 {
		t.Fatalf("stats = %+v", rep)
	}
	if got := s.Metrics().TotalOps(); got < 10 {
		t.Fatalf("TotalOps = %d, want >= 10", got)
	}
	if op := s.Metrics().Op(int(wire.OpStackPush)); op.Count != 2 || op.P99 < op.P50 {
		t.Fatalf("push op stats = %+v", op)
	}
}

func TestBannerMatchesRegistry(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dialClient(t, addr)
	defer c.close()

	banner := c.hi.Banner
	if banner == "" {
		t.Fatal("handshake carried no banner")
	}
	// The registry= field must list stack.New's registry names exactly:
	// the stack package's registry is the single source of truth shared
	// with secbench/seccheck's -list pass.
	var reg string
	for _, f := range strings.Fields(banner) {
		if v, ok := strings.CutPrefix(f, "registry="); ok {
			reg = v
		}
	}
	want := make([]string, 0)
	for _, a := range stack.Algorithms() {
		want = append(want, string(a))
	}
	if reg != strings.Join(want, ",") {
		t.Fatalf("banner registry %q != stack registry %q", reg, strings.Join(want, ","))
	}
	// Every registry name must construct through stack.New - the banner
	// never advertises an algorithm the switch cannot build.
	for _, a := range stack.Algorithms() {
		if _, err := stack.New[int64](a); err != nil {
			t.Fatalf("banner advertises %s but stack.New fails: %v", a, err)
		}
	}
}

func TestHandshakeRequired(t *testing.T) {
	_, addr := startServer(t, Config{})
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// First frame is an op, not a Hello: the server answers BadRequest
	// and closes.
	if _, err := conn.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpStackPush, Arg: 1})); err != nil {
		t.Fatalf("write: %v", err)
	}
	rep, err := wire.ReadReply(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if rep.Status != wire.StatusBadRequest {
		t.Fatalf("status = %v, want bad-request", rep.Status)
	}
}

func TestBackpressureAtMaxSessions(t *testing.T) {
	s, addr := startServer(t, Config{MaxSessions: 4})
	clients := make([]*client, 0, 4)
	for i := 0; i < 4; i++ {
		c := dialClient(t, addr)
		defer c.close()
		if c.hi.Status != wire.StatusOK {
			t.Fatalf("handshake %d: %v", i, c.hi.Status)
		}
		clients = append(clients, c)
	}
	waitSessions(t, s, 4)

	// The fifth session is refused with backpressure, not a crash.
	over, err := dialRaw(addr)
	if err != nil {
		t.Fatalf("dial over capacity: %v", err)
	}
	defer over.close()
	if over.hi.Status != wire.StatusBusy {
		t.Fatalf("over-capacity handshake = %v, want busy", over.hi.Status)
	}
	if got := s.Metrics().Rejected(); got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}

	// Closing one connection recycles its slot for a new session.
	clients[0].close()
	waitSessions(t, s, 3)
	again := dialClient(t, addr)
	defer again.close()
	if again.hi.Status != wire.StatusOK {
		t.Fatalf("handshake after slot recycle = %v", again.hi.Status)
	}
}

// TestAbruptDisconnectChurn is the served mirror of the engine packages'
// HandleChurn tests: waves of connections are killed mid-op (no
// goodbye, TCP close under in-flight traffic) and every wave must get
// all its slots back - MaxSessions bounds live connections, not
// lifetime connections, because disconnect closes the session's engine
// handles and their thread-id slots recycle.
func TestAbruptDisconnectChurn(t *testing.T) {
	const maxSessions = 8
	waves := 4
	if testing.Short() {
		waves = 2
	}
	s, addr := startServer(t, Config{MaxSessions: maxSessions, Adaptive: true})

	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		// Fill every session slot and keep ops in flight when the kill
		// lands.
		for i := 0; i < maxSessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c, err := dialRaw(addr)
				if err != nil {
					t.Errorf("wave %d conn %d: %v", wave, i, err)
					return
				}
				defer c.close()
				if c.hi.Status != wire.StatusOK {
					t.Errorf("wave %d conn %d handshake: %v", wave, i, c.hi.Status)
					return
				}
				ops := []wire.Request{
					{Op: wire.OpStackPush, Arg: int64(wave<<16 | i)},
					{Op: wire.OpPoolPut, Arg: int64(i)},
					{Op: wire.OpFunnelAdd, Arg: 1},
					{Op: wire.OpStackPop},
					{Op: wire.OpPoolGet},
				}
				for k := 0; ; k++ {
					if _, err := c.tryDo(ops[k%len(ops)].Op, ops[k%len(ops)].Arg); err != nil {
						return // killed mid-op: expected
					}
					if k == 20+i {
						// Abrupt close with a request possibly half-served;
						// no protocol goodbye.
						c.close()
						return
					}
				}
			}(i)
		}
		wg.Wait()
		// Every slot must come back; a single leaked handle would wedge
		// the next wave at maxSessions-1.
		waitSessions(t, s, 0)
	}

	// After all the churn, a full complement of sessions must still
	// fit: nothing leaked across waves.
	final := make([]*client, 0, maxSessions)
	for i := 0; i < maxSessions; i++ {
		c := dialClient(t, addr)
		defer c.close()
		if c.hi.Status != wire.StatusOK {
			t.Fatalf("post-churn handshake %d: %v", i, c.hi.Status)
		}
		final = append(final, c)
	}
	waitSessions(t, s, maxSessions)
	for _, c := range final {
		c.close()
	}
	waitSessions(t, s, 0)
}

func TestPipelinedBurstCoalesces(t *testing.T) {
	s, addr := startServer(t, Config{Adaptive: true})
	c := dialClient(t, addr)
	defer c.close()

	// Send a burst of pipelined requests in one write, then read all
	// replies: order must hold and every push must be answered.
	const burst = 128
	var buf []byte
	for i := 0; i < burst; i++ {
		buf = wire.AppendRequest(buf, wire.Request{Op: wire.OpFunnelAdd, Arg: 1})
	}
	if _, err := c.conn.Write(buf); err != nil {
		t.Fatalf("write burst: %v", err)
	}
	seen := make(map[int64]bool)
	for i := 0; i < burst; i++ {
		rep, err := wire.ReadReply(c.br)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if rep.Status != wire.StatusOK {
			t.Fatalf("reply %d status %v", i, rep.Status)
		}
		if seen[rep.Value] {
			t.Fatalf("fetch-add value %d returned twice", rep.Value)
		}
		seen[rep.Value] = true
	}
	if got := s.Funnel().Load(); got != burst {
		t.Fatalf("funnel = %d after %d adds", got, burst)
	}
}

func TestGracefulDrain(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(lis) }()

	c := dialClient(t, lis.Addr().String())
	defer c.close()
	c.do(t, wire.OpStackPush, 1)

	if err := s.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve after drain: %v", err)
	}
	// The idle client gets a shutdown goodbye, then EOF.
	rep, err := wire.ReadReply(c.br)
	if err == nil && rep.Status != wire.StatusShutdown {
		t.Fatalf("drain goodbye = %+v", rep)
	}
	// All handles came back before Shutdown returned.
	if got := s.Metrics().Sessions(); got != 0 {
		t.Fatalf("sessions after drain = %d", got)
	}
	// New connections are refused: the listener is closed.
	if _, err := dialRaw(lis.Addr().String()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

func TestConcurrentClientsConserveElements(t *testing.T) {
	conns := 16
	opsPer := 300
	if testing.Short() {
		conns, opsPer = 8, 100
	}
	s, addr := startServer(t, Config{MaxSessions: conns, Adaptive: true})

	var wg sync.WaitGroup
	pushed := make([]int64, conns) // per-conn successful puts
	popped := make([]int64, conns) // per-conn successful gets
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := dialRaw(addr)
			if err != nil {
				t.Errorf("conn %d: %v", i, err)
				return
			}
			defer c.close()
			if c.hi.Status != wire.StatusOK {
				t.Errorf("conn %d handshake: %v", i, c.hi.Status)
				return
			}
			for k := 0; k < opsPer; k++ {
				if k%2 == 0 {
					rep, err := c.tryDo(wire.OpPoolPut, int64(i)<<32|int64(k))
					if err != nil || rep.Status != wire.StatusOK {
						t.Errorf("conn %d put: %v %v", i, rep.Status, err)
						return
					}
					pushed[i]++
				} else {
					rep, err := c.tryDo(wire.OpPoolGet, 0)
					if err != nil {
						t.Errorf("conn %d get: %v", i, err)
						return
					}
					if rep.Status == wire.StatusOK {
						popped[i]++
					}
				}
			}
		}(i)
	}
	wg.Wait()
	var nPushed, nPopped int64
	for i := range pushed {
		nPushed += pushed[i]
		nPopped += popped[i]
	}
	// Whatever was not popped must still be in the pool.
	drain := dialClient(t, addr)
	defer drain.close()
	var rest int64
	for {
		rep := drain.do(t, wire.OpPoolGet, 0)
		if rep.Status == wire.StatusEmpty {
			break
		}
		rest++
	}
	if nPopped+rest != nPushed {
		t.Fatalf("conservation: pushed %d, popped %d + drained %d", nPushed, nPopped, rest)
	}
	_ = s
}

func TestServeAfterShutdownFails(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if err := s.Serve(lis); err == nil {
		t.Fatal("Serve accepted work after Shutdown")
	}
}

func TestNewRejectsUnknownAlgorithm(t *testing.T) {
	if _, err := New(Config{Algorithm: stack.Algorithm("NOPE")}); err == nil {
		t.Fatal("New accepted an unknown algorithm")
	}
}

// TestServedBatching documents the tentpole's point: fan-in from many
// connections reaches the engine as batched work. With metrics off at
// the engine level we assert the observable proxy - many concurrent
// sessions complete while the funnel stays exact.
func TestServedBatching(t *testing.T) {
	conns := 12
	addsPer := 200
	if testing.Short() {
		conns, addsPer = 6, 50
	}
	s, addr := startServer(t, Config{MaxSessions: conns, Adaptive: true})
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := dialRaw(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.close()
			for k := 0; k < addsPer; k++ {
				if rep, err := c.tryDo(wire.OpFunnelAdd, 1); err != nil || rep.Status != wire.StatusOK {
					t.Errorf("add: %v %v", rep.Status, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, want := s.Funnel().Load(), int64(conns*addsPer); got != want {
		t.Fatalf("funnel = %d, want %d", got, want)
	}
	if peak := s.Metrics().PeakSessions(); peak < 2 {
		t.Fatalf("peak sessions = %d, want concurrent fan-in", peak)
	}
}

func ExampleBanner() {
	fmt.Println(Banner(Config{MaxSessions: 64}))
	// Output: secd/2 alg=SEC registry=SEC,TRB,EB,FC,CC,TSI maxsessions=64 shards=4
}
