// Package seqstack implements a plain sequential LIFO stack. It serves
// two roles in the repository: it is the structure that the combining
// stacks (flat combining, CC-Synch) protect behind their combiner locks,
// and it is the reference model that tests linearize the concurrent
// stacks against.
package seqstack

// Stack is an unsynchronized LIFO stack. The zero value is an empty
// stack ready for use.
type Stack[T any] struct {
	items []T
}

// New returns an empty stack with capacity for n elements.
func New[T any](n int) *Stack[T] {
	return &Stack[T]{items: make([]T, 0, n)}
}

// Push adds v to the top of the stack.
func (s *Stack[T]) Push(v T) {
	s.items = append(s.items, v)
}

// Pop removes and returns the top element. ok is false if the stack is
// empty, in which case the returned value is the zero value of T.
func (s *Stack[T]) Pop() (v T, ok bool) {
	n := len(s.items)
	if n == 0 {
		return v, false
	}
	v = s.items[n-1]
	var zero T
	s.items[n-1] = zero // release reference for GC
	s.items = s.items[:n-1]
	return v, true
}

// Peek returns the top element without removing it. ok is false if the
// stack is empty.
func (s *Stack[T]) Peek() (v T, ok bool) {
	n := len(s.items)
	if n == 0 {
		return v, false
	}
	return s.items[n-1], true
}

// Len reports the number of elements on the stack.
func (s *Stack[T]) Len() int { return len(s.items) }

// Snapshot returns the stack contents bottom-to-top. The returned slice
// is a copy; mutating it does not affect the stack.
func (s *Stack[T]) Snapshot() []T {
	out := make([]T, len(s.items))
	copy(out, s.items)
	return out
}

// Reset empties the stack, retaining capacity.
func (s *Stack[T]) Reset() {
	var zero T
	for i := range s.items {
		s.items[i] = zero
	}
	s.items = s.items[:0]
}
