package seqstack

import (
	"testing"
	"testing/quick"
)

func TestEmptyPop(t *testing.T) {
	s := New[int](0)
	if v, ok := s.Pop(); ok || v != 0 {
		t.Fatalf("Pop on empty = (%d, %v), want (0, false)", v, ok)
	}
}

func TestEmptyPeek(t *testing.T) {
	s := New[int](0)
	if _, ok := s.Peek(); ok {
		t.Fatal("Peek on empty returned ok")
	}
}

func TestLIFOOrder(t *testing.T) {
	s := New[int](4)
	for i := 1; i <= 5; i++ {
		s.Push(i)
	}
	for want := 5; want >= 1; want-- {
		v, ok := s.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("stack not empty after popping all")
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	s := New[string](0)
	s.Push("a")
	s.Push("b")
	for i := 0; i < 3; i++ {
		v, ok := s.Peek()
		if !ok || v != "b" {
			t.Fatalf("Peek = (%q, %v), want (b, true)", v, ok)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after peeks, want 2", s.Len())
	}
}

func TestLen(t *testing.T) {
	s := New[int](0)
	for i := 0; i < 10; i++ {
		if s.Len() != i {
			t.Fatalf("Len = %d, want %d", s.Len(), i)
		}
		s.Push(i)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := New[int](0)
	s.Push(1)
	s.Push(2)
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0] != 1 || snap[1] != 2 {
		t.Fatalf("Snapshot = %v, want [1 2]", snap)
	}
	snap[0] = 99
	if got := s.Snapshot()[0]; got != 1 {
		t.Fatalf("mutating snapshot affected stack: %d", got)
	}
}

func TestReset(t *testing.T) {
	s := New[int](0)
	for i := 0; i < 100; i++ {
		s.Push(i)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after Reset", s.Len())
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop succeeded after Reset")
	}
	s.Push(7)
	if v, _ := s.Peek(); v != 7 {
		t.Fatal("stack unusable after Reset")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Stack[int]
	s.Push(1)
	if v, ok := s.Pop(); !ok || v != 1 {
		t.Fatal("zero-value stack not usable")
	}
}

// TestQuickAgainstSlice drives the stack with random op sequences and
// compares against a plain slice model.
func TestQuickAgainstSlice(t *testing.T) {
	f := func(ops []int16) bool {
		s := New[int16](0)
		var model []int16
		for _, op := range ops {
			if op >= 0 { // push
				s.Push(op)
				model = append(model, op)
			} else { // pop
				v, ok := s.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || v != want {
					return false
				}
			}
			if s.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	s := New[int](1024)
	for i := 0; i < b.N; i++ {
		s.Push(i)
		s.Pop()
	}
}
