// Package stacktest is a conformance test-kit shared by every concurrent
// stack in the repository. Each stack's test package adapts its
// implementation to the Stack/Handle interfaces below and runs the same
// suite: sequential semantics against the seqstack model, element
// conservation under concurrency, LIFO residue ordering, empty-pop
// behaviour, and oversubscribed progress (more goroutines than
// GOMAXPROCS, the repro-critical configuration for blocking designs).
package stacktest

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"secstack/internal/seqstack"
	"secstack/internal/xrand"
)

// Stack is the minimal int64-valued concurrent stack contract the suite
// exercises. Register returns a per-goroutine handle; handles must not
// be shared between goroutines.
type Stack interface {
	Register() Handle
}

// Handle is a per-goroutine session on a Stack. Close ends the session
// and releases any per-thread slot for reuse; the churn subtests rely
// on it being callable once per handle and idempotent.
type Handle interface {
	Push(int64)
	Pop() (int64, bool)
	Peek() (int64, bool)
	Close()
}

// Factory creates a fresh, empty stack for one test.
type Factory func() Stack

// RunAll runs the complete conformance suite as subtests.
func RunAll(t *testing.T, f Factory) {
	t.Run("EmptyPop", func(t *testing.T) { RunEmptyPop(t, f) })
	t.Run("SequentialLIFO", func(t *testing.T) { RunSequentialLIFO(t, f) })
	t.Run("PeekNonDestructive", func(t *testing.T) { RunPeekNonDestructive(t, f) })
	t.Run("QuickVsModel", func(t *testing.T) { RunQuickVsModel(t, f) })
	t.Run("InterleavedHandles", func(t *testing.T) { RunInterleavedHandles(t, f) })
	t.Run("Conservation", func(t *testing.T) { RunConservation(t, f, 8, 2000) })
	t.Run("ConservationPopHeavy", func(t *testing.T) { RunConservationPopHeavy(t, f, 8, 1000) })
	t.Run("LIFOResidue", func(t *testing.T) { RunLIFOResidue(t, f, 4, 500) })
	t.Run("Oversubscribed", func(t *testing.T) { RunOversubscribed(t, f) })
	t.Run("PushPopPairsDrain", func(t *testing.T) { RunPushPopPairsDrain(t, f, 8, 1000) })
	t.Run("HandleChurn", func(t *testing.T) { RunHandleChurn(t, f, 8, 8) })
}

// RunEmptyPop checks that popping and peeking an empty stack reports
// emptiness rather than blocking or panicking.
func RunEmptyPop(t *testing.T, f Factory) {
	h := f().Register()
	if v, ok := h.Pop(); ok {
		t.Fatalf("Pop on empty stack = (%d, true), want not-ok", v)
	}
	if v, ok := h.Peek(); ok {
		t.Fatalf("Peek on empty stack = (%d, true), want not-ok", v)
	}
	// Emptiness must be repeatable.
	if _, ok := h.Pop(); ok {
		t.Fatal("second Pop on empty stack succeeded")
	}
}

// RunSequentialLIFO checks plain LIFO order through one handle.
func RunSequentialLIFO(t *testing.T, f Factory) {
	h := f().Register()
	const n = 200
	for i := int64(1); i <= n; i++ {
		h.Push(i)
	}
	for want := int64(n); want >= 1; want-- {
		v, ok := h.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("stack not empty after draining")
	}
}

// RunPeekNonDestructive checks Peek returns the top without removing it.
func RunPeekNonDestructive(t *testing.T, f Factory) {
	h := f().Register()
	h.Push(10)
	h.Push(20)
	for i := 0; i < 3; i++ {
		v, ok := h.Peek()
		if !ok || v != 20 {
			t.Fatalf("Peek = (%d, %v), want (20, true)", v, ok)
		}
	}
	if v, _ := h.Pop(); v != 20 {
		t.Fatal("Peek consumed an element")
	}
	if v, _ := h.Pop(); v != 10 {
		t.Fatal("stack order disturbed by Peek")
	}
}

// RunQuickVsModel drives a single handle with random operation strings
// and compares every result against the sequential model.
func RunQuickVsModel(t *testing.T, f Factory) {
	check := func(ops []int16) bool {
		s := f()
		h := s.Register()
		model := seqstack.New[int64](0)
		for _, op := range ops {
			switch {
			case op >= 0: // push
				h.Push(int64(op))
				model.Push(int64(op))
			case op%2 == 0: // pop
				gv, gok := h.Pop()
				wv, wok := model.Pop()
				if gok != wok || gv != wv {
					return false
				}
			default: // peek
				gv, gok := h.Peek()
				wv, wok := model.Peek()
				if gok != wok || gv != wv {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// RunInterleavedHandles checks that two handles in one goroutine observe
// a single coherent stack (handles carry session state, not data).
func RunInterleavedHandles(t *testing.T, f Factory) {
	s := f()
	a, b := s.Register(), s.Register()
	a.Push(1)
	b.Push(2)
	if v, ok := a.Pop(); !ok || v != 2 {
		t.Fatalf("handle a popped (%d, %v), want (2, true)", v, ok)
	}
	if v, ok := b.Pop(); !ok || v != 1 {
		t.Fatalf("handle b popped (%d, %v), want (1, true)", v, ok)
	}
}

// RunConservation has g goroutines each push opsPer unique values and
// pop opsPer times; afterwards (pushed values) must equal (popped
// values) + (residue on the stack) as multisets.
func RunConservation(t *testing.T, f Factory, g, opsPer int) {
	s := f()
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		popped = make(map[int64]int)
	)
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			rng := xrand.New(uint64(w) + 1)
			local := make(map[int64]int)
			next := int64(w) << 32
			for i := 0; i < opsPer; i++ {
				if rng.Intn(2) == 0 {
					next++
					h.Push(next)
				} else if v, ok := h.Pop(); ok {
					local[v]++
				}
			}
			mu.Lock()
			for v, c := range local {
				popped[v] += c
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	// Drain the residue.
	h := s.Register()
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		popped[v]++
	}
	// Every popped value must be unique (pushed exactly once) and carry
	// a valid worker prefix.
	for v, c := range popped {
		if c != 1 {
			t.Fatalf("value %d popped %d times (duplicated or lost)", v, c)
		}
		w := v >> 32
		if w < 0 || w >= int64(g) {
			t.Fatalf("value %d was never pushed", v)
		}
	}
}

// RunConservationPopHeavy floods with pops against sparse pushes to
// exercise empty-stack paths under contention.
func RunConservationPopHeavy(t *testing.T, f Factory, g, opsPer int) {
	s := f()
	var wg sync.WaitGroup
	var pushedTotal, poppedTotal sync.Map
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			rng := xrand.New(uint64(w) * 977)
			next := int64(w) << 32
			for i := 0; i < opsPer; i++ {
				if rng.Intn(4) == 0 {
					next++
					h.Push(next)
					pushedTotal.Store(next, true)
				} else if v, ok := h.Pop(); ok {
					if _, dup := poppedTotal.LoadOrStore(v, true); dup {
						t.Errorf("value %d popped twice", v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	h := s.Register()
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		if _, dup := poppedTotal.LoadOrStore(v, true); dup {
			t.Errorf("residual value %d popped twice", v)
		}
	}
	poppedTotal.Range(func(k, _ any) bool {
		if _, ok := pushedTotal.Load(k); !ok {
			t.Errorf("popped value %d was never pushed", k)
		}
		return true
	})
}

// RunLIFOResidue checks a weak ordering property that every linearizable
// stack satisfies: if one goroutine pushes an ascending sequence and
// nobody pops, a subsequent single-threaded drain must see each
// goroutine's values in descending order.
func RunLIFOResidue(t *testing.T, f Factory, g, perG int) {
	s := f()
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			base := int64(w) << 32
			for i := 1; i <= perG; i++ {
				h.Push(base + int64(i))
			}
		}(w)
	}
	wg.Wait()
	h := s.Register()
	last := make(map[int64]int64) // worker -> last seen value
	count := 0
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		count++
		w := v >> 32
		seq := v & 0xffffffff
		if prev, seen := last[w]; seen && seq >= prev {
			t.Fatalf("worker %d values out of LIFO order: %d then %d", w, prev, seq)
		}
		last[w] = seq
	}
	if count != g*perG {
		t.Fatalf("drained %d values, want %d", count, g*perG)
	}
}

// RunHandleChurn runs `waves` successive waves of g goroutines; every
// goroutine registers its own handle, pushes and pops through it, and
// closes it. Conservation must hold across the whole run, and closed
// handles' values must remain reachable by later waves - handle
// lifecycle must not leak or lose elements.
func RunHandleChurn(t *testing.T, f Factory, waves, g int) {
	s := f()
	var pushed, popped atomic.Int64
	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := s.Register()
				defer h.Close()
				base := int64(wave*g+w) << 32
				for i := int64(1); i <= 20; i++ {
					h.Push(base + i)
					pushed.Add(1)
					if i%2 == 0 {
						if _, ok := h.Pop(); ok {
							popped.Add(1)
						}
					}
				}
				h.Close() // idempotent: double close must be safe
			}(w)
		}
		wg.Wait()
	}
	h := s.Register()
	defer h.Close()
	for {
		if _, ok := h.Pop(); !ok {
			break
		}
		popped.Add(1)
	}
	if pushed.Load() != popped.Load() {
		t.Fatalf("pushed %d != popped %d after churn drain", pushed.Load(), popped.Load())
	}
}

// RunOversubscribed runs 4x GOMAXPROCS goroutines through a mixed
// workload with a deadline; a blocking stack whose waits don't yield
// will time out here.
func RunOversubscribed(t *testing.T, f Factory) {
	s := f()
	g := 4 * runtime.GOMAXPROCS(0)
	const opsPer = 400
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := s.Register()
				rng := xrand.New(uint64(w) + 42)
				for i := 0; i < opsPer; i++ {
					switch rng.Intn(3) {
					case 0:
						h.Push(int64(i))
					case 1:
						h.Pop()
					default:
						h.Peek()
					}
				}
			}(w)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("oversubscribed workload did not finish in 60s (probable livelock)")
	}
}

// RunPushPopPairsDrain has every goroutine push then pop in pairs, so
// the stack must be exactly empty at the end.
func RunPushPopPairsDrain(t *testing.T, f Factory, g, pairs int) {
	s := f()
	var wg sync.WaitGroup
	var popFailures int64
	var mu sync.Mutex
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			fails := int64(0)
			for i := 0; i < pairs; i++ {
				h.Push(int64(w*pairs + i))
				if _, ok := h.Pop(); !ok {
					fails++
				}
			}
			mu.Lock()
			popFailures += fails
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	// Each failed pop left one element behind; the residue must match.
	h := s.Register()
	residue := int64(0)
	for {
		if _, ok := h.Pop(); !ok {
			break
		}
		residue++
	}
	if residue != popFailures {
		t.Fatalf("residue %d != failed pops %d", residue, popFailures)
	}
}
