// Package tid provides a lock-free allocator of small dense integer
// ids, the substrate behind handle-slot recycling across the
// repository: every Register path (SEC stack, deque ends, funnel
// aggregators, pools, epoch-based reclamation slots) draws its thread
// id from an Allocator and hands it back on Handle.Close, so id slots -
// and the per-slot state they index - survive unbounded goroutine churn
// under a fixed capacity.
//
// Ids are allocated from two sources: a monotone fresh counter (ids
// that have never been used) and a Treiber-style free list of released
// ids. The free list threads through a next array indexed by id, with
// an ABA tag packed into the head word, so both Acquire and Release are
// a single CAS in the common case and the allocator never allocates
// after construction.
package tid

import (
	"fmt"
	"sync/atomic"
)

// Allocator hands out ids in [0, Cap()). It is safe for concurrent use.
type Allocator struct {
	capacity int

	// fresh is the count of never-recycled ids handed out; ids below it
	// came from the fresh counter, ids at or above it do not exist yet.
	fresh atomic.Int64

	// head is the free list: tag<<32 | (id+1), with 0 meaning empty.
	// The tag increments on every successful push and pop, defeating
	// ABA between a racing pop's head read and its CAS.
	head atomic.Uint64

	// next[id] is the id+1 encoding of the free-list successor of id
	// (0 terminates). Written only while id is off the list.
	next []atomic.Uint32

	inUse atomic.Int64
}

// New returns an allocator of ids 0..capacity-1.
func New(capacity int) *Allocator {
	if capacity < 1 {
		capacity = 1
	}
	return &Allocator{capacity: capacity, next: make([]atomic.Uint32, capacity)}
}

// Cap reports the total number of ids the allocator manages.
func (a *Allocator) Cap() int { return a.capacity }

// InUse reports how many ids are currently acquired.
func (a *Allocator) InUse() int { return int(a.inUse.Load()) }

// HighWater reports the number of distinct ids ever handed out. Ids
// are dense - fresh ones come from a monotone counter and recycled
// ones are always below it - so every id that can possibly be live is
// strictly below HighWater, and per-id state only ever needs scanning
// up to this bound. The counter is advanced before Acquire returns,
// never by a racing thread on behalf of another, so the bound covers
// every returned id at the moment it is returned.
func (a *Allocator) HighWater() int { return int(a.fresh.Load()) }

// Acquire returns a free id, preferring recycled ids (whose per-slot
// state is warm) over fresh ones. It fails only when all capacity ids
// are simultaneously live.
func (a *Allocator) Acquire() (int, error) {
	for {
		h := a.head.Load()
		idx := uint32(h)
		if idx == 0 {
			break // free list empty: fall through to the fresh counter
		}
		nxt := a.next[idx-1].Load()
		if a.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(nxt)) {
			a.inUse.Add(1)
			return int(idx - 1), nil
		}
	}
	for {
		f := a.fresh.Load()
		if f >= int64(a.capacity) {
			// Fresh ids are exhausted; a concurrent Release may have
			// refilled the free list since we last looked.
			h := a.head.Load()
			idx := uint32(h)
			if idx == 0 {
				return 0, fmt.Errorf("tid: all %d ids in use", a.capacity)
			}
			nxt := a.next[idx-1].Load()
			if a.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(nxt)) {
				a.inUse.Add(1)
				return int(idx - 1), nil
			}
			continue
		}
		if a.fresh.CompareAndSwap(f, f+1) {
			a.inUse.Add(1)
			return int(f), nil
		}
	}
}

// Release returns id to the free list. Releasing an id that is not
// currently acquired corrupts the allocator; callers guard against
// double release (Handle.Close is idempotent at the handle layer).
func (a *Allocator) Release(id int) {
	if id < 0 || id >= a.capacity {
		panic(fmt.Sprintf("tid: Release(%d) out of range [0,%d)", id, a.capacity))
	}
	for {
		h := a.head.Load()
		a.next[id].Store(uint32(h))
		if a.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(id+1)) {
			a.inUse.Add(-1)
			return
		}
	}
}
