package tid_test

import (
	"sync"
	"testing"

	"secstack/internal/tid"
)

func TestSequentialAcquireRelease(t *testing.T) {
	a := tid.New(4)
	got := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		id, err := a.Acquire()
		if err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
		got = append(got, id)
	}
	if _, err := a.Acquire(); err == nil {
		t.Fatal("Acquire past capacity succeeded")
	}
	if a.InUse() != 4 || a.HighWater() != 4 {
		t.Fatalf("InUse=%d HighWater=%d, want 4/4", a.InUse(), a.HighWater())
	}
	seen := map[int]bool{}
	for _, id := range got {
		if id < 0 || id >= a.Cap() || seen[id] {
			t.Fatalf("bad or duplicate id %d in %v", id, got)
		}
		seen[id] = true
	}

	// Release one, reacquire it: capacity is a live-handle bound, not a
	// lifetime bound.
	a.Release(got[2])
	id, err := a.Acquire()
	if err != nil {
		t.Fatalf("reacquire: %v", err)
	}
	if id != got[2] {
		t.Fatalf("reacquired id %d, want recycled %d", id, got[2])
	}
	if a.HighWater() != 4 {
		t.Fatalf("HighWater=%d after recycling, want 4", a.HighWater())
	}
}

func TestRecycledPreferredOverFresh(t *testing.T) {
	a := tid.New(64)
	id0, _ := a.Acquire()
	a.Release(id0)
	id, _ := a.Acquire()
	if id != id0 {
		t.Fatalf("Acquire = %d, want recycled %d", id, id0)
	}
	if a.HighWater() != 1 {
		t.Fatalf("HighWater=%d, want 1", a.HighWater())
	}
}

func TestReleaseOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release(-1) did not panic")
		}
	}()
	tid.New(2).Release(-1)
}

// TestChurnNoDuplicates hammers the allocator from many goroutines,
// each holding a window of ids, and checks no id is ever live twice.
func TestChurnNoDuplicates(t *testing.T) {
	const (
		capacity = 32
		workers  = 8
		rounds   = 5000
	)
	a := tid.New(capacity)
	owned := make([]bool, capacity)
	var mu sync.Mutex

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			held := make([]int, 0, 4)
			for r := 0; r < rounds; r++ {
				if len(held) < 3 {
					id, err := a.Acquire()
					if err == nil {
						mu.Lock()
						if owned[id] {
							mu.Unlock()
							t.Errorf("id %d acquired while live", id)
							return
						}
						owned[id] = true
						mu.Unlock()
						held = append(held, id)
					}
				}
				if len(held) > 0 && r%2 == 1 {
					id := held[len(held)-1]
					held = held[:len(held)-1]
					mu.Lock()
					owned[id] = false
					mu.Unlock()
					a.Release(id)
				}
			}
			for _, id := range held {
				mu.Lock()
				owned[id] = false
				mu.Unlock()
				a.Release(id)
			}
		}(w)
	}
	wg.Wait()

	if a.InUse() != 0 {
		t.Fatalf("InUse=%d after all releases, want 0", a.InUse())
	}
	if hw := a.HighWater(); hw < 1 || hw > capacity {
		t.Fatalf("HighWater=%d out of [1,%d]", hw, capacity)
	}
	// Every id must be acquirable exactly once more.
	seen := map[int]bool{}
	for i := 0; i < capacity; i++ {
		id, err := a.Acquire()
		if err != nil {
			t.Fatalf("drain acquire %d: %v", i, err)
		}
		if seen[id] {
			t.Fatalf("id %d handed out twice on drain", id)
		}
		seen[id] = true
	}
	if _, err := a.Acquire(); err == nil {
		t.Fatal("allocator over capacity after churn")
	}
}
