// Package treiber implements Treiber's classic lock-free stack
// (Treiber, 1986), the TRB baseline of the paper's evaluation: a singly
// linked list whose top pointer is updated with compare-and-swap, plus
// randomized exponential backoff on CAS failure.
//
// In Go there is no ABA problem for fresh nodes (the garbage collector
// cannot recycle a node while any thread still holds a pointer to it),
// so no counted pointers or hazard mechanism is needed here.
package treiber

import (
	"sync/atomic"

	"secstack/internal/backoff"
)

// node is one stack cell.
type node[T any] struct {
	value T
	next  *node[T]
}

// Stack is a lock-free LIFO stack safe for concurrent use through
// per-goroutine handles obtained with Register.
type Stack[T any] struct {
	top atomic.Pointer[node[T]]

	boMin, boMax int
	seq          atomic.Uint64 // seeds handles
}

// Option configures a Stack.
type Option func(*config)

type config struct {
	boMin, boMax int
}

// WithBackoff sets the exponential backoff window (spin iterations) used
// after a failed CAS. Defaults to [4, 1024].
func WithBackoff(min, max int) Option {
	return func(c *config) { c.boMin, c.boMax = min, max }
}

// New returns an empty Treiber stack.
func New[T any](opts ...Option) *Stack[T] {
	c := config{boMin: 4, boMax: 1024}
	for _, o := range opts {
		o(&c)
	}
	return &Stack[T]{boMin: c.boMin, boMax: c.boMax}
}

// Handle is a per-goroutine session holding the backoff state. Handles
// must not be shared between goroutines.
type Handle[T any] struct {
	s  *Stack[T]
	bo *backoff.Exp
}

// Register returns a new handle on the stack.
func (s *Stack[T]) Register() *Handle[T] {
	return &Handle[T]{s: s, bo: backoff.NewExp(s.boMin, s.boMax, s.seq.Add(1))}
}

// Close releases the handle. Treiber handles hold only private backoff
// state, so Close is a no-op beyond marking the end of the session; it
// exists to satisfy the uniform handle-lifecycle contract. Idempotent.
func (h *Handle[T]) Close() {}

// Push adds v to the top of the stack.
func (h *Handle[T]) Push(v T) {
	n := &node[T]{value: v}
	s := h.s
	for {
		old := s.top.Load()
		n.next = old
		if s.top.CompareAndSwap(old, n) {
			h.bo.Reset()
			return
		}
		h.bo.Backoff()
	}
}

// Pop removes and returns the top element; ok is false if the stack was
// empty at the linearization point.
func (h *Handle[T]) Pop() (v T, ok bool) {
	s := h.s
	for {
		old := s.top.Load()
		if old == nil {
			h.bo.Reset()
			return v, false
		}
		if s.top.CompareAndSwap(old, old.next) {
			h.bo.Reset()
			return old.value, true
		}
		h.bo.Backoff()
	}
}

// Peek returns the top element without removing it; ok is false if the
// stack is empty. Peek never fails and never retries: it is a single
// atomic read, as in the paper.
func (h *Handle[T]) Peek() (v T, ok bool) {
	old := h.s.top.Load()
	if old == nil {
		return v, false
	}
	return old.value, true
}

// Len counts the elements currently on the stack. It is a racy
// diagnostic traversal intended for tests and quiescent states, not a
// linearizable operation.
func (s *Stack[T]) Len() int {
	n := 0
	for p := s.top.Load(); p != nil; p = p.next {
		n++
	}
	return n
}
