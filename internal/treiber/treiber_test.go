package treiber_test

import (
	"testing"

	"secstack/internal/stacktest"
	"secstack/internal/treiber"
)

type adapter struct{ s *treiber.Stack[int64] }

func (a adapter) Register() stacktest.Handle { return a.s.Register() }

func factory() stacktest.Stack { return adapter{treiber.New[int64]()} }

func TestConformance(t *testing.T) {
	stacktest.RunAll(t, factory)
}

func TestLenQuiescent(t *testing.T) {
	s := treiber.New[int64]()
	h := s.Register()
	if s.Len() != 0 {
		t.Fatalf("Len = %d on empty stack", s.Len())
	}
	for i := 0; i < 10; i++ {
		h.Push(int64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	h.Pop()
	if s.Len() != 9 {
		t.Fatalf("Len = %d, want 9", s.Len())
	}
}

func TestWithBackoffOption(t *testing.T) {
	s := treiber.New[int64](treiber.WithBackoff(1, 8))
	h := s.Register()
	h.Push(1)
	if v, ok := h.Pop(); !ok || v != 1 {
		t.Fatal("stack with custom backoff broken")
	}
}

func TestGenericValueTypes(t *testing.T) {
	s := treiber.New[string]()
	h := s.Register()
	h.Push("hello")
	h.Push("world")
	if v, _ := h.Pop(); v != "world" {
		t.Fatalf("got %q", v)
	}
	if v, _ := h.Pop(); v != "hello" {
		t.Fatalf("got %q", v)
	}
}
