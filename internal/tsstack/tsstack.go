// Package tsstack implements the interval timestamped stack (TS-interval)
// of Dodds, Haas and Kirsch (POPL '15), the TSI baseline of the paper's
// evaluation.
//
// Each thread pushes into its own single-producer pool, tagging elements
// with a timestamp *interval*; pop scans all pools for the youngest
// visible element and takes it with one CAS on the element's taken flag.
// Pushes therefore never synchronize on a shared top pointer - the cost
// is shifted onto pop and peek, which must scan every pool. The paper's
// Figure 3 (push-only vs pop-only asymmetry) is a direct consequence.
//
// Substitutions (see DESIGN.md §4):
//
//   - The original obtains intervals from two RDTSCP reads separated by
//     a delay. Go cannot portably read the TSC, so timestamps come from
//     a shared atomic counter advanced by at most one CAS attempt per
//     bound (the TS-CAS variant); the push still pays the
//     interval-widening delay between its two bounds, preserving the
//     push-latency trade-off the paper discusses.
//
//   - The original's pop may take an element whose timestamp is still
//     unassigned ("elimination rule"), which is sound for a stack with
//     push/pop only. The paper's benchmark adds peek, and repeated
//     reads under that rule can pin contradictory linearization orders
//     (found by this repository's linearizability checker). We
//     therefore totalize the element order - (timestamp start, pool id)
//     breaks all ties deterministically - and have pop and peek wait
//     out in-flight timestamp assignments. Pushes remain scan-free and
//     synchronization-light, which is the property the paper's Figure 3
//     exercises.
package tsstack

import (
	"fmt"
	"sync/atomic"

	"secstack/internal/backoff"
	"secstack/internal/tid"
)

// infTS is the provisional timestamp an element carries between being
// published and having its interval assigned. An element at infTS is
// maximally young and, having been pushed concurrently with any
// operation that sees it, is always eligible for the elimination fast
// path - exactly the original algorithm's TOP timestamp.
const infTS = int64(1) << 62

// item is one pooled element. tsStart/tsEnd delimit the timestamp
// interval (assigned after publication, hence atomic); taken flips once
// when a pop claims the element.
type item[T any] struct {
	value   T
	tsStart atomic.Int64
	tsEnd   atomic.Int64
	taken   atomic.Bool
	next    *item[T] // toward older elements; immutable once published
}

// pool is one thread's single-producer pool. Only the owner stores to
// top; any thread reads it and marks items taken.
type pool[T any] struct {
	top atomic.Pointer[item[T]]
	_   [56]byte
}

// Stack is an interval timestamped stack supporting up to a fixed
// number of registered threads.
type Stack[T any] struct {
	pools []pool[T]
	clock atomic.Int64
	delay int
	ids   *tid.Allocator
}

// Option configures a Stack.
type Option func(*config)

type config struct {
	maxThreads int
	delay      int
}

// WithMaxThreads bounds the number of handles (pools). Default 256.
func WithMaxThreads(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.maxThreads = n
		}
	}
}

// WithDelay sets the interval-widening delay in spin iterations between
// the two clock reads of a push. The original paper tunes this to trade
// push latency against pop scan success; default 32.
func WithDelay(d int) Option {
	return func(c *config) {
		if d >= 0 {
			c.delay = d
		}
	}
}

// New returns an empty timestamped stack.
func New[T any](opts ...Option) *Stack[T] {
	c := config{maxThreads: 256, delay: 32}
	for _, o := range opts {
		o(&c)
	}
	return &Stack[T]{pools: make([]pool[T], c.maxThreads), delay: c.delay, ids: tid.New(c.maxThreads)}
}

// Handle is a per-goroutine session owning one pool. Handles must not
// be shared between goroutines.
type Handle[T any] struct {
	s  *Stack[T]
	id int
}

// Register returns a new handle (and pool) on the stack. Pool ids
// released by Close are recycled, so WithMaxThreads bounds concurrently
// live handles; Register panics only when that many are open at once.
func (s *Stack[T]) Register() *Handle[T] {
	id, err := s.ids.Acquire()
	if err != nil {
		panic(fmt.Sprintf("tsstack: more than %d handles live", len(s.pools)))
	}
	return &Handle[T]{s: s, id: id}
}

// Close releases the handle's pool id for reuse by a future Register.
// Elements still in the pool stay poppable: scans cover every pool ever
// used, and a pool's untaken items are owned by the stack, not the
// handle. Close is idempotent; any other use of a closed handle is a
// bug.
func (h *Handle[T]) Close() {
	if h.id < 0 {
		return
	}
	h.s.ids.Release(h.id)
	h.id = -1
}

// newTimestamp produces one interval bound: it reads the clock and tries
// a single CAS increment so that the clock advances under concurrency
// (TS-CAS style); contention failures are ignored - another thread's
// success advanced the clock for us.
func (s *Stack[T]) newTimestamp() int64 {
	t := s.clock.Load()
	s.clock.CompareAndSwap(t, t+1)
	return t
}

// Push inserts v into the calling thread's pool with a fresh interval.
func (h *Handle[T]) Push(v T) {
	s := h.s
	p := &s.pools[h.id]

	n := &item[T]{value: v}
	n.tsStart.Store(infTS)
	n.tsEnd.Store(infTS)
	// Unlink the taken prefix while we are here: only the owner moves
	// top forward, so a plain read-modify-store is safe.
	oldTop := p.top.Load()
	for oldTop != nil && oldTop.taken.Load() {
		oldTop = oldTop.next
	}
	n.next = oldTop

	// Publish first, then assign the interval, as in the original:
	// until the interval lands the element reads as maximally young.
	p.top.Store(n)
	a := s.newTimestamp()
	if s.delay > 0 {
		backoff.Spin(s.delay)
	}
	b := s.newTimestamp()
	n.tsEnd.Store(b)
	n.tsStart.Store(a)
}

// Pop removes and returns the youngest element; ok is false if every
// pool was observed empty during a full scan.
func (h *Handle[T]) Pop() (v T, ok bool) {
	var w backoff.Waiter
	for {
		best, empty := h.scan()
		if best == nil {
			if empty {
				return v, false
			}
			// Saw untaken items but lost every race; rescan.
			w.Wait()
			continue
		}
		if best.taken.CompareAndSwap(false, true) {
			return best.value, true
		}
		w.Wait()
	}
}

// scan walks all pools and returns the youngest untaken item under the
// total order (timestamp start, pool id), or nil if none survived, and
// whether every pool was observed empty-of-untaken. Elements whose
// timestamp assignment is still in flight are waited out, so every
// comparison uses final timestamps.
func (h *Handle[T]) scan() (best *item[T], empty bool) {
	s := h.s
	n := s.ids.HighWater()
	var bestStart int64
	bestPool := -1
	empty = true
	for i := 0; i < n; i++ {
		top := s.pools[i].top.Load()
		it := top
		for it != nil && it.taken.Load() {
			it = it.next
		}
		if it != top {
			// Help unlink the taken prefix, as the original's pops do;
			// without this, pop-heavy phases re-walk ever-growing taken
			// chains. Benign race with the owner's plain store: a lost
			// CAS just leaves the prefix for the next scan, and taken
			// flags are sticky so no live element can be unlinked.
			s.pools[i].top.CompareAndSwap(top, it)
		}
		if it == nil {
			continue
		}
		empty = false
		start := it.tsStart.Load()
		var w backoff.Waiter
		for start == infTS { // assignment in flight; it lands right
			w.Wait() // after the pusher's bounded delay
			start = it.tsStart.Load()
		}
		if best == nil || start > bestStart || (start == bestStart && i > bestPool) {
			best, bestStart, bestPool = it, start, i
		}
	}
	return best, empty
}

// Peek returns the youngest element without removing it.
func (h *Handle[T]) Peek() (v T, ok bool) {
	best, _ := h.scan()
	if best == nil {
		return v, false
	}
	return best.value, true
}

// Len counts untaken elements across pools; a racy diagnostic for tests
// and quiescent states.
func (s *Stack[T]) Len() int {
	total := 0
	n := s.ids.HighWater()
	for i := 0; i < n; i++ {
		for it := s.pools[i].top.Load(); it != nil; it = it.next {
			if !it.taken.Load() {
				total++
			}
		}
	}
	return total
}
