package tsstack_test

import (
	"sync"
	"testing"

	"secstack/internal/stacktest"
	"secstack/internal/tsstack"
)

type adapter struct{ s *tsstack.Stack[int64] }

func (a adapter) Register() stacktest.Handle { return a.s.Register() }

func factory() stacktest.Stack { return adapter{tsstack.New[int64]()} }

func TestConformance(t *testing.T) {
	stacktest.RunAll(t, factory)
}

func TestZeroDelay(t *testing.T) {
	// Zero interval delay degenerates to near-singleton intervals; the
	// stack must still conserve elements.
	s := tsstack.New[int64](tsstack.WithDelay(0))
	var wg sync.WaitGroup
	const g, per = 8, 1500
	seen := make([]int32, g*per)
	var mu sync.Mutex
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			local := make([]int64, 0, per)
			for i := 0; i < per; i++ {
				h.Push(int64(w*per + i))
				if v, ok := h.Pop(); ok {
					local = append(local, v)
				}
			}
			mu.Lock()
			for _, v := range local {
				seen[v]++
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	h := s.Register()
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		seen[v]++
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("value %d seen %d times", v, c)
		}
	}
}

func TestRegisterPanicsPastMaxThreads(t *testing.T) {
	s := tsstack.New[int64](tsstack.WithMaxThreads(1))
	s.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-registration")
		}
	}()
	s.Register()
}

func TestOwnPoolLIFO(t *testing.T) {
	// A thread popping its own pushes must see strict LIFO.
	s := tsstack.New[int64]()
	h := s.Register()
	for i := int64(0); i < 100; i++ {
		h.Push(i)
	}
	for want := int64(99); want >= 0; want-- {
		v, ok := h.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
}

func TestLenCountsUntaken(t *testing.T) {
	s := tsstack.New[int64]()
	h := s.Register()
	for i := int64(0); i < 10; i++ {
		h.Push(i)
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	h.Pop()
	h.Pop()
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
}

func TestPushOnlyNoSharedContention(t *testing.T) {
	// Push-only throughput path: every thread writes only its own pool.
	s := tsstack.New[int64]()
	var wg sync.WaitGroup
	const g, per = 8, 5000
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Register()
			for i := 0; i < per; i++ {
				h.Push(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != g*per {
		t.Fatalf("Len = %d, want %d", got, g*per)
	}
}
