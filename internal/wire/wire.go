// Package wire defines secd's length-prefixed binary protocol: the
// frames a client exchanges with the server that fronts the stack,
// pool and funnel (internal/secd). The framing is deliberately boring
// - fixed-width big-endian integers, no varints, no reflection - so a
// request can be decoded with two bounds checks and the fuzzer
// (FuzzDecodeFrame) can state the only interesting property: malformed
// bytes produce errors, never panics.
//
// Every frame starts with a 4-byte big-endian payload length. Request
// payloads are fixed-size: one opcode byte plus one 8-byte argument
// (zero for argument-less operations), so every request is exactly
// RequestSize bytes on the wire and a server can refuse anything else
// before looking at it. Reply payloads are one status byte plus one
// 8-byte value, optionally followed by a banner (the handshake's
// registry string); the length prefix is what delimits the banner.
//
//	request:  | u32 len=9        | u8 op     | i64 arg   |
//	reply:    | u32 len=9+len(b) | u8 status | i64 value | banner b |
//
// The session handshake is itself a frame pair: the first request on a
// connection must be OpHello carrying HelloArg() (magic and protocol
// version packed into the argument), and the server answers with
// StatusOK and its banner - or StatusBusy when MaxThreads sessions are
// already live, which is the protocol-level backpressure mapping of
// the engines' TryRegister contract.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"secstack/internal/faultpoint"
)

// FPDecode is the package's fault-injection site (internal/faultpoint):
// armed, request decoding fails with ErrFrame before looking at the
// bytes, which a server must treat exactly like a malformed frame -
// reply StatusBadRequest or drop the connection. Disarmed it costs one
// atomic load per decode.
const FPDecode = "wire.decode"

// Magic identifies a secd client's Hello ("SECD" in ASCII); Version is
// the protocol revision, bumped on any frame-layout or opcode change.
// v2 added OpRetryMark, the client's retry telemetry note.
const (
	Magic   uint32 = 0x53454344
	Version uint32 = 2
)

// Op is a request opcode. Opcodes are dense from 1 so servers can
// index per-op metrics by opcode.
type Op uint8

// The protocol's operations. Stack ops serve the session's stack
// handle, pool ops its pool handle, funnel ops its funnel handle (the
// funnel doubling as the served counter / rate-limiter endpoint), and
// OpStats reads the server's live-session gauge.
const (
	OpHello        Op = 1  // handshake; arg = HelloArg()
	OpStackPush    Op = 2  // arg = value
	OpStackPop     Op = 3  // reply value = popped element
	OpStackPeek    Op = 4  // reply value = top element
	OpPoolPut      Op = 5  // arg = value
	OpPoolGet      Op = 6  // reply value = some element
	OpFunnelAdd    Op = 7  // arg = amount; reply value = counter before the add
	OpFunnelTryAdd Op = 8  // arg = amount; StatusContended when the solo CAS lost
	OpFunnelLoad   Op = 9  // reply value = counter
	OpStats        Op = 10 // reply value = live sessions
	OpRetryMark    Op = 11 // arg = ops the client is about to replay after a reconnect; reply value = server's total retries observed
)

// NumOps is one past the highest opcode - the size of a per-op metrics
// table indexed by Op.
const NumOps = 12

// String names the opcode for logs and load-generator reports.
func (o Op) String() string {
	switch o {
	case OpHello:
		return "hello"
	case OpStackPush:
		return "stack.push"
	case OpStackPop:
		return "stack.pop"
	case OpStackPeek:
		return "stack.peek"
	case OpPoolPut:
		return "pool.put"
	case OpPoolGet:
		return "pool.get"
	case OpFunnelAdd:
		return "funnel.add"
	case OpFunnelTryAdd:
		return "funnel.tryadd"
	case OpFunnelLoad:
		return "funnel.load"
	case OpStats:
		return "stats"
	case OpRetryMark:
		return "retry.mark"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// validOp reports whether o is a defined opcode.
func validOp(o Op) bool { return o >= OpHello && o < NumOps }

// Status is a reply's outcome byte.
type Status uint8

// Reply statuses. StatusEmpty and StatusContended are successful
// protocol outcomes (the operation ran; the structure had nothing to
// give, or the try-variant's CAS lost); StatusBusy and StatusBadRequest
// are connection-level: Busy rejects a handshake with backpressure,
// BadRequest precedes the server closing the connection, and
// StatusShutdown is the server's goodbye while draining.
const (
	StatusOK         Status = 0
	StatusEmpty      Status = 1
	StatusContended  Status = 2
	StatusBusy       Status = 3
	StatusBadRequest Status = 4
	StatusShutdown   Status = 5
)

// String names the status for logs and load-generator reports.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusEmpty:
		return "empty"
	case StatusContended:
		return "contended"
	case StatusBusy:
		return "busy"
	case StatusBadRequest:
		return "bad-request"
	case StatusShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Frame sizes. Every request is RequestSize bytes on the wire; a reply
// is at least ReplyHeaderSize and at most ReplyHeaderSize+MaxBanner.
const (
	lenSize         = 4                    // u32 length prefix
	reqPayload      = 1 + 8                // op + arg
	repPayload      = 1 + 8                // status + value
	RequestSize     = lenSize + reqPayload // 13: fixed on-wire size of every request
	ReplyHeaderSize = lenSize + repPayload // 13: reply size without a banner
	// MaxBanner bounds the handshake banner so a hostile length prefix
	// cannot make a client allocate unboundedly.
	MaxBanner = 4096
)

// Decode errors. ErrShort means the buffer ends mid-frame (a streaming
// caller should read more bytes); ErrFrame means the bytes cannot be a
// frame at any length (a server should drop the connection).
var (
	ErrShort = errors.New("wire: short frame")
	ErrFrame = errors.New("wire: malformed frame")
)

// Request is one decoded request frame.
type Request struct {
	Op  Op
	Arg int64
}

// Reply is one decoded reply frame. Banner is non-empty only on
// handshake replies.
type Reply struct {
	Status Status
	Value  int64
	Banner string
}

// HelloArg packs the protocol magic and version into OpHello's
// argument.
func HelloArg() int64 { return int64(uint64(Magic)<<32 | uint64(Version)) }

// CheckHello validates a Hello argument against this package's magic
// and version.
func CheckHello(arg int64) error {
	u := uint64(arg)
	if uint32(u>>32) != Magic {
		return fmt.Errorf("%w: bad hello magic %#x", ErrFrame, u>>32)
	}
	if v := uint32(u); v != Version {
		return fmt.Errorf("%w: protocol version %d, want %d", ErrFrame, v, Version)
	}
	return nil
}

// AppendRequest appends q's frame to dst and returns the extended
// slice.
func AppendRequest(dst []byte, q Request) []byte {
	dst = binary.BigEndian.AppendUint32(dst, reqPayload)
	dst = append(dst, byte(q.Op))
	return binary.BigEndian.AppendUint64(dst, uint64(q.Arg))
}

// DecodeRequest decodes one request frame from the front of b,
// returning the frame and the bytes consumed. It never panics: a
// truncated buffer is ErrShort, anything structurally invalid is
// ErrFrame.
func DecodeRequest(b []byte) (q Request, n int, err error) {
	if faultpoint.Hit(FPDecode) != nil {
		return q, 0, fmt.Errorf("%w: injected decode fault", ErrFrame)
	}
	if len(b) < lenSize {
		return q, 0, ErrShort
	}
	if l := binary.BigEndian.Uint32(b); l != reqPayload {
		return q, 0, fmt.Errorf("%w: request payload length %d, want %d", ErrFrame, l, reqPayload)
	}
	if len(b) < RequestSize {
		return q, 0, ErrShort
	}
	q.Op = Op(b[lenSize])
	if !validOp(q.Op) {
		return Request{}, 0, fmt.Errorf("%w: unknown opcode %d", ErrFrame, b[lenSize])
	}
	q.Arg = int64(binary.BigEndian.Uint64(b[lenSize+1:]))
	return q, RequestSize, nil
}

// AppendReply appends p's frame to dst and returns the extended slice.
// Banners longer than MaxBanner are truncated rather than producing a
// frame no conforming decoder would accept.
func AppendReply(dst []byte, p Reply) []byte {
	banner := p.Banner
	if len(banner) > MaxBanner {
		banner = banner[:MaxBanner]
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(repPayload+len(banner)))
	dst = append(dst, byte(p.Status))
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.Value))
	return append(dst, banner...)
}

// DecodeReply decodes one reply frame from the front of b, returning
// the frame and the bytes consumed. It never panics: a truncated
// buffer is ErrShort, anything structurally invalid is ErrFrame.
func DecodeReply(b []byte) (p Reply, n int, err error) {
	if len(b) < lenSize {
		return p, 0, ErrShort
	}
	l := binary.BigEndian.Uint32(b)
	if l < repPayload || l > repPayload+MaxBanner {
		return p, 0, fmt.Errorf("%w: reply payload length %d outside [%d, %d]", ErrFrame, l, repPayload, repPayload+MaxBanner)
	}
	total := lenSize + int(l)
	if len(b) < total {
		return p, 0, ErrShort
	}
	p.Status = Status(b[lenSize])
	p.Value = int64(binary.BigEndian.Uint64(b[lenSize+1:]))
	if banner := b[ReplyHeaderSize:total]; len(banner) > 0 {
		p.Banner = string(banner)
	}
	return p, total, nil
}

// ReadRequest reads exactly one request frame from r.
func ReadRequest(r io.Reader) (Request, error) {
	var buf [RequestSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Request{}, err
	}
	q, _, err := DecodeRequest(buf[:])
	return q, err
}

// ReadReply reads exactly one reply frame from r.
func ReadReply(r io.Reader) (Reply, error) {
	var head [lenSize]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return Reply{}, err
	}
	l := binary.BigEndian.Uint32(head[:])
	if l < repPayload || l > repPayload+MaxBanner {
		return Reply{}, fmt.Errorf("%w: reply payload length %d outside [%d, %d]", ErrFrame, l, repPayload, repPayload+MaxBanner)
	}
	buf := make([]byte, lenSize+l)
	copy(buf, head[:])
	if _, err := io.ReadFull(r, buf[lenSize:]); err != nil {
		return Reply{}, err
	}
	p, _, err := DecodeReply(buf)
	return p, err
}
