package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"secstack/internal/faultpoint"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpHello, Arg: HelloArg()},
		{Op: OpStackPush, Arg: 42},
		{Op: OpStackPop},
		{Op: OpStackPeek},
		{Op: OpPoolPut, Arg: -1},
		{Op: OpPoolGet},
		{Op: OpFunnelAdd, Arg: 1 << 62},
		{Op: OpFunnelTryAdd, Arg: -(1 << 62)},
		{Op: OpFunnelLoad},
		{Op: OpStats},
		{Op: OpRetryMark, Arg: 3},
	}
	for _, q := range cases {
		t.Run(q.Op.String(), func(t *testing.T) {
			b := AppendRequest(nil, q)
			if len(b) != RequestSize {
				t.Fatalf("encoded %d bytes, want %d", len(b), RequestSize)
			}
			got, n, err := DecodeRequest(b)
			if err != nil {
				t.Fatalf("DecodeRequest: %v", err)
			}
			if n != RequestSize || got != q {
				t.Fatalf("round trip: got %+v (n=%d), want %+v (n=%d)", got, n, q, RequestSize)
			}
			// A streaming decoder must also find the frame at the front of
			// a longer buffer.
			if got2, n2, err := DecodeRequest(append(b, 0xff, 0xfe)); err != nil || n2 != RequestSize || got2 != q {
				t.Fatalf("decode with trailing bytes: got %+v n=%d err=%v", got2, n2, err)
			}
			// Via the io helpers too.
			rq, err := ReadRequest(bytes.NewReader(b))
			if err != nil || rq != q {
				t.Fatalf("ReadRequest: got %+v err=%v", rq, err)
			}
		})
	}
}

func TestReplyRoundTrip(t *testing.T) {
	cases := []Reply{
		{Status: StatusOK, Value: 7},
		{Status: StatusEmpty},
		{Status: StatusContended, Value: -3},
		{Status: StatusBusy},
		{Status: StatusBadRequest},
		{Status: StatusShutdown},
		{Status: StatusOK, Value: 1, Banner: "secd/1 alg=SEC registry=SEC,TRB"},
		{Status: StatusOK, Banner: "bänner → ünïcode"},
		{Status: StatusOK, Banner: strings.Repeat("x", MaxBanner)},
	}
	for _, p := range cases {
		t.Run(p.Status.String(), func(t *testing.T) {
			b := AppendReply(nil, p)
			got, n, err := DecodeReply(b)
			if err != nil {
				t.Fatalf("DecodeReply: %v", err)
			}
			if n != len(b) || got != p {
				t.Fatalf("round trip: got %+v (n=%d), want %+v (n=%d)", got, n, p, len(b))
			}
			if got2, _, err := DecodeReply(append(b, 0x01)); err != nil || got2 != p {
				t.Fatalf("decode with trailing bytes: got %+v err=%v", got2, err)
			}
			rp, err := ReadReply(bytes.NewReader(b))
			if err != nil || rp != p {
				t.Fatalf("ReadReply: got %+v err=%v", rp, err)
			}
		})
	}
}

func TestReplyBannerTruncated(t *testing.T) {
	long := strings.Repeat("y", MaxBanner+100)
	b := AppendReply(nil, Reply{Status: StatusOK, Banner: long})
	got, _, err := DecodeReply(b)
	if err != nil {
		t.Fatalf("DecodeReply: %v", err)
	}
	if len(got.Banner) != MaxBanner || got.Banner != long[:MaxBanner] {
		t.Fatalf("banner not truncated to MaxBanner: len=%d", len(got.Banner))
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	valid := AppendRequest(nil, Request{Op: OpStackPush, Arg: 1})
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrShort},
		{"short length prefix", valid[:3], ErrShort},
		{"truncated payload", valid[:RequestSize-1], ErrShort},
		{"bad length", []byte{0, 0, 0, 200, 2, 0, 0, 0, 0, 0, 0, 0, 1}, ErrFrame},
		{"zero length", []byte{0, 0, 0, 0}, ErrFrame},
		{"unknown opcode", []byte{0, 0, 0, 9, 99, 0, 0, 0, 0, 0, 0, 0, 0}, ErrFrame},
		{"opcode zero", []byte{0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0}, ErrFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, n, err := DecodeRequest(tc.b)
			if !errors.Is(err, tc.want) || n != 0 {
				t.Fatalf("got n=%d err=%v, want %v", n, err, tc.want)
			}
		})
	}
}

func TestDecodeReplyErrors(t *testing.T) {
	valid := AppendReply(nil, Reply{Status: StatusOK, Value: 1})
	oversize := []byte{0, 0, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrShort},
		{"short length prefix", valid[:2], ErrShort},
		{"truncated payload", valid[:ReplyHeaderSize-2], ErrShort},
		{"undersize length", []byte{0, 0, 0, 3, 0, 0, 0}, ErrFrame},
		{"oversize length", oversize, ErrFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, n, err := DecodeReply(tc.b)
			if !errors.Is(err, tc.want) || n != 0 {
				t.Fatalf("got n=%d err=%v, want %v", n, err, tc.want)
			}
		})
	}
}

// TestDecodeFaultpoint pins the wire.decode injection site: armed, a
// perfectly valid frame decodes as ErrFrame - the malformed-bytes path
// without malformed bytes - and disarmed decoding is untouched.
func TestDecodeFaultpoint(t *testing.T) {
	defer faultpoint.Reset()
	valid := AppendRequest(nil, Request{Op: OpStackPush, Arg: 7})
	faultpoint.Arm(FPDecode, faultpoint.Spec{Action: faultpoint.ActError, Count: 1})
	if _, n, err := DecodeRequest(valid); !errors.Is(err, ErrFrame) || n != 0 {
		t.Fatalf("armed decode: n=%d err=%v, want ErrFrame", n, err)
	}
	if q, _, err := DecodeRequest(valid); err != nil || q.Arg != 7 {
		t.Fatalf("decode after the Count window: %+v %v", q, err)
	}
}

func TestCheckHello(t *testing.T) {
	if err := CheckHello(HelloArg()); err != nil {
		t.Fatalf("CheckHello(HelloArg()): %v", err)
	}
	if err := CheckHello(0); err == nil {
		t.Fatal("CheckHello(0) accepted")
	}
	wrongVersion := int64(uint64(Magic)<<32 | uint64(Version+1))
	if err := CheckHello(wrongVersion); err == nil {
		t.Fatal("CheckHello accepted a future protocol version")
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	// Every defined op and status names itself; out-of-range values
	// fall back to a numeric form instead of panicking.
	for o := OpHello; o < NumOps; o++ {
		if s := o.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Fatalf("op %d has no name: %q", o, s)
		}
	}
	if s := Op(200).String(); s != "op(200)" {
		t.Fatalf("unknown op string: %q", s)
	}
	if s := Status(200).String(); s != "status(200)" {
		t.Fatalf("unknown status string: %q", s)
	}
}

// FuzzDecodeFrame feeds arbitrary bytes to both decoders. The property
// under test is total safety: any input yields (frame, n>0, nil) or an
// error - never a panic, and never a claim to have consumed more bytes
// than the buffer holds. Valid frames must re-encode to the bytes that
// produced them (canonical framing).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendRequest(nil, Request{Op: OpHello, Arg: HelloArg()}))
	f.Add(AppendRequest(nil, Request{Op: OpFunnelAdd, Arg: -17}))
	f.Add(AppendReply(nil, Reply{Status: StatusOK, Value: 9, Banner: "secd/1"}))
	f.Add(AppendReply(nil, Reply{Status: StatusBusy}))
	f.Add([]byte{0, 0, 0, 9})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		if q, n, err := DecodeRequest(b); err == nil {
			if n != RequestSize || n > len(b) {
				t.Fatalf("request consumed %d of %d bytes", n, len(b))
			}
			if re := AppendRequest(nil, q); !bytes.Equal(re, b[:n]) {
				t.Fatalf("request not canonical: % x -> %+v -> % x", b[:n], q, re)
			}
		}
		if p, n, err := DecodeReply(b); err == nil {
			if n < ReplyHeaderSize || n > len(b) {
				t.Fatalf("reply consumed %d of %d bytes", n, len(b))
			}
			if re := AppendReply(nil, p); !bytes.Equal(re, b[:n]) {
				t.Fatalf("reply not canonical: % x -> %+v -> % x", b[:n], p, re)
			}
		}
	})
}
