// Package xrand provides a tiny, allocation-free pseudo-random number
// generator intended for per-goroutine use in benchmark workloads and
// randomized backoff. It is NOT cryptographically secure.
//
// Each worker goroutine owns its own *State, so no synchronization is
// required on the hot path. States are seeded through splitmix64 so that
// adjacent seeds (e.g. thread ids) yield decorrelated streams.
package xrand

// State is the state of a xorshift64* generator. The zero value is not a
// valid state; construct with New.
type State struct {
	x uint64
}

// New returns a generator seeded from seed via splitmix64, so that
// consecutive seeds produce independent-looking streams.
func New(seed uint64) *State {
	s := &State{}
	s.Seed(seed)
	return s
}

// Seed resets the generator to a state derived from seed.
func (s *State) Seed(seed uint64) {
	// splitmix64 step guarantees a non-zero xorshift state for any seed.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	s.x = z
}

// Uint64 returns the next pseudo-random 64-bit value (xorshift64*).
func (s *State) Uint64() uint64 {
	x := s.x
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.x = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next pseudo-random 32-bit value.
func (s *State) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *State) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift range reduction (biased by < 2^-32 for the
	// n values used in workloads, which is irrelevant here).
	return int((uint64(s.Uint32()) * uint64(n)) >> 32)
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *State) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *State) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (s *State) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
