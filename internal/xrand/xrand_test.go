package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewNonZeroState(t *testing.T) {
	for _, seed := range []uint64{0, 1, 2, math.MaxUint64, 0x9e3779b97f4a7c15} {
		s := New(seed)
		if s.x == 0 {
			t.Fatalf("seed %d produced zero state", seed)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	s := New(99)
	const n = 8
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		seen[s.Intn(n)] = true
	}
	if len(seen) != n {
		t.Fatalf("Intn(%d) covered only %d values", n, len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSeedResetsStream(t *testing.T) {
	s := New(17)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(17)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after re-seed, step %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestQuickSeedAlwaysValid(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		// A valid state must produce at least one non-zero output and
		// stay within Intn bounds.
		v := s.Intn(1000)
		return v >= 0 && v < 1000 && s.x != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeterministicPerSeed(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Intn(100)
	}
	_ = sink
}
