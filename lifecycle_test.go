// Handle-lifecycle churn tests: the acceptance gate for Close-based
// slot recycling. Each test drives 4x MaxThreads handle registrations
// through waves of short-lived goroutines - the ephemeral-goroutine
// regime the fixed-thread-set seed could not survive (Register used to
// panic at the MaxThreads-th lifetime registration) - and checks both
// that registration never fails and that no element is lost or
// duplicated across handle generations. Run with -race; the free-list
// handoff between a closing and a registering goroutine is exactly the
// kind of publication these tests exist to check.
package secstack_test

import (
	"sync"
	"testing"

	"secstack/deque"
	"secstack/funnel"
	"secstack/pool"
	"secstack/stack"
)

// churn lifecycle parameters: maxThreads live handles per wave, and
// enough waves that lifetime registrations total 4x MaxThreads.
const (
	churnMaxThreads = 16
	churnWaves      = 4
)

// TestHandleChurnStacks churns every stack algorithm through the
// registry with a tight MaxThreads bound.
func TestHandleChurnStacks(t *testing.T) {
	for _, alg := range stack.Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			s, err := stack.New[int64](alg, stack.WithMaxThreads(churnMaxThreads))
			if err != nil {
				t.Fatal(err)
			}
			var pushed, popped int64
			var mu sync.Mutex
			for wave := 0; wave < churnWaves; wave++ {
				var wg sync.WaitGroup
				for w := 0; w < churnMaxThreads; w++ {
					wg.Add(1)
					go func(wave, w int) {
						defer wg.Done()
						h := s.Register()
						defer h.Close()
						base := int64(wave*churnMaxThreads+w) << 32
						myPushed, myPopped := int64(0), int64(0)
						for i := int64(1); i <= 50; i++ {
							h.Push(base + i)
							myPushed++
							if i%2 == 0 {
								if _, ok := h.Pop(); ok {
									myPopped++
								}
							}
						}
						mu.Lock()
						pushed += myPushed
						popped += myPopped
						mu.Unlock()
					}(wave, w)
				}
				wg.Wait()
			}
			// 4x MaxThreads handles have come and gone; a full wave of
			// fresh ones must still fit.
			handles := make([]stack.Handle[int64], churnMaxThreads)
			for i := range handles {
				handles[i] = s.Register()
			}
			for _, h := range handles {
				for {
					if _, ok := h.Pop(); !ok {
						break
					}
					popped++
				}
			}
			for _, h := range handles {
				h.Close()
			}
			// One more drain through the implicit API catches anything a
			// racing pop left behind.
			for {
				if _, ok := s.Pop(); !ok {
					break
				}
				popped++
			}
			if pushed != popped {
				t.Fatalf("%s: pushed %d != popped %d after churn", alg, pushed, popped)
			}
		})
	}
}

// TestHandleChurnSECRecycling repeats the SEC churn with epoch-based
// node recycling on, so ebr slot recycling is exercised under churn
// too.
func TestHandleChurnSECRecycling(t *testing.T) {
	s := stack.NewSEC[int64](stack.WithMaxThreads(churnMaxThreads), stack.WithRecycling())
	for wave := 0; wave < churnWaves; wave++ {
		var wg sync.WaitGroup
		for w := 0; w < churnMaxThreads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := s.Register()
				defer h.Close()
				for i := int64(0); i < 50; i++ {
					h.Push(i)
					h.Pop()
				}
			}(w)
		}
		wg.Wait()
	}
	if got := s.Register(); got == nil {
		t.Fatal("Register failed after recycling churn")
	}
}

// TestHandleChurnSECAdaptive repeats the SEC churn waves with the full
// adaptivity stack on - solo fast path, dynamic shard scaling, batch
// recycling, node recycling - and checks element conservation: handle
// slots (and with them engine hazard slots and solo scratch batches)
// recycle across goroutine generations while batches recycle across
// freezes. Run with -race; the hazard handoff between a retiring
// batch's last reader and the freezer that reuses it is exactly the
// publication this test exists to check.
func TestHandleChurnSECAdaptive(t *testing.T) {
	s := stack.NewSEC[int64](
		stack.WithMaxThreads(churnMaxThreads),
		stack.WithAdaptive(true),
		stack.WithBatchRecycling(true),
		stack.WithRecycling(),
	)
	var pushed, popped int64
	var mu sync.Mutex
	for wave := 0; wave < churnWaves; wave++ {
		var wg sync.WaitGroup
		for w := 0; w < churnMaxThreads; w++ {
			wg.Add(1)
			go func(wave, w int) {
				defer wg.Done()
				h := s.Register()
				defer h.Close()
				base := int64(wave*churnMaxThreads+w) << 32
				myPushed, myPopped := int64(0), int64(0)
				for i := int64(1); i <= 50; i++ {
					h.Push(base + i)
					myPushed++
					if i%2 == 0 {
						if _, ok := h.Pop(); ok {
							myPopped++
						}
					}
				}
				mu.Lock()
				pushed += myPushed
				popped += myPopped
				mu.Unlock()
			}(wave, w)
		}
		wg.Wait()
	}
	h := s.Register()
	defer h.Close()
	for {
		if _, ok := h.Pop(); !ok {
			break
		}
		popped++
	}
	if pushed != popped {
		t.Fatalf("adaptive SEC: pushed %d != popped %d after churn", pushed, popped)
	}
}

// TestHandleChurnDeque churns 4x MaxThreads deque handles and checks
// element conservation across both ends.
func TestHandleChurnDeque(t *testing.T) {
	d := deque.New[int64](deque.WithMaxThreads(churnMaxThreads))
	var pushed, popped int64
	var mu sync.Mutex
	for wave := 0; wave < churnWaves; wave++ {
		var wg sync.WaitGroup
		for w := 0; w < churnMaxThreads; w++ {
			wg.Add(1)
			go func(wave, w int) {
				defer wg.Done()
				h := d.Register()
				defer h.Close()
				base := int64(wave*churnMaxThreads+w) << 32
				myPushed, myPopped := int64(0), int64(0)
				for i := int64(1); i <= 30; i++ {
					if (w+int(i))%2 == 0 {
						h.PushLeft(base + i)
					} else {
						h.PushRight(base + i)
					}
					myPushed++
					if i%3 == 0 {
						if _, ok := h.PopLeft(); ok {
							myPopped++
						}
					}
				}
				mu.Lock()
				pushed += myPushed
				popped += myPopped
				mu.Unlock()
			}(wave, w)
		}
		wg.Wait()
	}
	h := d.Register()
	defer h.Close()
	for {
		if _, ok := h.PopRight(); !ok {
			break
		}
		popped++
	}
	if pushed != popped {
		t.Fatalf("deque: pushed %d != popped %d after churn", pushed, popped)
	}
}

// TestHandleChurnPool churns 4x MaxThreads pool handles; each Close
// also closes the per-shard SEC sessions, so the shard stacks' id
// free-lists recycle in lockstep.
func TestHandleChurnPool(t *testing.T) {
	p := pool.New[int64](pool.WithMaxThreads(churnMaxThreads), pool.WithShards(3))
	var put, got int64
	var mu sync.Mutex
	for wave := 0; wave < churnWaves; wave++ {
		var wg sync.WaitGroup
		for w := 0; w < churnMaxThreads; w++ {
			wg.Add(1)
			go func(wave, w int) {
				defer wg.Done()
				h := p.Register()
				defer h.Close()
				base := int64(wave*churnMaxThreads+w) << 32
				myPut, myGot := int64(0), int64(0)
				for i := int64(1); i <= 30; i++ {
					h.Put(base + i)
					myPut++
					if i%2 == 0 {
						if _, ok := h.Get(); ok {
							myGot++
						}
					}
				}
				mu.Lock()
				put += myPut
				got += myGot
				mu.Unlock()
			}(wave, w)
		}
		wg.Wait()
	}
	h := p.Register()
	defer h.Close()
	for {
		if _, ok := h.Get(); !ok {
			break
		}
		got++
	}
	if put != got {
		t.Fatalf("pool: put %d != got %d after churn", put, got)
	}
	if p.Size() != 0 {
		t.Fatalf("pool: Size=%d after full drain", p.Size())
	}
}

// TestHandleChurnFunnel churns 4x MaxThreads funnel handles; the final
// counter value must equal the sum of every FetchAdd amount regardless
// of how many handle generations contributed.
func TestHandleChurnFunnel(t *testing.T) {
	f := funnel.New(funnel.WithMaxThreads(churnMaxThreads))
	var want int64
	var mu sync.Mutex
	for wave := 0; wave < churnWaves; wave++ {
		var wg sync.WaitGroup
		for w := 0; w < churnMaxThreads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := f.Register()
				defer h.Close()
				my := int64(0)
				for i := int64(1); i <= 40; i++ {
					h.FetchAdd(i)
					my += i
				}
				mu.Lock()
				want += my
				mu.Unlock()
			}(w)
		}
		wg.Wait()
	}
	if f.Load() != want {
		t.Fatalf("funnel: counter %d != sum of adds %d after churn", f.Load(), want)
	}
}
