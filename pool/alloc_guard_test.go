package pool

// Allocation-ceiling guards for the Put-overflow path, in-package
// because deterministically reaching the overflow sweep requires
// forcing the loss counter (a home solo CAS cannot be made to lose on
// demand from the public API; the organic path is exercised under
// contention by TestPutOverflowChurnWaves). The engine-level guard for
// the sweep's miss side (a contended TryPush allocates nothing) lives
// in internal/agg's TestTryPushStealBypassesProtocol.

import "testing"

// putOverflowCeiling matches the repository-wide steady-state budget
// (see the root alloc_guard_test.go): the true rate is 0, the headroom
// absorbs amortized EBR bag and free-list growth.
const putOverflowCeiling = 0.25

// TestAllocCeilingPutOverflowHit: a Put that overflows onto a quiet
// foreign shard is one TryPush CAS through the scratch batch, with the
// node drawn from the shard's reclamation pool - and the Get that
// steals it back retires the node into the same pool, so the whole
// spill/recover cycle allocates nothing in steady state.
func TestAllocCeilingPutOverflowHit(t *testing.T) {
	p := New[int64](
		WithShards(4),
		WithAdaptive(true),
		WithBatchRecycling(true),
		WithRecycling(),
	)
	h := p.Register()
	defer h.Close()
	for i := int64(0); i < 4096; i++ { // settle EBR epochs, free lists, scratch batches
		h.putMiss = p.overflow
		h.Put(i)
		h.Get()
	}
	avg := testing.AllocsPerRun(2000, func() {
		h.putMiss = p.overflow // the home CAS just lost its threshold'th round
		h.Put(7)
		if _, ok := h.Get(); !ok {
			t.Fatal("overflow cycle lost its element")
		}
	})
	if avg > putOverflowCeiling {
		t.Fatalf("Put overflow spill/recover cycle allocates %.3f allocs/op, ceiling %.2f",
			avg, putOverflowCeiling)
	}
}

// TestAllocCeilingElasticSteadyState: with the elastic controller
// armed and firing every few ops (period 64, far below the default so
// the measured window spans dozens of controller passes), a settled
// degree-1 pool must still cycle Put/Get allocation-free: the sync
// tick is two atomic loads and a counter, and an idle controller pass
// is a TryLock plus delta arithmetic - no window movement, no drain
// handle churn, no allocation.
func TestAllocCeilingElasticSteadyState(t *testing.T) {
	p := New[int64](
		WithShards(4),
		WithElasticShards(true),
		WithElasticPeriod(64),
		WithBatchRecycling(true),
		WithRecycling(),
	)
	h := p.Register()
	defer h.Close()
	for i := int64(0); i < 4096; i++ { // settle EBR epochs, free lists, controller streaks
		h.Put(i)
		h.Get()
	}
	if got := p.LiveShards(); got != 1 {
		t.Fatalf("LiveShards = %d after degree-1 warmup, want settled at 1", got)
	}
	avg := testing.AllocsPerRun(2000, func() {
		h.Put(7)
		if _, ok := h.Get(); !ok {
			t.Fatal("elastic steady-state cycle lost its element")
		}
	})
	if avg > putOverflowCeiling {
		t.Fatalf("elastic steady-state Put/Get cycle allocates %.3f allocs/op, ceiling %.2f",
			avg, putOverflowCeiling)
	}
}

// TestAllocCeilingPutSoloHome: the common case - an uncontended Put is
// one TryPush CAS on the home shard, likewise allocation-free with
// node recycling on.
func TestAllocCeilingPutSoloHome(t *testing.T) {
	p := New[int64](
		WithShards(4),
		WithAdaptive(true),
		WithBatchRecycling(true),
		WithRecycling(),
	)
	h := p.Register()
	defer h.Close()
	for i := int64(0); i < 4096; i++ {
		h.Put(i)
		h.Get()
	}
	avg := testing.AllocsPerRun(2000, func() {
		h.Put(7)
		if _, ok := h.Get(); !ok {
			t.Fatal("home cycle lost its element")
		}
	})
	if avg > putOverflowCeiling {
		t.Fatalf("home-solo Put/Get cycle allocates %.3f allocs/op, ceiling %.2f",
			avg, putOverflowCeiling)
	}
}
