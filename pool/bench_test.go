package pool

import "testing"

// BenchmarkPutOverflow is the put-steal ablation (DESIGN.md §10),
// in-package because the overflow regime is forced through the loss
// counter: a home solo CAS cannot be made to lose on demand, and the
// benchmark's point is the cost of each Put regime, not of
// manufacturing contention. Three rungs, each a Put/Get cycle so node
// recycling reaches steady state:
//
//   - home_solo: the new Put fast path - one TryPush CAS on the home
//     shard (plus the Get that drains it).
//   - steal_hit: the overflow path's hit - the loss counter is at the
//     threshold, so Put sweeps and spills onto a quiet foreign shard
//     with one TryPush CAS; the Get steals it back cross-shard.
//   - full_home: the pre-overflow Put - the home shard's full batch
//     protocol on every operation (what a saturated home cost before
//     TryPush existed, and what the overflow sweep still falls back to
//     when every foreign shard is contended).
//
// All three claim 0 allocs/op with node + batch recycling on; the
// sweep's miss rung (every foreign shard contended) needs real
// parallelism and is covered for correctness by
// TestPutOverflowChurnWaves and for allocations by the engine guard in
// internal/agg.
func BenchmarkPutOverflow(b *testing.B) {
	newPool := func(opts ...Option) *Pool[int64] {
		return New[int64](append([]Option{
			WithShards(4),
			WithAdaptive(true),
			WithBatchRecycling(true),
			WithRecycling(),
		}, opts...)...)
	}
	warm := func(h *Handle[int64]) {
		for i := int64(0); i < 4096; i++ {
			h.Put(i)
			h.Get()
		}
	}
	b.Run("home_solo", func(b *testing.B) {
		p := newPool()
		h := p.Register()
		defer h.Close()
		warm(h)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Put(int64(i))
			h.Get()
		}
	})
	b.Run("steal_hit", func(b *testing.B) {
		p := newPool()
		h := p.Register()
		defer h.Close()
		warm(h)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.putMiss = p.overflow // home saturated: this Put overflows
			h.Put(int64(i))
			h.Get()
		}
	})
	b.Run("full_home", func(b *testing.B) {
		p := newPool(WithAdaptive(false))
		h := p.Register()
		defer h.Close()
		warm(h)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.handles[h.home].Push(int64(i)) // the seed's Put: always the full protocol
			h.Get()
		}
	})
}

// BenchmarkElasticOverhead is the elastic controller's degree-1 tax
// (DESIGN.md §13, gated at <=5% ns/op over static): identical settled
// solo Put/Get cycles, the only difference being the armed controller
// - the per-op sync() check plus one try-locked idle pass per period.
// The elastic arm runs the default period (2048) and a deliberately
// hot one (64) so the pass cost itself is visible; all arms claim
// 0 allocs/op.
func BenchmarkElasticOverhead(b *testing.B) {
	run := func(b *testing.B, opts ...Option) {
		p := New[int64](append([]Option{
			WithShards(4),
			WithAdaptive(true),
			WithBatchRecycling(true),
			WithRecycling(),
		}, opts...)...)
		h := p.Register()
		defer h.Close()
		for i := int64(0); i < 4096; i++ { // settle recycling and controller streaks
			h.Put(i)
			h.Get()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Put(int64(i))
			h.Get()
		}
	}
	b.Run("static", func(b *testing.B) { run(b) })
	b.Run("elastic", func(b *testing.B) { run(b, WithElasticShards(true)) })
	b.Run("elastic_hot", func(b *testing.B) { run(b, WithElasticShards(true), WithElasticPeriod(64)) })
}
