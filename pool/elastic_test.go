package pool

// Elastic shard-controller tests, in-package because deterministic
// convergence needs the controller's own levers: steal-tally injection
// (the organic path needs real CAS losses, which a 1-CPU test box
// cannot force on demand), direct controller passes, and - for the
// churn chaos - window moves forced under the controller mutex. The
// organic end-to-end trajectory is exercised by secbench -fig elastic.

import (
	"sync"
	"testing"
)

// pass injects one both-direction steal-miss window and runs one
// controller pass - the minimal deterministic grow vote.
func growPass[T any](p *Pool[T]) {
	p.st.putMiss.Add(1)
	p.st.getMiss.Add(1)
	p.maybeScale()
}

// growTo widens the live window to k via injected grow votes.
func growTo[T any](t *testing.T, p *Pool[T], k int) {
	t.Helper()
	for i := 0; i < 8*elasticStreak && p.LiveShards() < k; i++ {
		growPass(p)
	}
	if got := p.LiveShards(); got != k {
		t.Fatalf("LiveShards = %d after injected grow votes, want %d", got, k)
	}
}

func TestElasticStartsAtOneShard(t *testing.T) {
	p := New[int](WithShards(4), WithElasticShards(true))
	if got := p.LiveShards(); got != 1 {
		t.Fatalf("elastic pool LiveShards = %d at construction, want 1", got)
	}
	if got := New[int](WithShards(4)).LiveShards(); got != 4 {
		t.Fatalf("static pool LiveShards = %d, want 4", got)
	}
	if got := p.Snapshot().LiveShards; got != 1 {
		t.Fatalf("Snapshot().LiveShards = %d without WithMetrics, want 1 (gauge is metrics-independent)", got)
	}
}

// TestElasticConvergesGrowShrink is the CI convergence gate: the
// controller must move the window up under sustained bidirectional
// steal-miss pressure (elasticStreak agreeing windows, epoch bumped)
// and back down to one shard at degree 1 (every live shard solo, steal
// counters idle), draining and fencing each retiring shard on the way.
func TestElasticConvergesGrowShrink(t *testing.T) {
	p := New[int](WithShards(4), WithElasticShards(true), WithElasticPeriod(8))

	// One disagreeing window between votes must reset the streak.
	growPass(p)
	p.maybeScale() // idle window: not a grow vote
	growPass(p)
	if got := p.LiveShards(); got != 1 {
		t.Fatalf("LiveShards = %d after interrupted grow streak, want 1", got)
	}
	// Consecutive votes grow, one step per streak.
	growPass(p)
	if got := p.LiveShards(); got != 2 {
		t.Fatalf("LiveShards = %d after %d consecutive grow votes, want 2", got, elasticStreak)
	}
	if got := p.ScaleEpoch(); got == 0 {
		t.Fatal("ScaleEpoch did not advance on grow")
	}
	growTo(t, p, 4)
	// At the ceiling further votes are no-ops.
	growPass(p)
	growPass(p)
	if got := p.LiveShards(); got != 4 {
		t.Fatalf("LiveShards = %d grew past the ceiling", got)
	}

	// Degree-1 churn: one handle cycling Put/Get stays on its home
	// shard's solo fast path, so every controller window is steal-idle
	// with all live shards solo - the controller must walk the window
	// back to one shard, fencing each drained shard (no elements are
	// pooled, so each drain observes empty immediately).
	h := p.Register()
	defer h.Close()
	for i := 0; i < 4096 && p.LiveShards() > 1; i++ {
		h.Put(i)
		h.Get()
	}
	if got := p.LiveShards(); got != 1 {
		t.Fatalf("LiveShards = %d after degree-1 churn, want 1", got)
	}
	if d := p.draining.Load(); d != -1 {
		t.Fatalf("draining = %d after shrink settled, want -1 (fenced)", d)
	}
	if got := p.st.shrinks.Load(); got != 3 {
		t.Fatalf("shrinks = %d walking 4 -> 1, want 3", got)
	}
	// The handle must have re-homed into the shrunken window.
	if h.home != 0 {
		t.Fatalf("handle home = %d after shrink to 1 live shard, want 0", h.home)
	}
}

// TestElasticLoadSignalGrow pins the secd wiring: an external load
// gauge above the window's session budget grows the pool even at
// degree 1, and takes precedence over the simultaneous shrink vote
// (all shards solo, idle steals).
func TestElasticLoadSignalGrow(t *testing.T) {
	p := New[int](WithShards(4), WithElasticShards(true), WithElasticPeriod(8))
	p.SetLoadSignal(func() int { return 100 }) // > 4 shards * 16 sessions
	h := p.Register()
	defer h.Close()
	for i := 0; i < 4096 && p.LiveShards() < 4; i++ {
		h.Put(i)
		h.Get()
	}
	if got := p.LiveShards(); got != 4 {
		t.Fatalf("LiveShards = %d under load signal 100, want ceiling 4", got)
	}
}

// TestElasticShrinkDrainConservation: elements parked on retiring
// shards must all survive the drain - migrated into the live window by
// the controller's TryPop sweep - and the fences must land (draining
// resolves to -1, fenced shards end empty).
func TestElasticShrinkDrainConservation(t *testing.T) {
	p := New[int](WithShards(4), WithElasticShards(true),
		WithElasticPeriod(1<<30), // controller runs only when the test calls it
		WithMetrics())
	growTo(t, p, 4)

	// Four handles, homed round-robin across the full window, park
	// distinct values on every shard.
	const per = 50
	handles := make([]*Handle[int], 4)
	homes := map[int]bool{}
	for i := range handles {
		handles[i] = p.Register()
		homes[handles[i].home] = true
		for j := 0; j < per; j++ {
			handles[i].Put(i*per + j)
		}
	}
	if len(homes) != 4 {
		t.Fatalf("round-robin homing covered %d shards, want 4 (homes %v)", len(homes), homes)
	}

	// Idle controller windows walk the pool down to one shard; each
	// step must drain the retiring shard's ~50 elements into the live
	// window before fencing it.
	for i := 0; i < 8*elasticStreak && p.LiveShards() > 1; i++ {
		p.maybeScale()
	}
	if got := p.LiveShards(); got != 1 {
		t.Fatalf("LiveShards = %d after idle windows, want 1", got)
	}
	if d := p.draining.Load(); d != -1 {
		t.Fatalf("draining = %d after drains settled, want -1", d)
	}
	for i := 1; i < 4; i++ {
		if n := p.shards[i].Len(); n != 0 {
			t.Fatalf("fenced shard %d still holds %d elements", i, n)
		}
	}
	if got := p.st.migrated.Load(); got == 0 {
		t.Fatal("drain migrated no elements despite populated retiring shards")
	}
	snap := p.Snapshot()
	if snap.ShardShrinks != 3 || snap.Migrated != p.st.migrated.Load() {
		t.Fatalf("Snapshot resize counters = shrinks %d migrated %d, want 3/%d",
			snap.ShardShrinks, snap.Migrated, p.st.migrated.Load())
	}

	// Value-exact conservation: everything put comes back exactly once.
	seen := map[int]int{}
	c := p.Register()
	defer c.Close()
	for {
		v, ok := c.Get()
		if !ok {
			break
		}
		seen[v]++
	}
	if len(seen) != 4*per {
		t.Fatalf("recovered %d distinct values after drain, want %d", len(seen), 4*per)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}
	for _, h := range handles {
		h.Close()
	}
}

// TestElasticOverflowBoundedToLiveWindow: the Put-overflow sweep must
// spill inside the live window only - a fenced shard receiving fresh
// elements would never stay drained.
func TestElasticOverflowBoundedToLiveWindow(t *testing.T) {
	p := New[int](WithShards(4), WithElasticShards(true),
		WithElasticPeriod(1<<30), WithMetrics())
	growTo(t, p, 2)
	h := p.Register()
	defer h.Close()
	for i := 0; i < 16; i++ {
		h.putMiss = p.overflow // the home CAS just lost its threshold'th round
		h.Put(i)
	}
	if n := p.shards[2].Len() + p.shards[3].Len(); n != 0 {
		t.Fatalf("overflow sweep spilled %d elements above the live window", n)
	}
	if got := p.Size(); got != 16 {
		t.Fatalf("Size = %d after overflow Puts, want 16", got)
	}
}

// TestElasticChurnWaves is the elastic churn stress (run under -race
// in CI): waves of producer/thief handles churn across the pool while
// a chaos goroutine forces the live window up and down mid-wave - grow
// racing in-flight Puts, shrink draining shards with in-flight steals,
// epoch-driven re-homing racing both - and takes concurrent Snapshots
// (the resize-safety claim). Conservation is value-exact.
func TestElasticChurnWaves(t *testing.T) {
	const maxThreads, waves, per = 9, 4, 200
	p := New[int64](
		WithMaxThreads(maxThreads),
		WithShards(4),
		WithElasticShards(true),
		WithElasticPeriod(32),
		WithBatchRecycling(true),
		WithAdaptiveSpin(true),
		WithMetrics(),
	)
	var put int64
	counts := make(map[int64]int)
	var mu sync.Mutex
	for wave := 0; wave < waves; wave++ {
		var workers sync.WaitGroup
		stop := make(chan struct{})
		chaosDone := make(chan struct{})
		go func() { // chaos: force the window both ways under the controller mutex
			defer close(chaosDone)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p.ctl.mu.Lock()
				if k := int(p.liveK.Load()); i%2 == 0 && k < len(p.shards) {
					p.grow(k)
				} else if k > 1 && p.draining.Load() < 0 {
					p.beginShrink(k)
				}
				p.ctl.mu.Unlock()
				snap := p.Snapshot()
				if snap.LiveShards < 1 || snap.LiveShards > 4 {
					panic("snapshot observed live window outside [1, 4]")
				}
			}
		}()
		for w := 0; w < maxThreads-1; w++ {
			workers.Add(1)
			go func(wave, w int) {
				defer workers.Done()
				h := p.Register()
				defer h.Close()
				base := int64(wave*maxThreads+w) << 32
				myPut := int64(0)
				myGot := make(map[int64]int)
				if w%2 == 0 {
					for i := int64(1); i <= per; i++ {
						h.Put(base + i)
						myPut++
					}
				} else {
					for i := 0; i < per; i++ {
						if v, ok := h.Get(); ok {
							myGot[v]++
						}
					}
				}
				mu.Lock()
				put += myPut
				for v, c := range myGot {
					counts[v] += c
				}
				mu.Unlock()
			}(wave, w)
		}
		// Chaos keeps resizing for the whole wave: it stops only after
		// every worker has finished its churn.
		workers.Wait()
		close(stop)
		<-chaosDone
	}
	h := p.Register()
	defer h.Close()
	for {
		v, ok := h.Get()
		if !ok {
			break
		}
		counts[v]++
	}
	for v, c := range counts {
		if c != 1 {
			t.Fatalf("elastic churn: value %d recovered %d times", v, c)
		}
	}
	if int64(len(counts)) != put {
		t.Fatalf("elastic churn: recovered %d distinct values, put %d", len(counts), put)
	}
	if p.Size() != 0 {
		t.Fatalf("elastic churn: Size=%d after full drain", p.Size())
	}
}
