package pool_test

import (
	"fmt"
	"sort"

	"secstack/pool"
)

// A pool relaxes the stack's LIFO contract to "some element": Get may
// return any pooled value, served from the calling handle's home shard
// when possible. Register a handle per goroutine, operate through it,
// and Close it when the goroutine is done so its slots recycle.
func ExampleNew() {
	p := pool.New[string](pool.WithShards(2))
	h := p.Register()
	defer h.Close()

	h.Put("alpha")
	h.Put("beta")
	h.Put("gamma")
	fmt.Println("pooled:", p.Size())

	// Get returns *some* element, so collect and sort for a stable
	// ordering.
	var got []string
	for {
		v, ok := h.Get()
		if !ok {
			break
		}
		got = append(got, v)
	}
	sort.Strings(got)
	fmt.Println(got)
	// Output:
	// pooled: 3
	// [alpha beta gamma]
}
