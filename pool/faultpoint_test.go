package pool

// Deterministic elastic drain-edge tests driven by faultpoint sites.
// The organic versions of these interleavings need a straggler caught
// mid-op on the retiring shard, or a grow vote racing an unfinished
// drain - schedules no amount of looping reliably produces. The sites
// force each edge on demand, single-goroutine, and every test closes
// with value-exact conservation: the multiset out must be the multiset
// in.

import (
	"testing"

	"secstack/internal/faultpoint"
)

// drainAll empties the pool through h, returning the multiset of
// values seen.
func drainAll(t *testing.T, h *Handle[int], want int) map[int]int {
	t.Helper()
	got := make(map[int]int)
	for i := 0; i < want; i++ {
		v, ok := h.Get()
		if !ok {
			t.Fatalf("Get %d/%d: pool ran dry - elements lost in the drain protocol", i+1, want)
		}
		got[v]++
	}
	if v, ok := h.Get(); ok {
		t.Fatalf("pool held an extra element %d - elements duplicated in the drain protocol", v)
	}
	return got
}

// seedValues pushes 1..n through h and returns their multiset.
func seedValues(h *Handle[int], n int) map[int]int {
	want := make(map[int]int)
	for i := 1; i <= n; i++ {
		h.Put(i)
		want[i]++
	}
	return want
}

func sameMultiset(t *testing.T, got, want map[int]int) {
	t.Helper()
	for v, n := range want {
		if got[v] != n {
			t.Fatalf("value %d: got %d copies, want %d", v, got[v], n)
		}
	}
	for v, n := range got {
		if want[v] == 0 {
			t.Fatalf("value %d appeared %d times but was never put", v, n)
		}
	}
}

// TestDrainContendedEscalation forces every TryPop steal off the
// retiring shard to report contention, so the whole drain must run
// through the full-protocol Pop escalation - and still conserve every
// element.
func TestDrainContendedEscalation(t *testing.T) {
	defer faultpoint.Reset()
	p := New[int](WithShards(4), WithElasticShards(true), WithElasticPeriod(1<<20))
	h := p.Register()
	defer h.Close()
	growTo(t, p, 2)
	// Home the seeding handle on the shard that will retire: with
	// nextHome advancing round-robin over liveK=2, a fresh handle lands
	// on shard 1 if the parity works out; instead of betting on parity,
	// seed through h after pinning its home.
	h.rehome(p.epoch.Load())
	h.home = 1
	want := seedValues(h, 50)
	if p.shards[1].Len() == 0 {
		t.Fatal("seed did not land on the retiring shard")
	}

	faultpoint.Arm(FPMigrateContended, faultpoint.Spec{Action: faultpoint.ActError})
	p.ctl.mu.Lock()
	p.beginShrink(2)
	p.ctl.mu.Unlock()
	if fires := faultpoint.Fires(FPMigrateContended); fires == 0 {
		t.Fatal("contended-steal site never fired: the escalation path was not exercised")
	}
	faultpoint.Disarm(FPMigrateContended)

	for i := 0; i < 8 && p.draining.Load() >= 0; i++ {
		p.maybeScale()
	}
	if d := p.draining.Load(); d >= 0 {
		t.Fatalf("shard still draining (%d) after escalated migration passes", d)
	}
	if got := p.shards[1].Len(); got != 0 {
		t.Fatalf("retired shard holds %d elements after fence", got)
	}
	sameMultiset(t, drainAll(t, h, 50), want)
}

// TestGrowCancelsMidFlightDrain holds a drain open with an injected
// no-progress migration pass, then lands a grow vote: the retiring
// shard must rejoin the live window with everything it still holds,
// and the draining state must clear without a fence.
func TestGrowCancelsMidFlightDrain(t *testing.T) {
	defer faultpoint.Reset()
	p := New[int](WithShards(4), WithElasticShards(true), WithElasticPeriod(1<<20))
	h := p.Register()
	defer h.Close()
	growTo(t, p, 2)
	h.rehome(p.epoch.Load())
	h.home = 1
	want := seedValues(h, 30)

	// Stall the drain: beginShrink's inline pass and any controller
	// pass make no progress, so the shard stays in the draining state.
	faultpoint.Arm(FPMigrateStall, faultpoint.Spec{Action: faultpoint.ActError})
	p.ctl.mu.Lock()
	p.beginShrink(2)
	p.ctl.mu.Unlock()
	if d := p.draining.Load(); d != 1 {
		t.Fatalf("draining = %d after stalled beginShrink, want 1", d)
	}
	if got := p.shards[1].Len(); got == 0 {
		t.Fatal("stalled drain moved elements anyway")
	}

	// A grow vote during the open drain must cancel it in flight.
	for i := 0; i < 8*elasticStreak && p.LiveShards() < 2; i++ {
		growPass(p)
	}
	if got := p.LiveShards(); got != 2 {
		t.Fatalf("LiveShards = %d after grow vote, want 2 (drain canceled)", got)
	}
	if d := p.draining.Load(); d != -1 {
		t.Fatalf("draining = %d after grow canceled the drain, want -1", d)
	}
	faultpoint.Disarm(FPMigrateStall)

	// The shard rejoined live with its elements; nothing was migrated,
	// nothing lost.
	sameMultiset(t, drainAll(t, h, 30), want)
}

// TestFencedStragglerSweep models the stale-stamp race: a handle that
// skipped its re-home keeps writing to a shard that has since been
// drained and fenced. The controller's straggler sweep must recover
// those elements into the live window.
func TestFencedStragglerSweep(t *testing.T) {
	defer faultpoint.Reset()
	p := New[int](WithShards(4), WithElasticShards(true), WithElasticPeriod(1<<20))
	h := p.Register()
	defer h.Close()
	growTo(t, p, 2)
	h.rehome(p.epoch.Load())
	h.home = 1

	// Shrink with the retiring shard empty: it drains trivially and is
	// fenced at once.
	p.ctl.mu.Lock()
	p.beginShrink(2)
	p.ctl.mu.Unlock()
	if d := p.draining.Load(); d != -1 {
		t.Fatalf("draining = %d after empty-shard shrink, want -1 (fenced)", d)
	}

	// The straggler: its epoch is stale, and the injected fault makes
	// sync skip the re-home, so these Puts land on fenced shard 1.
	faultpoint.Arm(FPSyncStale, faultpoint.Spec{Action: faultpoint.ActError, Count: 10})
	want := seedValues(h, 10)
	faultpoint.Disarm(FPSyncStale)
	if got := p.shards[1].Len(); got == 0 {
		t.Fatal("stale handle did not strand elements on the fenced shard")
	}

	// One controller pass runs the straggler sweep.
	p.maybeScale()
	if got := p.shards[1].Len(); got != 0 {
		t.Fatalf("fenced shard still holds %d elements after the straggler sweep", got)
	}
	// h re-homes organically on its next op (the fault is disarmed).
	sameMultiset(t, drainAll(t, h, 10), want)
}

// TestMigrateStallKeepsConservation: a drain that stalls for several
// passes and then resumes must deliver the same multiset as one that
// never stalled.
func TestMigrateStallKeepsConservation(t *testing.T) {
	defer faultpoint.Reset()
	p := New[int](WithShards(4), WithElasticShards(true), WithElasticPeriod(1<<20))
	h := p.Register()
	defer h.Close()
	growTo(t, p, 2)
	h.rehome(p.epoch.Load())
	h.home = 1
	want := seedValues(h, 40)

	// Three stalled passes, then the drain resumes.
	faultpoint.Arm(FPMigrateStall, faultpoint.Spec{Action: faultpoint.ActError, Count: 3})
	p.ctl.mu.Lock()
	p.beginShrink(2)
	p.ctl.mu.Unlock()
	for i := 0; i < 8 && p.draining.Load() >= 0; i++ {
		p.maybeScale()
	}
	if got := faultpoint.Fires(FPMigrateStall); got != 3 {
		t.Fatalf("stall site fired %d times, want 3", got)
	}
	if d := p.draining.Load(); d >= 0 {
		t.Fatalf("drain never completed after the stalls cleared (draining=%d)", d)
	}
	sameMultiset(t, drainAll(t, h, 40), want)
}
