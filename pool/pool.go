// Package pool implements a concurrent object pool on top of SEC
// stacks - the "concurrent pools" application the paper's introduction
// cites as a use of concurrent stacks.
//
// A pool relaxes the stack's LIFO contract to "some element": Put and
// Get may be served by any shard. The implementation shards elements
// across per-slice SEC stacks and balances load across them in both
// directions with the engine's steal primitives (one Treiber-style CAS
// through a per-session scratch batch - no announcement, no batch
// protocol):
//
//   - Get first tries its own home shard with the full protocol (which
//     preserves locality and lets SEC's elimination cancel Put/Get
//     pairs of nearby threads), then sweeps the other shards with the
//     TryPop steal primitive, and only escalates to full operations on
//     shards whose steal attempt hit contention.
//   - Put probes its home shard with the TryPush steal primitive -
//     uncontended, a Put is one CAS. After the home solo CAS loses
//     WithPutOverflow consecutive rounds, the home shard is saturated
//     and Puts overflow: they sweep the foreign shards with TryPush,
//     spilling elements to whichever shard has spare capacity, and
//     fall back to the home shard's full batch protocol (joining its
//     batches, where elimination and combining absorb the contention)
//     only when every foreign shard is contended too.
//
// Both sweeps start at a per-handle pseudo-random victim so concurrent
// thieves and overflowers fan out instead of walking the shards in
// lockstep. Together they make shard load bidirectionally
// self-balancing: Get drains quiet shards and Put avoids saturated
// ones, so contention migrates to wherever capacity is.
package pool

import (
	"errors"
	"fmt"

	"secstack/internal/config"
	"secstack/internal/core"
	"secstack/internal/isession"
	"secstack/internal/metrics"
	"secstack/internal/tid"
	"secstack/internal/xrand"
)

// Pool is a sharded concurrent object pool. Register hands out
// per-goroutine handles (the fast path for worker loops); the direct
// Get/Put methods transparently reuse the calling P's cached handle,
// so handle-free callers need no session management at all.
type Pool[T any] struct {
	shards   []*core.Stack[T]
	tids     *tid.Allocator
	overflow int          // Put-overflow threshold; 0 disables
	m        *metrics.SEC // put- and get-steal counters (nil without WithMetrics)

	cache *isession.Sessions[*Handle[T]]
}

// Option configures New; it is the shared option type of the whole
// repository, so the stack package's WithMaxThreads works here
// unchanged.
type Option = config.Option

// WithShards sets the number of SEC stacks elements spread across
// (default 4).
func WithShards(n int) Option { return config.WithShards(n) }

// WithMaxThreads bounds concurrently live handles (default 256). Close
// recycles handle slots, so this is a concurrency bound, not a lifetime
// bound.
func WithMaxThreads(n int) Option { return config.WithMaxThreads(n) }

// WithFreezerSpin sets the batch-growing pre-freeze backoff of the
// pool's SEC shards in spin iterations. The pool's default is 0 - not
// the stack's 128 - because its sharding already spreads contention
// and a Get escalating to the full protocol should not stall on
// freezes hoping for announcers. Steal probes never pay the spin
// either way; only full-protocol operations freeze batches.
func WithFreezerSpin(s int) Option { return config.WithFreezerSpin(s) }

// WithAdaptiveSpin toggles the adaptive freezer backoff in the pool's
// SEC shards: each shard tunes its pre-freeze spin on its batch-degree
// EWMA, growing toward the ceiling under contention and decaying
// toward zero when batches freeze near-empty. The ceiling is
// WithFreezerSpin when given, else the shared default (128) - with the
// pool's own 0-spin default there would be nothing for the controller
// to do.
func WithAdaptiveSpin(on bool) Option { return config.WithAdaptiveSpin(on) }

// WithAdaptive toggles contention adaptivity in the pool's SEC shards:
// each shard's operations take the solo fast path (one direct CAS)
// while its recent batch degree is ~1 and fall back to the full batch
// protocol under contention.
func WithAdaptive(on bool) Option { return config.WithAdaptive(on) }

// WithBatchRecycling toggles batch recycling in the pool's SEC shards,
// so their steady-state freeze paths allocate nothing.
func WithBatchRecycling(on bool) Option { return config.WithBatchRecycling(on) }

// WithPutOverflow sets the Put-overflow threshold: after this many
// consecutive home-shard solo-CAS losses, a handle's Puts sweep the
// foreign shards with the TryPush steal primitive before falling back
// to the home shard's full batch protocol - the push-side twin of
// Get's peek-then-steal, completing bidirectional shard balancing.
// Default 2; 0 disables overflow and pins every Put to its home shard.
func WithPutOverflow(threshold int) Option { return config.WithPutOverflow(threshold) }

// WithRecycling routes the shards' stack nodes through DEBRA-style
// epoch-based reclamation instead of fresh allocation, so a
// steady-state Put/Get cycle - overflow steals included - allocates
// nothing.
func WithRecycling() Option { return config.WithRecycling() }

// WithMetrics enables the pool's steal counters in both balancing
// directions - Put-overflow hits and misses, and the Get steal sweep's
// hits and misses (via Metrics or Snapshot) - and the per-shard engine
// degree counters Snapshot merges in.
func WithMetrics() Option { return config.WithMetrics() }

// WithImplicitSessions toggles the per-P affinity tier behind the
// handle-free Get/Put methods (default on); see the stack package's
// option of the same name.
func WithImplicitSessions(on bool) Option { return config.WithImplicitSessions(on) }

// WithAnnounceEvery sets the cached implicit sessions' amortized
// hazard-announcement cadence (default 8; 1 restores the eager per-op
// clear); see the stack package's option of the same name.
func WithAnnounceEvery(k int) Option { return config.WithAnnounceEvery(k) }

// New returns an empty pool.
func New[T any](opts ...Option) *Pool[T] {
	c := config.Resolve(opts)
	p := &Pool[T]{
		shards:   make([]*core.Stack[T], c.Shards),
		tids:     tid.New(c.MaxThreads),
		overflow: c.PutOverflow,
	}
	if c.CollectMetrics {
		p.m = metrics.NewSEC(c.Shards)
	}
	// The pool's shards default to no freezer spin (see WithFreezerSpin);
	// an explicit setting - or enabling the adaptive controller, which
	// needs a non-zero ceiling - opts into the configured value.
	spin := 0
	if c.FreezerSpinSet || c.AdaptiveSpin {
		spin = c.FreezerSpin
	}
	for i := range p.shards {
		// One aggregator per shard: the pool's sharding already spreads
		// contention, and each shard sees only nearby threads.
		p.shards[i] = core.New[T](core.Options{
			Aggregators:    1,
			MaxThreads:     c.MaxThreads,
			FreezerSpin:    spin,
			AdaptiveSpin:   c.AdaptiveSpin,
			Recycle:        c.Recycle,
			Adaptive:       c.Adaptive,
			BatchRecycle:   c.BatchRecycle,
			CollectMetrics: c.CollectMetrics,
		})
	}
	// Cached implicit handles publish their per-shard hazard slots once
	// per AnnounceEvery ops (amortized announcement); explicit handles
	// keep the eager per-op clear.
	p.cache = isession.New(c.ImplicitAffinity, func() (*Handle[T], error) {
		h, err := p.TryRegister()
		if err != nil {
			return nil, err
		}
		for _, sh := range h.handles {
			sh.SetDoneCadence(c.AnnounceEvery)
		}
		return h, nil
	}, func(h *Handle[T]) { h.Close() })
	return p
}

// Put adds v to the pool through a cached per-P handle. Worker loops
// should prefer an explicit Register-ed handle, which also carries the
// overflow state that makes repeated Puts adaptive.
func (p *Pool[T]) Put(v T) {
	e := p.cache.Acquire()
	e.H.Put(v)
	p.cache.Release(e)
}

// Get removes and returns some element through a cached per-P handle;
// ok is false only if every shard was observed empty.
func (p *Pool[T]) Get() (v T, ok bool) {
	e := p.cache.Acquire()
	v, ok = e.H.Get()
	p.cache.Release(e)
	return v, ok
}

// Metrics returns the pool-level steal collector (Put-overflow and
// Get-steal hits and misses per victim shard), or nil if WithMetrics
// was not given. For the merged view including the shards' engine
// degree counters, use Snapshot.
func (p *Pool[T]) Metrics() *metrics.SEC { return p.m }

// Snapshot merges the pool-level steal counters with every shard's
// engine degree snapshot - batching degree, occupancy, fast-path and
// reclaim counters summed across shards - so one snapshot carries the
// whole pool's trajectory. Zero value when WithMetrics was not given.
func (p *Pool[T]) Snapshot() metrics.Snapshot {
	out := p.m.Snapshot()
	for _, s := range p.shards {
		out.Accumulate(s.Metrics().Snapshot())
	}
	return out
}

// ErrExhausted is returned by TryRegister when MaxThreads handles are
// live at the same time.
var ErrExhausted = errors.New("pool: more than MaxThreads handles live")

// Handle is a per-goroutine session. Handles must not be shared between
// goroutines, and should be Closed when their goroutine is done so the
// handle slots - here and in every shard - recycle.
type Handle[T any] struct {
	p       *Pool[T]
	id      int
	home    int
	handles []*core.Handle[T]
	rng     *xrand.State // rotates both sweeps' starting victims

	// putMiss counts consecutive home-shard solo-CAS losses; at the
	// pool's overflow threshold, Puts start sweeping foreign shards.
	// Reset by any home solo success, decayed - not reset - by a
	// successful overflow steal, so a still-saturated home costs one
	// probe per Put, not a fresh run-up to the threshold.
	putMiss int
}

// Register returns a new handle. Slots released by Close are recycled,
// so registration panics only when MaxThreads handles are live at the
// same time; TryRegister is the non-panicking variant.
func (p *Pool[T]) Register() *Handle[T] {
	h, err := p.TryRegister()
	if err != nil {
		panic(err.Error())
	}
	return h
}

// TryRegister is Register with an error in place of the exhaustion
// panic, for callers that prefer backpressure over crashing - the same
// contract the stack, deque and funnel packages offer.
func (p *Pool[T]) TryRegister() (*Handle[T], error) {
	id, err := p.tids.Acquire()
	if err != nil {
		return nil, ErrExhausted
	}
	h := &Handle[T]{p: p, id: id, handles: make([]*core.Handle[T], len(p.shards))}
	for i, s := range p.shards {
		sh, err := s.TryRegister()
		if err != nil {
			// Unreachable while shard MaxThreads matches the pool's, but
			// unwind cleanly rather than leak the slots already taken,
			// and keep the documented error identity rather than the
			// shard's internal one.
			for j := 0; j < i; j++ {
				h.handles[j].Close()
			}
			p.tids.Release(id)
			return nil, fmt.Errorf("%w: shard %d: %v", ErrExhausted, i, err)
		}
		h.handles[i] = sh
	}
	// Home shard rotates with the thread id to spread threads; the
	// steal sweep's start decorrelates further per Get.
	h.home = id % len(p.shards)
	h.rng = xrand.New(uint64(id)) // splitmix64 decorrelates adjacent ids
	return h, nil
}

// Close releases the handle and its per-shard sessions for reuse by a
// future Register. Close is idempotent; any other use of a closed
// handle is a bug.
func (h *Handle[T]) Close() {
	if h.id < 0 {
		return
	}
	for _, sh := range h.handles {
		sh.Close()
	}
	h.p.tids.Release(h.id)
	h.id = -1
}

// foreignVictim maps step i of a sweep starting at offset off (drawn
// from rng over [0, shards-1)) to a foreign shard index: the rotation
// visits every shard except home exactly once, from a per-sweep
// pseudo-random start so concurrent sweeps - Get's steals and Put's
// overflows alike - fan out instead of convoying shard by shard.
func (h *Handle[T]) foreignVictim(off, i int) int {
	n := len(h.handles)
	return (h.home + 1 + (off+i)%(n-1)) % n
}

// Put adds v to the pool, preferring the handle's home shard.
//
// The fast path is one TryPush - a single Treiber-style CAS on the
// home shard, no announcement, no batch protocol. When that CAS loses
// WithPutOverflow consecutive rounds the home shard is saturated, and
// Put overflows: it sweeps the foreign shards with TryPush, starting
// from a pseudo-random victim, spilling the element to the first quiet
// shard - the push-side twin of Get's steal sweep. Only when every
// foreign shard is contended too (or overflow is disabled) does Put
// fall back to the home shard's full batch protocol, joining its
// batches where elimination and combining absorb exactly the
// contention the probes observed.
func (h *Handle[T]) Put(v T) {
	overflowing := h.p.overflow > 0 && h.putMiss >= h.p.overflow && len(h.handles) > 1
	if !overflowing {
		if h.handles[h.home].TryPush(v) {
			h.putMiss = 0
			return
		}
		if h.p.overflow == 0 || len(h.handles) == 1 {
			h.handles[h.home].Push(v)
			return
		}
		if h.putMiss++; h.putMiss < h.p.overflow {
			h.handles[h.home].Push(v)
			return
		}
	}
	// Overflow: the home solo CAS lost the threshold's worth of
	// consecutive rounds. Spill to a quiet foreign shard.
	n := len(h.handles)
	off := h.rng.Intn(n - 1)
	for i := 0; i < n-1; i++ {
		idx := h.foreignVictim(off, i)
		if h.handles[idx].TryPush(v) {
			h.p.m.RecordPutSteal(idx, true)
			// Decay instead of reset: the next Put probes home once and
			// resumes overflowing on loss, rather than paying the full
			// run-up while home is still saturated.
			h.putMiss = h.p.overflow - 1
			return
		}
	}
	// Every shard is contended: batching is what absorbs that. Join the
	// home shard's full protocol and restart the loss count.
	h.p.m.RecordPutSteal(h.home, false)
	h.handles[h.home].Push(v)
	h.putMiss = 0
}

// Get removes and returns some element; ok is false only if every shard
// was observed empty.
//
// The miss loop is peek-then-steal: after the home shard's full Pop
// (which keeps elimination with nearby threads), every foreign shard
// is probed with TryPop - one Treiber-style CAS, no announcement -
// starting from a pseudo-random victim so concurrent thieves fan out
// instead of convoying shard by shard. Only if some steal hit
// contention (meaning elements may exist but the CAS lost) does Get
// fall back to the full batch protocol across the shards; steals that
// observed an empty shard already have their answer.
func (h *Handle[T]) Get() (v T, ok bool) {
	if v, ok = h.handles[h.home].Pop(); ok {
		return v, true
	}
	n := len(h.handles)
	if n == 1 {
		return v, false
	}
	off := h.rng.Intn(n - 1)
	contended := false
	for i := 0; i < n-1; i++ {
		idx := h.foreignVictim(off, i)
		if v, ok, applied := h.handles[idx].TryPop(); applied {
			if ok {
				h.p.m.RecordGetSteal(idx, true)
				return v, true
			}
			continue // observed empty, uncontended: answered
		}
		contended = true
	}
	if !contended {
		// Every shard observed uncontendedly empty: an answer, not a
		// balancing failure - no counter moves (the mirror of Put's
		// never-overflowed fast path).
		return v, false
	}
	// Contended steals mean concurrent operations on those shards; join
	// their batches through the full protocol, home included (it may
	// have refilled while the sweep ran). Recorded against the home
	// shard as a get-steal miss, mirroring the Put-overflow fallback.
	h.p.m.RecordGetSteal(h.home, false)
	for i := 0; i < n; i++ {
		idx := (h.home + i) % n
		if v, ok = h.handles[idx].Pop(); ok {
			return v, true
		}
	}
	return v, false
}

// Size counts pooled elements; a racy diagnostic for quiescent states.
func (p *Pool[T]) Size() int {
	total := 0
	for _, s := range p.shards {
		total += s.Len()
	}
	return total
}
