// Package pool implements a concurrent object pool on top of SEC
// stacks - the "concurrent pools" application the paper's introduction
// cites as a use of concurrent stacks.
//
// A pool relaxes the stack's LIFO contract to "some element": Put and
// Get may be served by any shard. The implementation shards elements
// across per-slice SEC stacks; a Get first tries its own shard (which
// preserves locality and lets SEC's elimination cancel Put/Get pairs of
// nearby threads), then sweeps the other shards with the cheap steal
// primitive - one Treiber-style CAS per shard, no announcement, no
// batch protocol - and only escalates to full operations on shards
// whose steal attempt hit contention. The steal sweep starts at a
// per-handle pseudo-random victim so concurrent thieves do not walk
// the shards in lockstep.
package pool

import (
	"errors"
	"fmt"

	"secstack/internal/config"
	"secstack/internal/core"
	"secstack/internal/tid"
	"secstack/internal/xrand"
)

// Pool is a sharded concurrent object pool. Use Register to obtain
// per-goroutine handles.
type Pool[T any] struct {
	shards []*core.Stack[T]
	tids   *tid.Allocator
}

// Option configures New; it is the shared option type of the whole
// repository, so the stack package's WithMaxThreads works here
// unchanged.
type Option = config.Option

// WithShards sets the number of SEC stacks elements spread across
// (default 4).
func WithShards(n int) Option { return config.WithShards(n) }

// WithMaxThreads bounds concurrently live handles (default 256). Close
// recycles handle slots, so this is a concurrency bound, not a lifetime
// bound.
func WithMaxThreads(n int) Option { return config.WithMaxThreads(n) }

// WithFreezerSpin sets the batch-growing pre-freeze backoff of the
// pool's SEC shards in spin iterations. The pool's default is 0 - not
// the stack's 128 - because its sharding already spreads contention
// and a Get escalating to the full protocol should not stall on
// freezes hoping for announcers. Steal probes never pay the spin
// either way; only full-protocol operations freeze batches.
func WithFreezerSpin(s int) Option { return config.WithFreezerSpin(s) }

// WithAdaptiveSpin toggles the adaptive freezer backoff in the pool's
// SEC shards: each shard tunes its pre-freeze spin on its batch-degree
// EWMA, growing toward the ceiling under contention and decaying
// toward zero when batches freeze near-empty. The ceiling is
// WithFreezerSpin when given, else the shared default (128) - with the
// pool's own 0-spin default there would be nothing for the controller
// to do.
func WithAdaptiveSpin(on bool) Option { return config.WithAdaptiveSpin(on) }

// WithAdaptive toggles contention adaptivity in the pool's SEC shards:
// each shard's operations take the solo fast path (one direct CAS)
// while its recent batch degree is ~1 and fall back to the full batch
// protocol under contention.
func WithAdaptive(on bool) Option { return config.WithAdaptive(on) }

// WithBatchRecycling toggles batch recycling in the pool's SEC shards,
// so their steady-state freeze paths allocate nothing.
func WithBatchRecycling(on bool) Option { return config.WithBatchRecycling(on) }

// New returns an empty pool.
func New[T any](opts ...Option) *Pool[T] {
	c := config.Resolve(opts)
	p := &Pool[T]{
		shards: make([]*core.Stack[T], c.Shards),
		tids:   tid.New(c.MaxThreads),
	}
	// The pool's shards default to no freezer spin (see WithFreezerSpin);
	// an explicit setting - or enabling the adaptive controller, which
	// needs a non-zero ceiling - opts into the configured value.
	spin := 0
	if c.FreezerSpinSet || c.AdaptiveSpin {
		spin = c.FreezerSpin
	}
	for i := range p.shards {
		// One aggregator per shard: the pool's sharding already spreads
		// contention, and each shard sees only nearby threads.
		p.shards[i] = core.New[T](core.Options{
			Aggregators:  1,
			MaxThreads:   c.MaxThreads,
			FreezerSpin:  spin,
			AdaptiveSpin: c.AdaptiveSpin,
			Adaptive:     c.Adaptive,
			BatchRecycle: c.BatchRecycle,
		})
	}
	return p
}

// ErrExhausted is returned by TryRegister when MaxThreads handles are
// live at the same time.
var ErrExhausted = errors.New("pool: more than MaxThreads handles live")

// Handle is a per-goroutine session. Handles must not be shared between
// goroutines, and should be Closed when their goroutine is done so the
// handle slots - here and in every shard - recycle.
type Handle[T any] struct {
	p       *Pool[T]
	id      int
	home    int
	handles []*core.Handle[T]
	rng     *xrand.State // rotates the steal sweep's starting victim
}

// Register returns a new handle. Slots released by Close are recycled,
// so registration panics only when MaxThreads handles are live at the
// same time; TryRegister is the non-panicking variant.
func (p *Pool[T]) Register() *Handle[T] {
	h, err := p.TryRegister()
	if err != nil {
		panic(err.Error())
	}
	return h
}

// TryRegister is Register with an error in place of the exhaustion
// panic, for callers that prefer backpressure over crashing - the same
// contract the stack, deque and funnel packages offer.
func (p *Pool[T]) TryRegister() (*Handle[T], error) {
	id, err := p.tids.Acquire()
	if err != nil {
		return nil, ErrExhausted
	}
	h := &Handle[T]{p: p, id: id, handles: make([]*core.Handle[T], len(p.shards))}
	for i, s := range p.shards {
		sh, err := s.TryRegister()
		if err != nil {
			// Unreachable while shard MaxThreads matches the pool's, but
			// unwind cleanly rather than leak the slots already taken,
			// and keep the documented error identity rather than the
			// shard's internal one.
			for j := 0; j < i; j++ {
				h.handles[j].Close()
			}
			p.tids.Release(id)
			return nil, fmt.Errorf("%w: shard %d: %v", ErrExhausted, i, err)
		}
		h.handles[i] = sh
	}
	// Home shard rotates with the thread id to spread threads; the
	// steal sweep's start decorrelates further per Get.
	h.home = id % len(p.shards)
	h.rng = xrand.New(uint64(id)) // splitmix64 decorrelates adjacent ids
	return h, nil
}

// Close releases the handle and its per-shard sessions for reuse by a
// future Register. Close is idempotent; any other use of a closed
// handle is a bug.
func (h *Handle[T]) Close() {
	if h.id < 0 {
		return
	}
	for _, sh := range h.handles {
		sh.Close()
	}
	h.p.tids.Release(h.id)
	h.id = -1
}

// Put adds v to the pool.
func (h *Handle[T]) Put(v T) {
	h.handles[h.home].Push(v)
}

// Get removes and returns some element; ok is false only if every shard
// was observed empty.
//
// The miss loop is peek-then-steal: after the home shard's full Pop
// (which keeps elimination with nearby threads), every foreign shard
// is probed with TryPop - one Treiber-style CAS, no announcement -
// starting from a pseudo-random victim so concurrent thieves fan out
// instead of convoying shard by shard. Only if some steal hit
// contention (meaning elements may exist but the CAS lost) does Get
// fall back to the full batch protocol across the shards; steals that
// observed an empty shard already have their answer.
func (h *Handle[T]) Get() (v T, ok bool) {
	if v, ok = h.handles[h.home].Pop(); ok {
		return v, true
	}
	n := len(h.handles)
	if n == 1 {
		return v, false
	}
	off := h.rng.Intn(n - 1)
	contended := false
	for i := 0; i < n-1; i++ {
		idx := (h.home + 1 + (off+i)%(n-1)) % n
		if v, ok, applied := h.handles[idx].TryPop(); applied {
			if ok {
				return v, true
			}
			continue // observed empty, uncontended: answered
		}
		contended = true
	}
	if !contended {
		return v, false
	}
	// Contended steals mean concurrent operations on those shards; join
	// their batches through the full protocol, home included (it may
	// have refilled while the sweep ran).
	for i := 0; i < n; i++ {
		idx := (h.home + i) % n
		if v, ok = h.handles[idx].Pop(); ok {
			return v, true
		}
	}
	return v, false
}

// Size counts pooled elements; a racy diagnostic for quiescent states.
func (p *Pool[T]) Size() int {
	total := 0
	for _, s := range p.shards {
		total += s.Len()
	}
	return total
}
