// Package pool implements a concurrent object pool on top of SEC
// stacks - the "concurrent pools" application the paper's introduction
// cites as a use of concurrent stacks.
//
// A pool relaxes the stack's LIFO contract to "some element": Put and
// Get may be served by any shard. The implementation shards elements
// across per-slice SEC stacks and balances load across them in both
// directions with the engine's steal primitives (one Treiber-style CAS
// through a per-session scratch batch - no announcement, no batch
// protocol):
//
//   - Get first tries its own home shard with the full protocol (which
//     preserves locality and lets SEC's elimination cancel Put/Get
//     pairs of nearby threads), then sweeps the other shards with the
//     TryPop steal primitive, and only escalates to full operations on
//     shards whose steal attempt hit contention.
//   - Put probes its home shard with the TryPush steal primitive -
//     uncontended, a Put is one CAS. After the home solo CAS loses
//     WithPutOverflow consecutive rounds, the home shard is saturated
//     and Puts overflow: they sweep the foreign shards with TryPush,
//     spilling elements to whichever shard has spare capacity, and
//     fall back to the home shard's full batch protocol (joining its
//     batches, where elimination and combining absorb the contention)
//     only when every foreign shard is contended too.
//
// Both sweeps start at a per-handle pseudo-random victim so concurrent
// thieves and overflowers fan out instead of walking the shards in
// lockstep. Together they make shard load bidirectionally
// self-balancing: Get drains quiet shards and Put avoids saturated
// ones, so contention migrates to wherever capacity is.
//
// With WithElasticShards the shard count itself becomes adaptive: the
// constructed WithShards value is a ceiling, and a live window
// [0, liveK) - the shards sessions home to and sweeps visit - grows
// under sustained steal-miss pressure and shrinks, through a
// drain-then-fence protocol, when every live shard runs solo with idle
// steal counters. See Handle.sync and Pool.maybeScale for the
// protocol.
package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"secstack/internal/config"
	"secstack/internal/core"
	"secstack/internal/faultpoint"
	"secstack/internal/isession"
	"secstack/internal/metrics"
	"secstack/internal/pad"
	"secstack/internal/tid"
	"secstack/internal/xrand"
)

// Elastic controller tuning. The period between controller passes is
// configurable (WithElasticPeriod); these govern what a pass does.
const (
	// elasticStreak is how many consecutive controller windows must
	// agree before the live window moves - two-window hysteresis, the
	// pool-level analogue of the engine's solo-mode enter/exit bands,
	// so one noisy window cannot flap the shard count.
	elasticStreak = 2

	// elasticGrowDegree is the batch-degree EWMA (operations per
	// batch) at which a live shard votes grow even without steal
	// misses. It is the only organic grow signal reachable at liveK=1,
	// where no foreign shard exists for a sweep to miss on. Above the
	// engine's solo-exit band (2.0) so a shard voting grow has already
	// fallen back to batching, and below the solo-miss observation
	// weight (4.0) so pure fast-path contention can reach it.
	elasticGrowDegree = 3.0

	// elasticSessionsPerShard is the live window's session budget per
	// shard: the external load signal (SetLoadSignal) votes grow while
	// it exceeds liveK*elasticSessionsPerShard.
	elasticSessionsPerShard = 16

	// drainBurst bounds how many elements one controller pass migrates
	// off a retiring shard, so the Put/Get that happened to trigger
	// the pass never stalls unboundedly; the next pass resumes where
	// this one stopped.
	drainBurst = 1024
)

// Fault-injection sites (internal/faultpoint) on the elastic drain
// protocol. All three sit off the Put/Get fast path: the first two
// fire only inside controller-held migration passes, the third only
// in sync's already-cold epoch-mismatch branch, so a disarmed site
// costs the fast path nothing at all.
const (
	// FPMigrateContended makes a migration pass behave as if every
	// TryPop steal off the retiring shard hit contention, forcing the
	// full-protocol Pop escalation - the straggler-mid-op fallback that
	// organic tests cannot schedule on demand.
	FPMigrateContended = "pool.migrate.contended"

	// FPMigrateStall makes a migration pass return without draining
	// anything, as if the burst budget were exhausted immediately. The
	// retiring shard then stays in the draining state across passes,
	// holding open the window in which a grow vote must cancel the
	// drain in flight.
	FPMigrateStall = "pool.migrate.stall"

	// FPSyncStale suppresses a handle's epoch re-home once, modelling
	// the documented stale-stamp race: the handle keeps operating
	// against its pre-resize home - possibly a fenced shard - until its
	// next op, so elements can land beyond the live window and must be
	// recovered by the controller's straggler sweep.
	FPSyncStale = "pool.sync.stale"
)

// elasticStats are the controller's own steal and resize tallies, kept
// separately from the optional metrics collector so the controller
// sees pressure in uninstrumented pools too. One padded block: the
// counters move only on overflow/steal paths, never on the home-shard
// fast path.
type elasticStats struct {
	putHits  atomic.Int64 // overflow Puts that landed on a live foreign shard
	putMiss  atomic.Int64 // overflow sweeps that found every live shard contended
	getHits  atomic.Int64 // Gets that stole from a foreign shard
	getMiss  atomic.Int64 // steal sweeps that escalated to the full protocol
	grows    atomic.Int64 // live-window grows
	shrinks  atomic.Int64 // live-window shrinks (drains begun)
	migrated atomic.Int64 // elements drained off retiring shards
	_        [2*pad.CacheLine - 7*8]byte
}

// Pool is a sharded concurrent object pool. Register hands out
// per-goroutine handles (the fast path for worker loops); the direct
// Get/Put methods transparently reuse the calling P's cached handle,
// so handle-free callers need no session management at all.
type Pool[T any] struct {
	shards   []*core.Stack[T]
	tids     *tid.Allocator
	overflow int          // Put-overflow threshold; 0 disables
	m        *metrics.SEC // put- and get-steal counters (nil without WithMetrics)

	cache *isession.Sessions[*Handle[T]]

	// Elastic shard state. liveK is the homing-window size in
	// [1, len(shards)] (fixed at len(shards) when elastic is off);
	// epoch stamps every window move so handles re-home lazily on
	// their next operation; draining holds the retiring shard's index
	// while a shrink's drain is in flight (-1 otherwise). Invariant:
	// draining is either -1 or equal to liveK - the retiring shard
	// sits just above the window, steal-visible to Get until fenced.
	elastic  bool
	period   int
	liveK    atomic.Int32
	draining atomic.Int32
	epoch    atomic.Uint64
	nextHome atomic.Uint64 // round-robin homing cursor

	st elasticStats

	ctl struct {
		mu sync.Mutex // serializes controller passes; fields below are mu-owned

		lastPutHits, lastPutMiss int64 // tallies at the previous pass
		lastGetHits, lastGetMiss int64
		growStreak, shrinkStreak int        // consecutive agreeing windows
		load                     func() int // external load gauge (SetLoadSignal)
		drainH                   *Handle[T] // lazily registered migration handle
	}
}

// Option configures New; it is the shared option type of the whole
// repository, so the stack package's WithMaxThreads works here
// unchanged.
type Option = config.Option

// WithShards sets the number of SEC stacks elements spread across
// (default 4). Under WithElasticShards this is the ceiling the live
// shard window moves within.
func WithShards(n int) Option { return config.WithShards(n) }

// WithMaxThreads bounds concurrently live handles (default 256). Close
// recycles handle slots, so this is a concurrency bound, not a lifetime
// bound. An elastic pool's controller takes one slot of this budget
// for its internal migration handle on the first shrink.
func WithMaxThreads(n int) Option { return config.WithMaxThreads(n) }

// WithFreezerSpin sets the batch-growing pre-freeze backoff of the
// pool's SEC shards in spin iterations. The pool's default is 0 - not
// the stack's 128 - because its sharding already spreads contention
// and a Get escalating to the full protocol should not stall on
// freezes hoping for announcers. Steal probes never pay the spin
// either way; only full-protocol operations freeze batches.
func WithFreezerSpin(s int) Option { return config.WithFreezerSpin(s) }

// WithAdaptiveSpin toggles the adaptive freezer backoff in the pool's
// SEC shards: each shard tunes its pre-freeze spin on its batch-degree
// EWMA, growing toward the ceiling under contention and decaying
// toward zero when batches freeze near-empty. The ceiling is
// WithFreezerSpin when given, else the shared default (128) - with the
// pool's own 0-spin default there would be nothing for the controller
// to do.
func WithAdaptiveSpin(on bool) Option { return config.WithAdaptiveSpin(on) }

// WithAdaptive toggles contention adaptivity in the pool's SEC shards:
// each shard's operations take the solo fast path (one direct CAS)
// while its recent batch degree is ~1 and fall back to the full batch
// protocol under contention. Forced on by WithElasticShards, whose
// shrink signal reads the shards' solo-mode bits.
func WithAdaptive(on bool) Option { return config.WithAdaptive(on) }

// WithBatchRecycling toggles batch recycling in the pool's SEC shards,
// so their steady-state freeze paths allocate nothing.
func WithBatchRecycling(on bool) Option { return config.WithBatchRecycling(on) }

// WithPutOverflow sets the Put-overflow threshold: after this many
// consecutive home-shard solo-CAS losses, a handle's Puts sweep the
// foreign shards with the TryPush steal primitive before falling back
// to the home shard's full batch protocol - the push-side twin of
// Get's peek-then-steal, completing bidirectional shard balancing.
// Default 2; 0 disables overflow and pins every Put to its home shard.
func WithPutOverflow(threshold int) Option { return config.WithPutOverflow(threshold) }

// WithRecycling routes the shards' stack nodes through DEBRA-style
// epoch-based reclamation instead of fresh allocation, so a
// steady-state Put/Get cycle - overflow steals included - allocates
// nothing.
func WithRecycling() Option { return config.WithRecycling() }

// WithMetrics enables the pool's steal counters in both balancing
// directions - Put-overflow hits and misses, and the Get steal sweep's
// hits and misses (via Metrics or Snapshot) - plus the elastic
// resize/migration counters and the per-shard engine degree counters
// Snapshot merges in. The elastic controller itself needs no metrics:
// it runs off its own internal tallies.
func WithMetrics() Option { return config.WithMetrics() }

// WithImplicitSessions toggles the per-P affinity tier behind the
// handle-free Get/Put methods (default on); see the stack package's
// option of the same name.
func WithImplicitSessions(on bool) Option { return config.WithImplicitSessions(on) }

// WithAnnounceEvery sets the cached implicit sessions' amortized
// hazard-announcement cadence (default 8; 1 restores the eager per-op
// clear); see the stack package's option of the same name.
func WithAnnounceEvery(k int) Option { return config.WithAnnounceEvery(k) }

// WithElasticShards toggles the pool's elastic shard controller
// (default off). On, WithShards becomes a ceiling: the live shard
// window [0, liveK) that sessions home to and sweeps visit starts at
// one shard and grows under sustained steal-miss pressure in both
// balancing directions, a saturated shard's batch-degree EWMA, or a
// high SetLoadSignal gauge (default: the pool's live-handle count);
// it shrinks - retiring shards drain through the TryPop steal
// primitive before being fenced - when every live shard runs solo
// with idle steal counters and the load gauge fits the narrowed
// window. Implies WithAdaptive(true) for the pool's shards.
func WithElasticShards(on bool) Option { return config.WithElasticShards(on) }

// WithElasticPeriod sets the elastic controller's op cadence: each
// handle runs one controller pass per k of its Put/Get calls
// (amortized and try-locked, so concurrent handles never stack passes;
// there is no background goroutine). Default 2048; values below 1
// clamp to 1.
func WithElasticPeriod(k int) Option { return config.WithElasticPeriod(k) }

// New returns an empty pool.
func New[T any](opts ...Option) *Pool[T] {
	c := config.Resolve(opts)
	if c.ElasticShards {
		// The shrink signal reads the shards' solo-mode bits, which
		// only move under adaptivity; elastic pools always run
		// adaptive shards.
		c.Adaptive = true
	}
	p := &Pool[T]{
		shards:   make([]*core.Stack[T], c.Shards),
		tids:     tid.New(c.MaxThreads),
		overflow: c.PutOverflow,
		elastic:  c.ElasticShards,
		period:   c.ElasticPeriod,
	}
	// Elastic pools start at one live shard and earn the rest:
	// WithShards is a ceiling, and the controller widens the window
	// only when pressure shows up. Starting wide would also make grow
	// undemonstrable on a fresh pool - there would be nothing above
	// the window to grow into.
	if p.elastic {
		p.liveK.Store(1)
		// The default load gauge is the pool's own live-session count:
		// a registration wave widens the window ahead of the steal
		// pressure it would cause. SetLoadSignal overrides it with a
		// caller-owned gauge (secd installs its connection count).
		p.ctl.load = p.tids.InUse
	} else {
		p.liveK.Store(int32(c.Shards))
	}
	p.draining.Store(-1)
	if c.CollectMetrics {
		p.m = metrics.NewSEC(c.Shards)
	}
	// The pool's shards default to no freezer spin (see WithFreezerSpin);
	// an explicit setting - or enabling the adaptive controller, which
	// needs a non-zero ceiling - opts into the configured value.
	spin := 0
	if c.FreezerSpinSet || c.AdaptiveSpin {
		spin = c.FreezerSpin
	}
	for i := range p.shards {
		// One aggregator per shard: the pool's sharding already spreads
		// contention, and each shard sees only nearby threads.
		p.shards[i] = core.New[T](core.Options{
			Aggregators:    1,
			MaxThreads:     c.MaxThreads,
			FreezerSpin:    spin,
			AdaptiveSpin:   c.AdaptiveSpin,
			Recycle:        c.Recycle,
			Adaptive:       c.Adaptive,
			BatchRecycle:   c.BatchRecycle,
			CollectMetrics: c.CollectMetrics,
		})
	}
	// Cached implicit handles publish their per-shard hazard slots once
	// per AnnounceEvery ops (amortized announcement); explicit handles
	// keep the eager per-op clear.
	p.cache = isession.New(c.ImplicitAffinity, func() (*Handle[T], error) {
		h, err := p.TryRegister()
		if err != nil {
			return nil, err
		}
		for _, sh := range h.handles {
			sh.SetDoneCadence(c.AnnounceEvery)
		}
		return h, nil
	}, func(h *Handle[T]) { h.Close() })
	return p
}

// Put adds v to the pool through a cached per-P handle. Worker loops
// should prefer an explicit Register-ed handle, which also carries the
// overflow state that makes repeated Puts adaptive.
func (p *Pool[T]) Put(v T) {
	e := p.cache.Acquire()
	e.H.Put(v)
	p.cache.Release(e)
}

// Get removes and returns some element through a cached per-P handle;
// ok is false only if every shard was observed empty.
func (p *Pool[T]) Get() (v T, ok bool) {
	e := p.cache.Acquire()
	v, ok = e.H.Get()
	p.cache.Release(e)
	return v, ok
}

// Metrics returns the pool-level steal collector (Put-overflow and
// Get-steal hits and misses per victim shard), or nil if WithMetrics
// was not given. For the merged view including the shards' engine
// degree counters, use Snapshot.
func (p *Pool[T]) Metrics() *metrics.SEC { return p.m }

// Snapshot merges the pool-level steal counters with every shard's
// engine degree snapshot - batching degree, occupancy, fast-path and
// reclaim counters summed across shards - so one snapshot carries the
// whole pool's trajectory. Counter fields are zero when WithMetrics
// was not given; LiveShards is always populated.
//
// Resize safety: the live window is read once up front (the gauge is a
// single coherent value, not a sum that a concurrent resize could
// tear), and the counter walk covers the constructed maximum - fenced
// shards' counters are monotonic history that must stay in the sums,
// not live traffic to exclude.
func (p *Pool[T]) Snapshot() metrics.Snapshot {
	live := int(p.liveK.Load())
	out := p.m.Snapshot()
	for _, s := range p.shards {
		out.Accumulate(s.Metrics().Snapshot())
	}
	out.LiveShards = live
	return out
}

// LiveShards reports the elastic live-window size - how many shards
// sessions currently home to; the constructed shard count when
// elasticity is off.
func (p *Pool[T]) LiveShards() int { return int(p.liveK.Load()) }

// ScaleEpoch reports how many times the live shard window has moved.
func (p *Pool[T]) ScaleEpoch() uint64 { return p.epoch.Load() }

// SetLoadSignal replaces the elastic controller's load gauge: while
// f() exceeds the live window's session budget
// (elasticSessionsPerShard per live shard), the controller votes grow
// even before steal pressure materializes. The default gauge is the
// pool's own live-handle count; secd wires its connection-session
// count here, so a connection wave widens the pool ahead of the convoy
// it would otherwise cause. f must be safe for concurrent use; the
// signal is ignored by non-elastic pools.
func (p *Pool[T]) SetLoadSignal(f func() int) {
	p.ctl.mu.Lock()
	p.ctl.load = f
	p.ctl.mu.Unlock()
}

// ErrExhausted is returned by TryRegister when MaxThreads handles are
// live at the same time.
var ErrExhausted = errors.New("pool: more than MaxThreads handles live")

// Handle is a per-goroutine session. Handles must not be shared between
// goroutines, and should be Closed when their goroutine is done so the
// handle slots - here and in every shard - recycle.
type Handle[T any] struct {
	p       *Pool[T]
	id      int
	home    int
	handles []*core.Handle[T]
	rng     *xrand.State // rotates both sweeps' starting victims

	// putMiss counts consecutive home-shard solo-CAS losses; at the
	// pool's overflow threshold, Puts start sweeping foreign shards.
	// Reset by any home solo success, decayed - not reset - by a
	// successful overflow steal, so a still-saturated home costs one
	// probe per Put, not a fresh run-up to the threshold.
	putMiss int

	// epoch is the live-window epoch the handle's home placement was
	// computed under; a mismatch at op start re-homes (see sync).
	// ticks counts ops toward the next elastic controller pass.
	epoch uint64
	ticks int
}

// Register returns a new handle. Slots released by Close are recycled,
// so registration panics only when MaxThreads handles are live at the
// same time; TryRegister is the non-panicking variant.
func (p *Pool[T]) Register() *Handle[T] {
	h, err := p.TryRegister()
	if err != nil {
		panic(err.Error())
	}
	return h
}

// TryRegister is Register with an error in place of the exhaustion
// panic, for callers that prefer backpressure over crashing - the same
// contract the stack, deque and funnel packages offer.
func (p *Pool[T]) TryRegister() (*Handle[T], error) {
	id, err := p.tids.Acquire()
	if err != nil {
		return nil, ErrExhausted
	}
	h := &Handle[T]{p: p, id: id, handles: make([]*core.Handle[T], len(p.shards))}
	for i, s := range p.shards {
		sh, err := s.TryRegister()
		if err != nil {
			// Unreachable while shard MaxThreads matches the pool's, but
			// unwind cleanly rather than leak the slots already taken,
			// and keep the documented error identity rather than the
			// shard's internal one.
			for j := 0; j < i; j++ {
				h.handles[j].Close()
			}
			p.tids.Release(id)
			return nil, fmt.Errorf("%w: shard %d: %v", ErrExhausted, i, err)
		}
		h.handles[i] = sh
	}
	// Home shards rotate round-robin over the live window - an explicit
	// spread rather than id%shards, so recycled ids and a moving window
	// both keep sessions evenly placed - and the placement is
	// epoch-stamped: when the window moves, the session's next op
	// re-homes (see sync), so shrink never strands a session on a
	// fenced shard. The steal sweep's start decorrelates further per
	// op via the handle's rng.
	h.rehome(p.epoch.Load())
	h.rng = xrand.New(uint64(id)) // splitmix64 decorrelates adjacent ids
	return h, nil
}

// rehome recomputes the handle's home round-robin across the live
// window, stamping the epoch the caller observed. Callers load the
// epoch before the window: a resize racing the re-home then leaves a
// stale stamp behind and the next op simply re-homes again.
func (h *Handle[T]) rehome(epoch uint64) {
	h.epoch = epoch
	h.home = int(h.p.nextHome.Add(1)-1) % int(h.p.liveK.Load())
}

// sync is the elastic prologue of every Put/Get: re-home if the live
// window moved since this handle's last op, and run one controller
// pass every period ops. Non-elastic pools pay a single predictable
// branch.
func (h *Handle[T]) sync() {
	p := h.p
	if !p.elastic {
		return
	}
	if ep := p.epoch.Load(); ep != h.epoch {
		// An injected stale stamp skips this re-home, as if a resize
		// raced it; the handle stays on its old window for one op.
		if !faultpoint.Fired(FPSyncStale) {
			h.rehome(ep)
		}
	}
	if h.ticks++; h.ticks >= p.period {
		h.ticks = 0
		p.maybeScale()
	}
}

// Close releases the handle and its per-shard sessions for reuse by a
// future Register. Close is idempotent; any other use of a closed
// handle is a bug.
func (h *Handle[T]) Close() {
	if h.id < 0 {
		return
	}
	for _, sh := range h.handles {
		sh.Close()
	}
	h.p.tids.Release(h.id)
	h.id = -1
}

// foreignVictim maps step i of a sweep starting at offset off (drawn
// from rng over [0, lim-1)) to a foreign shard index below lim: the
// rotation visits every shard in the window except home exactly once,
// from a per-sweep pseudo-random start so concurrent sweeps - Get's
// steals and Put's overflows alike - fan out instead of convoying
// shard by shard. lim is the sweep's window (the live window for
// elastic pools, all shards otherwise) and must be at least 2.
func (h *Handle[T]) foreignVictim(off, i, lim int) int {
	hm := h.home
	if hm >= lim {
		// A shrink raced this op's window read; the handle re-homes on
		// its next op. Sweep as if homed at 0 - probing the real home
		// again is merely redundant.
		hm = 0
	}
	return (hm + 1 + (off+i)%(lim-1)) % lim
}

// notePutSteal records one Put-overflow outcome in the optional
// metrics collector and, for elastic pools, the controller's own
// tallies (the controller must see pressure without WithMetrics).
func (p *Pool[T]) notePutSteal(idx int, hit bool) {
	p.m.RecordPutSteal(idx, hit)
	if p.elastic {
		if hit {
			p.st.putHits.Add(1)
		} else {
			p.st.putMiss.Add(1)
		}
	}
}

// noteGetSteal is notePutSteal's Get-side mirror.
func (p *Pool[T]) noteGetSteal(idx int, hit bool) {
	p.m.RecordGetSteal(idx, hit)
	if p.elastic {
		if hit {
			p.st.getHits.Add(1)
		} else {
			p.st.getMiss.Add(1)
		}
	}
}

// Put adds v to the pool, preferring the handle's home shard.
//
// The fast path is one TryPush - a single Treiber-style CAS on the
// home shard, no announcement, no batch protocol. When that CAS loses
// WithPutOverflow consecutive rounds the home shard is saturated, and
// Put overflows: it sweeps the foreign shards with TryPush, starting
// from a pseudo-random victim, spilling the element to the first quiet
// shard - the push-side twin of Get's steal sweep. Only when every
// foreign shard is contended too (or overflow is disabled) does Put
// fall back to the home shard's full batch protocol, joining its
// batches where elimination and combining absorb exactly the
// contention the probes observed.
//
// Elastic pools bound the overflow sweep to the live window: fenced
// and draining shards must see no new elements, or a shrink would
// never settle.
func (h *Handle[T]) Put(v T) {
	h.sync()
	live := len(h.handles)
	if h.p.elastic {
		live = int(h.p.liveK.Load())
	}
	overflowing := h.p.overflow > 0 && h.putMiss >= h.p.overflow && live > 1
	if !overflowing {
		if h.handles[h.home].TryPush(v) {
			h.putMiss = 0
			return
		}
		if h.p.overflow == 0 || live == 1 {
			h.handles[h.home].Push(v)
			return
		}
		if h.putMiss++; h.putMiss < h.p.overflow {
			h.handles[h.home].Push(v)
			return
		}
	}
	// Overflow: the home solo CAS lost the threshold's worth of
	// consecutive rounds. Spill to a quiet shard in the live window.
	off := h.rng.Intn(live - 1)
	for i := 0; i < live-1; i++ {
		idx := h.foreignVictim(off, i, live)
		if h.handles[idx].TryPush(v) {
			h.p.notePutSteal(idx, true)
			// Decay instead of reset: the next Put probes home once and
			// resumes overflowing on loss, rather than paying the full
			// run-up while home is still saturated.
			h.putMiss = h.p.overflow - 1
			return
		}
	}
	// Every live shard is contended: batching is what absorbs that.
	// Join the home shard's full protocol and restart the loss count.
	h.p.notePutSteal(h.home, false)
	h.handles[h.home].Push(v)
	h.putMiss = 0
}

// Get removes and returns some element; ok is false only if every shard
// was observed empty.
//
// The miss loop is peek-then-steal: after the home shard's full Pop
// (which keeps elimination with nearby threads), every foreign shard
// in the sweep window is probed with TryPop - one Treiber-style CAS,
// no announcement - starting from a pseudo-random victim so concurrent
// thieves fan out instead of convoying shard by shard. Only if some
// steal hit contention (meaning elements may exist but the CAS lost)
// does Get fall back to the full batch protocol across the shards;
// steals that observed an empty shard already have their answer.
//
// Elastic pools sweep the live window plus the draining shard (a
// retiring shard stays steal-visible until fenced, so its elements
// keep flowing out), and an all-empty sweep additionally probes the
// fenced shards before answering "empty": a handle parked mid-op can
// Put to a home the window has since fenced, so "all live shards
// empty" is not yet "pool empty". The contended fallback always walks
// every constructed shard - it is the conservation anchor.
func (h *Handle[T]) Get() (v T, ok bool) {
	h.sync()
	if v, ok = h.handles[h.home].Pop(); ok {
		return v, true
	}
	n := len(h.handles)
	sweep := n
	if h.p.elastic {
		sweep = int(h.p.liveK.Load())
		if h.p.draining.Load() >= 0 && sweep < n {
			sweep++ // the draining shard sits at index liveK
		}
	}
	contended := false
	if sweep > 1 {
		off := h.rng.Intn(sweep - 1)
		for i := 0; i < sweep-1; i++ {
			idx := h.foreignVictim(off, i, sweep)
			if v, ok, applied := h.handles[idx].TryPop(); applied {
				if ok {
					h.p.noteGetSteal(idx, true)
					return v, true
				}
				continue // observed empty, uncontended: answered
			}
			contended = true
		}
	}
	if !contended {
		// Conservation pass over the fenced shards (empty loop for
		// non-elastic pools): stragglers may have landed above the
		// window, and "empty" may only be declared once they are
		// covered too.
		for idx := sweep; idx < n; idx++ {
			if v, ok, applied := h.handles[idx].TryPop(); applied {
				if ok {
					h.p.noteGetSteal(idx, true)
					return v, true
				}
				continue
			}
			contended = true
		}
	}
	if !contended {
		// Every shard observed uncontendedly empty: an answer, not a
		// balancing failure - no counter moves (the mirror of Put's
		// never-overflowed fast path).
		return v, false
	}
	// Contended steals mean concurrent operations on those shards; join
	// their batches through the full protocol, every constructed shard
	// included (home may have refilled while the sweep ran, and fenced
	// shards may hold straggler elements). Recorded against the home
	// shard as a get-steal miss, mirroring the Put-overflow fallback.
	h.p.noteGetSteal(h.home, false)
	for i := 0; i < n; i++ {
		idx := (h.home + i) % n
		if v, ok = h.handles[idx].Pop(); ok {
			return v, true
		}
	}
	return v, false
}

// maybeScale is one elastic controller pass. At most one runs at a
// time (TryLock: a losing caller just continues its operation), and
// each pass reads the steal tallies accumulated since the previous
// pass - so the "window" a decision is based on is the last
// ElasticPeriod-ish operations across all handles.
//
// Signals, in precedence order:
//
//   - An in-flight drain is continued first, and leftovers on fenced
//     shards are migrated (stragglers can land above the window after
//     a fence; see Get).
//   - Grow when both balancing directions missed in the window (Puts
//     found every live shard contended AND Gets escalated - one-sided
//     pressure is what the steal sweeps themselves absorb), when some
//     live shard's batch-degree EWMA crossed elasticGrowDegree (the
//     only organic signal at liveK=1), or when the external load
//     gauge exceeds the window's session budget.
//   - Shrink when the window was completely steal-idle, every live
//     shard sits in solo mode, AND the load gauge fits the narrowed
//     window: capacity is provably excess - nothing overflowed,
//     nothing stole, no shard batched, and no session wave is holding
//     the width it asked for.
//
// Both directions require elasticStreak consecutive agreeing windows,
// and a disagreeing window resets both streaks, so a noisy boundary
// cannot flap the window. Grow wins ties: a grow vote during a drain
// cancels the drain rather than queueing behind it.
func (p *Pool[T]) maybeScale() {
	if !p.ctl.mu.TryLock() {
		return
	}
	defer p.ctl.mu.Unlock()

	if d := int(p.draining.Load()); d >= 0 {
		if p.migrate(d) {
			// Observed empty: fence. From here the shard is invisible
			// to steal sweeps; only the conservation paths revisit it.
			p.draining.Store(-1)
		}
	}
	k := int(p.liveK.Load())
	for i := k; i < len(p.shards); i++ {
		if i != int(p.draining.Load()) && p.shards[i].Len() > 0 {
			p.migrate(i) // straggler leftovers on a fenced shard
		}
	}

	ph, pm := p.st.putHits.Load(), p.st.putMiss.Load()
	gh, gm := p.st.getHits.Load(), p.st.getMiss.Load()
	dph, dpm := ph-p.ctl.lastPutHits, pm-p.ctl.lastPutMiss
	dgh, dgm := gh-p.ctl.lastGetHits, gm-p.ctl.lastGetMiss
	p.ctl.lastPutHits, p.ctl.lastPutMiss = ph, pm
	p.ctl.lastGetHits, p.ctl.lastGetMiss = gh, gm

	grow := dpm > 0 && dgm > 0
	if !grow && p.maxLiveDegree(k) >= elasticGrowDegree {
		grow = true
	}
	if !grow && p.ctl.load != nil && p.ctl.load() > k*elasticSessionsPerShard {
		grow = true
	}
	switch {
	case grow:
		p.ctl.shrinkStreak = 0
		if p.ctl.growStreak++; p.ctl.growStreak >= elasticStreak {
			p.ctl.growStreak = 0
			p.grow(k)
		}
	case dph+dpm+dgh+dgm == 0 && k > 1 && p.draining.Load() < 0 && p.allLiveSolo(k) &&
		(p.ctl.load == nil || p.ctl.load() <= (k-1)*elasticSessionsPerShard):
		// The load floor keeps the boundary from flapping: a window
		// that only exists because the gauge demanded it must not be
		// given back while the demand stands, however solo-idle a
		// scheduling quantum makes the shards look.
		p.ctl.growStreak = 0
		if p.ctl.shrinkStreak++; p.ctl.shrinkStreak >= elasticStreak {
			p.ctl.shrinkStreak = 0
			p.beginShrink(k)
		}
	default:
		p.ctl.growStreak, p.ctl.shrinkStreak = 0, 0
	}
}

// maxLiveDegree is the highest batch-degree EWMA across the live
// window - max, not mean, because one saturated shard is reason enough
// to spread.
func (p *Pool[T]) maxLiveDegree(k int) float64 {
	d := 0.0
	for i := 0; i < k; i++ {
		d = max(d, p.shards[i].DegreeEWMA())
	}
	return d
}

// allLiveSolo reports whether every live shard currently runs the solo
// fast path.
func (p *Pool[T]) allLiveSolo(k int) bool {
	for i := 0; i < k; i++ {
		if !p.shards[i].Solo() {
			return false
		}
	}
	return true
}

// grow turns shard k live (called under ctl.mu with k == liveK). A
// grow during a drain instead cancels the drain: the retiring shard -
// index k, by the draining invariant - rejoins the window with
// whatever it still holds.
func (p *Pool[T]) grow(k int) {
	if k >= len(p.shards) {
		return
	}
	if int(p.draining.Load()) == k {
		p.draining.Store(-1)
	}
	p.liveK.Store(int32(k + 1))
	p.epoch.Add(1)
	p.st.grows.Add(1)
	p.m.RecordResize(k, true)
}

// beginShrink retires shard k-1 (called under ctl.mu with k == liveK,
// k > 1). Ordering is the protocol: the homing window shrinks first -
// no new homes, no new overflow spills - while the shard stays
// steal-visible to Get (draining == new liveK), and the fence that
// drops it from the sweep happens only in maybeScale once a migration
// pass observes it empty.
func (p *Pool[T]) beginShrink(k int) {
	r := k - 1
	p.liveK.Store(int32(r))
	p.draining.Store(int32(r))
	p.epoch.Add(1)
	p.st.shrinks.Add(1)
	p.m.RecordResize(r, false)
	if p.migrate(r) {
		p.draining.Store(-1)
	}
}

// migrate moves shard i's elements into the live window through the
// controller's internal drain handle: TryPop first - the same one-CAS
// steal Get's sweep uses, so migration needs no new mechanism and
// pays no batch protocol - escalating to one full-protocol Pop
// whenever contention blocks the steal (a straggler mid-op on the
// retiring shard; joining its batch drains it too). At most drainBurst
// elements move per call; reports whether the shard was observed
// empty. Called only under ctl.mu.
func (p *Pool[T]) migrate(i int) (empty bool) {
	if faultpoint.Fired(FPMigrateStall) {
		return false // injected no-progress pass; the drain stays open
	}
	h := p.drainHandle()
	if h == nil {
		return false
	}
	moved := 0
	defer func() {
		if moved > 0 {
			p.st.migrated.Add(int64(moved))
			p.m.RecordMigrate(i, moved)
		}
	}()
	for moved < drainBurst {
		var v T
		ok, applied := false, false
		if !faultpoint.Fired(FPMigrateContended) {
			v, ok, applied = h.handles[i].TryPop()
		}
		if applied && !ok {
			return true // observed empty, uncontended
		}
		if !applied {
			if v, ok = h.handles[i].Pop(); !ok {
				return true
			}
		}
		// Re-Put through the normal path: sync re-homes the drain
		// handle into the live window, and a recursive controller pass
		// is impossible (the TryLock above is held).
		h.Put(v)
		moved++
	}
	return false
}

// drainHandle lazily registers the controller's migration handle - one
// slot of the MaxThreads budget, taken on the first shrink and kept
// for the pool's lifetime. Returns nil when the budget is exhausted;
// the drain then just retries on a later pass.
func (p *Pool[T]) drainHandle() *Handle[T] {
	if p.ctl.drainH == nil {
		h, err := p.TryRegister()
		if err != nil {
			return nil
		}
		p.ctl.drainH = h
	}
	return p.ctl.drainH
}

// Size counts pooled elements; a racy diagnostic for quiescent states.
func (p *Pool[T]) Size() int {
	total := 0
	for _, s := range p.shards {
		total += s.Len()
	}
	return total
}
