// Package pool implements a concurrent object pool on top of SEC
// stacks - the "concurrent pools" application the paper's introduction
// cites as a use of concurrent stacks.
//
// A pool relaxes the stack's LIFO contract to "some element": Put and
// Get may be served by any shard. The implementation shards elements
// across per-slice SEC stacks; a Get first tries its own shard (which
// preserves locality and lets SEC's elimination cancel Put/Get pairs of
// nearby threads) and then steals round-robin from the others.
package pool

import (
	"secstack/internal/core"
)

// Pool is a sharded concurrent object pool. Use Register to obtain
// per-goroutine handles.
type Pool[T any] struct {
	shards []*core.Stack[T]
}

// Options configures a Pool.
type Options struct {
	// Shards is the number of SEC stacks elements spread across
	// (default 4).
	Shards int
	// MaxThreads bounds Register calls (default 256).
	MaxThreads int
}

// New returns an empty pool.
func New[T any](o Options) *Pool[T] {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 256
	}
	p := &Pool[T]{shards: make([]*core.Stack[T], o.Shards)}
	for i := range p.shards {
		// One aggregator per shard: the pool's sharding already spreads
		// contention, and each shard sees only nearby threads.
		p.shards[i] = core.New[T](core.Options{Aggregators: 1, MaxThreads: o.MaxThreads})
	}
	return p
}

// Handle is a per-goroutine session. Handles must not be shared between
// goroutines.
type Handle[T any] struct {
	p       *Pool[T]
	home    int
	handles []*core.Handle[T]
}

// Register returns a new handle.
func (p *Pool[T]) Register() *Handle[T] {
	h := &Handle[T]{p: p, handles: make([]*core.Handle[T], len(p.shards))}
	for i, s := range p.shards {
		h.handles[i] = s.Register()
	}
	// Home shard rotates with registration order to spread threads.
	h.home = int(p.shards[0].RegisteredThreads()-1) % len(p.shards)
	return h
}

// Put adds v to the pool.
func (h *Handle[T]) Put(v T) {
	h.handles[h.home].Push(v)
}

// Get removes and returns some element; ok is false only if every shard
// was observed empty.
func (h *Handle[T]) Get() (v T, ok bool) {
	n := len(h.handles)
	for i := 0; i < n; i++ {
		idx := (h.home + i) % n
		if v, ok = h.handles[idx].Pop(); ok {
			return v, true
		}
	}
	return v, false
}

// Size counts pooled elements; a racy diagnostic for quiescent states.
func (p *Pool[T]) Size() int {
	total := 0
	for _, s := range p.shards {
		total += s.Len()
	}
	return total
}
