// Package pool implements a concurrent object pool on top of SEC
// stacks - the "concurrent pools" application the paper's introduction
// cites as a use of concurrent stacks.
//
// A pool relaxes the stack's LIFO contract to "some element": Put and
// Get may be served by any shard. The implementation shards elements
// across per-slice SEC stacks; a Get first tries its own shard (which
// preserves locality and lets SEC's elimination cancel Put/Get pairs of
// nearby threads) and then steals round-robin from the others.
package pool

import (
	"secstack/internal/config"
	"secstack/internal/core"
	"secstack/internal/tid"
)

// Pool is a sharded concurrent object pool. Use Register to obtain
// per-goroutine handles.
type Pool[T any] struct {
	shards []*core.Stack[T]
	tids   *tid.Allocator
}

// Option configures New; it is the shared option type of the whole
// repository, so the stack package's WithMaxThreads works here
// unchanged.
type Option = config.Option

// WithShards sets the number of SEC stacks elements spread across
// (default 4).
func WithShards(n int) Option { return config.WithShards(n) }

// WithMaxThreads bounds concurrently live handles (default 256). Close
// recycles handle slots, so this is a concurrency bound, not a lifetime
// bound.
func WithMaxThreads(n int) Option { return config.WithMaxThreads(n) }

// WithAdaptive toggles contention adaptivity in the pool's SEC shards:
// each shard's operations take the solo fast path (one direct CAS)
// while its recent batch degree is ~1 and fall back to the full batch
// protocol under contention.
func WithAdaptive(on bool) Option { return config.WithAdaptive(on) }

// WithBatchRecycling toggles batch recycling in the pool's SEC shards,
// so their steady-state freeze paths allocate nothing.
func WithBatchRecycling(on bool) Option { return config.WithBatchRecycling(on) }

// New returns an empty pool.
func New[T any](opts ...Option) *Pool[T] {
	c := config.Resolve(opts)
	p := &Pool[T]{
		shards: make([]*core.Stack[T], c.Shards),
		tids:   tid.New(c.MaxThreads),
	}
	for i := range p.shards {
		// One aggregator per shard: the pool's sharding already spreads
		// contention, and each shard sees only nearby threads.
		p.shards[i] = core.New[T](core.Options{
			Aggregators:  1,
			MaxThreads:   c.MaxThreads,
			Adaptive:     c.Adaptive,
			BatchRecycle: c.BatchRecycle,
		})
	}
	return p
}

// Handle is a per-goroutine session. Handles must not be shared between
// goroutines, and should be Closed when their goroutine is done so the
// handle slots - here and in every shard - recycle.
type Handle[T any] struct {
	p       *Pool[T]
	id      int
	home    int
	handles []*core.Handle[T]
}

// Register returns a new handle. Slots released by Close are recycled,
// so registration panics only when MaxThreads handles are live at the
// same time.
func (p *Pool[T]) Register() *Handle[T] {
	id, err := p.tids.Acquire()
	if err != nil {
		panic("pool: more than MaxThreads handles live")
	}
	h := &Handle[T]{p: p, id: id, handles: make([]*core.Handle[T], len(p.shards))}
	for i, s := range p.shards {
		h.handles[i] = s.Register()
	}
	// Home shard rotates with the thread id to spread threads.
	h.home = id % len(p.shards)
	return h
}

// Close releases the handle and its per-shard sessions for reuse by a
// future Register. Close is idempotent; any other use of a closed
// handle is a bug.
func (h *Handle[T]) Close() {
	if h.id < 0 {
		return
	}
	for _, sh := range h.handles {
		sh.Close()
	}
	h.p.tids.Release(h.id)
	h.id = -1
}

// Put adds v to the pool.
func (h *Handle[T]) Put(v T) {
	h.handles[h.home].Push(v)
}

// Get removes and returns some element; ok is false only if every shard
// was observed empty.
func (h *Handle[T]) Get() (v T, ok bool) {
	n := len(h.handles)
	for i := 0; i < n; i++ {
		idx := (h.home + i) % n
		if v, ok = h.handles[idx].Pop(); ok {
			return v, true
		}
	}
	return v, false
}

// Size counts pooled elements; a racy diagnostic for quiescent states.
func (p *Pool[T]) Size() int {
	total := 0
	for _, s := range p.shards {
		total += s.Len()
	}
	return total
}
