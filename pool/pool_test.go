package pool

import (
	"sync"
	"testing"
)

func TestPutGetSingle(t *testing.T) {
	p := New[int]()
	h := p.Register()
	h.Put(42)
	if v, ok := h.Get(); !ok || v != 42 {
		t.Fatalf("Get = (%d, %v), want (42, true)", v, ok)
	}
	if _, ok := h.Get(); ok {
		t.Fatal("Get on empty pool succeeded")
	}
}

func TestGetStealsAcrossShards(t *testing.T) {
	p := New[int](WithShards(4))
	producers := make([]*Handle[int], 8)
	for i := range producers {
		producers[i] = p.Register()
		producers[i].Put(i)
	}
	// One consumer must be able to drain everything regardless of which
	// shards the elements landed on.
	c := p.Register()
	seen := make(map[int]bool)
	for i := 0; i < len(producers); i++ {
		v, ok := c.Get()
		if !ok {
			t.Fatalf("Get #%d failed with %d elements remaining", i, p.Size())
		}
		if seen[v] {
			t.Fatalf("value %d returned twice", v)
		}
		seen[v] = true
	}
	if p.Size() != 0 {
		t.Fatalf("Size = %d after drain", p.Size())
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := New[int]()
	if len(p.shards) != 4 {
		t.Fatalf("default shards = %d, want 4", len(p.shards))
	}
}

func TestConcurrentConservation(t *testing.T) {
	p := New[int64](WithShards(3))
	const g, per = 8, 3000
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := make(map[int64]int)
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := p.Register()
			local := make(map[int64]int)
			for i := 0; i < per; i++ {
				v := int64(w)<<32 | int64(i)
				h.Put(v)
				if got, ok := h.Get(); ok {
					local[got]++
				}
			}
			mu.Lock()
			for k, c := range local {
				counts[k] += c
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	h := p.Register()
	for {
		v, ok := h.Get()
		if !ok {
			break
		}
		counts[v]++
	}
	for v, c := range counts {
		if c != 1 {
			t.Fatalf("value %d seen %d times", v, c)
		}
	}
	if len(counts) != g*per {
		t.Fatalf("recovered %d values, want %d", len(counts), g*per)
	}
}

func TestSizeQuiescent(t *testing.T) {
	p := New[int](WithShards(2))
	h := p.Register()
	for i := 0; i < 10; i++ {
		h.Put(i)
	}
	if p.Size() != 10 {
		t.Fatalf("Size = %d, want 10", p.Size())
	}
}
