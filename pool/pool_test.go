package pool

import (
	"sync"
	"testing"
)

func TestPutGetSingle(t *testing.T) {
	p := New[int]()
	h := p.Register()
	h.Put(42)
	if v, ok := h.Get(); !ok || v != 42 {
		t.Fatalf("Get = (%d, %v), want (42, true)", v, ok)
	}
	if _, ok := h.Get(); ok {
		t.Fatal("Get on empty pool succeeded")
	}
}

func TestGetStealsAcrossShards(t *testing.T) {
	p := New[int](WithShards(4))
	producers := make([]*Handle[int], 8)
	for i := range producers {
		producers[i] = p.Register()
		producers[i].Put(i)
	}
	// One consumer must be able to drain everything regardless of which
	// shards the elements landed on.
	c := p.Register()
	seen := make(map[int]bool)
	for i := 0; i < len(producers); i++ {
		v, ok := c.Get()
		if !ok {
			t.Fatalf("Get #%d failed with %d elements remaining", i, p.Size())
		}
		if seen[v] {
			t.Fatalf("value %d returned twice", v)
		}
		seen[v] = true
	}
	if p.Size() != 0 {
		t.Fatalf("Size = %d after drain", p.Size())
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := New[int]()
	if len(p.shards) != 4 {
		t.Fatalf("default shards = %d, want 4", len(p.shards))
	}
}

func TestConcurrentConservation(t *testing.T) {
	p := New[int64](WithShards(3))
	const g, per = 8, 3000
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := make(map[int64]int)
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := p.Register()
			local := make(map[int64]int)
			for i := 0; i < per; i++ {
				v := int64(w)<<32 | int64(i)
				h.Put(v)
				if got, ok := h.Get(); ok {
					local[got]++
				}
			}
			mu.Lock()
			for k, c := range local {
				counts[k] += c
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	h := p.Register()
	for {
		v, ok := h.Get()
		if !ok {
			break
		}
		counts[v]++
	}
	for v, c := range counts {
		if c != 1 {
			t.Fatalf("value %d seen %d times", v, c)
		}
	}
	if len(counts) != g*per {
		t.Fatalf("recovered %d values, want %d", len(counts), g*per)
	}
}

func TestTryRegisterExhaustion(t *testing.T) {
	p := New[int](WithMaxThreads(2), WithShards(2))
	a, err := p.TryRegister()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TryRegister(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.TryRegister(); err == nil {
		t.Fatal("TryRegister succeeded past MaxThreads live handles")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Register did not panic at exhaustion")
			}
		}()
		p.Register()
	}()
	a.Close()
	b, err := p.TryRegister()
	if err != nil {
		t.Fatalf("TryRegister after Close: %v", err)
	}
	b.Close()
}

// TestStealServesForeignShards pins the peek-then-steal path directly:
// a consumer whose home shard is empty must recover elements parked on
// foreign shards through the steal sweep (with adaptivity off, so the
// victims' stacks are in batched mode and the steal still lands).
func TestStealServesForeignShards(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		p := New[int](WithShards(4), WithAdaptive(adaptive))
		producers := make([]*Handle[int], 8)
		for i := range producers {
			producers[i] = p.Register()
			producers[i].Put(i)
		}
		c := p.Register() // home 0; shard 0 holds producers 0 and 4's elements
		seen := make(map[int]bool)
		for i := 0; i < len(producers); i++ {
			v, ok := c.Get()
			if !ok {
				t.Fatalf("adaptive=%v: Get #%d failed with %d elements remaining", adaptive, i, p.Size())
			}
			if seen[v] {
				t.Fatalf("adaptive=%v: value %d returned twice", adaptive, v)
			}
			seen[v] = true
		}
		if _, ok := c.Get(); ok {
			t.Fatalf("adaptive=%v: Get on drained pool succeeded", adaptive)
		}
	}
}

// TestStealChurnWaves is the steal-path churn stress (run under -race
// in CI): 4 waves of MaxThreads handles, half of them thieves that
// never Put - their home shards stay empty, so every element they
// recover crossed shards through TryPop (or the contended-steal
// fallback). Adaptive mode, batch recycling and adaptive spin are all
// on, so steals race solo CASes, full-protocol combiners and batch
// reuse on the victim shards. Conservation is value-exact: every
// value put comes back exactly once (a compensating double-pop plus
// lost element would keep the aggregate counts equal; per-value
// tallies catch it).
func TestStealChurnWaves(t *testing.T) {
	const maxThreads, waves, per = 8, 4, 200
	p := New[int64](
		WithMaxThreads(maxThreads),
		WithShards(3),
		WithAdaptive(true),
		WithBatchRecycling(true),
		WithAdaptiveSpin(true),
	)
	var put int64
	counts := make(map[int64]int)
	var mu sync.Mutex
	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		for w := 0; w < maxThreads; w++ {
			wg.Add(1)
			go func(wave, w int) {
				defer wg.Done()
				h := p.Register()
				defer h.Close()
				base := int64(wave*maxThreads+w) << 32
				myPut := int64(0)
				myGot := make(map[int64]int)
				if w%2 == 0 { // producer: feeds its home shard
					for i := int64(1); i <= per; i++ {
						h.Put(base + i)
						myPut++
					}
				} else { // thief: drains cross-shard only
					for i := 0; i < per; i++ {
						if v, ok := h.Get(); ok {
							myGot[v]++
						}
					}
				}
				mu.Lock()
				put += myPut
				for v, c := range myGot {
					counts[v] += c
				}
				mu.Unlock()
			}(wave, w)
		}
		wg.Wait()
	}
	h := p.Register()
	defer h.Close()
	for {
		v, ok := h.Get()
		if !ok {
			break
		}
		counts[v]++
	}
	for v, c := range counts {
		if c != 1 {
			t.Fatalf("steal churn: value %d recovered %d times", v, c)
		}
	}
	if int64(len(counts)) != put {
		t.Fatalf("steal churn: recovered %d distinct values, put %d", len(counts), put)
	}
	if p.Size() != 0 {
		t.Fatalf("steal churn: Size=%d after full drain", p.Size())
	}
}

func TestSizeQuiescent(t *testing.T) {
	p := New[int](WithShards(2))
	h := p.Register()
	for i := 0; i < 10; i++ {
		h.Put(i)
	}
	if p.Size() != 10 {
		t.Fatalf("Size = %d, want 10", p.Size())
	}
}

// TestPutOverflowsToQuietShard pins the Put-overflow path
// deterministically: a handle whose home solo CAS has (by forced
// counter, as the threshold's worth of lost rounds would) saturated
// must spill its next Put onto a foreign shard through TryPush - home
// untouched - decay its loss count by one, and record the steal hit.
// The decayed counter means the following Put probes home again and,
// finding it quiet, resets.
func TestPutOverflowsToQuietShard(t *testing.T) {
	p := New[int](WithShards(4), WithMetrics())
	h := p.Register()
	defer h.Close()

	h.putMiss = p.overflow // the home CAS just lost its threshold'th round
	h.Put(42)
	if got := p.shards[h.home].Len(); got != 0 {
		t.Fatalf("overflowing Put left %d elements on the saturated home shard", got)
	}
	if got := p.Size(); got != 1 {
		t.Fatalf("Size = %d after overflow Put, want 1", got)
	}
	if got := h.putMiss; got != p.overflow-1 {
		t.Fatalf("putMiss after steal hit = %d, want decayed %d", got, p.overflow-1)
	}
	snap := p.Snapshot()
	if snap.PutStealHits != 1 || snap.PutStealMisses != 0 {
		t.Fatalf("put-steal counters = %d/%d, want 1/0", snap.PutStealHits, snap.PutStealMisses)
	}

	// Home recovered: the next Put probes home, lands there, resets.
	h.Put(43)
	if got := p.shards[h.home].Len(); got != 1 {
		t.Fatalf("post-recovery Put left %d elements on home, want 1", got)
	}
	if h.putMiss != 0 {
		t.Fatalf("putMiss after home success = %d, want 0", h.putMiss)
	}

	// Everything drains through Get regardless of where it spilled.
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		v, ok := h.Get()
		if !ok {
			t.Fatalf("Get #%d failed with %d elements left", i, p.Size())
		}
		seen[v] = true
	}
	if !seen[42] || !seen[43] {
		t.Fatalf("drain recovered %v, want {42, 43}", seen)
	}
}

// TestPutOverflowDisabled: WithPutOverflow(0) pins every Put to its
// home shard no matter how many losses accumulated.
func TestPutOverflowDisabled(t *testing.T) {
	p := New[int](WithShards(4), WithPutOverflow(0), WithMetrics())
	h := p.Register()
	defer h.Close()
	h.putMiss = 1 << 20 // even absurd loss counts must not divert
	h.Put(1)
	h.Put(2)
	if got := p.shards[h.home].Len(); got != 2 {
		t.Fatalf("home shard holds %d elements with overflow disabled, want 2", got)
	}
	if snap := p.Snapshot(); snap.PutStealHits != 0 || snap.PutStealMisses != 0 {
		t.Fatalf("put-steal counters = %d/%d with overflow disabled, want 0/0",
			snap.PutStealHits, snap.PutStealMisses)
	}
}

// TestPutOverflowSingleShard: with one shard there is nowhere to
// spill; Put must serve locally and never sweep.
func TestPutOverflowSingleShard(t *testing.T) {
	p := New[int](WithShards(1), WithMetrics())
	h := p.Register()
	defer h.Close()
	h.putMiss = p.overflow
	h.Put(5)
	if v, ok := h.Get(); !ok || v != 5 {
		t.Fatalf("Get = (%d, %v), want (5, true)", v, ok)
	}
	if snap := p.Snapshot(); snap.PutStealHits != 0 || snap.PutStealMisses != 0 {
		t.Fatalf("single-shard pool recorded put steals: %d/%d", snap.PutStealHits, snap.PutStealMisses)
	}
}

// TestPutOverflowChurnWaves is the overflow-path churn stress (run
// under -race in CI): waves of handles whose producers all share one
// home shard Put through the overflow machinery (threshold 1, so any
// solo loss diverts) while thieves drain cross-shard, racing solo
// CASes, TryPush spills, TryPop steals, full-protocol combiners and
// batch reuse. Conservation is value-exact: every value put comes back
// exactly once.
func TestPutOverflowChurnWaves(t *testing.T) {
	const maxThreads, waves, per = 8, 4, 200
	p := New[int64](
		WithMaxThreads(maxThreads),
		WithShards(3),
		WithPutOverflow(1),
		WithAdaptive(true),
		WithBatchRecycling(true),
		WithRecycling(),
		WithMetrics(),
	)
	var put int64
	counts := make(map[int64]int)
	var mu sync.Mutex
	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		for w := 0; w < maxThreads; w++ {
			wg.Add(1)
			go func(wave, w int) {
				defer wg.Done()
				h := p.Register()
				defer h.Close()
				base := int64(wave*maxThreads+w) << 32
				myPut := int64(0)
				myGot := make(map[int64]int)
				if w%2 == 0 { // producer: hammers its home shard, overflowing on contention
					for i := int64(1); i <= per; i++ {
						h.Put(base + i)
						myPut++
					}
				} else { // thief: drains cross-shard
					for i := 0; i < per; i++ {
						if v, ok := h.Get(); ok {
							myGot[v]++
						}
					}
				}
				mu.Lock()
				put += myPut
				for v, c := range myGot {
					counts[v] += c
				}
				mu.Unlock()
			}(wave, w)
		}
		wg.Wait()
	}
	h := p.Register()
	defer h.Close()
	for {
		v, ok := h.Get()
		if !ok {
			break
		}
		counts[v]++
	}
	for v, c := range counts {
		if c != 1 {
			t.Fatalf("overflow churn: value %d recovered %d times", v, c)
		}
	}
	if int64(len(counts)) != put {
		t.Fatalf("overflow churn: recovered %d distinct values, put %d", len(counts), put)
	}
	if p.Size() != 0 {
		t.Fatalf("overflow churn: Size=%d after full drain", p.Size())
	}
}

// TestGetStealMetrics mirrors the Put-overflow counter tests on the
// Get side: a consumer whose home shard is empty must record its
// cross-shard steals, so the degree tables show both balancing
// directions (DESIGN.md §10).
func TestGetStealMetrics(t *testing.T) {
	p := New[int](WithShards(2), WithMetrics())
	producer := p.Register() // home 0
	thief := p.Register()    // home 1: its shard stays empty
	defer producer.Close()
	defer thief.Close()

	const n = 5
	for i := 0; i < n; i++ {
		producer.Put(i)
	}
	for i := 0; i < n; i++ {
		if _, ok := thief.Get(); !ok {
			t.Fatalf("Get #%d failed with %d elements pooled", i, p.Size())
		}
	}
	s := p.Snapshot()
	if s.GetStealHits != n {
		t.Fatalf("GetStealHits = %d, want %d (every Get crossed shards)", s.GetStealHits, n)
	}
	if s.GetStealMisses != 0 {
		t.Fatalf("GetStealMisses = %d on an uncontended pool", s.GetStealMisses)
	}
	if pct := s.GetStealPct(); pct != 100 {
		t.Fatalf("GetStealPct = %v, want 100", pct)
	}
	// A sweep that observes every shard uncontendedly empty is an
	// answer, not a balancing failure: no counter moves.
	if _, ok := thief.Get(); ok {
		t.Fatal("Get on drained pool succeeded")
	}
	if s := p.Snapshot(); s.GetStealHits != n || s.GetStealMisses != 0 {
		t.Fatalf("empty sweep moved steal counters: %d/%d", s.GetStealHits, s.GetStealMisses)
	}
}
