package queue_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"secstack/queue"
)

// benchDegrees is the worker ladder both arms of the head-to-head run
// at. On a 1-CPU host the rungs above 1 measure scheduling pressure,
// not parallelism; see EXPERIMENTS.md.
func benchDegrees() []int {
	degs := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		degs = append(degs, p)
	}
	return degs
}

// benchWorkers runs op b.N/workers times on each of `workers`
// goroutines (fixed-worker ladder, not b.RunParallel, so the degree is
// exact).
func benchWorkers(b *testing.B, workers int, op func(worker int, i int64)) {
	b.Helper()
	per := b.N / workers
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < int64(per); i++ {
				op(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkQueueVsChannel is the head-to-head the channel-shaped API
// exists for: each worker performs an enqueue-then-dequeue round trip
// (self-balancing - the queue hovers near its prefill level, so
// neither full nor empty dominates) against the SEC queue and against
// a buffered chan of the same capacity. The queue arms retry Try*
// misses; the chan arm's buffered send/recv never block at this
// occupancy.
func BenchmarkQueueVsChannel(b *testing.B) {
	const capacity = 1024
	for _, deg := range benchDegrees() {
		b.Run(fmt.Sprintf("queue/deg%d", deg), func(b *testing.B) {
			q := queue.New[int64](
				queue.WithCapacity(capacity),
				queue.WithAdaptive(true),
				queue.WithBatchRecycling(true),
			)
			handles := make([]*queue.Handle[int64], deg)
			for w := range handles {
				handles[w] = q.Register()
			}
			defer func() {
				for _, h := range handles {
					h.Close()
				}
			}()
			b.ReportAllocs()
			benchWorkers(b, deg, func(w int, i int64) {
				h := handles[w]
				for !h.TryEnqueue(i) {
				}
				for {
					if _, ok := h.TryDequeue(); ok {
						break
					}
				}
			})
		})
		b.Run(fmt.Sprintf("queue-implicit/deg%d", deg), func(b *testing.B) {
			q := queue.New[int64](
				queue.WithCapacity(capacity),
				queue.WithAdaptive(true),
				queue.WithBatchRecycling(true),
			)
			b.ReportAllocs()
			benchWorkers(b, deg, func(w int, i int64) {
				for !q.TryEnqueue(i) {
				}
				for {
					if _, ok := q.TryDequeue(); ok {
						break
					}
				}
			})
		})
		b.Run(fmt.Sprintf("chan/deg%d", deg), func(b *testing.B) {
			ch := make(chan int64, capacity)
			b.ReportAllocs()
			benchWorkers(b, deg, func(w int, i int64) {
				ch <- i
				<-ch
			})
		})
	}
}

// BenchmarkQueueTryMiss prices the failure shapes the alloc guards pin
// at zero: a TryDequeue against a permanently empty queue and a
// TryEnqueue against a permanently full one.
func BenchmarkQueueTryMiss(b *testing.B) {
	b.Run("dequeue-empty", func(b *testing.B) {
		q := queue.New[int64](queue.WithAdaptive(true), queue.WithBatchRecycling(true))
		h := q.Register()
		defer h.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.TryDequeue()
		}
	})
	b.Run("enqueue-full", func(b *testing.B) {
		q := queue.New[int64](queue.WithCapacity(8),
			queue.WithAdaptive(true), queue.WithBatchRecycling(true))
		h := q.Register()
		defer h.Close()
		for i := int64(0); i < 8; i++ {
			h.Enqueue(i)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.TryEnqueue(9)
		}
	})
}
