package queue_test

import (
	"fmt"

	"secstack/queue"
)

// Example shows the channel-shaped contract: FIFO order, a full
// queue rejecting enqueues, and an empty queue answering (zero, false)
// - all through the handle-free API.
func Example() {
	q := queue.New[string](queue.WithCapacity(2))

	fmt.Println(q.TryEnqueue("first"))
	fmt.Println(q.TryEnqueue("second"))
	fmt.Println(q.TryEnqueue("third")) // full: rejected, not blocked

	v, ok := q.TryDequeue()
	fmt.Println(v, ok)
	v, ok = q.TryDequeue()
	fmt.Println(v, ok)
	v, ok = q.TryDequeue() // empty
	fmt.Println(v == "", ok)

	// Output:
	// true
	// true
	// false
	// first true
	// second true
	// true false
}

// ExampleQueue_Register shows the explicit-handle fast path for worker
// loops: one session per goroutine, closed when the goroutine is done.
func ExampleQueue_Register() {
	q := queue.New[int](queue.WithCapacity(8))
	h := q.Register()
	defer h.Close()

	for i := 1; i <= 3; i++ {
		h.Enqueue(i * 10)
	}
	for {
		v, ok := h.Dequeue()
		if !ok {
			break
		}
		fmt.Println(v)
	}

	// Output:
	// 10
	// 20
	// 30
}
