package queue_test

import (
	"sync"
	"testing"

	"secstack/internal/lincheck"
	"secstack/internal/xrand"
	"secstack/queue"
)

// lcCap is the capacity the linearizability histories run at: small
// enough that full-queue rejections appear alongside empty-queue ones,
// so the checker exercises every result shape the API can produce.
const lcCap = 3

// runQHistory drives `threads` goroutines, each performing `opsPer`
// random operations on q through explicit handles, and returns the
// recorded history.
func runQHistory(q *queue.Queue[int64], threads, opsPer int, seed uint64) []lincheck.QOp {
	rec := lincheck.NewQRecorder(threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := q.Register()
			defer h.Close()
			rng := xrand.New(seed + uint64(t)*7919)
			base := int64(t+1) << 32
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					v := base + int64(i)
					inv := rec.Begin()
					ok := h.Enqueue(v)
					rec.RecordEnqueue(t, v, ok, inv)
				case 2:
					inv := rec.Begin()
					v, ok := h.Dequeue()
					rec.RecordDequeue(t, v, ok, inv)
				default:
					// The Try* forms must linearize with the full protocol:
					// a solo-CAS apply and a batch-protocol apply of the
					// same queue interleave in these histories.
					v := base + int64(i) + (1 << 24)
					inv := rec.Begin()
					ok := h.TryEnqueue(v)
					rec.RecordEnqueue(t, v, ok, inv)
				}
			}
		}(t)
	}
	wg.Wait()
	return rec.History()
}

// TestQueueLinearizabilityVariants checks many small concurrent
// histories against the exhaustive FIFO checker across the engine
// knobs the queue composes with: the solo fast path, batch recycling,
// the adaptive freezer backoff, and shard-count extremes.
func TestQueueLinearizabilityVariants(t *testing.T) {
	variants := map[string][]queue.Option{
		"Base":    nil,
		"Agg1":    {queue.WithAggregators(1)},
		"Agg5":    {queue.WithAggregators(5)},
		"NoSpin":  {queue.WithFreezerSpin(0)},
		"BigSpin": {queue.WithFreezerSpin(2048)},
		// Contention adaptivity (DESIGN.md §8): solo-CAS applies race
		// full batch-protocol ones on the same ring.
		"Adaptive":     {queue.WithAdaptive(true)},
		"BatchRecycle": {queue.WithBatchRecycling(true)},
		"AdaptiveRecycle": {queue.WithAdaptive(true), queue.WithBatchRecycling(true),
			queue.WithMetrics()},
		// Adaptive freezer backoff (DESIGN.md §9): freeze timing retunes
		// mid-history.
		"AdaptiveSpin":    {queue.WithAdaptiveSpin(true)},
		"AdaptiveSpinBig": {queue.WithAdaptiveSpin(true), queue.WithFreezerSpin(2048)},
		"Everything": {queue.WithAdaptive(true), queue.WithBatchRecycling(true),
			queue.WithAdaptiveSpin(true), queue.WithAggregators(3)},
	}
	for name, opt := range variants {
		name, opt := name, opt
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for r := 0; r < 20; r++ {
				q := queue.New[int64](append(opt, queue.WithCapacity(lcCap))...)
				h := runQHistory(q, 4, 4, uint64(r)*31337+5)
				if !lincheck.CheckQueue(h, lcCap) {
					for _, op := range h {
						t.Logf("%s", op)
					}
					t.Fatalf("round %d: history not linearizable", r)
				}
			}
		})
	}
}

// TestQueueLinearizabilityRecycledHandleSlots checks linearizability
// while handle slots churn: MaxThreads equals the goroutine count and
// every goroutine closes and re-registers its handle between
// operations, so each operation may run on a thread id (and home
// shard) that another goroutine's closed handle just vacated.
func TestQueueLinearizabilityRecycledHandleSlots(t *testing.T) {
	const (
		threads = 4
		opsPer  = 4
		rounds  = 25
	)
	for r := 0; r < rounds; r++ {
		q := queue.New[int64](queue.WithCapacity(lcCap), queue.WithMaxThreads(threads),
			queue.WithAdaptive(true), queue.WithBatchRecycling(true))
		rec := lincheck.NewQRecorder(threads)
		var wg sync.WaitGroup
		for tt := 0; tt < threads; tt++ {
			wg.Add(1)
			go func(tt int) {
				defer wg.Done()
				h := q.Register()
				rng := xrand.New(uint64(r)*65537 + uint64(tt)*7919)
				base := int64(tt+1) << 32
				for i := 0; i < opsPer; i++ {
					switch rng.Intn(4) {
					case 0, 1:
						v := base + int64(i)
						inv := rec.Begin()
						ok := h.Enqueue(v)
						rec.RecordEnqueue(tt, v, ok, inv)
					case 2:
						inv := rec.Begin()
						v, ok := h.Dequeue()
						rec.RecordDequeue(tt, v, ok, inv)
					default:
						inv := rec.Begin()
						v, ok := h.TryDequeue()
						rec.RecordDequeue(tt, v, ok, inv)
					}
					// Churn the slot: the next operation runs on whatever
					// id the free list hands back.
					h.Close()
					h = q.Register()
				}
				h.Close()
			}(tt)
		}
		wg.Wait()
		if h := rec.History(); !lincheck.CheckQueue(h, lcCap) {
			for _, op := range h {
				t.Logf("%s", op)
			}
			t.Fatalf("round %d: recycled-slot history not linearizable", r)
		}
	}
}

// runQHistoryImplicit drives `threads` goroutines through the
// handle-free API only - no Register anywhere - so every operation
// borrows a cached per-P session from the implicit layer.
func runQHistoryImplicit(q *queue.Queue[int64], threads, opsPer int, seed uint64) []lincheck.QOp {
	rec := lincheck.NewQRecorder(threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := xrand.New(seed + uint64(t)*7919)
			base := int64(t+1) << 32
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					v := base + int64(i)
					inv := rec.Begin()
					ok := q.Enqueue(v)
					rec.RecordEnqueue(t, v, ok, inv)
				case 2:
					inv := rec.Begin()
					v, ok := q.Dequeue()
					rec.RecordDequeue(t, v, ok, inv)
				default:
					inv := rec.Begin()
					v, ok := q.TryDequeue()
					rec.RecordDequeue(t, v, ok, inv)
				}
			}
		}(t)
	}
	wg.Wait()
	return rec.History()
}

// TestQueueLinearizabilityImplicitOnly checks histories driven
// exclusively through the implicit API, across the knobs the per-P
// session cache interacts with, and with a tight MaxThreads forcing
// slot scavenging into the histories.
func TestQueueLinearizabilityImplicitOnly(t *testing.T) {
	variants := map[string][]queue.Option{
		"Default": nil,
		"Adaptive": {queue.WithAdaptive(true), queue.WithBatchRecycling(true),
			queue.WithAnnounceEvery(1)},
		"NoAffinity": {queue.WithImplicitSessions(false)},
		"TightCap":   {queue.WithMaxThreads(4)},
	}
	for name, opt := range variants {
		name, opt := name, opt
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for r := 0; r < 20; r++ {
				q := queue.New[int64](append(opt, queue.WithCapacity(lcCap))...)
				h := runQHistoryImplicit(q, 4, 4, uint64(r)*92821+7)
				if !lincheck.CheckQueue(h, lcCap) {
					for _, op := range h {
						t.Logf("%s", op)
					}
					t.Fatalf("round %d: implicit-only history not linearizable", r)
				}
			}
		})
	}
}
