// Package queue applies SEC's sharded batching to a bounded MPMC FIFO
// queue with a channel-shaped API - the repository's first *ordered*
// structure, and the head-to-head against Go's native buffered
// channels (see BenchmarkQueueVsChannel and `secbench -fig queue`).
//
// Sessions partition across K aggregators exactly as on the SEC stack:
// an enqueue or dequeue announces itself with fetch&increment on its
// home aggregator's active batch, the first announcer freezes the
// batch after the batch-growing backoff, and a single combiner per
// frozen batch applies the whole batch to one shared bounded ring
// under a central lock - splicing the batch's enqueues in announcement
// order and serving its dequeues from the front in announcement order.
// Combining is what pays for the lock: one acquisition moves a whole
// batch, so the lock's cost amortizes with contention instead of
// compounding.
//
// Unlike the stack and deque, the queue never eliminates: a concurrent
// push/pop pair may cancel on a LIFO structure because the pair can
// linearize back-to-back at the top, but a FIFO dequeue must observe
// the *oldest* element, so an enqueue/dequeue pair can only cancel
// against an empty queue. The engine runs with agg.NoElim and every
// announced operation survives to its combiner.
//
// Capacity is exact: WithCapacity(n) admits at most n elements, an
// enqueue into a full queue returns false, and a dequeue of an empty
// queue returns (zero, false) - the non-blocking halves of a buffered
// channel's select/default contract. The engine's lifecycle and its
// optional adaptivity (WithAdaptive solo fast path, WithBatchRecycling,
// WithAdaptiveSpin) are documented in internal/agg and DESIGN.md
// §8-§10 and §15.
package queue

import (
	"errors"
	"fmt"
	"sync"

	"secstack/internal/agg"
	"secstack/internal/config"
	"secstack/internal/isession"
	"secstack/internal/metrics"
)

// ErrExhausted is returned by TryRegister when MaxThreads handles are
// live at the same time - the backpressure signal for callers that
// prefer refusing a session over crashing.
var ErrExhausted = errors.New("queue: more than MaxThreads handles live")

// deqResult is one dequeue's response, published by the combiner.
type deqResult[T any] struct {
	v  T
	ok bool
}

// results is the per-batch payload: the combiners' response tables.
// enq[i] reports whether the enqueue with sequence number i was
// admitted (false: the ring was full when its turn came); deq[i] is
// the i-th dequeue's element, or ok=false when the ring ran empty.
type results[T any] struct {
	enq []bool
	deq []deqResult[T]
}

// qBatch and qEngine name this package's engine instantiation: the
// announced record is the enqueued value itself, and the per-batch
// payload carries both sides' response tables.
type (
	qBatch[T any]  = agg.Batch[T, results[T]]
	qEngine[T any] = agg.Engine[T, results[T]]
)

// Queue is a bounded linearizable MPMC FIFO queue. Register hands out
// per-goroutine handles (the fast path for worker loops); the direct
// Enqueue/Dequeue/TryEnqueue/TryDequeue methods transparently reuse
// the calling P's cached handle, so handle-free callers need no
// session management at all.
type Queue[T any] struct {
	mu    sync.Mutex
	items qring[T]

	eng   *qEngine[T]
	cache *isession.Sessions[*Handle[T]]
}

// Option configures New; it is the shared option type of the whole
// repository, so the stack package's WithMaxThreads and WithFreezerSpin
// work here unchanged.
type Option = config.Option

// WithCapacity bounds the queue's element count (default 1024, minimum
// 1). The bound is exact: TryEnqueue and Enqueue return false rather
// than admit element capacity+1, and a dequeue that makes room is
// immediately visible to the next enqueue in the linearization order.
func WithCapacity(n int) Option { return config.WithCapacity(n) }

// WithAggregators sets K, the number of SEC shards sessions partition
// across (default 2). All shards' combiners apply to the one shared
// FIFO ring; more shards means more concurrent announcement points,
// not more queues.
func WithAggregators(k int) Option { return config.WithAggregators(k) }

// WithMaxThreads bounds concurrently live handles (default 256). Close
// recycles handle slots, so this is a concurrency bound, not a lifetime
// bound.
func WithMaxThreads(n int) Option { return config.WithMaxThreads(n) }

// WithFreezerSpin sets the freezer's batch-growing pre-freeze backoff
// in spin iterations (default 128; 0 disables). Larger values grow
// batches - and with them the ops moved per lock acquisition - at the
// price of per-operation latency. Under WithAdaptiveSpin this value is
// the ceiling the per-shard controller grows toward, not the delay
// every freeze pays.
func WithFreezerSpin(s int) Option { return config.WithFreezerSpin(s) }

// WithAdaptiveSpin toggles the adaptive freezer backoff: each shard
// tunes its own pre-freeze spin on its batch-degree EWMA, growing
// toward WithFreezerSpin while its batches freeze well-filled and
// decaying toward zero while they freeze near-empty.
func WithAdaptiveSpin(on bool) Option { return config.WithAdaptiveSpin(on) }

// WithMetrics enables the per-shard batch occupancy and combining
// degree counters, retrievable via Metrics.
func WithMetrics() Option { return config.WithMetrics() }

// WithAdaptive toggles the solo fast path and dynamic shard scaling:
// when a shard's recent batch degree is ~1, an operation first tries
// the central lock with one TryLock instead of paying the batch
// protocol, falling back to the full protocol when the lock is
// contended; and the effective shard count scales between 1 and
// WithAggregators with the observed degree.
func WithAdaptive(on bool) Option { return config.WithAdaptive(on) }

// WithBatchRecycling toggles batch recycling: frozen batches (slot
// arrays and response tables) retire to per-shard free lists for
// reuse, so the steady-state freeze path allocates nothing.
func WithBatchRecycling(on bool) Option { return config.WithBatchRecycling(on) }

// WithImplicitSessions toggles the per-P affinity tier behind the
// handle-free Enqueue/Dequeue/TryEnqueue/TryDequeue methods (default
// on); see the stack package's option of the same name.
func WithImplicitSessions(on bool) Option { return config.WithImplicitSessions(on) }

// WithAnnounceEvery sets the cached implicit sessions' amortized
// hazard-announcement cadence (default 8; 1 restores the eager per-op
// clear); see the stack package's option of the same name.
func WithAnnounceEvery(k int) Option { return config.WithAnnounceEvery(k) }

// New returns an empty queue with capacity WithCapacity (default 1024).
func New[T any](opts ...Option) *Queue[T] {
	c := config.Resolve(opts)
	q := &Queue[T]{items: newQRing[T](c.Capacity)}
	var m *metrics.SEC
	if c.CollectMetrics {
		m = metrics.NewSEC(c.Aggregators)
	}
	q.eng = agg.New(agg.Spec[T, results[T]]{
		Aggregators:  c.Aggregators,
		MaxThreads:   c.MaxThreads,
		FreezerSpin:  c.FreezerSpin,
		AdaptiveSpin: c.AdaptiveSpin,
		Partitioned:  true,
		Recycle:      c.BatchRecycle,
		Adaptive:     c.Adaptive,
		// FIFO semantics forbid in-batch elimination: a dequeue must
		// observe the oldest element, not its batch-mate's enqueue, so
		// a pair may only cancel against an *empty* queue - a state the
		// combiner cannot assume. Every announcement survives.
		Eliminate: agg.NoElim,
		MakeData: func(n int) results[T] {
			return results[T]{enq: make([]bool, n), deq: make([]deqResult[T], n)}
		},
		ResetData:   resetResults[T],
		ApplyPush:   q.applyEnqueue,
		ApplyPop:    q.applyDequeue,
		TrySoloPush: q.trySoloEnqueue,
		TrySoloPop:  q.trySoloDequeue,
		Metrics:     m,
	})
	// Cached implicit handles publish their hazard slot once per
	// AnnounceEvery ops (amortized announcement); explicit handles keep
	// the engine's eager per-op clear.
	q.cache = isession.New(c.ImplicitAffinity, func() (*Handle[T], error) {
		h, err := q.TryRegister()
		if err != nil {
			return nil, err
		}
		q.eng.SetDoneCadence(h.id, c.AnnounceEvery)
		return h, nil
	}, func(h *Handle[T]) { h.Close() })
	return q
}

// resetResults zeroes a recycled batch's response tables so a reused
// batch cannot retain references to a previous incarnation's dequeued
// values or leak stale admission bits.
func resetResults[T any](p *results[T]) {
	clear(p.enq)
	clear(p.deq)
}

// Metrics returns the per-shard degree collector, or nil if
// WithMetrics was not given.
func (q *Queue[T]) Metrics() *metrics.SEC { return q.eng.Metrics() }

// Handle is a per-goroutine session. Handles must not be shared between
// goroutines, and should be Closed when their goroutine is done so the
// handle slot recycles.
type Handle[T any] struct {
	q  *Queue[T]
	id int

	// scratch is the announcement slot for this handle's enqueues: the
	// engine stores &scratch into the batch, and the combiner (or solo
	// applier) copies it out before publishing the batch's applied
	// flag, which Enqueue waits on before returning - so reusing the
	// field on the next call never races with a reader. Announcing a
	// handle field instead of a stack local keeps the value from
	// escaping to the heap (0 allocs/op).
	scratch T
}

// Register returns a new handle. Slots released by Close are recycled,
// so registration panics only when MaxThreads handles are live at the
// same time.
func (q *Queue[T]) Register() *Handle[T] {
	h, err := q.TryRegister()
	if err != nil {
		panic(fmt.Sprintf("queue: more than MaxThreads=%d handles live", q.eng.MaxThreads()))
	}
	return h
}

// TryRegister is Register with ErrExhausted in place of the exhaustion
// panic - the same contract the stack, deque, pool and funnel packages
// offer.
func (q *Queue[T]) TryRegister() (*Handle[T], error) {
	id, err := q.eng.Register()
	if err != nil {
		return nil, ErrExhausted
	}
	return &Handle[T]{q: q, id: id}, nil
}

// Enqueue adds v at the tail through a cached per-P handle, reporting
// false if the queue was full.
func (q *Queue[T]) Enqueue(v T) bool {
	e := q.cache.Acquire()
	ok := e.H.Enqueue(v)
	q.cache.Release(e)
	return ok
}

// Dequeue removes and returns the head element through a cached per-P
// handle; ok is false if the queue was empty.
func (q *Queue[T]) Dequeue() (T, bool) {
	e := q.cache.Acquire()
	v, ok := e.H.Dequeue()
	q.cache.Release(e)
	return v, ok
}

// TryEnqueue is Enqueue through a cached per-P handle, preferring the
// one-CAS solo path; false means the queue was full.
func (q *Queue[T]) TryEnqueue(v T) bool {
	e := q.cache.Acquire()
	ok := e.H.TryEnqueue(v)
	q.cache.Release(e)
	return ok
}

// TryDequeue is Dequeue through a cached per-P handle, preferring the
// one-CAS solo path; ok=false means the queue was empty.
func (q *Queue[T]) TryDequeue() (T, bool) {
	e := q.cache.Acquire()
	v, ok := e.H.TryDequeue()
	q.cache.Release(e)
	return v, ok
}

// Close releases the handle's slot for reuse by a future Register.
// Close is idempotent; any other use of a closed handle is a bug.
func (h *Handle[T]) Close() {
	if h.id < 0 {
		return
	}
	h.q.eng.Release(h.id)
	h.id = -1
}

// Enqueue adds v at the tail, reporting false if the queue was full at
// the operation's linearization point. The call returns once its
// batch's combiner (or the solo fast path) has applied it.
func (h *Handle[T]) Enqueue(v T) bool {
	h.scratch = v
	eng := h.q.eng
	t := eng.Push(h.id, eng.AggOf(h.id), &h.scratch)
	ok := t.B.Data.enq[t.Seq]
	eng.Done(h.id) // finished with the batch's response table
	return ok
}

// Dequeue removes and returns the head element; ok is false if the
// queue was empty when the combiner served this operation.
func (h *Handle[T]) Dequeue() (v T, ok bool) {
	eng := h.q.eng
	t := eng.Pop(h.id, eng.AggOf(h.id))
	r := t.B.Data.deq[t.Off]
	eng.Done(h.id) // finished with the batch's response table
	return r.v, r.ok
}

// TryEnqueue adds v at the tail with one solo CAS when the central
// lock is free - bypassing the batch protocol entirely - and falls
// back to the full Enqueue when the lock is contended, so false always
// means "full", never "busy" (the non-blocking half of a channel
// send's select/default contract).
func (h *Handle[T]) TryEnqueue(v T) bool {
	h.scratch = v
	eng := h.q.eng
	if t, ok := eng.TryPush(h.id, eng.AggOf(h.id), &h.scratch); ok {
		return t.B.Data.enq[0] // solo apply: no announcement, no Done
	}
	return h.Enqueue(v)
}

// TryDequeue removes and returns the head element with one solo CAS
// when the central lock is free, falling back to the full Dequeue when
// the lock is contended, so ok=false always means "empty", never
// "busy" (the non-blocking half of a channel receive's select/default
// contract).
func (h *Handle[T]) TryDequeue() (T, bool) {
	eng := h.q.eng
	if t, ok := eng.TryPop(h.id, eng.AggOf(h.id)); ok {
		r := t.B.Data.deq[0] // solo apply: no announcement, no Done
		return r.v, r.ok
	}
	return h.Dequeue()
}

// trySoloEnqueue is the solo fast path's enqueue applier: apply the
// scratch batch's single value under the central lock if it is free
// right now, report contention otherwise.
func (q *Queue[T]) trySoloEnqueue(_ int, b *qBatch[T]) bool {
	if !q.mu.TryLock() {
		return false
	}
	b.Data.enq[0] = q.items.enqueue(*b.Slot(0))
	q.mu.Unlock()
	return true
}

// applyEnqueue is the enqueue-side combiner body: splice one shard's
// frozen batch into the shared ring in announcement order, recording
// each operation's admission (full queues reject) in the batch's
// response table. With elimination off, seq is always 0 and the loop
// covers the whole batch.
func (q *Queue[T]) applyEnqueue(_ int, b *qBatch[T], seq, pushAtF int64) {
	q.mu.Lock()
	for i := seq; i < pushAtF; i++ {
		b.Data.enq[i] = q.items.enqueue(*b.WaitSlot(i))
	}
	q.mu.Unlock()
}

// trySoloDequeue is the solo fast path's dequeue applier: serve one
// dequeue under the central lock if it is free right now, publishing
// the result through the scratch batch's table as applyDequeue would.
func (q *Queue[T]) trySoloDequeue(_ int, b *qBatch[T]) bool {
	if !q.mu.TryLock() {
		return false
	}
	b.Data.deq[0].v, b.Data.deq[0].ok = q.items.dequeue()
	q.mu.Unlock()
	return true
}

// applyDequeue is the dequeue-side combiner body: serve one shard's
// frozen batch from the ring's head in announcement order, publishing
// each element (or ok=false once the ring runs empty) through the
// batch's response table. With elimination off, e is always 0.
func (q *Queue[T]) applyDequeue(_ int, b *qBatch[T], e, popAtF int64) {
	k := popAtF - e
	q.mu.Lock()
	for i := int64(0); i < k; i++ {
		b.Data.deq[i].v, b.Data.deq[i].ok = q.items.dequeue()
	}
	q.mu.Unlock()
}

// Len counts elements; a racy diagnostic for quiescent states.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.n
}

// Cap returns the queue's fixed capacity.
func (q *Queue[T]) Cap() int { return q.items.capacity }

// qring is the sequential bounded ring the combiners apply batches to:
// fixed capacity, segmented backing storage. Segments allocate lazily
// on first touch (under the queue lock) and are retained for the
// queue's lifetime, so a warmed queue's enqueue/dequeue paths allocate
// nothing while unused capacity costs no memory up front.
type qring[T any] struct {
	segs     [][]T
	capacity int
	head     int // position of the front element, in [0, capacity)
	n        int
}

// Segment geometry: positions map to (pos>>segBits, pos&segMask).
const (
	segBits = 6
	segSize = 1 << segBits
	segMask = segSize - 1
)

func newQRing[T any](capacity int) qring[T] {
	capacity = max(capacity, 1)
	return qring[T]{
		segs:     make([][]T, (capacity+segSize-1)/segSize),
		capacity: capacity,
	}
}

// slot returns the cell for an absolute position, allocating its
// segment on first touch. pos < capacity <= len(segs)*segSize.
func (r *qring[T]) slot(pos int) *T {
	s := pos >> segBits
	if r.segs[s] == nil {
		r.segs[s] = make([]T, segSize)
	}
	return &r.segs[s][pos&segMask]
}

// enqueue appends v at the tail; false means full (exact capacity).
func (r *qring[T]) enqueue(v T) bool {
	if r.n == r.capacity {
		return false
	}
	tail := r.head + r.n
	if tail >= r.capacity {
		tail -= r.capacity
	}
	*r.slot(tail) = v
	r.n++
	return true
}

// dequeue removes the front element, zeroing its cell so the ring does
// not pin dequeued values against the GC.
func (r *qring[T]) dequeue() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	p := r.slot(r.head)
	v = *p
	var zero T
	*p = zero
	r.head++
	if r.head == r.capacity {
		r.head = 0
	}
	r.n--
	return v, true
}
