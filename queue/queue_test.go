package queue_test

import (
	"runtime"
	"sync"
	"testing"

	"secstack/internal/xrand"
	"secstack/queue"
)

// TestQueueFIFOSequential checks single-threaded FIFO order, exact
// capacity accounting, and the empty/full result shapes through both
// the full-protocol and Try* forms.
func TestQueueFIFOSequential(t *testing.T) {
	q := queue.New[int64](queue.WithCapacity(4))
	if q.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", q.Cap())
	}
	h := q.Register()
	defer h.Close()

	if v, ok := h.Dequeue(); ok {
		t.Fatalf("Dequeue on empty returned (%d, true)", v)
	}
	if v, ok := h.TryDequeue(); ok {
		t.Fatalf("TryDequeue on empty returned (%d, true)", v)
	}
	for i := int64(1); i <= 4; i++ {
		if !h.Enqueue(i) {
			t.Fatalf("Enqueue(%d) rejected below capacity", i)
		}
	}
	if h.Enqueue(5) {
		t.Fatal("Enqueue admitted element capacity+1")
	}
	if h.TryEnqueue(5) {
		t.Fatal("TryEnqueue admitted element capacity+1")
	}
	if got := q.Len(); got != 4 {
		t.Fatalf("Len() = %d, want 4", got)
	}
	for i := int64(1); i <= 4; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("Dequeue on drained queue succeeded")
	}

	// Wraparound: interleave so head/tail lap the ring repeatedly.
	for lap := int64(0); lap < 300; lap++ {
		if !h.TryEnqueue(lap) {
			t.Fatalf("lap %d: TryEnqueue rejected on non-full queue", lap)
		}
		v, ok := h.TryDequeue()
		if !ok || v != lap {
			t.Fatalf("lap %d: TryDequeue = (%d, %v)", lap, v, ok)
		}
	}
	if got := q.Len(); got != 0 {
		t.Fatalf("Len() = %d after balanced laps", got)
	}
}

// TestQueueHandleFree exercises the implicit (handle-free) surface.
func TestQueueHandleFree(t *testing.T) {
	q := queue.New[string](queue.WithCapacity(2))
	if !q.Enqueue("a") || !q.TryEnqueue("b") {
		t.Fatal("enqueues below capacity rejected")
	}
	if q.TryEnqueue("c") {
		t.Fatal("TryEnqueue admitted element capacity+1")
	}
	if v, ok := q.Dequeue(); !ok || v != "a" {
		t.Fatalf("Dequeue = (%q, %v), want (a, true)", v, ok)
	}
	if v, ok := q.TryDequeue(); !ok || v != "b" {
		t.Fatalf("TryDequeue = (%q, %v), want (b, true)", v, ok)
	}
	if v, ok := q.TryDequeue(); ok {
		t.Fatalf("TryDequeue on empty returned (%q, true)", v)
	}
}

// TestQueueTryRegisterExhaustion checks the MaxThreads backpressure
// contract: TryRegister refuses with ErrExhausted at the cap, and a
// Close recycles the slot.
func TestQueueTryRegisterExhaustion(t *testing.T) {
	q := queue.New[int64](queue.WithMaxThreads(2))
	h1 := q.Register()
	h2 := q.Register()
	if _, err := q.TryRegister(); err != queue.ErrExhausted {
		t.Fatalf("TryRegister at cap: err = %v, want ErrExhausted", err)
	}
	h1.Close()
	h1.Close() // idempotent
	h3, err := q.TryRegister()
	if err != nil {
		t.Fatalf("TryRegister after Close: %v", err)
	}
	h3.Close()
	h2.Close()
}

// TestQueueHandleChurnWaves registers and closes 4 x MaxThreads
// handles in waves - every wave's handles live concurrently up to the
// cap, do real work, and vacate their slots for the next wave - so id
// recycling crosses the engine's announcement, combining and hazard
// machinery many times over.
func TestQueueHandleChurnWaves(t *testing.T) {
	const maxThreads = 8
	q := queue.New[int64](
		queue.WithMaxThreads(maxThreads),
		queue.WithCapacity(64),
		queue.WithAdaptive(true),
		queue.WithBatchRecycling(true),
	)
	var enq, deq int64
	var mu sync.Mutex
	for wave := 0; wave < 4; wave++ {
		var wg sync.WaitGroup
		for w := 0; w < maxThreads; w++ {
			wg.Add(1)
			go func(wave, w int) {
				defer wg.Done()
				h := q.Register()
				defer h.Close()
				base := int64(wave*maxThreads+w+1) << 32
				myEnq, myDeq := int64(0), int64(0)
				for i := int64(0); i < 100; i++ {
					if h.Enqueue(base + i) {
						myEnq++
					}
					if i%2 == 1 {
						if _, ok := h.Dequeue(); ok {
							myDeq++
						}
					}
				}
				mu.Lock()
				enq += myEnq
				deq += myDeq
				mu.Unlock()
			}(wave, w)
		}
		wg.Wait()
	}
	// Drain and check conservation across all four waves.
	h := q.Register()
	defer h.Close()
	for {
		if _, ok := h.Dequeue(); !ok {
			break
		}
		deq++
	}
	if enq != deq {
		t.Fatalf("churn waves: enqueued %d != dequeued %d", enq, deq)
	}
	if q.Len() != 0 {
		t.Fatalf("Len() = %d after full drain", q.Len())
	}
}

// TestQueueConservation is the value-exact multiset check with the
// Try* fallbacks engaged: producers push a known multiset through
// TryEnqueue (retrying full rejections), consumers drain through
// TryDequeue, and the dequeued multiset must equal the enqueued one.
// FIFO order is checked structurally: within one consumer's log, the
// sequence numbers it observes from any single producer must be
// strictly increasing - a concurrent dequeue may interleave producers,
// but it can never see one producer's values out of order.
func TestQueueConservation(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 2000
	)
	q := queue.New[int64](
		queue.WithCapacity(128), // small: keeps full-queue rejections in play
		queue.WithAdaptive(true),
		queue.WithBatchRecycling(true),
		queue.WithMetrics(),
	)
	var wg sync.WaitGroup
	logs := make([][]int64, consumers)
	var produced sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		produced.Add(1)
		go func(p int) {
			defer wg.Done()
			defer produced.Done()
			h := q.Register()
			defer h.Close()
			rng := xrand.New(uint64(p)*7919 + 1)
			for i := int64(0); i < perProd; i++ {
				v := int64(p+1)<<32 | i
				for !h.TryEnqueue(v) {
					if rng.Intn(4) == 0 {
						runtime.Gosched() // full: wait for consumers
					}
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { produced.Wait(); close(done) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := q.Register()
			defer h.Close()
			for {
				if v, ok := h.TryDequeue(); ok {
					logs[c] = append(logs[c], v)
					continue
				}
				select {
				case <-done:
					// Producers finished; drain what remains and stop on
					// the first empty observation after that.
					if v, ok := h.TryDequeue(); ok {
						logs[c] = append(logs[c], v)
						continue
					}
					return
				default:
					runtime.Gosched()
				}
			}
		}(c)
	}
	wg.Wait()

	seen := make(map[int64]int, producers*perProd)
	for c, log := range logs {
		last := make(map[int64]int64, producers)
		for _, v := range log {
			seen[v]++
			p, i := v>>32, v&0xffffffff
			if prev, ok := last[p]; ok && i <= prev {
				t.Fatalf("consumer %d saw producer %d out of order: %d after %d", c, p, i, prev)
			}
			last[p] = i
		}
	}
	if len(seen) != producers*perProd {
		t.Fatalf("dequeued %d distinct values, want %d", len(seen), producers*perProd)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %x dequeued %d times", v, n)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len() = %d after conservation drain", q.Len())
	}
}

// TestQueueZeroesDequeuedSlots checks that the ring does not pin
// dequeued pointers: after a pointerful queue drains, its cells must
// have been zeroed (verified indirectly - the value round-trips and
// the drained queue behaves as empty).
func TestQueueZeroesDequeuedSlots(t *testing.T) {
	type big struct{ p *int64 }
	q := queue.New[big](queue.WithCapacity(8))
	x := int64(7)
	if !q.Enqueue(big{&x}) {
		t.Fatal("enqueue rejected")
	}
	v, ok := q.Dequeue()
	if !ok || v.p != &x {
		t.Fatal("pointer did not round-trip")
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained queue not empty")
	}
}
