package stack_test

import (
	"fmt"

	"secstack/stack"
)

// The basic lifecycle: construct once, register a handle per goroutine,
// operate through the handle.
func ExampleNewSEC() {
	s := stack.NewSEC[string](stack.SECOptions{})
	h := s.Register()
	h.Push("first")
	h.Push("second")
	if v, ok := h.Peek(); ok {
		fmt.Println("peek:", v)
	}
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		fmt.Println("pop:", v)
	}
	// Output:
	// peek: second
	// pop: second
	// pop: first
}

// Degree metrics report how much work elimination and combining did -
// the paper's Tables 1-3.
func ExampleSECStack_Metrics() {
	s := stack.NewSEC[int](stack.SECOptions{CollectMetrics: true})
	h := s.Register()
	for i := 0; i < 100; i++ {
		h.Push(i)
		h.Pop()
	}
	snap := s.Metrics().Snapshot()
	fmt.Println("every op accounted:", snap.Eliminated+snap.Combined == snap.Ops)
	// Output:
	// every op accounted: true
}

// All six algorithms of the paper's evaluation share one interface.
func ExampleNewByName() {
	for _, alg := range stack.Algorithms() {
		s, ok := stack.NewByName[int](alg, 2)
		if !ok {
			continue
		}
		h := s.Register()
		h.Push(1)
		v, _ := h.Pop()
		fmt.Printf("%s popped %d\n", alg, v)
	}
	// Output:
	// SEC popped 1
	// TRB popped 1
	// EB popped 1
	// FC popped 1
	// CC popped 1
	// TSI popped 1
}
