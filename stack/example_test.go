package stack_test

import (
	"fmt"

	"secstack/stack"
)

// The handle-free quickstart: the stack's own Push/Pop/Peek methods
// borrow a cached per-goroutine handle behind the scenes.
func ExampleNew() {
	s, err := stack.New[string](stack.SEC)
	if err != nil {
		panic(err)
	}
	s.Push("first")
	s.Push("second")
	if v, ok := s.Peek(); ok {
		fmt.Println("peek:", v)
	}
	for {
		v, ok := s.Pop()
		if !ok {
			break
		}
		fmt.Println("pop:", v)
	}
	// Output:
	// peek: second
	// pop: second
	// pop: first
}

// The explicit-handle lifecycle is the fast path for worker loops:
// register a handle per goroutine, operate through it, close it when
// done so the thread-id slot recycles.
func ExampleNewSEC() {
	s := stack.NewSEC[string]()
	h := s.Register()
	defer h.Close()
	h.Push("first")
	h.Push("second")
	if v, ok := h.Peek(); ok {
		fmt.Println("peek:", v)
	}
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		fmt.Println("pop:", v)
	}
	// Output:
	// peek: second
	// pop: second
	// pop: first
}

// Degree metrics report how much work elimination and combining did -
// the paper's Tables 1-3.
func ExampleSECStack_Metrics() {
	s := stack.NewSEC[int](stack.WithMetrics())
	h := s.Register()
	defer h.Close()
	for i := 0; i < 100; i++ {
		h.Push(i)
		h.Pop()
	}
	snap := s.Metrics().Snapshot()
	fmt.Println("every op accounted:", snap.Eliminated+snap.Combined == snap.Ops)
	// Output:
	// every op accounted: true
}

// All six algorithms of the paper's evaluation share one interface and
// one option vocabulary.
func ExampleNew_allAlgorithms() {
	for _, alg := range stack.Algorithms() {
		s, err := stack.New[int](alg, stack.WithAggregators(2), stack.WithMaxThreads(64))
		if err != nil {
			continue
		}
		h := s.Register()
		h.Push(1)
		v, _ := h.Pop()
		h.Close()
		fmt.Printf("%s popped %d\n", alg, v)
	}
	// Output:
	// SEC popped 1
	// TRB popped 1
	// EB popped 1
	// FC popped 1
	// CC popped 1
	// TSI popped 1
}
