package stack_test

import (
	"sync"
	"testing"

	"secstack/internal/lincheck"
	"secstack/internal/xrand"
	"secstack/stack"
)

// runHistory drives `threads` goroutines, each performing `opsPer`
// random operations on s, and returns the recorded history.
func runHistory(s stack.Stack[int64], threads, opsPer int, seed uint64) []lincheck.Op {
	rec := lincheck.NewRecorder(threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := s.Register()
			rng := xrand.New(seed + uint64(t)*7919)
			base := int64(t+1) << 32
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					v := base + int64(i)
					inv := rec.Begin()
					h.Push(v)
					rec.RecordPush(t, v, inv)
				case 2:
					inv := rec.Begin()
					v, ok := h.Pop()
					rec.RecordPop(t, v, ok, inv)
				default:
					inv := rec.Begin()
					v, ok := h.Peek()
					rec.RecordPeek(t, v, ok, inv)
				}
			}
		}(t)
	}
	wg.Wait()
	return rec.History()
}

// TestLinearizabilityAllAlgorithms checks many small concurrent
// histories of every algorithm with the exhaustive checker. History
// sizes stay small enough (<= 16 ops) for the search to be fast.
func TestLinearizabilityAllAlgorithms(t *testing.T) {
	const (
		threads = 4
		opsPer  = 4
		rounds  = 30
	)
	for _, alg := range stack.Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			for r := 0; r < rounds; r++ {
				s, _ := stack.New[int64](alg)
				h := runHistory(s, threads, opsPer, uint64(r)*104729+1)
				if !lincheck.CheckStack(h) {
					for _, op := range h {
						t.Logf("%s", op)
					}
					t.Fatalf("round %d: history not linearizable", r)
				}
			}
		})
	}
}

// TestLinearizabilityRecycledHandleSlots checks linearizability while
// handle slots churn: MaxThreads equals the goroutine count, and every
// goroutine closes and re-registers its handle between operations, so
// each operation may run on a thread id (and aggregator slot) that
// another goroutine's closed handle just vacated. Histories must stay
// linearizable across the recycling boundary.
func TestLinearizabilityRecycledHandleSlots(t *testing.T) {
	const (
		threads = 4
		opsPer  = 4
		rounds  = 25
	)
	for _, alg := range stack.Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			for r := 0; r < rounds; r++ {
				s, err := stack.New[int64](alg, stack.WithMaxThreads(threads))
				if err != nil {
					t.Fatal(err)
				}
				rec := lincheck.NewRecorder(threads)
				var wg sync.WaitGroup
				for tt := 0; tt < threads; tt++ {
					wg.Add(1)
					go func(tt int) {
						defer wg.Done()
						h := s.Register()
						rng := xrand.New(uint64(r)*65537 + uint64(tt)*7919)
						base := int64(tt+1) << 32
						for i := 0; i < opsPer; i++ {
							switch rng.Intn(4) {
							case 0, 1:
								v := base + int64(i)
								inv := rec.Begin()
								h.Push(v)
								rec.RecordPush(tt, v, inv)
							case 2:
								inv := rec.Begin()
								v, ok := h.Pop()
								rec.RecordPop(tt, v, ok, inv)
							default:
								inv := rec.Begin()
								v, ok := h.Peek()
								rec.RecordPeek(tt, v, ok, inv)
							}
							// Churn the slot: the next operation runs on
							// whatever id the free list hands back.
							h.Close()
							h = s.Register()
						}
						h.Close()
					}(tt)
				}
				wg.Wait()
				if h := rec.History(); !lincheck.CheckStack(h) {
					for _, op := range h {
						t.Logf("%s", op)
					}
					t.Fatalf("round %d: recycled-slot history not linearizable", r)
				}
			}
		})
	}
}

// TestLinearizabilitySECVariants stresses the SEC-specific knobs with
// the exhaustive checker.
func TestLinearizabilitySECVariants(t *testing.T) {
	variants := map[string][]stack.Option{
		"Agg1":        {stack.WithAggregators(1)},
		"Agg5":        {stack.WithAggregators(5)},
		"NoElim":      {stack.WithoutElimination()},
		"Recycle":     {stack.WithRecycling()},
		"NoSpin":      {stack.WithFreezerSpin(0)},
		"BigSpin":     {stack.WithFreezerSpin(2048)},
		"Everything":  {stack.WithAggregators(3), stack.WithRecycling(), stack.WithMetrics(), stack.WithFreezerSpin(512)},
		"NoElimRecyc": {stack.WithoutElimination(), stack.WithRecycling()},
		// Contention adaptivity (DESIGN.md §8): the solo fast path races
		// directly-CASing operations against full batch-protocol ones,
		// and batch recycling reuses frozen batches under the checker.
		"Adaptive":        {stack.WithAdaptive(true)},
		"AdaptiveRecycle": {stack.WithAdaptive(true), stack.WithBatchRecycling(true), stack.WithRecycling()},
		"BatchRecycle":    {stack.WithBatchRecycling(true)},
		"AdaptiveAgg5":    {stack.WithAdaptive(true), stack.WithAggregators(5), stack.WithBatchRecycling(true)},
		// Adaptive freezer backoff (DESIGN.md §9): the per-aggregator
		// spin controller retunes the freeze timing mid-history; alone,
		// stacked on the solo fast path + batch recycling (freeze timing
		// interacts with hazard publication), and with a large ceiling so
		// histories straddle grown and decayed spins.
		"AdaptiveSpin":     {stack.WithAdaptiveSpin(true)},
		"AdaptiveSpinBig":  {stack.WithAdaptiveSpin(true), stack.WithFreezerSpin(2048)},
		"AdaptiveSpinFull": {stack.WithAdaptiveSpin(true), stack.WithAdaptive(true), stack.WithBatchRecycling(true), stack.WithRecycling()},
	}
	for name, opt := range variants {
		name, opt := name, opt
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for r := 0; r < 20; r++ {
				s := stack.NewSEC[int64](opt...)
				h := runHistory(s, 4, 4, uint64(r)*31337+5)
				if !lincheck.CheckStack(h) {
					for _, op := range h {
						t.Logf("%s", op)
					}
					t.Fatalf("round %d: history not linearizable", r)
				}
			}
		})
	}
}

// runHistoryImplicit drives `threads` goroutines through the
// handle-free API only - no Register anywhere - so every operation
// borrows a cached per-P session from the implicit layer. Operations
// of one goroutine may run on sessions cached by another (slot
// scavenging, spill-pool handoff); the histories must linearize all
// the same.
func runHistoryImplicit(s stack.Stack[int64], threads, opsPer int, seed uint64) []lincheck.Op {
	rec := lincheck.NewRecorder(threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := xrand.New(seed + uint64(t)*7919)
			base := int64(t+1) << 32
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					v := base + int64(i)
					inv := rec.Begin()
					s.Push(v)
					rec.RecordPush(t, v, inv)
				case 2:
					inv := rec.Begin()
					v, ok := s.Pop()
					rec.RecordPop(t, v, ok, inv)
				default:
					inv := rec.Begin()
					v, ok := s.Peek()
					rec.RecordPeek(t, v, ok, inv)
				}
			}
		}(t)
	}
	wg.Wait()
	return rec.History()
}

// TestLinearizabilityImplicitOnly checks histories driven exclusively
// through the implicit API, across the SEC knobs the per-P session
// cache interacts with (solo fast path, batch + node recycling, the
// amortized announcement cadence) and with affinity off (spill-pool
// borrows only). A tight MaxThreads forces slot scavenging into the
// histories too.
func TestLinearizabilityImplicitOnly(t *testing.T) {
	variants := map[string][]stack.Option{
		"Default":  nil,
		"Adaptive": {stack.WithAdaptive(true), stack.WithBatchRecycling(true), stack.WithRecycling()},
		"EagerAnnounce": {stack.WithAdaptive(true), stack.WithBatchRecycling(true),
			stack.WithRecycling(), stack.WithAnnounceEvery(1)},
		"NoAffinity": {stack.WithImplicitSessions(false)},
		// MaxThreads == goroutine count: once every session is minted,
		// an op landing on a P with an empty slot must scavenge one
		// parked under another P instead of registering.
		"TightCap": {stack.WithMaxThreads(4)},
	}
	for name, opt := range variants {
		name, opt := name, opt
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for r := 0; r < 20; r++ {
				s := stack.NewSEC[int64](opt...)
				h := runHistoryImplicit(s, 4, 4, uint64(r)*92821+7)
				if !lincheck.CheckStack(h) {
					for _, op := range h {
						t.Logf("%s", op)
					}
					t.Fatalf("round %d: implicit-only history not linearizable", r)
				}
			}
		})
	}
}

// stealHandle is the steal-capable surface SEC handles
// (internal/core.Handle) expose beyond the public Handle interface:
// the single-CAS TryPush/TryPop primitives the pool's bidirectional
// load balancing is built from.
type stealHandle interface {
	stack.Handle[int64]
	TryPush(v int64) bool
	TryPop() (v int64, ok, applied bool)
}

// runHistoryPutSteal drives mixed histories in which every update
// first attempts its steal primitive - TryPush for pushes, TryPop for
// pops - and escalates to the full batch protocol only when the CAS
// reports contention, exactly as the pool's Put overflow and Get steal
// sweeps do. Applied steals and full-protocol operations must
// linearize together.
func runHistoryPutSteal(s *stack.SECStack[int64], threads, opsPer int, seed uint64) []lincheck.Op {
	rec := lincheck.NewRecorder(threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := s.Register().(stealHandle)
			defer h.Close()
			rng := xrand.New(seed + uint64(t)*7919)
			base := int64(t+1) << 32
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					v := base + int64(i)
					inv := rec.Begin()
					if !h.TryPush(v) {
						h.Push(v) // contended steal: full protocol
					}
					rec.RecordPush(t, v, inv)
				case 2:
					inv := rec.Begin()
					v, ok, applied := h.TryPop()
					if !applied {
						v, ok = h.Pop() // contended steal: full protocol
					}
					rec.RecordPop(t, v, ok, inv)
				default:
					inv := rec.Begin()
					v, ok := h.Peek()
					rec.RecordPeek(t, v, ok, inv)
				}
			}
		}(t)
	}
	wg.Wait()
	return rec.History()
}

// TestLinearizabilityPutSteal checks the steal primitives against the
// exhaustive checker across the SEC knobs they interact with: stock
// batching, adaptivity (steals race solo CASes and mode flips), batch
// recycling (scratch batches alongside recycled protocol batches),
// node recycling (steals draw from and retire into EBR pools), and
// many shards under adaptive spin.
func TestLinearizabilityPutSteal(t *testing.T) {
	variants := map[string][]stack.Option{
		"PutSteal":         nil,
		"PutStealAdaptive": {stack.WithAdaptive(true), stack.WithBatchRecycling(true)},
		"PutStealRecycle":  {stack.WithRecycling()},
		"PutStealAgg5":     {stack.WithAggregators(5), stack.WithAdaptive(true)},
		"PutStealFull": {stack.WithAdaptive(true), stack.WithBatchRecycling(true),
			stack.WithRecycling(), stack.WithAdaptiveSpin(true)},
	}
	for name, opt := range variants {
		name, opt := name, opt
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for r := 0; r < 20; r++ {
				s := stack.NewSEC[int64](opt...)
				h := runHistoryPutSteal(s, 4, 4, uint64(r)*48611+3)
				if !lincheck.CheckStack(h) {
					for _, op := range h {
						t.Logf("%s", op)
					}
					t.Fatalf("round %d: put-steal history not linearizable", r)
				}
			}
		})
	}
}
