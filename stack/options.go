package stack

import "secstack/internal/config"

// Option configures a stack constructor. Options are shared across the
// whole repository - the deque, pool and funnel packages alias the same
// underlying type - so one vocabulary configures every structure, and
// options an algorithm does not understand are simply ignored (the
// registry forwards the full set to all six algorithms).
type Option = config.Option

// WithAggregators sets K, the number of shards threads are partitioned
// into (SEC; also the funnel's aggregator count). The paper's
// evaluation defaults to 2.
func WithAggregators(k int) Option { return config.WithAggregators(k) }

// WithMaxThreads bounds the number of concurrently live handles
// (default 256). With Close-based slot recycling this is a concurrency
// bound, not a lifetime bound: any number of handles may be registered
// over time as long as at most n are open at once.
func WithMaxThreads(n int) Option { return config.WithMaxThreads(n) }

// WithFreezerSpin sets the freezer's batch-growing pre-freeze backoff
// in spin iterations (SEC, deque, funnel; §3.1 of the paper). Default
// 128; 0 disables it, keeping batches small. Under WithAdaptiveSpin
// this is the controller's ceiling rather than the delay every freeze
// pays.
func WithFreezerSpin(s int) Option { return config.WithFreezerSpin(s) }

// WithAdaptiveSpin toggles the adaptive freezer backoff in the
// batch-protocol structures (SEC, deque, funnel; pool shards honour
// it too): each aggregator tunes its own pre-freeze spin on the
// batch-degree EWMA, growing toward WithFreezerSpin while batches
// freeze well-filled and decaying toward zero while they freeze
// near-empty, so lightly loaded aggregators stop paying the backoff
// the paper sizes for high contention. See DESIGN.md §9.
func WithAdaptiveSpin(on bool) Option { return config.WithAdaptiveSpin(on) }

// WithoutElimination disables SEC's in-batch elimination, leaving
// freezing and combining intact - the paper's ablation isolating how
// much of the win comes from elimination versus combining.
func WithoutElimination() Option { return config.WithoutElimination() }

// WithRecycling routes SEC stack nodes through DEBRA-style epoch-based
// reclamation instead of fresh allocation, the Go analogue of the
// paper's DEBRA deployment (§4).
func WithRecycling() Option { return config.WithRecycling() }

// WithAdaptive toggles contention adaptivity in SEC (and the other
// batch-protocol structures honouring the shared option): the solo
// fast path - one direct Treiber-style CAS when an aggregator's recent
// batch degree is ~1, falling back to the full batch protocol on
// contention - and dynamic shard scaling between 1 and
// WithAggregators. See DESIGN.md §8.
func WithAdaptive(on bool) Option { return config.WithAdaptive(on) }

// WithBatchRecycling toggles batch recycling in the batch-protocol
// structures: frozen batches retire to per-aggregator free lists (slot
// arrays and payloads reused once no operation can still hold them),
// so the steady-state freeze path allocates nothing. See DESIGN.md §8.
func WithBatchRecycling(on bool) Option { return config.WithBatchRecycling(on) }

// WithMetrics enables the batching/elimination/combining degree and
// batch-occupancy counters behind the paper's Tables 1-3, retrievable
// via SECStack.Metrics. The deque and funnel packages honour the same
// option (their engines record the same counters); cmd/secbench -table
// reports all three.
func WithMetrics() Option { return config.WithMetrics() }

// WithBackoff sets the Treiber stack's randomized exponential backoff
// window in spin iterations (default [4, 1024]).
func WithBackoff(min, max int) Option { return config.WithBackoff(min, max) }

// WithElimArray sets the EB stack's elimination array size (default 16)
// and per-visit patience in wait steps (default 64).
func WithElimArray(size, patience int) Option { return config.WithElimArray(size, patience) }

// WithCombinerRounds sets the FC combiner's publication-list scan
// rounds per lock acquisition (default 2).
func WithCombinerRounds(r int) Option { return config.WithCombinerRounds(r) }

// WithServeLimit sets CC-Synch's H, the maximum requests one combiner
// serves before passing the role on (default 64).
func WithServeLimit(h int) Option { return config.WithServeLimit(h) }

// WithTimestampDelay sets the TS-interval stack's interval-widening
// delay between a push's two clock reads (default 32; 0 disables).
func WithTimestampDelay(d int) Option { return config.WithTimestampDelay(d) }

// WithImplicitSessions toggles the per-P affinity tier behind the
// handle-free Push/Pop/Peek methods (default on): an implicit op on
// P k reuses P k's cached handle, so consecutive handle-free calls
// keep the same session - same aggregator, same solo scratch batch -
// instead of drawing a fresh one from a pool. Off, implicit ops fall
// back to the spill-pool-only borrow path. The deque, pool and funnel
// packages honour the same option for their handle-free APIs.
func WithImplicitSessions(on bool) Option { return config.WithImplicitSessions(on) }

// WithAnnounceEvery sets the amortized-announcement cadence of cached
// implicit sessions: a cached handle publishes its reclamation hazard
// slot once per k handle-free ops instead of once per op (default 8;
// 1 restores the eager per-op clear). Larger cadences shave an atomic
// store off the implicit hot path at the cost of an idle cached
// session pinning at most one retired batch until its window closes -
// the same bound the hazard scan already tolerates for a session
// parked mid-operation.
func WithAnnounceEvery(k int) Option { return config.WithAnnounceEvery(k) }
