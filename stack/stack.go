// Package stack is the public API of secstack: a uniform interface over
// the SEC stack of Singh, Metaxakis and Fatourou (PPoPP '26) and the
// five baseline concurrent stacks its evaluation compares against.
//
// The quickstart needs no handle management at all - every stack type
// carries convenience Push/Pop/Peek methods that borrow a cached
// per-goroutine handle behind the scenes:
//
//	s, err := stack.New[int](stack.SEC)
//	...
//	s.Push(42)
//	if v, ok := s.Pop(); ok { use(v) }
//
// The explicit-handle path remains the fast path for worker loops:
// construct a stack once, have each worker goroutine Register its own
// Handle, operate through it, and Close it when the goroutine is done.
// Handles carry per-thread state (thread ids, backoff state,
// publication records, pools) and must not be shared between
// goroutines; stacks themselves may be shared freely. Closing a handle
// returns its thread-id slot to a lock-free free list for reuse, so
// goroutine churn never exhausts WithMaxThreads:
//
//	s := stack.NewSEC[int]()
//	...
//	go func() {
//		h := s.Register()
//		defer h.Close()
//		h.Push(42)
//		if v, ok := h.Pop(); ok { use(v) }
//	}()
//
// Configuration is uniform functional options (see Option); the same
// option set configures all six algorithms through New, each algorithm
// reading the knobs it understands - and the sibling deque, pool and
// funnel packages alias the same option type, so one vocabulary
// configures the whole repository (README.md carries the full
// option-by-structure matrix). SEC's engine-level knobs - adaptivity
// (WithAdaptive), batch recycling (WithBatchRecycling), the adaptive
// freezer backoff (WithAdaptiveSpin) - are documented on their options
// below and in DESIGN.md §8-§10.
package stack

import (
	"errors"
	"fmt"
	"strings"

	"secstack/internal/ccstack"
	"secstack/internal/config"
	"secstack/internal/core"
	"secstack/internal/ebstack"
	"secstack/internal/fcstack"
	"secstack/internal/isession"
	"secstack/internal/metrics"
	"secstack/internal/treiber"
	"secstack/internal/tsstack"
)

// Handle is a per-goroutine session on a concurrent stack. A Handle
// must be used by the goroutine that obtained it and by no other, and
// Closed when its goroutine is done with the stack so the handle's
// thread-id slot can be recycled.
type Handle[T any] interface {
	// Push adds v to the top of the stack.
	Push(v T)
	// Pop removes and returns the top element; ok is false if the stack
	// was empty at the operation's linearization point.
	Pop() (v T, ok bool)
	// Peek returns the top element without removing it; ok is false if
	// the stack is empty.
	Peek() (v T, ok bool)
	// Close releases the handle's per-thread resources (thread id,
	// reclamation slot, publication record) for reuse by a future
	// Register. Close is idempotent; any other use of a closed handle
	// is a bug.
	Close()
}

// ErrExhausted is returned by TryRegister when MaxThreads handles are
// live at the same time - the backpressure signal for callers (like
// the secd server mapping connections onto handles) that prefer
// refusing a session over crashing.
var ErrExhausted = errors.New("stack: more than MaxThreads handles live")

// Stack is a linearizable concurrent LIFO stack. Register hands out
// per-goroutine handles (the fast path); the direct Push/Pop/Peek
// methods transparently borrow a pooled handle per call, trading a
// little overhead for zero session management.
type Stack[T any] interface {
	// Register returns a fresh Handle for the calling goroutine.
	Register() Handle[T]
	// TryRegister is Register with ErrExhausted in place of the
	// exhaustion panic, for callers that prefer backpressure over
	// crashing - the same contract the pool and funnel packages offer.
	TryRegister() (Handle[T], error)
	// Push adds v to the top of the stack through a cached handle.
	Push(v T)
	// Pop removes and returns the top element through a cached handle.
	Pop() (v T, ok bool)
	// Peek returns the top element through a cached handle.
	Peek() (v T, ok bool)
}

// Algorithm names the implementations available through New, matching
// the labels of the paper's evaluation.
type Algorithm string

// The six algorithms of the paper's evaluation.
const (
	SEC Algorithm = "SEC" // sharded elimination and combining (the paper's contribution)
	TRB Algorithm = "TRB" // Treiber's CAS stack
	EB  Algorithm = "EB"  // elimination-backoff stack
	FC  Algorithm = "FC"  // flat-combining stack
	CC  Algorithm = "CC"  // CC-Synch combining stack
	TSI Algorithm = "TSI" // interval timestamped stack
)

// registry describes every algorithm New can construct, in the paper's
// presentation order. Construction itself happens in New's switch -
// Go's generics keep type-parameterized constructors out of table
// values - so a new entry here must be matched by a case there;
// TestConformanceAllAlgorithms constructs every listed algorithm and
// fails the build of any entry the switch does not cover.
var registry = []struct {
	Alg  Algorithm
	Desc string
}{
	{SEC, "sharded elimination and combining (PPoPP '26, the paper's contribution)"},
	{TRB, "Treiber's lock-free CAS stack (1986)"},
	{EB, "elimination-backoff stack (SPAA '04)"},
	{FC, "flat-combining stack (SPAA '10)"},
	{CC, "CC-Synch combining stack (PPoPP '12)"},
	{TSI, "interval timestamped stack (POPL '15)"},
}

// Algorithms lists every available algorithm in the paper's
// presentation order.
func Algorithms() []Algorithm {
	out := make([]Algorithm, len(registry))
	for i, e := range registry {
		out[i] = e.Alg
	}
	return out
}

// Describe returns a one-line description of the algorithm, or "" for
// unknown names.
func Describe(a Algorithm) string {
	for _, e := range registry {
		if e.Alg == a {
			return e.Desc
		}
	}
	return ""
}

// New constructs the named algorithm, forwarding the full option set;
// each algorithm applies the knobs it understands (every one honours
// WithMaxThreads-style lifecycle options where it keeps per-thread
// state). Unknown algorithms are reported as an error rather than a
// silent false.
func New[T any](alg Algorithm, opts ...Option) (Stack[T], error) {
	switch alg {
	case SEC:
		return NewSEC[T](opts...), nil
	case TRB:
		return NewTreiber[T](opts...), nil
	case EB:
		return NewEB[T](opts...), nil
	case FC:
		return NewFC[T](opts...), nil
	case CC:
		return NewCC[T](opts...), nil
	case TSI:
		return NewTSI[T](opts...), nil
	}
	return nil, fmt.Errorf("stack: unknown algorithm %q (known: %v)", alg, Algorithms())
}

// NewByName constructs the named algorithm with the given SEC
// aggregator count.
//
// Deprecated: NewByName predates the registry and drops every knob
// except the aggregator count. Use New, which forwards full option sets
// to all algorithms and reports unknown names as errors.
func NewByName[T any](a Algorithm, aggregators int) (Stack[T], bool) {
	var opts []Option
	if aggregators > 0 {
		opts = append(opts, WithAggregators(aggregators))
	} // else: keep the old zero-value semantics (paper default of 2)
	s, err := New[T](a, opts...)
	return s, err == nil
}

// tryRegister adapts a panicking register closure into the
// error-surfacing form isession and TryRegister need. Every
// algorithm's registration panics with a "handles live" message when
// MaxThreads handles are concurrently live (algorithms without
// per-thread state never exhaust); this absorbs exactly that panic,
// so it works uniformly across the registry without each algorithm
// growing a second registration path.
func tryRegister[T any](register func() Handle[T]) (h Handle[T], err error) {
	defer func() {
		if r := recover(); r != nil {
			if msg, ok := r.(string); ok && strings.Contains(msg, "handles live") {
				h, err = nil, ErrExhausted
				return
			}
			panic(r)
		}
	}()
	return register(), nil
}

// sessions implements the implicit-handle convenience layer every
// public stack type embeds, on the shared per-P cache
// (internal/isession): the direct Push/Pop/Peek methods reuse the
// calling P's cached handle, so consecutive implicit ops keep the same
// session id - same aggregator, same solo scratch batch - and the
// engine's solo fast path stays hot. Handles the cache's spill tier
// drops under GC pressure are closed by a runtime cleanup, so their
// thread-id slots always flow back to the free list; the per-P tier
// itself keeps up to GOMAXPROCS handles registered for the stack's
// lifetime (see isession.Sessions).
type sessions[T any] struct {
	register func() Handle[T]
	cache    *isession.Sessions[Handle[T]]
}

// makeSessions builds the implicit layer. implicitRegister mints the
// handles the cache keeps (SEC uses it to set the amortized Done
// cadence on cached handles without touching explicit ones); the
// plain register stays the Register/TryRegister path.
func makeSessions[T any](affinity bool, register, implicitRegister func() Handle[T]) sessions[T] {
	return sessions[T]{
		register: register,
		cache: isession.New(affinity,
			func() (Handle[T], error) { return tryRegister(implicitRegister) },
			func(h Handle[T]) { h.Close() }),
	}
}

// Register returns a fresh Handle for the calling goroutine.
func (s *sessions[T]) Register() Handle[T] { return s.register() }

// TryRegister is Register with ErrExhausted in place of the exhaustion
// panic.
func (s *sessions[T]) TryRegister() (Handle[T], error) {
	return tryRegister(s.register)
}

// Push adds v to the top of the stack through a cached handle.
func (s *sessions[T]) Push(v T) {
	e := s.cache.Acquire()
	e.H.Push(v)
	s.cache.Release(e)
}

// Pop removes and returns the top element through a cached handle.
func (s *sessions[T]) Pop() (v T, ok bool) {
	e := s.cache.Acquire()
	v, ok = e.H.Pop()
	s.cache.Release(e)
	return v, ok
}

// Peek returns the top element through a cached handle.
func (s *sessions[T]) Peek() (v T, ok bool) {
	e := s.cache.Acquire()
	v, ok = e.H.Peek()
	s.cache.Release(e)
	return v, ok
}

// SECStack is the concrete SEC stack type; it implements Stack and
// additionally exposes its degree metrics.
type SECStack[T any] struct {
	sessions[T]
	s *core.Stack[T]
}

// NewSEC returns a SEC stack. With no options it uses the paper's
// defaults: two aggregators, elimination on, freezer spin 128, no
// recycling, up to 256 concurrently live handles.
func NewSEC[T any](opts ...Option) *SECStack[T] {
	c := config.Resolve(opts)
	st := &SECStack[T]{s: core.New[T](core.Options{
		Aggregators:    c.Aggregators,
		MaxThreads:     c.MaxThreads,
		FreezerSpin:    c.FreezerSpin,
		AdaptiveSpin:   c.AdaptiveSpin,
		NoElimination:  c.NoElimination,
		Recycle:        c.Recycle,
		CollectMetrics: c.CollectMetrics,
		Adaptive:       c.Adaptive,
		BatchRecycle:   c.BatchRecycle,
	})}
	register := func() Handle[T] { return st.s.Register() }
	// Cached implicit handles publish their hazard slot once per
	// AnnounceEvery ops (amortized announcement); explicit handles keep
	// the eager per-op clear unless the caller opts in.
	implicit := func() Handle[T] {
		h := st.s.Register()
		h.SetDoneCadence(c.AnnounceEvery)
		return h
	}
	st.sessions = makeSessions[T](c.ImplicitAffinity, register, implicit)
	return st
}

// Metrics returns the degree snapshot collector, or nil if WithMetrics
// was not given.
func (s *SECStack[T]) Metrics() *metrics.SEC { return s.s.Metrics() }

// Len counts elements; racy diagnostic for quiescent states.
func (s *SECStack[T]) Len() int { return s.s.Len() }

// wrapped adapts any registerable implementation to Stack.
type wrapped[T any] struct{ sessions[T] }

func wrap[T any](c config.Config, register func() Handle[T]) Stack[T] {
	return &wrapped[T]{makeSessions(c.ImplicitAffinity, register, register)}
}

// NewTreiber returns Treiber's lock-free CAS stack (TRB).
func NewTreiber[T any](opts ...Option) Stack[T] {
	c := config.Resolve(opts)
	s := treiber.New[T](treiber.WithBackoff(c.BackoffMin, c.BackoffMax))
	return wrap(c, func() Handle[T] { return s.Register() })
}

// NewEB returns the elimination-backoff stack (EB).
func NewEB[T any](opts ...Option) Stack[T] {
	c := config.Resolve(opts)
	s := ebstack.New[T](ebstack.WithArraySize(c.ElimArraySize), ebstack.WithPatience(c.ElimPatience))
	return wrap(c, func() Handle[T] { return s.Register() })
}

// NewFC returns the flat-combining stack (FC).
func NewFC[T any](opts ...Option) Stack[T] {
	c := config.Resolve(opts)
	s := fcstack.New[T](fcstack.WithCombinerRounds(c.CombinerRounds))
	return wrap(c, func() Handle[T] { return s.Register() })
}

// NewCC returns the CC-Synch combining stack (CC).
func NewCC[T any](opts ...Option) Stack[T] {
	c := config.Resolve(opts)
	s := ccstack.New[T](ccstack.WithServeLimit(c.ServeLimit))
	return wrap(c, func() Handle[T] { return s.Register() })
}

// NewTSI returns the interval timestamped stack (TSI).
func NewTSI[T any](opts ...Option) Stack[T] {
	c := config.Resolve(opts)
	s := tsstack.New[T](tsstack.WithMaxThreads(c.MaxThreads), tsstack.WithDelay(c.TimestampDelay))
	return wrap(c, func() Handle[T] { return s.Register() })
}
