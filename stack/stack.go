// Package stack is the public API of secstack: a uniform interface over
// the SEC stack of Singh, Metaxakis and Fatourou (PPoPP '26) and the
// five baseline concurrent stacks its evaluation compares against.
//
// Every implementation follows the same registration model: construct a
// stack once, then have each worker goroutine call Register for its own
// Handle and perform all operations through it. Handles carry
// per-thread state (thread ids, backoff state, publication records,
// pools) and must not be shared between goroutines; stacks themselves
// may be shared freely.
//
//	s := stack.NewSEC[int](stack.SECOptions{})
//	...
//	go func() {
//		h := s.Register()
//		h.Push(42)
//		if v, ok := h.Pop(); ok { use(v) }
//	}()
package stack

import (
	"secstack/internal/ccstack"
	"secstack/internal/core"
	"secstack/internal/ebstack"
	"secstack/internal/fcstack"
	"secstack/internal/metrics"
	"secstack/internal/treiber"
	"secstack/internal/tsstack"
)

// Handle is a per-goroutine session on a concurrent stack. A Handle
// must be used by the goroutine that obtained it and by no other.
type Handle[T any] interface {
	// Push adds v to the top of the stack.
	Push(v T)
	// Pop removes and returns the top element; ok is false if the stack
	// was empty at the operation's linearization point.
	Pop() (v T, ok bool)
	// Peek returns the top element without removing it; ok is false if
	// the stack is empty.
	Peek() (v T, ok bool)
}

// Stack is a linearizable concurrent LIFO stack accessed through
// per-goroutine handles.
type Stack[T any] interface {
	// Register returns a fresh Handle for the calling goroutine.
	Register() Handle[T]
}

// Algorithm names the implementations available through NewByName,
// matching the labels of the paper's evaluation.
type Algorithm string

// The six algorithms of the paper's evaluation.
const (
	SEC Algorithm = "SEC" // sharded elimination and combining (the paper's contribution)
	TRB Algorithm = "TRB" // Treiber's CAS stack
	EB  Algorithm = "EB"  // elimination-backoff stack
	FC  Algorithm = "FC"  // flat-combining stack
	CC  Algorithm = "CC"  // CC-Synch combining stack
	TSI Algorithm = "TSI" // interval timestamped stack
)

// Algorithms lists every available algorithm in the paper's
// presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{SEC, TRB, EB, FC, CC, TSI}
}

// SECOptions configures NewSEC. The zero value matches the paper's
// defaults (two aggregators; elimination on; no recycling).
type SECOptions struct {
	// Aggregators is K, the number of shards (paper default 2).
	Aggregators int
	// MaxThreads bounds Register calls (default 256).
	MaxThreads int
	// FreezerSpin is the batch-growing backoff of the freezer in spin
	// iterations (default 128; 0 keeps batches small).
	FreezerSpin int
	// NoElimination disables in-batch elimination (ablation).
	NoElimination bool
	// Recycle routes nodes through epoch-based reclamation.
	Recycle bool
	// CollectMetrics enables batching/elimination/combining degree
	// counters, retrievable via SECStack.Metrics.
	CollectMetrics bool
}

// SECStack is the concrete SEC stack type; it implements Stack and
// additionally exposes its degree metrics.
type SECStack[T any] struct {
	s *core.Stack[T]
}

// NewSEC returns a SEC stack.
func NewSEC[T any](o SECOptions) *SECStack[T] {
	return &SECStack[T]{s: core.New[T](core.Options{
		Aggregators:    o.Aggregators,
		MaxThreads:     o.MaxThreads,
		FreezerSpin:    o.FreezerSpin,
		NoElimination:  o.NoElimination,
		Recycle:        o.Recycle,
		CollectMetrics: o.CollectMetrics,
	})}
}

// Register returns a per-goroutine handle.
func (s *SECStack[T]) Register() Handle[T] { return s.s.Register() }

// Metrics returns the degree snapshot collector, or nil if
// CollectMetrics was not set.
func (s *SECStack[T]) Metrics() *metrics.SEC { return s.s.Metrics() }

// Len counts elements; racy diagnostic for quiescent states.
func (s *SECStack[T]) Len() int { return s.s.Len() }

// treiberStack adapts *treiber.Stack to Stack.
type treiberStack[T any] struct{ s *treiber.Stack[T] }

func (w treiberStack[T]) Register() Handle[T] { return w.s.Register() }

// NewTreiber returns Treiber's lock-free CAS stack (TRB).
func NewTreiber[T any]() Stack[T] {
	return treiberStack[T]{treiber.New[T]()}
}

// ebStack adapts *ebstack.Stack to Stack.
type ebStack[T any] struct{ s *ebstack.Stack[T] }

func (w ebStack[T]) Register() Handle[T] { return w.s.Register() }

// NewEB returns the elimination-backoff stack (EB).
func NewEB[T any]() Stack[T] {
	return ebStack[T]{ebstack.New[T]()}
}

// fcStack adapts *fcstack.Stack to Stack.
type fcStack[T any] struct{ s *fcstack.Stack[T] }

func (w fcStack[T]) Register() Handle[T] { return w.s.Register() }

// NewFC returns the flat-combining stack (FC).
func NewFC[T any]() Stack[T] {
	return fcStack[T]{fcstack.New[T]()}
}

// ccStack adapts *ccstack.Stack to Stack.
type ccStack[T any] struct{ s *ccstack.Stack[T] }

func (w ccStack[T]) Register() Handle[T] { return w.s.Register() }

// NewCC returns the CC-Synch combining stack (CC).
func NewCC[T any]() Stack[T] {
	return ccStack[T]{ccstack.New[T]()}
}

// tsStack adapts *tsstack.Stack to Stack.
type tsStack[T any] struct{ s *tsstack.Stack[T] }

func (w tsStack[T]) Register() Handle[T] { return w.s.Register() }

// NewTSI returns the interval timestamped stack (TSI).
func NewTSI[T any]() Stack[T] {
	return tsStack[T]{tsstack.New[T]()}
}

// NewByName constructs the named algorithm with its evaluation-default
// configuration; SEC takes the aggregator count (ignored by the
// others). It returns false for unknown names.
func NewByName[T any](a Algorithm, aggregators int) (Stack[T], bool) {
	switch a {
	case SEC:
		return NewSEC[T](SECOptions{Aggregators: aggregators}), true
	case TRB:
		return NewTreiber[T](), true
	case EB:
		return NewEB[T](), true
	case FC:
		return NewFC[T](), true
	case CC:
		return NewCC[T](), true
	case TSI:
		return NewTSI[T](), true
	}
	return nil, false
}
