package stack_test

import (
	"fmt"
	"sync"
	"testing"

	"secstack/internal/stacktest"
	"secstack/stack"
)

// adapter lifts the generic public API onto the test-kit's int64
// interface.
type adapter struct{ s stack.Stack[int64] }

func (a adapter) Register() stacktest.Handle { return a.s.Register() }

// TestConformanceAllAlgorithms runs the full conformance suite against
// every algorithm reachable through the registry.
func TestConformanceAllAlgorithms(t *testing.T) {
	for _, alg := range stack.Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			stacktest.RunAll(t, func() stacktest.Stack {
				s, err := stack.New[int64](alg, stack.WithAggregators(2))
				if err != nil {
					t.Fatalf("New(%q): %v", alg, err)
				}
				return adapter{s}
			})
		})
	}
}

func TestNewUnknownAlgorithm(t *testing.T) {
	if _, err := stack.New[int](stack.Algorithm("NOPE")); err == nil {
		t.Fatal("New accepted an unknown algorithm")
	}
	// The deprecated shim keeps its (Stack, bool) contract.
	if _, ok := stack.NewByName[int](stack.Algorithm("NOPE"), 2); ok {
		t.Fatal("NewByName accepted an unknown algorithm")
	}
	if s, ok := stack.NewByName[int](stack.SEC, 3); !ok || s == nil {
		t.Fatal("NewByName rejected SEC")
	}
	// The seed's zero-value semantics: aggregators<=0 means "default".
	if s, ok := stack.NewByName[int](stack.SEC, 0); !ok || s == nil {
		t.Fatal("NewByName rejected aggregators=0 (old default spelling)")
	}
}

func TestDescribe(t *testing.T) {
	for _, alg := range stack.Algorithms() {
		if stack.Describe(alg) == "" {
			t.Fatalf("Describe(%q) empty", alg)
		}
	}
	if stack.Describe("NOPE") != "" {
		t.Fatal("Describe of unknown algorithm non-empty")
	}
}

// TestImplicitHandleAPI drives the handle-free Push/Pop/Peek methods
// from many goroutines on every algorithm.
func TestImplicitHandleAPI(t *testing.T) {
	for _, alg := range stack.Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			s, err := stack.New[int64](alg)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := int64(w) << 32
					for i := int64(0); i < 500; i++ {
						s.Push(base | i)
						s.Peek()
						s.Pop()
					}
				}(w)
			}
			wg.Wait()
			// Workers pushed and popped in pairs, so a final drain must
			// terminate (residue only from pops that lost races).
			n := 0
			for {
				if _, ok := s.Pop(); !ok {
					break
				}
				n++
			}
			if n > 8*500 {
				t.Fatalf("drained %d elements, more than were pushed", n)
			}
		})
	}
}

func TestAlgorithmsOrder(t *testing.T) {
	want := []stack.Algorithm{stack.SEC, stack.TRB, stack.EB, stack.FC, stack.CC, stack.TSI}
	got := stack.Algorithms()
	if len(got) != len(want) {
		t.Fatalf("Algorithms() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Algorithms()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSECMetricsExposed(t *testing.T) {
	s := stack.NewSEC[int](stack.WithMetrics())
	h := s.Register()
	h.Push(1)
	h.Pop()
	if s.Metrics() == nil {
		t.Fatal("Metrics() = nil with CollectMetrics set")
	}
	if snap := s.Metrics().Snapshot(); snap.Ops == 0 {
		t.Fatalf("no ops recorded: %+v", snap)
	}
	s2 := stack.NewSEC[int]()
	if s2.Metrics() != nil {
		t.Fatal("Metrics() non-nil without CollectMetrics")
	}
}

func TestSECLen(t *testing.T) {
	s := stack.NewSEC[int]()
	h := s.Register()
	for i := 0; i < 5; i++ {
		h.Push(i)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
}

// TestStructValues exercises the generic API with a multi-word element
// type on every algorithm.
func TestStructValues(t *testing.T) {
	type point struct{ X, Y, Z float64 }
	for _, alg := range stack.Algorithms() {
		s, _ := stack.New[point](alg)
		h := s.Register()
		h.Push(point{1, 2, 3})
		h.Push(point{4, 5, 6})
		if v, ok := h.Pop(); !ok || v != (point{4, 5, 6}) {
			t.Fatalf("%s: Pop = (%v, %v)", alg, v, ok)
		}
		if v, ok := h.Peek(); !ok || v != (point{1, 2, 3}) {
			t.Fatalf("%s: Peek = (%v, %v)", alg, v, ok)
		}
	}
}

// TestCrossAlgorithmAgreement runs the same deterministic workload
// single-threaded on all algorithms and checks they produce identical
// results (they all implement the same abstract stack).
func TestCrossAlgorithmAgreement(t *testing.T) {
	trace := func(s stack.Stack[int64]) string {
		h := s.Register()
		out := ""
		x := int64(0)
		for i := 0; i < 500; i++ {
			switch i % 5 {
			case 0, 1, 2:
				x++
				h.Push(x)
			case 3:
				v, ok := h.Pop()
				out += fmt.Sprintf("p%d:%v ", v, ok)
			default:
				v, ok := h.Peek()
				out += fmt.Sprintf("k%d:%v ", v, ok)
			}
		}
		return out
	}
	ref := ""
	for i, alg := range stack.Algorithms() {
		s, _ := stack.New[int64](alg)
		got := trace(s)
		if i == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Fatalf("%s single-threaded trace diverges from SEC", alg)
		}
	}
}

// TestConcurrentSmokeAllAlgorithms is a short mixed workload touching
// every algorithm through the public API.
func TestConcurrentSmokeAllAlgorithms(t *testing.T) {
	for _, alg := range stack.Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			s, _ := stack.New[int64](alg)
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := s.Register()
					for i := 0; i < 1000; i++ {
						switch i % 3 {
						case 0:
							h.Push(int64(i))
						case 1:
							h.Pop()
						default:
							h.Peek()
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
